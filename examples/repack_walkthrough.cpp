// Rearrangeable mode walkthrough (TUTORIAL.md §14, DESIGN.md §3.12).
//
//   $ ./repack_walkthrough
//
// The paper's Theorem 1 sizes the middle stage of a 4x4x2 MSW-dominant
// switch at m*=13 so that NO request ever blocks. This walkthrough runs the
// same fabric at every m below that bound and shows what repack-on-block
// buys back: churn that blocks classically is admitted by migrating a
// bounded chain of standing sessions (Slepian-Duguid rearrangement against
// live traffic), at a cost of a few moves per hundred admits -- while the
// bound-sized fabric needs no moves at all.
#include <iomanip>
#include <iostream>

#include "multistage/builder.h"
#include "multistage/nonblocking.h"
#include "repack/repack.h"
#include "sim/blocking_sim.h"

using namespace wdm;

int main() {
  const std::size_t n = 4, r = 4, k = 2;
  const NonblockingBound bound = theorem1_min_m(n, r);
  std::cout << "Theorem 1 bound for " << n << "x" << r << "x" << k
            << " MSW-dominant: m* = " << bound.m << " (spread x = " << bound.x
            << ")\n\n"
            << "   m  classic-blocked  repack-blocked  repacked-admits"
            << "  moves/100adm  max-chain\n";

  bool ok = true;
  for (std::size_t m = n; m <= bound.m; ++m) {
    SimConfig config;
    config.steps = 8000;
    config.arrival_fraction = 0.8;  // hot enough to block below the bound
    config.fanout = {1, 4};
    config.self_check_every = 1024;

    MultistageSwitch classic({n, r, m, k}, Construction::kMswDominant,
                             MulticastModel::kMSW);
    const SimStats before = run_dynamic_sim(classic, config);

    MultistageSwitch repacking({n, r, m, k}, Construction::kMswDominant,
                               MulticastModel::kMSW);
    config.repack = true;  // arrivals go through connect_with_repack
    const SimStats after = run_dynamic_sim(repacking, config);

    const repack::RepackEngine& engine = *repacking.repack_engine();
    const double per100 =
        after.admitted == 0
            ? 0.0
            : 100.0 * static_cast<double>(after.repack_moves) /
                  static_cast<double>(after.admitted);
    std::cout << std::setw(4) << m << std::setw(13) << before.blocked << "/"
              << before.attempts << std::setw(12) << after.blocked << "/"
              << after.attempts << std::setw(17) << after.repacked_admits
              << std::setw(14) << std::fixed << std::setprecision(1) << per100
              << std::setw(11) << engine.max_chain_length() << "\n";

    // Repack must never do worse than classic; at the bound neither blocks
    // and the engine never engages (the strict-sense guarantee costs zero).
    ok = ok && after.blocked <= before.blocked;
    if (m == bound.m) {
      ok = ok && before.blocked == 0 && after.blocked == 0 &&
           engine.sessions_moved_total() == 0;
    }
  }

  std::cout << "\nEvery migration is a break-before-make transaction: a "
               "failed chain rolls\nback bit-exact, with every victim revived "
               "under its original id\n(tests/repack_test.cpp hammers this "
               "mid-chain). restore_connections runs on\nthe same executor -- "
               "fault restoration is repacking under failure.\n";
  return ok ? 0 : 1;
}

// Capacity planner: size a WDM multicast switch for a real traffic estimate.
//
//   $ ./capacity_planner --n 4 --r 4 --lanes 2 --erlangs 6 --target 0.001
//
// Input: geometry, offered load (Erlangs), and a blocking target. Output:
// (1) the worst-case Theorem-1 middle stage, (2) the smallest middle stage
// meeting the target under simulated Poisson load, (3) the converter-bank
// size meeting the same target under MAW traffic, with the hardware savings
// for each relaxation. The full pipeline: theorems for guarantees,
// simulation for engineering.
#include <iostream>

#include "core/wdm.h"
#include "util/cli.h"

using namespace wdm;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.describe("n", "ports per edge module (default 4)");
  cli.describe("r", "edge module count (default 4)");
  cli.describe("lanes", "wavelengths per fiber k (default 2)");
  cli.describe("erlangs", "offered load in Erlangs (default 6)");
  cli.describe("target", "tolerated blocking probability (default 0.001)");
  if (cli.wants_help()) {
    std::cout << cli.help_text("Size a nonblocking-or-nearly WDM multicast switch.");
    return 0;
  }
  try {
    cli.validate();
    const auto n = static_cast<std::size_t>(cli.get_int("n", 4));
    const auto r = static_cast<std::size_t>(cli.get_int("r", 4));
    const auto k = static_cast<std::size_t>(cli.get_int("lanes", 2));
    const double erlangs = cli.get_double("erlangs", 6.0);
    const double target = cli.get_double("target", 0.001);
    const std::size_t N = n * r;

    print_banner(std::cout, "Capacity plan: " + std::to_string(N) + "-port, " +
                                std::to_string(k) + "-wavelength switch at " +
                                std::to_string(erlangs) + " E offered");

    // 1. The guarantee: worst-case nonblocking design.
    const NonblockingBound bound = theorem1_min_m(n, r);
    const ClosParams guaranteed{n, r, bound.m, k};
    const auto guaranteed_cost =
        multistage_cost(guaranteed, Construction::kMswDominant, MulticastModel::kMSW);
    std::cout << "\nworst-case (Theorem 1): m=" << bound.m << ", "
              << guaranteed_cost.crosspoints
              << " crosspoints -- blocking impossible for ANY request pattern\n";

    // 2. The engineering answer: smallest m meeting the target at this load.
    SimConfig load;
    load.steps = 4000;
    // Map Erlangs to the step model: arrival fraction such that the carried
    // load roughly matches (arrivals/departure mix of the step simulator).
    load.arrival_fraction =
        std::min(0.95, erlangs / (erlangs + static_cast<double>(N * k) * 0.25));
    load.fanout = {1, 4};
    load.seed = 20260705;
    const ProvisioningResult provisioned = provision_middle_stage(
        n, r, k, Construction::kMswDominant, MulticastModel::kMSW, load, target, 3);
    std::cout << "provisioned for P(block) <= " << target << ": m="
              << provisioned.chosen_m << " ("
              << provisioned.crosspoint_ratio * 100.0
              << "% of the worst-case crosspoints; observed P(block) = "
              << provisioned.observed_blocking << ", CI95 high "
              << provisioned.blocking_ci95_upper << ")\n";

    // 3. Converter bank for MAW traffic at the same tolerance.
    std::vector<std::size_t> ladder;
    for (std::size_t c = 0; c <= N * k; c += std::max<std::size_t>(1, N * k / 16)) {
      ladder.push_back(c);
    }
    if (ladder.back() != N * k) ladder.push_back(N * k);
    const auto pool_curve = sweep_converter_pool(N, k, ladder, 5000, 20260705);
    std::size_t pool_needed = N * k;
    for (const PoolSweepPoint& point : pool_curve) {
      if (point.converter_blocking_probability() <= target) {
        pool_needed = point.pool_size;
        break;
      }
    }
    std::cout << "shared converter bank for MAW traffic at the same target: "
              << pool_needed << " of the paper's " << N * k << " dedicated ("
              << 100.0 * static_cast<double>(pool_needed) /
                     static_cast<double>(N * k)
              << "%)\n";

    // 4. Sanity: the provisioned design really holds the target under an
    //    independent Poisson run.
    MultistageSwitch sw(ClosParams{n, r, std::max(provisioned.chosen_m, n), k},
                        Construction::kMswDominant, MulticastModel::kMSW,
                        RoutingPolicy{bound.x});
    ErlangConfig check;
    check.arrival_rate = erlangs;
    check.mean_holding = 1.0;
    check.duration = 2000.0;
    check.fanout = {1, 4};
    check.seed = 42;
    const ErlangStats verdict = run_erlang_sim(sw, check);
    std::cout << "\nindependent Poisson check at m=" << provisioned.chosen_m
              << ": " << verdict.to_string() << "\n";
    std::cout << (verdict.blocking_probability() <= target * 3
                      ? "plan holds under independent load.\n"
                      : "WARNING: independent run exceeded the target; consider "
                        "the worst-case design.\n");
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
}

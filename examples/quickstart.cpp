// Quickstart: design a nonblocking WDM multicast switch, build it, route a
// few multicast connections, and verify them.
//
//   $ ./quickstart
//
// Walks the library's three layers in ~80 lines:
//   1. capacity/cost analysis (paper Table 1) and design recommendation,
//   2. a gate-level crossbar carrying verified multicast traffic,
//   3. a theorem-sized three-stage network routing the same workload.
#include <iostream>

#include "core/wdm.h"

using namespace wdm;

int main() {
  const std::size_t N = 16;  // ports
  const std::size_t k = 2;   // wavelengths per fiber

  // --- 1. What does the paper's analysis say about this design point? ------
  print_design_report(std::cout, N, k);

  // --- 2. Gate-level crossbar: connect and physically verify ---------------
  print_banner(std::cout, "Crossbar fabric demo (MAW model)");
  FabricSwitch crossbar(N, k, MulticastModel::kMAW);
  crossbar.connect({{0, 0}, {{3, 0}, {7, 1}, {12, 0}}});  // multicast, mixed lanes
  crossbar.connect({{0, 1}, {{3, 1}}});  // same port, second lane: concurrent!
  crossbar.connect({{5, 0}, {{7, 0}, {12, 1}}});
  const auto report = crossbar.verify();
  std::cout << "\n3 connections installed; optical verification: "
            << report.to_string() << "\n";

  // --- 3. Three-stage network sized by Theorem 1 ---------------------------
  print_banner(std::cout, "Three-stage network demo (MSW-dominant, Theorem 1)");
  const auto [n, r] = balanced_factorization(N);
  MultistageSwitch clos = MultistageSwitch::nonblocking(
      n, r, k, Construction::kMswDominant, MulticastModel::kMAW);
  std::cout << "\ngeometry: " << clos.network().params().to_string()
            << "  (m from Theorem 1, routing spread x="
            << clos.router().policy().max_spread << ")\n";

  const auto id = clos.try_connect({{0, 0}, {{3, 0}, {7, 1}, {12, 0}}});
  if (!id) {
    std::cerr << "unexpected block: " << connect_error_name(clos.last_error())
              << "\n";
    return 1;
  }
  std::cout << "multicast routed as: "
            << clos.network().connections().at(*id).second.to_string() << "\n";
  clos.network().self_check();
  std::cout << "network state self-check: OK\n";

  std::cout << "\nNext steps: examples/video_conference, examples/video_on_demand,"
               " examples/network_designer --help\n";
  return report.ok ? 0 : 1;
}

// Inspect what the library builds: dump a gate-level fabric as Graphviz DOT
// and a loaded three-stage network as JSON.
//
//   $ ./fabric_inspector --ports 3 --lanes 2 --model MAW --out-dir /tmp
//   $ dot -Tsvg /tmp/fabric.dot -o fabric.svg
//
// Writes three artifacts: fabric.dot (the full Fig. 6/7-style circuit),
// fabric_active.dot (only the gates a sample multicast switched on -- the
// light paths), and network.json (a routed three-stage network snapshot).
#include <fstream>
#include <iostream>

#include "core/wdm.h"
#include "util/cli.h"

using namespace wdm;

namespace {

MulticastModel parse_model(const std::string& name) {
  if (name == "MSW" || name == "msw") return MulticastModel::kMSW;
  if (name == "MSDW" || name == "msdw") return MulticastModel::kMSDW;
  if (name == "MAW" || name == "maw") return MulticastModel::kMAW;
  throw std::invalid_argument("unknown model: " + name);
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << content;
  std::cout << "wrote " << path << " (" << content.size() << " bytes)\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.describe("ports", "crossbar size N (default 3)");
  cli.describe("lanes", "wavelengths per fiber k (default 2)");
  cli.describe("model", "multicast model MSW|MSDW|MAW (default MAW)");
  cli.describe("out-dir", "directory for the artifacts (default .)");
  if (cli.wants_help()) {
    std::cout << cli.help_text("Dump gate-level fabrics (DOT) and network state (JSON).");
    return 0;
  }
  try {
    cli.validate();
    const auto N = static_cast<std::size_t>(cli.get_int("ports", 3));
    const auto k = static_cast<std::size_t>(cli.get_int("lanes", 2));
    const MulticastModel model = parse_model(cli.get_string("model").value_or("MAW"));
    const std::string dir = cli.get_string("out-dir").value_or(".");

    // A crossbar fabric with one live multicast, full and active-only DOT.
    FabricSwitch fabric(N, k, model);
    MulticastRequest request{{0, model == MulticastModel::kMSW ? 0u : 1u}, {}};
    for (std::size_t port = 1; port < N; ++port) {
      request.outputs.push_back(
          {port, model == MulticastModel::kMSW ? request.input.lane : 0});
    }
    if (!request.outputs.empty()) fabric.connect(request);
    std::cout << "crossbar " << model_name(model) << " N=" << N << " k=" << k
              << ": " << fabric.fabric().circuit().component_count()
              << " components, multicast " << request.to_string() << "\n"
              << "verification: " << fabric.verify().to_string() << "\n\n";
    write_file(dir + "/fabric.dot", circuit_to_dot(fabric.fabric().circuit()));
    DotOptions active;
    active.active_gates_only = true;
    write_file(dir + "/fabric_active.dot",
               circuit_to_dot(fabric.fabric().circuit(), active));

    // A routed three-stage network as JSON.
    const auto [n, r] = balanced_factorization(std::max<std::size_t>(4, N + N % 2));
    MultistageSwitch clos = MultistageSwitch::nonblocking(
        n, r, k, Construction::kMswDominant, model);
    Rng rng(1);
    for (int i = 0; i < 4; ++i) {
      const auto candidate = random_admissible_request(rng, clos.network(), {1, 3});
      if (candidate) (void)clos.try_connect(*candidate);
    }
    write_file(dir + "/network.json", network_state_to_json(clos.network()));
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
}

// Interactive design explorer: the paper's cost/capacity analysis as a CLI.
//
//   $ ./network_designer --ports 64 --lanes 4
//   $ ./network_designer --ports 256 --lanes 8 --model MAW --csv
//
// Prints Table-1-style model comparison for the requested size, every
// nonblocking implementation with exact hardware counts, and the
// recommendation; optionally CSV for plotting.
#include <iostream>
#include <string>

#include "core/wdm.h"
#include "util/cli.h"

using namespace wdm;

namespace {

MulticastModel parse_model(const std::string& name) {
  if (name == "MSW" || name == "msw") return MulticastModel::kMSW;
  if (name == "MSDW" || name == "msdw") return MulticastModel::kMSDW;
  if (name == "MAW" || name == "maw") return MulticastModel::kMAW;
  throw std::invalid_argument("unknown model: " + name + " (use MSW|MSDW|MAW)");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.describe("ports", "network size N (default 64)");
  cli.describe("lanes", "wavelengths per fiber k (default 4)");
  cli.describe("model", "restrict to one multicast model (MSW|MSDW|MAW)");
  cli.describe("csv", "emit the design table as CSV instead of aligned text");
  if (cli.wants_help()) {
    std::cout << cli.help_text(
        "Explore nonblocking WDM multicast switch designs (Yang/Wang/Qiao).");
    return 0;
  }
  try {
    cli.validate();
    const auto N = static_cast<std::size_t>(cli.get_int("ports", 64));
    const auto k = static_cast<std::size_t>(cli.get_int("lanes", 4));
    const bool csv = cli.get_bool("csv");

    std::vector<MulticastModel> models(kAllModels.begin(), kAllModels.end());
    if (const auto name = cli.get_string("model")) {
      models = {parse_model(*name)};
    }

    if (!csv) {
      print_banner(std::cout, "Model comparison (paper Table 1) for N=" +
                                  std::to_string(N) + ", k=" + std::to_string(k));
      model_comparison_table(N, k).print(std::cout);
    }

    for (const MulticastModel model : models) {
      const auto options = enumerate_designs(N, k, model);
      const Table table = design_table(options);
      if (csv) {
        std::cout << table.to_csv();
        continue;
      }
      print_banner(std::cout, std::string("Nonblocking designs under ") +
                                  model_name(model));
      table.print(std::cout);
      const DesignOption best = recommend_design(N, k, model);
      std::cout << "recommended: " << best.to_string() << "\n";
      if (best.is_multistage) {
        const double saving =
            1.0 - static_cast<double>(best.crosspoints) /
                      static_cast<double>(options.front().crosspoints);
        std::cout << "crosspoint saving vs crossbar: " << saving * 100.0 << "%\n";
      }
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
}

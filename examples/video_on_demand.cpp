// Video-on-demand distribution over a theorem-sized three-stage WDM network.
//
// A head-end of video servers feeds neighborhood subscribers. Popular titles
// are multicast to many subscribers at once; sessions start and stop
// continuously. Because the middle stage is sized by Theorem 1, no session
// ever blocks -- this example runs thousands of session events against a
// 36-port network and reports utilization, fanout distribution, and the
// (empty) blocking count.
#include <iostream>
#include <vector>

#include "core/wdm.h"

using namespace wdm;

int main() {
  // 36 ports = 6 x 6 Clos, 2 wavelengths, MSW network model (cheapest: VoD
  // senders can transmit on the subscribers' wavelength).
  const std::size_t n = 6, r = 6, k = 2;
  print_banner(std::cout, "Video-on-demand over a 36-port three-stage WDM network");

  MultistageSwitch sw = MultistageSwitch::nonblocking(
      n, r, k, Construction::kMswDominant, MulticastModel::kMSW);
  const ClosParams& params = sw.network().params();
  std::cout << "\ngeometry " << params.to_string() << " -- middle stage sized by "
            << "Theorem 1 (m=" << params.m
            << ", routing spread x=" << sw.router().policy().max_spread << ")\n"
            << "crosspoints: "
            << multistage_cost(params, Construction::kMswDominant,
                               MulticastModel::kMSW)
                   .crosspoints
            << " vs crossbar "
            << crossbar_cost(params.port_count(), k, MulticastModel::kMSW).crosspoints
            << "\n";

  Rng rng(2026);
  struct Session {
    ConnectionId id;
    std::size_t fanout;
  };
  std::vector<Session> sessions;
  std::size_t started = 0, finished = 0, blocked = 0, endpoint_busy = 0;
  std::size_t fanout_histogram[4] = {0, 0, 0, 0};  // 1, 2-4, 5-9, 10+
  std::size_t peak = 0;

  const std::size_t events = 8000;
  for (std::size_t event = 0; event < events; ++event) {
    const bool arrival = sessions.empty() || rng.next_bool(0.62);
    if (arrival) {
      // Popular titles have big fanouts; most sessions are small.
      const std::size_t max_fanout = rng.next_bool(0.15) ? 18 : 4;
      const auto request =
          random_admissible_request(rng, sw.network(), {1, max_fanout});
      if (!request) {
        ++endpoint_busy;  // all servers busy at this load: arrival abandoned
        continue;
      }
      if (const auto id = sw.try_connect(*request)) {
        sessions.push_back({*id, request->fanout()});
        ++started;
        peak = std::max(peak, sessions.size());
        const std::size_t fanout = request->fanout();
        ++fanout_histogram[fanout == 1 ? 0 : fanout <= 4 ? 1 : fanout <= 9 ? 2 : 3];
      } else {
        ++blocked;  // would falsify Theorem 1
      }
    } else {
      const std::size_t victim = rng.next_below(sessions.size());
      sw.disconnect(sessions[victim].id);
      sessions[victim] = sessions.back();
      sessions.pop_back();
      ++finished;
    }
    if (event % 1000 == 0) sw.network().self_check();
  }

  Table table({"metric", "value"});
  table.add("session events", events);
  table.add("sessions started", started);
  table.add("sessions finished", finished);
  table.add("arrivals abandoned (all endpoints busy)", endpoint_busy);
  table.add("sessions BLOCKED mid-network", blocked);
  table.add("peak concurrent sessions", peak);
  table.add("unicast sessions", fanout_histogram[0]);
  table.add("fanout 2-4", fanout_histogram[1]);
  table.add("fanout 5-9", fanout_histogram[2]);
  table.add("fanout 10+", fanout_histogram[3]);
  std::cout << "\n";
  table.print(std::cout);

  std::cout << "\nEvery admissible session was routed (" << blocked
            << " middle-stage blocks across " << started
            << " admissions), as Theorem 1 guarantees.\n";
  return blocked == 0 ? 0 : 1;
}

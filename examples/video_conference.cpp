// Video conferencing on a WDM multicast switch -- the paper's motivating
// workload for per-destination wavelength flexibility.
//
// Each conference is one multicast connection per *speaking* site (everyone
// receives every other speaker). A site with k receivers can attend up to k
// conferences simultaneously -- the WDM feature §1 highlights over
// electronic switches. This example builds an MAW crossbar, hosts several
// overlapping conferences, verifies every frame path optically, then churns
// speakers to show reconfiguration.
#include <iostream>
#include <map>
#include <vector>

#include "core/wdm.h"

using namespace wdm;

namespace {

struct Conference {
  std::string name;
  std::vector<std::size_t> sites;   // participating ports
  Wavelength lane;                  // receive lane the conference is assigned
};

// One multicast connection per speaker: speaker -> every other site, on the
// conference's receive lane (legal under MAW regardless of speaker lane).
MulticastRequest speaker_stream(const Conference& conference, std::size_t speaker,
                                Wavelength transmit_lane) {
  MulticastRequest request;
  request.input = {speaker, transmit_lane};
  for (const std::size_t site : conference.sites) {
    if (site != speaker) request.outputs.push_back({site, conference.lane});
  }
  return request;
}

}  // namespace

int main() {
  const std::size_t sites = 8;
  const std::size_t k = 2;
  print_banner(std::cout, "Video conferencing on an 8-port 2-wavelength MAW switch");

  FabricSwitch sw(sites, k, MulticastModel::kMAW);

  // Two conferences sharing sites 2 and 5: those sites attend both at once,
  // one per receive lane. (An electronic switch would need 2x the ports.)
  std::vector<Conference> conferences = {
      {"engineering sync", {0, 2, 5, 7}, 0},
      {"board call", {1, 2, 5}, 1},
  };

  std::map<std::string, FabricSwitch::ConnectionId> active_speakers;
  auto set_speaker = [&](const Conference& conference, std::size_t speaker,
                         Wavelength transmit_lane) {
    const std::string key = conference.name;
    if (const auto it = active_speakers.find(key); it != active_speakers.end()) {
      sw.disconnect(it->second);
      active_speakers.erase(it);
    }
    const auto id = sw.connect(speaker_stream(conference, speaker, transmit_lane));
    active_speakers.emplace(key, id);
    std::cout << "  [" << conference.name << "] site " << speaker
              << " now speaking on " << wavelength_name(transmit_lane)
              << ", heard on " << wavelength_name(conference.lane) << " by "
              << conference.sites.size() - 1 << " sites\n";
  };

  std::cout << "\nOpening both conferences:\n";
  set_speaker(conferences[0], 0, 0);
  set_speaker(conferences[1], 1, 1);

  auto verify = [&](const char* when) {
    const auto report = sw.verify();
    std::cout << "optical verification (" << when << "): " << report.to_string()
              << "\n";
    return report.ok;
  };
  bool ok = verify("both conferences live");

  std::cout << "\nSites 2 and 5 are in BOTH conferences, receiving two streams "
               "concurrently on their two receive lanes -- impossible for a "
               "single-wavelength electronic port.\n";

  std::cout << "\nSpeaker churn (floor passes around):\n";
  set_speaker(conferences[0], 2, 0);   // site 2 talks in engineering...
  ok = verify("engineering floor -> site 2") && ok;
  set_speaker(conferences[1], 5, 0);   // ...while site 5 talks to the board
  ok = verify("board floor -> site 5") && ok;
  set_speaker(conferences[0], 7, 1);
  ok = verify("engineering floor -> site 7") && ok;

  std::cout << "\nClosing the board call:\n";
  sw.disconnect(active_speakers.at("board call"));
  active_speakers.erase("board call");
  ok = verify("board call closed") && ok;

  std::cout << "\nactive connections at exit: " << sw.active_connections() << "\n"
            << (ok ? "All conference states verified signal-by-signal.\n"
                   : "VERIFICATION FAILED\n");
  return ok ? 0 : 1;
}

// Batch multicast scheduling: clear a day's worth of content-distribution
// jobs through one switch in as few time slots as possible.
//
//   $ ./batch_scheduler --nodes 16 --sessions 100 --lanes 4
//
// Demonstrates the §1 motivation end to end: the electronic baseline
// serializes conflicting multicasts into rounds (graph coloring); the WDM
// switch packs up to k overlapping sessions per endpoint into each slot.
// Prints the schedule headline for each model and a slot-by-slot view of
// the first few WDM slots.
#include <iostream>

#include "core/wdm.h"
#include "util/cli.h"

using namespace wdm;

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.describe("nodes", "switch size N (default 16)");
  cli.describe("sessions", "batch size (default 100)");
  cli.describe("lanes", "wavelengths per fiber k (default 4)");
  cli.describe("seed", "workload seed (default 1)");
  if (cli.wants_help()) {
    std::cout << cli.help_text("Schedule a batch of multicast sessions.");
    return 0;
  }
  try {
    cli.validate();
    const auto N = static_cast<std::size_t>(cli.get_int("nodes", 16));
    const auto sessions_wanted = static_cast<std::size_t>(cli.get_int("sessions", 100));
    const auto k = static_cast<std::size_t>(cli.get_int("lanes", 4));
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

    const std::vector<Session> batch =
        random_sessions(rng, N, sessions_wanted, 2, std::min<std::size_t>(6, N));
    print_banner(std::cout, "Scheduling " + std::to_string(batch.size()) +
                                " multicast sessions on " + std::to_string(N) +
                                " nodes");

    const auto rounds = schedule_rounds_greedy(batch);
    std::cout << "\nelectronic baseline (1 wavelength): " << rounds.size()
              << " rounds\n";

    Table table({"model", "slots", "speedup vs electronic"});
    for (const MulticastModel model : kAllModels) {
      const auto slots = schedule_wdm_slots(batch, N, k, model);
      if (const auto reason = check_wdm_schedule(batch, N, k, model, slots)) {
        std::cerr << "internal error: invalid schedule: " << *reason << "\n";
        return 1;
      }
      table.add(model_name(model), slots.size(),
                static_cast<double>(rounds.size()) /
                    static_cast<double>(slots.size()));
    }
    table.print(std::cout);

    // Slot-by-slot view under MAW.
    const auto slots = schedule_wdm_slots(batch, N, k, MulticastModel::kMAW);
    std::cout << "\nfirst slots under MAW (k=" << k << "):\n";
    for (std::size_t s = 0; s < std::min<std::size_t>(3, slots.size()); ++s) {
      std::cout << "  slot " << s << ": " << slots[s].sessions.size()
                << " concurrent sessions (";
      std::size_t shown = 0;
      for (const std::size_t index : slots[s].sessions) {
        if (shown++ == 5) {
          std::cout << ", ...";
          break;
        }
        if (shown > 1) std::cout << ", ";
        std::cout << "s" << index << ":" << batch[index].source << "->"
                  << batch[index].destinations.size() << "dests";
      }
      std::cout << ")\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
}

#include "obs/health_snapshot.h"

#include <bit>
#include <sstream>
#include <stdexcept>

namespace wdm::obs {

namespace {

/// std::int64_t <-> std::uint64_t through the two's-complement bit pattern
/// (margin can be negative; the wire words are unsigned).
std::uint64_t to_word(std::int64_t value) {
  return static_cast<std::uint64_t>(value);
}
std::int64_t from_word(std::uint64_t word) {
  return static_cast<std::int64_t>(word);
}

}  // namespace

std::uint64_t EngineHealthSnapshot::middle_busy_lanes(std::size_t j) const {
  std::uint64_t busy = 0;
  const std::size_t r = links_per_middle;
  for (std::size_t p = 0; p < r; ++p) {
    busy += static_cast<std::uint64_t>(
        std::popcount(middle_out_words[j * r + p]));
  }
  return busy;
}

std::uint64_t EngineHealthSnapshot::occupancy_popcount() const {
  std::uint64_t busy = 0;
  for (const std::uint64_t word : middle_out_words) {
    busy += static_cast<std::uint64_t>(std::popcount(word));
  }
  return busy;
}

std::int64_t EngineHealthSnapshot::recomputed_margin() const {
  const std::uint64_t effective =
      failed_middles >= middle_count ? 0 : middle_count - failed_middles;
  return static_cast<std::int64_t>(effective) -
         static_cast<std::int64_t>(bound_m);
}

bool EngineHealthSnapshot::consistent() const {
  return middle_out_words.size() ==
             static_cast<std::size_t>(middle_count) * links_per_middle &&
         occupancy_popcount() == busy_middle_lanes &&
         recomputed_margin() == margin && nonblocking == (margin >= 0);
}

std::string EngineHealthSnapshot::to_string() const {
  std::ostringstream os;
  os << "shard " << shard << " v" << version << ": sessions=" << sessions
     << " busy_lanes=" << busy_middle_lanes << " margin=" << margin
     << (nonblocking ? " (nonblocking)" : " (BELOW BOUND)")
     << " connects=" << connects << " disconnects=" << disconnects
     << " grows=" << grows << " failed_middles=" << failed_middles;
  if (repack_moves != 0) {
    os << " repack_moves=" << repack_moves
       << " repack_max_chain=" << repack_max_chain;
  }
  return os.str();
}

void EngineHealthSnapshot::encode(std::uint64_t* words) const {
  words[0] = version;
  words[1] = shard;
  words[2] = middle_count;
  words[3] = links_per_middle;
  words[4] = sessions;
  words[5] = busy_middle_lanes;
  words[6] = connects;
  words[7] = disconnects;
  words[8] = grows;
  words[9] = grow_blocked;
  words[10] = stale_rejected;
  words[11] = bound_m;
  words[12] = failed_middles;
  words[13] = to_word(margin);
  words[14] = nonblocking ? 1 : 0;
  words[15] = repack_moves;
  words[16] = repack_max_chain;
  for (std::size_t i = 0; i < middle_out_words.size(); ++i) {
    words[kHeaderWords + i] = middle_out_words[i];
  }
}

EngineHealthSnapshot EngineHealthSnapshot::decode(const std::uint64_t* words,
                                                  std::size_t count) {
  if (count < kHeaderWords) {
    throw std::invalid_argument(
        "EngineHealthSnapshot::decode: fewer than kHeaderWords words");
  }
  EngineHealthSnapshot snapshot;
  snapshot.version = words[0];
  snapshot.shard = static_cast<std::uint32_t>(words[1]);
  snapshot.middle_count = static_cast<std::uint32_t>(words[2]);
  snapshot.links_per_middle = static_cast<std::uint32_t>(words[3]);
  snapshot.sessions = words[4];
  snapshot.busy_middle_lanes = words[5];
  snapshot.connects = words[6];
  snapshot.disconnects = words[7];
  snapshot.grows = words[8];
  snapshot.grow_blocked = words[9];
  snapshot.stale_rejected = words[10];
  snapshot.bound_m = words[11];
  snapshot.failed_middles = words[12];
  snapshot.margin = from_word(words[13]);
  snapshot.nonblocking = words[14] != 0;
  snapshot.repack_moves = words[15];
  snapshot.repack_max_chain = words[16];
  const std::size_t payload =
      static_cast<std::size_t>(snapshot.middle_count) *
      snapshot.links_per_middle;
  if (count < kHeaderWords + payload) {
    throw std::invalid_argument(
        "EngineHealthSnapshot::decode: occupancy payload truncated");
  }
  snapshot.middle_out_words.assign(words + kHeaderWords,
                                   words + kHeaderWords + payload);
  return snapshot;
}

SeqlockSnapshotSlot::SeqlockSnapshotSlot(std::size_t words)
    : capacity_(words),
      words_(std::make_unique<std::atomic<std::uint64_t>[]>(words)) {
  if (words == 0) {
    throw std::invalid_argument("SeqlockSnapshotSlot: need >= 1 word");
  }
}

void SeqlockSnapshotSlot::publish(const std::uint64_t* words,
                                  std::size_t count) {
  if (count > capacity_) {
    throw std::invalid_argument("SeqlockSnapshotSlot::publish: over capacity");
  }
  const std::uint64_t s = seq_.load(std::memory_order_relaxed);
  // Odd sequence marks the write section; the release fence orders it
  // before every payload store as observed by an acquire-fenced reader.
  seq_.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t i = 0; i < count; ++i) {
    words_[i].store(words[i], std::memory_order_relaxed);
  }
  seq_.store(s + 2, std::memory_order_release);
}

std::uint64_t SeqlockSnapshotSlot::read(std::uint64_t* out, std::size_t count,
                                        std::size_t* retries) const {
  if (count > capacity_) {
    throw std::invalid_argument("SeqlockSnapshotSlot::read: over capacity");
  }
  std::size_t restarts = 0;
  for (;;) {
    const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
    if ((s1 & 1u) == 0) {
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = words_[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == s1) {
        if (retries != nullptr) *retries = restarts;
        return s1;
      }
    }
    ++restarts;
  }
}

}  // namespace wdm::obs

#include "obs/telemetry.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "engine/sharded_engine.h"
#include "util/metrics.h"

namespace wdm::obs {

namespace {

/// Append one fixed-name numeric field: `,"name":value` (or without the
/// leading comma when `first`).
template <typename T>
void field(std::ostringstream& os, bool& first, const char* name, T value) {
  os << (first ? "\"" : ",\"") << name << "\":" << value;
  first = false;
}

void bool_field(std::ostringstream& os, bool& first, const char* name,
                bool value) {
  os << (first ? "\"" : ",\"") << name << "\":" << (value ? "true" : "false");
  first = false;
}

void shard_object(std::ostringstream& os, const EngineHealthSnapshot& s,
                  std::uint64_t flight_dropped) {
  bool first = true;
  os << '{';
  field(os, first, "shard", s.shard);
  field(os, first, "version", s.version);
  field(os, first, "flight_dropped", flight_dropped);
  field(os, first, "sessions", s.sessions);
  field(os, first, "busy_middle_lanes", s.busy_middle_lanes);
  field(os, first, "connects", s.connects);
  field(os, first, "disconnects", s.disconnects);
  field(os, first, "grows", s.grows);
  field(os, first, "grow_blocked", s.grow_blocked);
  field(os, first, "stale_rejected", s.stale_rejected);
  field(os, first, "repack_moves", s.repack_moves);
  field(os, first, "repack_max_chain", s.repack_max_chain);
  field(os, first, "failed_middles", s.failed_middles);
  field(os, first, "margin", s.margin);
  bool_field(os, first, "nonblocking", s.nonblocking);
  os << ",\"occupancy\":[";
  for (std::size_t j = 0; j < s.middle_count; ++j) {
    os << (j == 0 ? "" : ",") << s.middle_busy_lanes(j);
  }
  os << "]}";
}

}  // namespace

TelemetrySampler::TelemetrySampler(const engine::ShardedEngine& engine,
                                   TelemetryConfig config)
    : engine_(&engine), config_(config) {}

TelemetrySampler::~TelemetrySampler() {
  {
    std::lock_guard lock(wake_mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TelemetrySampler::start() {
  std::lock_guard lock(wake_mutex_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] { run_loop(); });
}

void TelemetrySampler::stop() {
  {
    std::lock_guard lock(wake_mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard lock(wake_mutex_);
    running_ = false;
  }
  // The closing sample: taken after the join, so it observes the engine as
  // the caller left it (for a quiesced run, totals == the run's ChurnStats).
  take_sample();
}

std::size_t TelemetrySampler::sample_now() { return take_sample(); }

void TelemetrySampler::run_loop() {
  std::unique_lock lock(wake_mutex_);
  while (!stopping_) {
    if (wake_.wait_for(lock, config_.interval, [this] { return stopping_; })) {
      return;  // woken to stop; stop() takes the closing sample
    }
    lock.unlock();
    take_sample();
    lock.lock();
  }
}

std::size_t TelemetrySampler::take_sample() {
  const std::vector<EngineHealthSnapshot> shards = engine_->health_snapshots();
  // Flight-recorder loss rides along so consumers (telemetry_summary) can
  // report whether the op window is complete. Reads the ring's own mutex,
  // never a shard mutex.
  std::vector<std::uint64_t> flight_dropped(shards.size(), 0);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    flight_dropped[s] = engine_->flight_dump(s).dropped;
  }

  std::uint64_t sessions = 0, busy = 0, connects = 0, disconnects = 0;
  std::uint64_t grows = 0, grow_blocked = 0, stale_rejected = 0;
  std::uint64_t repack_moves = 0, repack_max_chain = 0;
  std::uint64_t failed_middles = 0;
  std::int64_t min_margin = 0;
  bool nonblocking = true;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const EngineHealthSnapshot& shard = shards[s];
    sessions += shard.sessions;
    busy += shard.busy_middle_lanes;
    connects += shard.connects;
    disconnects += shard.disconnects;
    grows += shard.grows;
    grow_blocked += shard.grow_blocked;
    stale_rejected += shard.stale_rejected;
    repack_moves += shard.repack_moves;
    repack_max_chain = std::max(repack_max_chain, shard.repack_max_chain);
    failed_middles += shard.failed_middles;
    min_margin = s == 0 ? shard.margin : std::min(min_margin, shard.margin);
    nonblocking = nonblocking && shard.nonblocking;
  }

  std::ostringstream os;
  os << "{\"schema\":\"" << kTelemetrySchema << "\"";
  // `sample` is patched in under lines_mutex_ below so indices are assigned
  // in append order (two concurrent sample_now() calls cannot swap indices).
  os << ",\"sample\":";
  const std::string head = os.str();

  std::ostringstream tail;
  if (!shards.empty()) {
    bool first = true;
    tail << ",\"geometry\":{";
    field(tail, first, "m", shards.front().middle_count);
    field(tail, first, "r", shards.front().links_per_middle);
    field(tail, first, "bound_m", shards.front().bound_m);
    tail << '}';
  }
  {
    bool first = true;
    tail << ",\"totals\":{";
    field(tail, first, "sessions", sessions);
    field(tail, first, "busy_middle_lanes", busy);
    field(tail, first, "connects", connects);
    field(tail, first, "disconnects", disconnects);
    field(tail, first, "grows", grows);
    field(tail, first, "grow_blocked", grow_blocked);
    field(tail, first, "stale_rejected", stale_rejected);
    field(tail, first, "repack_moves", repack_moves);
    field(tail, first, "repack_max_chain", repack_max_chain);
    tail << '}';
  }
  {
    bool first = false;
    field(tail, first, "margin", min_margin);
    bool_field(tail, first, "nonblocking", nonblocking);
    field(tail, first, "failed_middles", failed_middles);
  }
  tail << ",\"shards\":[";
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (s != 0) tail << ',';
    shard_object(tail, shards[s], flight_dropped[s]);
  }
  tail << ']';
  if (config_.include_metrics) {
    MetricsRegistry& registry = metrics();
    const TimerStat& connect_timer = registry.timer("sim.connect");
    bool first = true;
    tail << ",\"metrics\":{";
    field(tail, first, "sim_connect_p50_ns", connect_timer.percentile_ns(0.5));
    field(tail, first, "sim_connect_p99_ns", connect_timer.percentile_ns(0.99));
    for (const char* name :
         {"engine.connects", "engine.disconnects", "engine.grows",
          "engine.grow_blocked", "engine.stale_rejected", "engine.batches",
          "obs.snapshot_publishes", "obs.snapshot_reads",
          "obs.snapshot_retries"}) {
      std::string key(name);
      for (char& c : key) {
        if (c == '.') c = '_';
      }
      field(tail, first, key.c_str(), registry.counter(name).value());
    }
    tail << '}';
  }
  tail << '}';

  std::lock_guard lock(lines_mutex_);
  const std::size_t index = lines_.size();
  lines_.push_back(head + std::to_string(index) + tail.str());
  return index;
}

std::vector<std::string> TelemetrySampler::lines() const {
  std::lock_guard lock(lines_mutex_);
  return lines_;
}

std::size_t TelemetrySampler::sample_count() const {
  std::lock_guard lock(lines_mutex_);
  return lines_.size();
}

void TelemetrySampler::write(std::ostream& os) const {
  for (const std::string& line : lines()) os << line << '\n';
}

bool TelemetrySampler::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  return os.good();
}

}  // namespace wdm::obs

#include "obs/flight_recorder.h"

#include <ostream>
#include <stdexcept>

namespace wdm::obs {

const char* engine_op_name(EngineOp op) {
  switch (op) {
    case EngineOp::kConnect: return "connect";
    case EngineOp::kBatchConnect: return "batch_connect";
    case EngineOp::kDisconnect: return "disconnect";
    case EngineOp::kGrow: return "grow";
    case EngineOp::kRepack: return "repack";
    case EngineOp::kMigrateIn: return "migrate_in";
    case EngineOp::kMigrateOut: return "migrate_out";
  }
  return "?";
}

const char* engine_op_outcome_name(EngineOpOutcome outcome) {
  switch (outcome) {
    case EngineOpOutcome::kAdmitted: return "admitted";
    case EngineOpOutcome::kBlocked: return "blocked";
    case EngineOpOutcome::kStale: return "stale";
    case EngineOpOutcome::kGrown: return "grown";
    case EngineOpOutcome::kGrowBlocked: return "grow_blocked";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::uint32_t shard, std::size_t capacity)
    : shard_(shard), capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("FlightRecorder: need capacity >= 1");
  }
  // Reserve the whole ring up front so steady-state recording (like the rest
  // of the churn hot path) performs no heap allocations.
  records_.reserve(capacity_);
}

void FlightRecorder::record(EngineOp op, EngineOpOutcome outcome,
                            ConnectionId session, std::uint32_t detail) {
  std::lock_guard lock(mutex_);
  FlightRecord entry;
  entry.tick = ++ticks_;
  entry.session = session;
  entry.op = op;
  entry.outcome = outcome;
  entry.detail = detail;
  if (records_.size() < capacity_) {
    records_.push_back(entry);
  } else {
    records_[oldest_] = entry;
    oldest_ = (oldest_ + 1) % capacity_;
    ++dropped_;
  }
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::uint64_t FlightRecorder::ticks() const {
  std::lock_guard lock(mutex_);
  return ticks_;
}

FlightRecorder::Dump FlightRecorder::dump() const {
  std::lock_guard lock(mutex_);
  Dump out;
  out.shard = shard_;
  out.dropped = dropped_;
  out.ticks = ticks_;
  out.records.reserve(records_.size());
  const std::size_t size = records_.size();
  const bool wrapped = size == capacity_ && oldest_ != 0;
  for (std::size_t i = 0; i < size; ++i) {
    out.records.push_back(records_[wrapped ? (oldest_ + i) % size : i]);
  }
  return out;
}

void FlightRecorder::clear() {
  std::lock_guard lock(mutex_);
  records_.clear();
  oldest_ = 0;
  dropped_ = 0;
  ticks_ = 0;
}

void FlightRecorder::print(const Dump& dump, std::ostream& os) {
  os << "flight recorder shard " << dump.shard << ": " << dump.records.size()
     << " records, " << dump.dropped << " dropped (window starts at tick "
     << (dump.records.empty() ? 0 : dump.records.front().tick) << " of "
     << dump.ticks << ")\n";
  for (const FlightRecord& record : dump.records) {
    os << "  tick " << record.tick << "  " << engine_op_name(record.op) << " "
       << engine_op_outcome_name(record.outcome) << "  session=0x" << std::hex
       << record.session << std::dec;
    if (record.op == EngineOp::kBatchConnect) {
      os << "  admitted=" << record.detail;
    } else if (record.op == EngineOp::kRepack) {
      os << "  chain=" << record.detail;
    }
    os << "\n";
  }
}

}  // namespace wdm::obs

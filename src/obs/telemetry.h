// Time-series telemetry: periodic engine health samples as JSON lines.
//
// A TelemetrySampler owns one background thread that, every `interval`,
// reads every shard's seqlock-published EngineHealthSnapshot (zero mutex
// acquisition -- the engine never notices it is being watched) and folds the
// result, together with a few registry instruments, into one line of the
// versioned `wdm-telemetry/1` schema (docs/BENCHMARKS.md). One line == one
// sample:
//
//   {"schema":"wdm-telemetry/1","sample":7,
//    "geometry":{"m":5,"r":4,"bound_m":5},
//    "totals":{"sessions":..,"busy_middle_lanes":..,"connects":..,...},
//    "margin":0,"nonblocking":true,"failed_middles":0,
//    "shards":[{"shard":0,...,"occupancy":[2,0,3,1,2]},...],
//    "metrics":{"sim_connect_p50_ns":..,"sim_connect_p99_ns":..,
//               "engine_connects":..,...}}
//
// `occupancy` is the per-middle-module busy-lane heatmap row (index j ->
// busy output lanes on middle module j), `margin` the fault-degraded
// Theorem-1/2 margin, and `totals` the shard-summed deterministic tallies --
// after the engine quiesces, the final sample's totals equal the run's
// ChurnStats exactly (enforced by run_benches --telemetry and ctest).
//
// Emission is dependency-free RFC 8259 JSON (keys fixed, values numeric or
// boolean) and parses with util/json_lite; `sample` indices are the line
// numbers, so any valid timeline is gap-free and strictly monotone.
//
// stop() always takes one final sample after joining the thread, so even a
// run shorter than `interval` yields a non-empty timeline whose last sample
// reflects the quiesced engine. sample_now() is the synchronous variant for
// callers that want sampling at their own commit points instead of (or in
// addition to) the timer.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace wdm::engine {
class ShardedEngine;
}  // namespace wdm::engine

namespace wdm::obs {

inline constexpr std::string_view kTelemetrySchema = "wdm-telemetry/1";

struct TelemetryConfig {
  /// Background sampling period. The sampler reads ~shards * (15 + m*r)
  /// relaxed-atomic words per sample; even 1 ms periods cost the engine
  /// nothing but occasional seqlock retries.
  std::chrono::milliseconds interval{25};
  /// Fold registry instruments (sim.connect percentiles, engine.* counters)
  /// into each sample's "metrics" object. Off for tests that want samples to
  /// be a pure function of engine state.
  bool include_metrics = true;
};

class TelemetrySampler {
 public:
  explicit TelemetrySampler(const engine::ShardedEngine& engine,
                            TelemetryConfig config = {});
  /// Stops the background thread (without a final sample -- call stop()
  /// yourself for the quiesced-engine closing sample).
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Launch the background thread. No-op if already running.
  void start();
  /// Join the background thread, then take one final sample. Idempotent;
  /// safe without a prior start() (the final sample is still taken).
  void stop();

  /// Take one sample synchronously from the calling thread; returns its
  /// sample index. Usable before start(), between samples, or after stop().
  std::size_t sample_now();

  /// The timeline so far, one JSON line per sample, oldest first.
  [[nodiscard]] std::vector<std::string> lines() const;
  [[nodiscard]] std::size_t sample_count() const;

  /// Write the timeline to `os`, newline-terminated (the .jsonl format).
  void write(std::ostream& os) const;
  /// write() to `path`; false (with no partial file guarantee) on I/O error.
  bool write_file(const std::string& path) const;

 private:
  void run_loop();
  /// Build one sample line and append it under lines_mutex_.
  std::size_t take_sample();

  const engine::ShardedEngine* engine_;
  TelemetryConfig config_;

  mutable std::mutex lines_mutex_;
  std::vector<std::string> lines_;

  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace wdm::obs

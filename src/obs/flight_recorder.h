// Per-shard flight recorder: the last N engine ops, always on, dumpable.
//
// When a churn invariant trips ("live session rejected as stale",
// self_check corruption), the stack trace says *where* it died but not *what
// led up to it*. The flight recorder keeps exactly that: a fixed-size ring
// of the most recent engine operations on each shard -- op kind, session id,
// outcome, and a timestamp-free monotonic tick (the shard's op ordinal, so
// dumps from deterministic runs are themselves deterministic and diffable).
//
// The design is the trace_span thread-ring transplanted to the engine: a
// bounded vector that wraps by overwriting the oldest record, with every
// overwrite counted as a drop (docs stay honest about what the window lost).
// Unlike span tracing it is always armed -- recording is one uncontended
// mutex acquisition plus a struct copy, cheap enough to ride the shard's
// mutex-serialized write path -- and carries engine semantics instead of
// wall-clock timing.
//
// Writers are the shard-mutex holders (one at a time by construction);
// dump() may run from any thread at any moment, so an internal mutex
// arbitrates the ring itself. ChurnDriver and ShardedEngine::self_check dump
// every shard's ring to stderr before throwing on an invariant violation,
// and run_benches honors WDM_FLIGHT_DUMP=<path> so CI can upload the dump as
// a workflow artifact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "core/connection.h"

namespace wdm::obs {

enum class EngineOp : std::uint8_t {
  kConnect,
  kBatchConnect,  // one record per Router::connect_batch flush
  kDisconnect,
  kGrow,
  kRepack,  // a connect admitted by migrating standing sessions (repack.h)
  // Cross-shard grow (two-phase migration, DESIGN.md §3.13): the target
  // shard records kMigrateIn (admitted / blocked / rolled back as kStale),
  // the source shard records kMigrateOut (admitted = original released,
  // kStale = the session died before the commit phase).
  kMigrateIn,
  kMigrateOut,
};

enum class EngineOpOutcome : std::uint8_t {
  kAdmitted,
  kBlocked,
  kStale,        // generation-tagged id rejected
  kGrown,
  kGrowBlocked,  // grow rolled back (original route reinstalled)
};

[[nodiscard]] const char* engine_op_name(EngineOp op);
[[nodiscard]] const char* engine_op_outcome_name(EngineOpOutcome outcome);

/// One recorded engine operation.
struct FlightRecord {
  /// The shard's op ordinal (1-based, monotone per ring) -- deliberately not
  /// a clock, so identical deterministic runs produce identical dumps.
  std::uint64_t tick = 0;
  /// The session the op touched (the new id for admissions, the probed id
  /// for disconnect/grow, 0 for batch records).
  ConnectionId session = 0;
  EngineOp op = EngineOp::kConnect;
  EngineOpOutcome outcome = EngineOpOutcome::kAdmitted;
  /// Op-specific annotation: admitted count for kBatchConnect (with the
  /// submitted count recoverable from the drop in tick space), chain length
  /// (sessions migrated) for kRepack, else 0.
  std::uint32_t detail = 0;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit FlightRecorder(std::uint32_t shard,
                          std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  [[nodiscard]] std::uint32_t shard() const { return shard_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Record one op. Callers are the shard's serialized writers; the internal
  /// mutex only exists so dump() can run concurrently.
  void record(EngineOp op, EngineOpOutcome outcome, ConnectionId session,
              std::uint32_t detail = 0);

  /// Records overwritten by ring wrap since construction / clear().
  [[nodiscard]] std::uint64_t dropped() const;
  /// Total ops ever recorded (== the last record's tick).
  [[nodiscard]] std::uint64_t ticks() const;

  /// A coherent copy of the ring, oldest record first.
  struct Dump {
    std::uint32_t shard = 0;
    std::uint64_t dropped = 0;
    std::uint64_t ticks = 0;
    std::vector<FlightRecord> records;
  };
  [[nodiscard]] Dump dump() const;

  void clear();

  /// Terminal rendering of a dump (one line per record plus a drop summary).
  static void print(const Dump& dump, std::ostream& os);

 private:
  const std::uint32_t shard_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<FlightRecord> records_;  // grows to capacity_, then wraps
  std::size_t oldest_ = 0;             // overwrite cursor once full
  std::uint64_t dropped_ = 0;
  std::uint64_t ticks_ = 0;
};

}  // namespace wdm::obs

// Lock-free engine health snapshots: seqlock-published per-shard state.
//
// The sharded engine serializes every mutation behind per-shard mutexes
// (engine/sharded_engine.h). Monitoring must not join that queue: an
// admission controller polling "how much Theorem-1 margin is left?" or a
// dashboard reading occupancy skew would otherwise contend with the churn
// hot path it is trying to observe. This header is the read-path split the
// ROADMAP's engine-scaling item starts with -- shards *publish* a fixed-size
// health snapshot at every commit point (connect / disconnect / grow /
// batch), and any thread can read the latest one with zero mutex
// acquisition.
//
// Publication protocol (DESIGN.md §3.11): a classic single-writer seqlock
// over a flat array of relaxed-atomic uint64 words.
//
//   writer (holds the shard mutex, so writes never race each other):
//     seq.store(s+1, relaxed);              // odd = write in progress
//     atomic_thread_fence(release);
//     words[i].store(..., relaxed);         // payload
//     seq.store(s+2, release);              // even = quiescent
//
//   reader (any thread, no locks):
//     s1 = seq.load(acquire); retry if odd;
//     buf[i] = words[i].load(relaxed);
//     atomic_thread_fence(acquire);
//     retry unless seq.load(relaxed) == s1;
//
// Payload words are atomics (not plain memory), so the protocol is data-race
// free under the C++ memory model and ThreadSanitizer-clean -- the retry
// loop handles torn *logical* states, the atomics rule out torn *words*.
// A reader that loses the race simply retries; with single-word stores the
// write section is a few dozen relaxed stores, so retries are rare (the
// obs.snapshot_retries counter tracks them).
//
// The snapshot itself carries what the wire-protocol front-end's admission
// control will need: live session count, the raw per-middle-module lane
// occupancy words (popcount-able into a heatmap), the Theorem-1/2 margin
// under the shard's current fault state, and cumulative churn tallies.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace wdm::obs {

/// One shard's published health state. Decoded from a seqlock slot; every
/// field is a point-in-time-consistent view of the shard (all fields were
/// published together under the shard mutex).
struct EngineHealthSnapshot {
  /// Publish count of the owning shard; strictly increasing per shard, so a
  /// poller can tell "new data" from "same data" without reading the rest.
  std::uint64_t version = 0;
  std::uint32_t shard = 0;
  std::uint32_t middle_count = 0;     // m middle modules per shard replica
  std::uint32_t links_per_middle = 0; // r outgoing links per middle module

  /// Live sessions on this shard.
  std::uint64_t sessions = 0;
  /// Writer-side popcount over middle_out_words (readers cross-check it:
  /// see consistent()).
  std::uint64_t busy_middle_lanes = 0;

  // Cumulative per-shard churn tallies since engine construction. These are
  // deterministic (they mirror the engine.* counters shard-locally), so the
  // final snapshot of a churn run must reproduce its ChurnStats.
  std::uint64_t connects = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t grows = 0;
  std::uint64_t grow_blocked = 0;
  std::uint64_t stale_rejected = 0;

  // Theorem-1/2 margin under the shard's current fault state (see
  // faults/resilience.h): effective_m = m - failed_middles, margin =
  // effective_m - bound_m, nonblocking iff margin >= 0.
  std::uint64_t bound_m = 0;
  std::uint64_t failed_middles = 0;
  std::int64_t margin = 0;
  bool nonblocking = false;

  // Repack (rearrangeable-mode) tallies: cumulative sessions migrated by
  // repack-on-block admits and the longest single chain so far. Both zero
  // when the shard has no repack engine (the default).
  std::uint64_t repack_moves = 0;
  std::uint64_t repack_max_chain = 0;

  /// Raw occupancy: for middle module j and outgoing link p (to output
  /// module p), word [j * links_per_middle + p] has bit `lane` set iff that
  /// lane is busy. Exactly the SwitchModule::out_word() view, republished.
  std::vector<std::uint64_t> middle_out_words;

  /// Busy lanes on middle module j's outgoing links (popcount of its row).
  [[nodiscard]] std::uint64_t middle_busy_lanes(std::size_t j) const;
  /// Popcount over all occupancy words; equals busy_middle_lanes for any
  /// snapshot decoded from a consistent seqlock read.
  [[nodiscard]] std::uint64_t occupancy_popcount() const;
  /// Margin recomputed from (middle_count, failed_middles, bound_m); equals
  /// `margin` for any consistent snapshot.
  [[nodiscard]] std::int64_t recomputed_margin() const;
  /// Internal consistency: occupancy popcount and margin both match their
  /// published aggregates. The seqlock hammer asserts this under full-rate
  /// churn.
  [[nodiscard]] bool consistent() const;

  [[nodiscard]] std::string to_string() const;

  // -- flat wire encoding (what the seqlock slot stores) --------------------
  static constexpr std::size_t kHeaderWords = 17;
  /// Words needed for a geometry with m middle modules and r links each.
  [[nodiscard]] static std::size_t encoded_words(std::size_t m, std::size_t r) {
    return kHeaderWords + m * r;
  }
  /// Serialize into `words` (size must be >= encoded_words(...)).
  void encode(std::uint64_t* words) const;
  /// Decode `count` words produced by encode().
  [[nodiscard]] static EngineHealthSnapshot decode(const std::uint64_t* words,
                                                   std::size_t count);
};

/// Single-writer seqlock cell over a fixed number of uint64 payload words.
/// The writer must be externally serialized (the engine publishes under the
/// shard mutex); readers take no lock, ever.
class SeqlockSnapshotSlot {
 public:
  explicit SeqlockSnapshotSlot(std::size_t words);

  SeqlockSnapshotSlot(const SeqlockSnapshotSlot&) = delete;
  SeqlockSnapshotSlot& operator=(const SeqlockSnapshotSlot&) = delete;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Publish `count` words (count <= capacity). Single writer only.
  void publish(const std::uint64_t* words, std::size_t count);

  /// Read a consistent copy of the payload into `out`. Lock-free: spins on
  /// retry-on-odd-sequence; never blocks the writer. Returns the (even)
  /// sequence number of the copy; 0 means nothing was ever published (out is
  /// zero-filled in that case -- slots start zeroed). If `retries` is
  /// non-null it receives the number of restarted read attempts.
  std::uint64_t read(std::uint64_t* out, std::size_t count,
                     std::size_t* retries = nullptr) const;

  /// Current raw sequence (odd while a write is in flight). For tests.
  [[nodiscard]] std::uint64_t sequence() const {
    return seq_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> seq_{0};
  std::size_t capacity_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
};

}  // namespace wdm::obs

#include "obs/session_table.h"

#include <stdexcept>

namespace wdm::obs {

SessionGenTable::SessionGenTable()
    : directory_(std::make_unique<std::atomic<Entry*>[]>(kDirectoryEntries)) {
  for (std::size_t i = 0; i < kDirectoryEntries; ++i) {
    directory_[i].store(nullptr, std::memory_order_relaxed);
  }
}

SessionGenTable::~SessionGenTable() {
  for (std::size_t i = 0; i < kDirectoryEntries; ++i) {
    delete[] directory_[i].load(std::memory_order_relaxed);
  }
}

SessionGenTable::Entry* SessionGenTable::writer_chunk(std::uint32_t slot) {
  if (slot >= kMaxSlots) {
    throw std::invalid_argument("SessionGenTable: slot exceeds kMaxSlots");
  }
  const std::size_t index = slot >> kChunkBits;
  Entry* chunk = directory_[index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    // Single writer per shard: no allocation race to arbitrate. The release
    // store publishes the zero-initialized entries to lock-free readers.
    chunk = new Entry[kChunkEntries]();
    directory_[index].store(chunk, std::memory_order_release);
    allocated_chunks_.fetch_add(1, std::memory_order_relaxed);
  }
  return chunk;
}

const SessionGenTable::Entry* SessionGenTable::reader_chunk(
    std::uint32_t slot) const {
  if (slot >= kMaxSlots) return nullptr;
  return directory_[slot >> kChunkBits].load(std::memory_order_acquire);
}

void SessionGenTable::mark_active(std::uint32_t slot,
                                  std::uint32_t generation) {
  writer_chunk(slot)[slot & (kChunkEntries - 1)].store(
      encode(generation, true), std::memory_order_release);
}

void SessionGenTable::mark_released(std::uint32_t slot,
                                    std::uint32_t generation) {
  writer_chunk(slot)[slot & (kChunkEntries - 1)].store(
      encode(generation, false), std::memory_order_release);
}

bool SessionGenTable::is_active(std::uint32_t slot,
                                std::uint32_t generation) const {
  const Entry* chunk = reader_chunk(slot);
  if (chunk == nullptr) return false;
  return chunk[slot & (kChunkEntries - 1)].load(std::memory_order_acquire) ==
         encode(generation, true);
}

std::uint64_t SessionGenTable::probe_word(std::uint32_t slot) const {
  const Entry* chunk = reader_chunk(slot);
  if (chunk == nullptr) return 0;
  return chunk[slot & (kChunkEntries - 1)].load(std::memory_order_acquire);
}

}  // namespace wdm::obs

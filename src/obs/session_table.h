// Lock-free per-shard session-generation table: the read path for session
// ids, published alongside the seqlock health snapshot (DESIGN.md §3.13).
//
// The sharded engine mints generation-tagged connection ids
// (id = generation << 32 | slot; see multistage/network.h). Inside a shard
// the network's slot table validates ids in O(1) -- but only under exclusive
// shard access. Front-ends need the opposite: "is this client-supplied
// session id still live?" answered from ANY thread with zero mutex
// acquisitions, while the shard's single writer churns at full rate. This
// table is that read path: one atomic word per connection slot holding
// (generation << 1) | active, updated by the shard's writer at every commit
// point and probed lock-free by readers.
//
// Why a stale id can never validate: a slot's generation is monotone (the
// network bumps it on every reuse), and the writer publishes the release of
// generation g before any install of generation g' > g (both happen inside
// the same single-writer critical path, in program order, with release
// stores). A reader probing a disposed id therefore sees either
// (g, active=0) -- released, probe fails -- or (g', *) with g' != g --
// reused, probe fails on the generation mismatch. There is no interleaving
// that shows (g, active=1) again, which is exactly the property the
// stale-id hammer (tests/stale_read_hammer_test.cpp) races for.
//
// Storage grows with the shard's slot table but must not lock readers out
// while growing, so the table is chunked: a fixed directory of atomic
// chunk pointers, each chunk a fixed array of entry words. The writer
// allocates a chunk the first time a slot in its range is touched and
// publishes the pointer with a release store; readers acquire-load the
// pointer and treat nullptr as "slot never existed" (probe fails). Chunks
// are never freed or moved, so a reader's pointer stays valid forever.
// At the soak design point (~65k slots/shard) a shard holds ~8 chunks of
// 64 KiB -- one word per held session, the "compact" in compact table.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace wdm::obs {

class SessionGenTable {
 public:
  /// 8192 entries x 8 bytes = 64 KiB per chunk.
  static constexpr std::size_t kChunkBits = 13;
  static constexpr std::size_t kChunkEntries = std::size_t{1} << kChunkBits;
  /// 4096 chunks -> up to ~33.5M slots per shard.
  static constexpr std::size_t kDirectoryEntries = 4096;
  static constexpr std::size_t kMaxSlots = kDirectoryEntries * kChunkEntries;

  SessionGenTable();
  ~SessionGenTable();

  SessionGenTable(const SessionGenTable&) = delete;
  SessionGenTable& operator=(const SessionGenTable&) = delete;

  // -- writer side (requires the shard's single-writer exclusivity) ---------
  /// Record that `slot` is live under `generation`. Allocates the chunk on
  /// first touch (the only allocation this table ever performs).
  void mark_active(std::uint32_t slot, std::uint32_t generation);
  /// Record that `slot` was released while holding `generation`. The
  /// generation stays in the word so a later probe distinguishes "released"
  /// from "never existed" -- both fail, but tests assert the stronger state.
  void mark_released(std::uint32_t slot, std::uint32_t generation);

  // -- reader side (lock-free, any thread, any time) ------------------------
  /// True iff `slot` is currently published live under exactly
  /// `generation`. A stale (released or reused) id never validates.
  [[nodiscard]] bool is_active(std::uint32_t slot,
                               std::uint32_t generation) const;
  /// The raw published word for `slot`: (generation << 1) | active, or 0
  /// when the slot was never touched. For tests and diagnostics.
  [[nodiscard]] std::uint64_t probe_word(std::uint32_t slot) const;

  /// Chunks allocated so far (monotone; memory = value * 64 KiB).
  [[nodiscard]] std::size_t allocated_chunks() const {
    return allocated_chunks_.load(std::memory_order_relaxed);
  }

 private:
  using Entry = std::atomic<std::uint64_t>;

  static std::uint64_t encode(std::uint32_t generation, bool active) {
    return (static_cast<std::uint64_t>(generation) << 1) |
           (active ? 1u : 0u);
  }

  /// Writer-side chunk lookup, allocating on demand.
  Entry* writer_chunk(std::uint32_t slot);
  /// Reader-side chunk lookup; nullptr when never allocated.
  [[nodiscard]] const Entry* reader_chunk(std::uint32_t slot) const;

  std::unique_ptr<std::atomic<Entry*>[]> directory_;
  std::atomic<std::size_t> allocated_chunks_{0};
};

}  // namespace wdm::obs

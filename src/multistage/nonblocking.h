// Nonblocking conditions and multistage cost (paper §3.2-§3.4).
//
// Theorem 1 (MSW-dominant): the network is nonblocking under the
// limited-spread routing strategy (each connection uses at most x middle
// modules) if
//     m > min_{1 <= x <= min(n-1, r)} (n-1) * (x + r^(1/x)).
// Theorem 2 (MAW-dominant):
//     m > min_{1 <= x <= min(n-1, r)} ( floor((nk-1)*x / k) + (n-1) * r^(1/x) ).
// Both reduce to the Yang-Masson electronic bound at k = 1. §3.4 notes that
// choosing x = 2*log r / log log r yields m >= 3(n-1) log r / log log r.
//
// Cost: a module of size a x b contributes k*a*b crosspoints under MSW and
// k^2*a*b under MSDW/MAW; converters are k per output of an MAW module and
// k per input of an MSDW module (§2.3.2 placements applied per module).
#pragma once

#include <cstdint>
#include <string>

#include "capacity/models.h"
#include "multistage/clos_params.h"

namespace wdm {

struct NonblockingBound {
  std::size_t m = 0;        // smallest sufficient number of middle modules
  std::size_t x = 1;        // the spread that attains it
  double raw_bound = 0.0;   // value of the minimized right-hand side

  [[nodiscard]] std::string to_string() const;
};

/// Theorem 1: smallest m guaranteeing nonblocking for the MSW-dominant
/// construction, with the optimizing spread x.
[[nodiscard]] NonblockingBound theorem1_min_m(std::size_t n, std::size_t r);

/// Theorem 2: same for the MAW-dominant construction (depends on k).
[[nodiscard]] NonblockingBound theorem2_min_m(std::size_t n, std::size_t r,
                                              std::size_t k);

/// The right-hand side of Theorem 1 / 2 for one specific x (before
/// minimizing). Exposed for tests and for the ablation bench.
[[nodiscard]] double theorem1_rhs(std::size_t n, std::size_t r, std::size_t x);
[[nodiscard]] double theorem2_rhs(std::size_t n, std::size_t r, std::size_t k,
                                  std::size_t x);

/// §3.4 closed forms: x = 2 log r / log log r (rounded to >= 1) and the
/// resulting sufficient m >= 3 (n-1) log r / log log r.
[[nodiscard]] std::size_t closed_form_x(std::size_t r);
[[nodiscard]] double closed_form_m(std::size_t n, std::size_t r);

struct MultistageCost {
  std::uint64_t crosspoints = 0;
  std::uint64_t converters = 0;

  friend bool operator==(const MultistageCost&, const MultistageCost&) = default;
  [[nodiscard]] std::string to_string() const;
};

/// Where an MSDW module keeps its wavelength converters (§3.4's remark):
///   kModuleInputs   - the naive Fig. 3a placement, one per module input
///                     wavelength. For an m x n output module that is m*k
///                     converters -- more than MAW needs.
///   kModuleInternal - the improved placement the paper sketches: convert
///                     between the module's gate matrix and its combiners,
///                     one per *output* wavelength, n*k per module. This
///                     matches the MAW converter count exactly (the paper's
///                     point: even optimally placed, MSDW saves nothing).
/// MSW and MAW modules are unaffected by this knob.
enum class ConverterPlacement { kModuleInputs, kModuleInternal };

/// Exact crosspoint/converter count of a three-stage network with the given
/// geometry, construction (stages 1-2 model) and network model (stage 3).
[[nodiscard]] MultistageCost multistage_cost(
    const ClosParams& params, Construction construction,
    MulticastModel network_model,
    ConverterPlacement placement = ConverterPlacement::kModuleInputs);

/// Convenience: balanced n = r = sqrt(N) geometry with m from Theorem 1/2,
/// i.e. the design point §3.4 evaluates. Throws if N is not a perfect square.
[[nodiscard]] MultistageCost balanced_multistage_cost(std::size_t N, std::size_t k,
                                                      Construction construction,
                                                      MulticastModel network_model);

/// Smallest perfect-square N where the balanced MSW-dominant three-stage
/// network needs fewer crosspoints than the crossbar under the same model
/// (the crossbar-vs-multistage crossover the §3.4 comparison implies).
/// Returns 0 if none found up to `max_N`.
[[nodiscard]] std::size_t multistage_crossover_N(std::size_t k,
                                                 MulticastModel network_model,
                                                 std::size_t max_N = 1u << 20);

}  // namespace wdm

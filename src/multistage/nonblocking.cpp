#include "multistage/nonblocking.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "capacity/cost.h"

namespace wdm {

namespace {

// Guard against 0.9999999 artifacts when converting the real-valued bound to
// the smallest sufficient integer m (m must satisfy m > bound strictly).
std::size_t smallest_integer_above(double bound) {
  const double floored = std::floor(bound);
  if (bound - floored < 1e-9 && floored >= 0.0) {
    // bound is (numerically) an integer B: smallest integer > B is B + 1.
    return static_cast<std::size_t>(floored) + 1;
  }
  return static_cast<std::size_t>(std::ceil(bound));
}

// Crosspoints of one a x b module with k lanes under `model` (§2.3.1 applied
// to a rectangular module).
std::uint64_t module_crosspoints(std::size_t a, std::size_t b, std::size_t k,
                                 MulticastModel model) {
  const std::uint64_t base = static_cast<std::uint64_t>(a) * b * k;
  return model == MulticastModel::kMSW ? base : base * k;
}

// Converters of one a x b module with k lanes (§2.3.2 placements):
// MSW none; MSDW one per input wavelength (a*k) -- or, with the improved
// §3.4 internal placement, one per output wavelength (b*k); MAW one per
// output wavelength (b*k).
std::uint64_t module_converters(std::size_t a, std::size_t b, std::size_t k,
                                MulticastModel model,
                                ConverterPlacement placement) {
  switch (model) {
    case MulticastModel::kMSW:
      return 0;
    case MulticastModel::kMSDW:
      return placement == ConverterPlacement::kModuleInputs
                 ? static_cast<std::uint64_t>(a) * k
                 : static_cast<std::uint64_t>(b) * k;
    case MulticastModel::kMAW:
      return static_cast<std::uint64_t>(b) * k;
  }
  return 0;
}

}  // namespace

std::string NonblockingBound::to_string() const {
  std::ostringstream os;
  os << "m=" << m << " (x=" << x << ", bound=" << raw_bound << ")";
  return os.str();
}

double theorem1_rhs(std::size_t n, std::size_t r, std::size_t x) {
  if (x == 0) throw std::invalid_argument("theorem1_rhs: x >= 1 required");
  return static_cast<double>(n - 1) *
         (static_cast<double>(x) +
          std::pow(static_cast<double>(r), 1.0 / static_cast<double>(x)));
}

double theorem2_rhs(std::size_t n, std::size_t r, std::size_t k, std::size_t x) {
  if (x == 0 || k == 0) throw std::invalid_argument("theorem2_rhs: x, k >= 1");
  const auto unavailable = static_cast<double>((n * k - 1) * x / k);  // floor
  return unavailable +
         static_cast<double>(n - 1) *
             std::pow(static_cast<double>(r), 1.0 / static_cast<double>(x));
}

NonblockingBound theorem1_min_m(std::size_t n, std::size_t r) {
  if (n == 0 || r == 0) throw std::invalid_argument("theorem1_min_m: n, r >= 1");
  if (n == 1) {
    // A single input wavelength per lane per module: any m >= 1 suffices
    // (the bound's (n-1) factor vanishes).
    return {1, 1, 0.0};
  }
  NonblockingBound best{};
  const std::size_t x_max = std::min(n - 1, r);
  for (std::size_t x = 1; x <= x_max; ++x) {
    const double rhs = theorem1_rhs(n, r, x);
    if (best.m == 0 || rhs < best.raw_bound) {
      best = {smallest_integer_above(rhs), x, rhs};
    }
  }
  return best;
}

NonblockingBound theorem2_min_m(std::size_t n, std::size_t r, std::size_t k) {
  if (n == 0 || r == 0 || k == 0) {
    throw std::invalid_argument("theorem2_min_m: n, r, k >= 1");
  }
  if (n == 1 && k == 1) return {1, 1, 0.0};
  // x still ranges over [1, min(n-1, r)] as in Theorem 2; for n == 1 the
  // only spread that makes sense is x = 1 (the (n-1) term vanishes but the
  // floor((nk-1)x/k) term does not).
  NonblockingBound best{};
  const std::size_t x_max = std::max<std::size_t>(1, std::min(n - 1, r));
  for (std::size_t x = 1; x <= x_max; ++x) {
    const double rhs = theorem2_rhs(n, r, k, x);
    if (best.m == 0 || rhs < best.raw_bound) {
      best = {smallest_integer_above(rhs), x, rhs};
    }
  }
  return best;
}

std::size_t closed_form_x(std::size_t r) {
  if (r < 3) return 1;
  const double lr = std::log(static_cast<double>(r));
  const double llr = std::log(lr);
  if (llr <= 0.0) return 1;
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(2.0 * lr / llr)));
}

double closed_form_m(std::size_t n, std::size_t r) {
  if (n <= 1) return 1.0;
  if (r < 3) return theorem1_rhs(n, r, 1);
  const double lr = std::log(static_cast<double>(r));
  const double llr = std::log(lr);
  if (llr <= 0.0) return theorem1_rhs(n, r, 1);
  return 3.0 * static_cast<double>(n - 1) * lr / llr;
}

std::string MultistageCost::to_string() const {
  std::ostringstream os;
  os << "crosspoints=" << crosspoints << " converters=" << converters;
  return os.str();
}

MultistageCost multistage_cost(const ClosParams& params, Construction construction,
                               MulticastModel network_model,
                               ConverterPlacement placement) {
  params.validate();
  const MulticastModel inner = construction == Construction::kMswDominant
                                   ? MulticastModel::kMSW
                                   : MulticastModel::kMAW;
  const auto [n, r, m, k] = params;
  MultistageCost cost;
  // r input modules (n x m) and m middle modules (r x r) under the dominant
  // model; r output modules (m x n) under the network model.
  cost.crosspoints = r * module_crosspoints(n, m, k, inner) +
                     m * module_crosspoints(r, r, k, inner) +
                     r * module_crosspoints(m, n, k, network_model);
  cost.converters = r * module_converters(n, m, k, inner, placement) +
                    m * module_converters(r, r, k, inner, placement) +
                    r * module_converters(m, n, k, network_model, placement);
  return cost;
}

MultistageCost balanced_multistage_cost(std::size_t N, std::size_t k,
                                        Construction construction,
                                        MulticastModel network_model) {
  const auto root =
      static_cast<std::size_t>(std::llround(std::sqrt(static_cast<double>(N))));
  if (root * root != N) {
    throw std::invalid_argument("balanced_multistage_cost: N must be a perfect square");
  }
  const NonblockingBound bound = construction == Construction::kMswDominant
                                     ? theorem1_min_m(root, root)
                                     : theorem2_min_m(root, root, k);
  const ClosParams params{root, root, std::max(bound.m, root), k};
  return multistage_cost(params, construction, network_model);
}

std::size_t multistage_crossover_N(std::size_t k, MulticastModel network_model,
                                   std::size_t max_N) {
  for (std::size_t root = 2; root * root <= max_N; ++root) {
    const std::size_t N = root * root;
    const MultistageCost ms = balanced_multistage_cost(
        N, k, Construction::kMswDominant, network_model);
    const CrossbarCost cb = crossbar_cost(N, k, network_model);
    if (ms.crosspoints < cb.crosspoints) return N;
  }
  return 0;
}

}  // namespace wdm

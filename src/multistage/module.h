// A single switching module inside a multistage network (§3.1).
//
// Modules are crossbar-based and internally nonblocking, so what a module
// contributes to network-level feasibility is (a) occupancy of its port
// wavelengths -- each (port, lane) on either side carries at most one
// connection -- and (b) its model's lane discipline for each *transit*
// (one connection passing through: one input wavelength fanning out to a set
// of output wavelengths, at most one per output port):
//   MSW : every endpoint lane equals the inbound lane (no conversion),
//   MSDW: all outbound lanes equal; inbound lane free (one converter),
//   MAW : all lanes free (converter per outbound wavelength).
// SwitchModule records active transits and rejects illegal ones eagerly;
// ThreeStageNetwork embeds these so every link's occupancy is visible from
// both of its endpoint modules and can be cross-checked.
//
// Hot-path data layout: per-port lane occupancy is one uint64_t word per
// port (k <= 64, enforced at construction), so the router's feasibility
// queries are word ops -- free_out_lanes is a popcount, lowest_free_out_lane
// a countr_zero -- instead of vector<bool> scans. Transits live in a
// free-list slot vector whose per-slot `outs` buffers keep their capacity
// across reuse, so steady-state add_transit/remove_transit churn performs no
// heap allocations (see DESIGN.md "Hot-path data layout").
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "capacity/models.h"
#include "optics/wavelength.h"

namespace wdm {

struct ModulePortLane {
  std::size_t port = 0;
  Wavelength lane = 0;

  friend auto operator<=>(const ModulePortLane&, const ModulePortLane&) = default;
  [[nodiscard]] std::string to_string() const;
};

class SwitchModule {
 public:
  using TransitId = std::uint64_t;

  /// Lanes per fiber are capped so a port's occupancy fits one machine word.
  static constexpr std::size_t kMaxLanes = 64;

  SwitchModule(std::size_t in_ports, std::size_t out_ports, std::size_t lanes,
               MulticastModel model, std::string name = {});

  [[nodiscard]] std::size_t in_ports() const { return in_used_.size(); }
  [[nodiscard]] std::size_t out_ports() const { return out_used_.size(); }
  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  [[nodiscard]] MulticastModel model() const { return model_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Would this transit be legal and available right now? nullopt = yes,
  /// otherwise a human-readable reason.
  [[nodiscard]] std::optional<std::string> check_transit(
      const ModulePortLane& in, const std::vector<ModulePortLane>& outs) const;

  /// Install a transit; throws std::logic_error with the check_transit
  /// reason on failure.
  TransitId add_transit(const ModulePortLane& in, const std::vector<ModulePortLane>& outs);

  /// Remove a transit; throws std::out_of_range for unknown ids.
  void remove_transit(TransitId id);

  [[nodiscard]] bool in_lane_free(std::size_t port, Wavelength lane) const {
    check_slot(port, lane, in_used_.size());
    return (in_used_[port] >> lane & 1u) == 0;
  }
  [[nodiscard]] bool out_lane_free(std::size_t port, Wavelength lane) const {
    check_slot(port, lane, out_used_.size());
    return (out_used_[port] >> lane & 1u) == 0;
  }

  /// Raw occupancy word of an output port (bit = lane, 1 = busy). The word
  /// view behind the batch router's mask priming: one load yields all k
  /// lanes. No range check -- callers index from the network geometry.
  [[nodiscard]] std::uint64_t out_word(std::size_t port) const {
    return out_used_[port];
  }
  /// Low `lanes()` bits set; out_word(p) == out_lane_mask() means port full.
  [[nodiscard]] std::uint64_t out_lane_mask() const { return lane_mask_; }
  /// Contiguous out_word(0 .. out_ports()-1), for vectorized mask priming.
  [[nodiscard]] const std::uint64_t* out_words() const { return out_used_.data(); }

  /// Number of free lanes on an output port (link capacity remaining).
  [[nodiscard]] std::size_t free_out_lanes(std::size_t port) const;
  [[nodiscard]] std::size_t free_in_lanes(std::size_t port) const;

  /// Lowest free lane of an output port, if any.
  [[nodiscard]] std::optional<Wavelength> lowest_free_out_lane(std::size_t port) const;

  [[nodiscard]] std::size_t active_transits() const { return active_transits_; }

  /// Recompute occupancy from the transit list and compare with the cached
  /// bitmaps; throws std::logic_error on divergence. Used by network
  /// self-checks and the property tests.
  void self_check() const;

 private:
  /// One entry of the transit free-list. A released slot keeps its `outs`
  /// capacity for the next transit; `generation` is embedded in the public
  /// TransitId so stale ids are detected in O(1).
  struct TransitSlot {
    ModulePortLane in;
    std::vector<ModulePortLane> outs;
    std::uint32_t generation = 0;
    bool active = false;
  };

  static TransitId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<TransitId>(generation) << 32) | slot;
  }

  void check_slot(std::size_t port, Wavelength lane, std::size_t ports) const {
    if (port >= ports || lane >= lanes_) {
      throw std::out_of_range("SwitchModule[" + name_ + "]: port/lane out of range");
    }
  }

  std::size_t lanes_;
  std::uint64_t lane_mask_;  // low `lanes_` bits set
  MulticastModel model_;
  std::string name_;
  // occupancy bitmasks: word per port, bit = lane
  std::vector<std::uint64_t> in_used_;
  std::vector<std::uint64_t> out_used_;
  std::vector<TransitSlot> transit_slots_;
  std::vector<std::uint32_t> free_transit_slots_;
  std::size_t active_transits_ = 0;
};

}  // namespace wdm

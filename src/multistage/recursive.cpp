#include "multistage/recursive.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "capacity/cost.h"
#include "core/switch_design.h"

namespace wdm {

namespace {

bool factorizable(std::size_t size) {
  if (size < 4) return false;
  for (std::size_t divisor = 2; divisor * divisor <= size; ++divisor) {
    if (size % divisor == 0) return true;
  }
  return false;
}

// Crosspoints of an S x S MSW-dominant network whose middle modules are
// expanded `depth` more times; fills `levels` outermost-first. The network
// model only matters at the outermost output stage, handled by the caller.
std::uint64_t msw_core_crosspoints(std::size_t size, std::size_t k,
                                   std::size_t depth,
                                   std::vector<RecursiveDesign::Level>& levels) {
  if (depth == 0) {
    return crossbar_cost(size, k, MulticastModel::kMSW).crosspoints;
  }
  if (!factorizable(size)) {
    throw std::invalid_argument(
        "recursive_design: size " + std::to_string(size) +
        " cannot be decomposed further (prime or < 4)");
  }
  const auto [n, r] = balanced_factorization(size);
  const NonblockingBound bound = theorem1_min_m(n, r);
  const std::size_t m = std::max(bound.m, n);
  levels.push_back({n, r, m, bound.x});

  // r input modules (n x m crossbars, MSW) + m recursively-built r x r
  // middles + r output modules (m x n crossbars; MSW here -- the caller
  // corrects the outermost output stage for stronger network models).
  const std::uint64_t edge_modules =
      static_cast<std::uint64_t>(r) * k * n * m +  // input stage
      static_cast<std::uint64_t>(r) * k * m * n;   // output stage (MSW basis)
  return edge_modules + m * msw_core_crosspoints(r, k, depth - 1, levels);
}

}  // namespace

std::string RecursiveDesign::to_string() const {
  std::ostringstream os;
  os << stages << "-stage N=" << size << ": crosspoints=" << crosspoints
     << " converters=" << converters;
  for (const Level& level : levels) {
    os << " | (n=" << level.n << ", r=" << level.r << ", m=" << level.m
       << ", x=" << level.x << ")";
  }
  return os.str();
}

RecursiveDesign recursive_design(std::size_t N, std::size_t k,
                                 MulticastModel model, std::size_t depth) {
  if (N == 0 || k == 0) throw std::invalid_argument("recursive_design: N, k >= 1");
  RecursiveDesign design;
  design.size = N;
  design.stages = 2 * depth + 1;

  if (depth == 0) {
    const CrossbarCost cost = crossbar_cost(N, k, model);
    design.crosspoints = cost.crosspoints;
    design.converters = cost.converters;
    return design;
  }

  design.crosspoints = msw_core_crosspoints(N, k, depth, design.levels);

  // The outermost output stage carries the network model: upgrade its r
  // m x n modules from the MSW basis (k m n each) to k^2 m n for MSDW/MAW,
  // and attach the converters.
  const RecursiveDesign::Level& outer = design.levels.front();
  if (model != MulticastModel::kMSW) {
    const std::uint64_t basis =
        static_cast<std::uint64_t>(outer.r) * k * outer.m * outer.n;
    design.crosspoints += basis * (k - 1);  // k m n -> k^2 m n per §2.3.1
    design.converters =
        model == MulticastModel::kMSDW
            ? static_cast<std::uint64_t>(outer.r) * outer.m * k   // Fig. 3a
            : static_cast<std::uint64_t>(outer.r) * outer.n * k;  // Fig. 3b: kN
  }
  return design;
}

std::size_t max_recursion_depth(std::size_t N) {
  std::size_t depth = 0;
  std::size_t size = N;
  while (factorizable(size)) {
    const auto [n, r] = balanced_factorization(size);
    (void)n;
    ++depth;
    size = r;
  }
  return depth;
}

RecursiveDesign best_recursive_design(std::size_t N, std::size_t k,
                                      MulticastModel model) {
  RecursiveDesign best = recursive_design(N, k, model, 0);
  const std::size_t limit = max_recursion_depth(N);
  for (std::size_t depth = 1; depth <= limit; ++depth) {
    const RecursiveDesign candidate = recursive_design(N, k, model, depth);
    if (candidate.crosspoints < best.crosspoints) best = candidate;
  }
  return best;
}

}  // namespace wdm

// Recursive multistage construction (§3: "a network can have any odd number
// of stages and be built in a recursive fashion from these switching
// modules").
//
// We follow the standard recursion the paper implies: each r x r middle
// module of a three-stage network is itself realized as a (recursively
// built) nonblocking three-stage network of size r, sized by Theorem 1 on
// its own geometry. Stages 1-2 of every level adopt MSW (the construction
// §3.4 recommends); only the outermost output stage carries the network
// model, so converter counts are unchanged by depth. Each expansion turns a
// (2s+1)-stage network into a (2s+3)-stage one and trades the middle
// crossbars' k*r^2 gates for ~k*r^1.5 scaling -- the same √ gain applied
// again, at the cost of a larger constant (every level multiplies by its
// own m/r > 1 overprovisioning factor).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capacity/models.h"
#include "multistage/nonblocking.h"

namespace wdm {

struct RecursiveDesign {
  std::size_t size = 0;        // N of this (sub)network
  std::size_t stages = 1;      // 1 = crossbar module, 3, 5, 7, ...
  std::uint64_t crosspoints = 0;
  std::uint64_t converters = 0;

  /// One entry per expansion level, outermost first.
  struct Level {
    std::size_t n = 0;  // module inputs at this level
    std::size_t r = 0;  // input/output module count (= middle module size)
    std::size_t m = 0;  // middle module count (Theorem 1)
    std::size_t x = 0;  // routing spread at this level
  };
  std::vector<Level> levels;

  [[nodiscard]] std::string to_string() const;
};

/// Build the cost model for an N x N k-lane network under `model` with
/// exactly `depth` recursive expansions (depth 0 = crossbar, 1 = three
/// stages, 2 = five stages, ...). Factorizations are balanced at every
/// level. Throws std::invalid_argument if some level's middle size cannot
/// be factorized (prime or < 4) before reaching the requested depth.
[[nodiscard]] RecursiveDesign recursive_design(std::size_t N, std::size_t k,
                                               MulticastModel model,
                                               std::size_t depth);

/// Deepest achievable expansion for this N (how many times the middle size
/// stays factorizable).
[[nodiscard]] std::size_t max_recursion_depth(std::size_t N);

/// The cheapest depth in [0, max_recursion_depth(N)] by crosspoints.
[[nodiscard]] RecursiveDesign best_recursive_design(std::size_t N, std::size_t k,
                                                    MulticastModel model);

}  // namespace wdm

#include "multistage/routing.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>

#include "faults/fault_model.h"
#include "util/metrics.h"
#include "util/trace_span.h"

#ifdef WDM_HAVE_AVX2
#include <immintrin.h>
#endif

namespace wdm {

namespace {

/// Router hot-path instruments (see docs/BENCHMARKS.md for definitions).
struct RouterMetrics {
  Counter& attempts = metrics().counter("routing.route_attempts");
  Counter& found = metrics().counter("routing.routes_found");
  Counter& blocked = metrics().counter("routing.route_blocked");
  Counter& middle_probes = metrics().counter("routing.middle_probes");
  Counter& spread_expansions = metrics().counter("routing.spread_expansions");
  Counter& connects = metrics().counter("routing.connects");
  Counter& disconnects = metrics().counter("routing.disconnects");
  TimerStat& find_route = metrics().timer("routing.find_route");
  Histogram& candidates_per_attempt =
      metrics().histogram("routing.candidates_per_attempt");

  static RouterMetrics& get() {
    static RouterMetrics instance;
    return instance;
  }
};

/// Batched-pipeline instruments (see docs/BENCHMARKS.md "routing.batch_*").
struct BatchMetrics {
  Histogram& batch_size = metrics().histogram("routing.batch_size");
  TimerStat& batch_amortized = metrics().timer("routing.batch_amortized_ns");

  static BatchMetrics& get() {
    static BatchMetrics instance;
    return instance;
  }
};

// -- mask-priming kernels ----------------------------------------------------
// Transpose a module's per-port occupancy words into one per-lane bitmask:
// out bit p = "port p can take one more connection" under the given lane
// condition. The scalar loops vectorize acceptably, but with WDM_AVX2 the
// cmake flag enables 4-ports-per-iteration kernels: shift the lane bit of
// four ports into bit 63 and harvest the sign bits with movemask.

/// out bit p (p < ports) = lane `lane` free on output port p.
inline void pack_free_lane_bits(const std::uint64_t* port_words, std::size_t ports,
                                Wavelength lane, std::uint64_t* out,
                                std::size_t out_words) {
  for (std::size_t w = 0; w < out_words; ++w) out[w] = 0;
  std::size_t p = 0;
#ifdef WDM_HAVE_AVX2
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(63 - lane));
  for (; p + 4 <= ports; p += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(port_words + p));
    const int busy4 = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_sll_epi64(v, shift)));
    out[p >> 6] |= static_cast<std::uint64_t>(~busy4 & 0xF) << (p & 63);
  }
#endif
  for (; p < ports; ++p) {
    out[p >> 6] |= (~(port_words[p] >> lane) & 1u) << (p & 63);
  }
}

/// out bit p (p < ports) = any lane free on output port p (word != full mask).
inline void pack_any_free_bits(const std::uint64_t* port_words, std::size_t ports,
                               std::uint64_t full_mask, std::uint64_t* out,
                               std::size_t out_words) {
  for (std::size_t w = 0; w < out_words; ++w) out[w] = 0;
  std::size_t p = 0;
#ifdef WDM_HAVE_AVX2
  const __m256i full = _mm256_set1_epi64x(static_cast<long long>(full_mask));
  for (; p + 4 <= ports; p += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(port_words + p));
    const int full4 = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, full)));
    out[p >> 6] |= static_cast<std::uint64_t>(~full4 & 0xF) << (p & 63);
  }
#endif
  for (; p < ports; ++p) {
    out[p >> 6] |= static_cast<std::uint64_t>(port_words[p] != full_mask) << (p & 63);
  }
}

inline bool test_bit(const std::vector<std::uint64_t>& words, std::size_t i) {
  return (words[i >> 6] >> (i & 63)) & 1u;
}
inline void set_bit(std::vector<std::uint64_t>& words, std::size_t i) {
  words[i >> 6] |= 1ull << (i & 63);
}
inline void clear_bit(std::vector<std::uint64_t>& words, std::size_t i) {
  words[i >> 6] &= ~(1ull << (i & 63));
}

}  // namespace

Router::Router(ThreeStageNetwork& network, RoutingPolicy policy)
    : network_(&network), policy_(policy) {
  if (policy_.max_spread == 0) {
    throw std::invalid_argument("Router: max_spread must be >= 1");
  }
  const ClosParams& params = network_->params();
  demands_.resize(params.r);
  demand_stamp_.assign(params.r, 0);
  targets_.reserve(params.r);
  candidates_.reserve(params.m);
  chosen_.reserve(policy_.max_spread);

  // Batch mask caches (DESIGN.md §3.10): all storage sized here, so the
  // batched path allocates nothing in steady state. Stamps start at 0 and
  // batch_gen_ at 1, so every row begins stale. Every row is a word mask
  // over middle modules.
  cand_words_ = (params.m + 63) / 64;
  cand_msw_.assign(params.r * params.k * cand_words_, 0);
  cand_any_.assign(params.r * cand_words_, 0);
  cand_msw_stamp_.assign(params.r * params.k, 0);
  cand_any_stamp_.assign(params.r, 0);
  serve_specific_.assign(params.r * params.k * cand_words_, 0);
  serve_any_.assign(params.r * cand_words_, 0);
  serve_specific_stamp_.assign(params.r * params.k, 0);
  serve_any_stamp_.assign(params.r, 0);
  cand_mask_.assign(cand_words_, 0);
  gain_by_mid_.assign(params.m, 0);
  batch_gen_ = 1;
}

RoutingPolicy Router::recommended_policy(const ClosParams& params,
                                         Construction construction) {
  const NonblockingBound bound =
      construction == Construction::kMswDominant
          ? theorem1_min_m(params.n, params.r)
          : theorem2_min_m(params.n, params.r, params.k);
  return {bound.x, RouteSearch::kExhaustive};
}

void Router::candidate_middles(std::size_t in_module, Wavelength lane) const {
  const ClosParams& params = network_->params();
  const SwitchModule& input = network_->input_module(in_module);
  candidates_.clear();
  RouterMetrics& counters = RouterMetrics::get();
  counters.middle_probes.add(params.m);
  TraceSpan span("routing.middle_probe_loop");
  // Fault fast path: `faults` stays null unless a model is attached AND
  // carries an active fault, so a healthy network takes the original
  // branch-free checks.
  const FaultModel* faults = network_->active_fault_model();
  const bool msw = network_->construction() == Construction::kMswDominant;
  for (std::size_t j = 0; j < params.m; ++j) {
    if (faults != nullptr && faults->middle_failed(j)) continue;
    bool usable;
    if (msw) {
      usable = input.out_lane_free(j, lane) &&
               (faults == nullptr || faults->link12_usable(in_module, j, lane));
    } else if (faults == nullptr) {
      usable = input.free_out_lanes(j) > 0;
    } else {
      usable = usable_free_lane(input, j, LinkStage::kInputToMiddle, in_module);
    }
    if (usable) candidates_.push_back(j);
  }
  counters.candidates_per_attempt.record(candidates_.size());
  span.arg("probed", static_cast<std::int64_t>(params.m));
  span.arg("candidates", static_cast<std::int64_t>(candidates_.size()));
}

const Route* Router::find_route_instrumented(const MulticastRequest& request) const {
  RouterMetrics& counters = RouterMetrics::get();
  counters.attempts.add();
  ScopedTimer timer(counters.find_route);
  TraceSpan span("routing.find_route");
  span.arg("fanout", static_cast<std::int64_t>(request.outputs.size()));
  const Route* route = find_route_impl(request);
  span.arg("found", route != nullptr ? 1 : 0);
  (route != nullptr ? counters.found : counters.blocked).add();
  if (pending_spread_ != 0) {
    counters.spread_expansions.add(pending_spread_);
    pending_spread_ = 0;
  }
  return route;
}

std::optional<Route> Router::find_route(const MulticastRequest& request) const {
  const Route* route = find_route_instrumented(request);
  if (route == nullptr) return std::nullopt;
  return *route;  // copy out of the scratch
}

void Router::recycle_route() const {
  // Recycle into the network's shared pools -- the same economy the slot
  // copy machinery uses -- so storage swapped into connection slots by
  // install_trusted(Route&&) circulates back instead of stranding.
  std::vector<RouteBranch>& branch_pool = network_->branch_pool();
  std::vector<DeliveryLeg>& leg_pool = network_->leg_pool();
  for (RouteBranch& branch : route_.branches) {
    for (DeliveryLeg& leg : branch.legs) {
      leg.destinations.clear();
      leg_pool.push_back(std::move(leg));
    }
    branch.legs.clear();
    branch_pool.push_back(std::move(branch));
  }
  route_.branches.clear();
}

const Route* Router::find_route_impl(const MulticastRequest& request) const {
  recycle_route();
  if (!build_demands(request)) return nullptr;  // unsatisfiable demand
  candidate_middles(network_->input_module_of(request.input.port),
                    request.input.lane);
  if (candidates_.empty()) return nullptr;
  build_serves_probing();
  return cover_and_materialize(request);
}

bool Router::build_demands(const MulticastRequest& request) const {
  const Construction construction = network_->construction();
  const MulticastModel output_model = network_->network_model();
  const Wavelength source_lane = request.input.lane;

  // Group destinations by output module and work out each module's link-lane
  // requirement. The demand slots are stamp-gated: a slot belongs to this
  // request iff its stamp equals the fresh generation, so nothing is cleared
  // between requests. Targets are sorted ascending, reproducing the
  // iteration order of the std::map this replaced.
  const std::uint64_t gen = ++demand_gen_;
  targets_.clear();
  for (const auto& out : request.outputs) {
    const std::size_t module = network_->output_module_of(out.port);
    ModuleDemand& demand = demands_[module];
    if (demand_stamp_[module] != gen) {
      demand_stamp_[module] = gen;
      demand.destinations.clear();
      demand.required_link_lane = kNoWavelength;
      targets_.push_back(module);
    }
    demand.destinations.push_back(out);
  }
  // Insertion sort: targets are few (<= fanout) and unique, so this is the
  // one ascending order any sort would produce, without the libcall.
  for (std::size_t i = 1; i < targets_.size(); ++i) {
    const std::size_t v = targets_[i];
    std::size_t p = i;
    for (; p > 0 && targets_[p - 1] > v; --p) targets_[p] = targets_[p - 1];
    targets_[p] = v;
  }
  for (const std::size_t module : targets_) {
    ModuleDemand& demand = demands_[module];
    if (construction == Construction::kMswDominant) {
      // Stages 1-2 hold the source lane, so every module is fed on it.
      demand.required_link_lane = source_lane;
    } else if (output_model == MulticastModel::kMSW) {
      // MAW-dominant feeding an MSW output module: the module cannot
      // convert, so the link must already carry the destination lane (all
      // destinations in the module share it under an MSW network model).
      const Wavelength lane = demand.destinations.front().lane;
      for (const auto& dest : demand.destinations) {
        if (dest.lane != lane) return false;  // unsatisfiable demand
      }
      demand.required_link_lane = lane;
    }
  }
  return true;
}

void Router::build_serves_probing() const {
  // serves_ row t, bit j: can candidate middle j feed target t? Target-major
  // over middle-module indices -- the same layout the batch mask caches
  // assemble -- so cover_and_materialize downstream is one shared code path.
  // cand_mask_ gets the candidate set as a word mask (the greedy variant
  // scans it).
  const std::size_t n_targets = targets_.size();
  const FaultModel* faults = network_->active_fault_model();
  serves_.assign(n_targets * cand_words_, 0);
  cand_mask_.assign(cand_words_, 0);
  for (const std::size_t j : candidates_) set_bit(cand_mask_, j);
  for (const std::size_t j : candidates_) {
    const SwitchModule& middle = network_->middle_module(j);
    for (std::size_t t = 0; t < n_targets; ++t) {
      const ModuleDemand& demand = demands_[targets_[t]];
      bool serves;
      if (demand.required_link_lane == kNoWavelength) {
        serves = faults == nullptr
                     ? middle.free_out_lanes(targets_[t]) > 0
                     : usable_free_lane(middle, targets_[t],
                                        LinkStage::kMiddleToOutput, j);
      } else {
        serves =
            middle.out_lane_free(targets_[t], demand.required_link_lane) &&
            (faults == nullptr ||
             faults->link23_usable(j, targets_[t], demand.required_link_lane));
      }
      if (serves) serves_[t * cand_words_ + (j >> 6)] |= 1ull << (j & 63);
    }
  }
}

const Route* Router::cover_and_materialize(const MulticastRequest& request) const {
  const std::size_t in_module = network_->input_module_of(request.input.port);
  const Wavelength source_lane = request.input.lane;
  const std::size_t n_targets = targets_.size();
  const std::size_t m_total = network_->params().m;
  const std::size_t serve_words = (n_targets + 63) / 64;

  // --- cover search: at most max_spread middles covering all targets ------
  // serves_ is target-major over middle indices and cand_mask_/chosen_mask_
  // are middle masks, so "servers of t" and "options at a pivot" are word
  // scans. The search visits middles in the same ascending order (and breaks
  // gain ties the same way) as the candidate-index formulation it replaced,
  // so every routing decision is unchanged.
  chosen_.clear();
  chosen_mask_.assign(cand_words_, 0);
  covered_.assign(serve_words, 0);
  std::size_t uncovered = n_targets;
  if (newly_stack_.size() < policy_.max_spread * serve_words) {
    newly_stack_.resize(policy_.max_spread * serve_words);
  }

  const auto serves_bit = [&](std::size_t t, std::size_t j) {
    return ((serves_[t * cand_words_ + (j >> 6)] >> (j & 63)) & 1u) != 0;
  };
  auto coverage_gain = [&](std::size_t j) {
    std::size_t gain = 0;
    for (std::size_t t = 0; t < n_targets; ++t) {
      if (!test_bit(covered_, t) && serves_bit(t, j)) ++gain;
    }
    return gain;
  };
  // apply/undo record the targets newly covered at each search level in
  // newly_stack_ row `level` (= chosen_.size() before/after the push).
  // Expansion counts accumulate in pending_spread_ and are flushed by the
  // owning path (per request when instrumented, per batch when batched), so
  // the inner search loop touches no atomics either way.
  auto apply = [&](std::size_t j) {
    ++pending_spread_;
    std::uint64_t* newly = newly_stack_.data() + chosen_.size() * serve_words;
    for (std::size_t w = 0; w < serve_words; ++w) newly[w] = 0;
    for (std::size_t t = 0; t < n_targets; ++t) {
      if (!test_bit(covered_, t) && serves_bit(t, j)) {
        newly[t >> 6] |= 1ull << (t & 63);
        --uncovered;
      }
    }
    for (std::size_t w = 0; w < serve_words; ++w) covered_[w] |= newly[w];
    chosen_.push_back(j);
    set_bit(chosen_mask_, j);
  };
  auto undo = [&]() {
    const std::size_t j = chosen_.back();
    chosen_.pop_back();
    clear_bit(chosen_mask_, j);
    const std::uint64_t* newly = newly_stack_.data() + chosen_.size() * serve_words;
    for (std::size_t w = 0; w < serve_words; ++w) {
      covered_[w] &= ~newly[w];
      uncovered += static_cast<std::size_t>(std::popcount(newly[w]));
    }
  };

  bool found = false;
  if (policy_.search == RouteSearch::kGreedy) {
    while (uncovered > 0 && chosen_.size() < policy_.max_spread) {
      std::size_t best = m_total;
      std::size_t best_gain = 0;
      for (std::size_t w = 0; w < cand_words_; ++w) {
        std::uint64_t word = cand_mask_[w] & ~chosen_mask_[w];
        while (word != 0) {
          const std::size_t j =
              w * 64 + static_cast<std::size_t>(std::countr_zero(word));
          word &= word - 1;
          const std::size_t gain = coverage_gain(j);
          if (gain > best_gain) {
            best_gain = gain;
            best = j;
          }
        }
      }
      if (best == m_total) break;
      apply(best);
    }
    found = (uncovered == 0);
  } else {
    // Exhaustive: branch on the uncovered target with the fewest servers;
    // complete because any cover must include one of that target's servers.
    if (options_stack_.size() < policy_.max_spread) {
      options_stack_.resize(policy_.max_spread);
    }
    auto dfs = [&](auto&& self) -> bool {
      if (uncovered == 0) return true;
      if (chosen_.size() >= policy_.max_spread) return false;
      std::size_t pivot = n_targets;
      std::size_t pivot_servers = m_total + 1;
      {
      for (std::size_t t = 0; t < n_targets; ++t) {
        if (test_bit(covered_, t)) continue;
        const std::uint64_t* row = serves_.data() + t * cand_words_;
        std::size_t servers = 0;
        for (std::size_t w = 0; w < cand_words_; ++w) {
          servers += static_cast<std::size_t>(std::popcount(row[w] & ~chosen_mask_[w]));
        }
        if (servers == 0) return false;  // dead end
        if (servers < pivot_servers) {
          pivot_servers = servers;
          pivot = t;
        }
      }
      }
      // Try the pivot's servers, highest additional coverage first. Gains
      // are cached per middle before sorting: covered_ is constant while the
      // sort runs, so the cached comparator is value-identical to a live
      // recompute and std::sort yields the identical permutation.
      std::vector<std::uint16_t>& options = options_stack_[chosen_.size()];
      options.clear();
      const std::uint64_t* prow = serves_.data() + pivot * cand_words_;
      for (std::size_t w = 0; w < cand_words_; ++w) {
        std::uint64_t word = prow[w] & ~chosen_mask_[w];
        while (word != 0) {
          options.push_back(static_cast<std::uint16_t>(
              w * 64 + static_cast<std::size_t>(std::countr_zero(word))));
          word &= word - 1;
        }
      }
      // Gains without per-(option, target) probing. Both variants produce
      // values identical to coverage_gain(j) for every j in options (options
      // exclude chosen middles, and non-option slots hold garbage the sort
      // never reads), so the std::sort permutation -- and with it every
      // pinned golden -- is unchanged.
      {
      if (cand_words_ == 1 && n_targets < 64) {
        // Bit-sliced: carry-save-add each uncovered serve row into sum
        // planes p0..p5 (plane b holds bit b of every middle's count), then
        // extract each option's 6-bit gain with independent shifts -- no
        // store-to-load chains through a counter array.
        std::uint64_t p0 = 0, p1 = 0, p2 = 0, p3 = 0, p4 = 0, p5 = 0;
        const std::uint64_t live = ~chosen_mask_[0];
        for (std::size_t t = 0; t < n_targets; ++t) {
          if (test_bit(covered_, t)) continue;
          std::uint64_t x = serves_[t] & live;
          std::uint64_t c;
          c = p0 & x; p0 ^= x; x = c;
          c = p1 & x; p1 ^= x; x = c;
          c = p2 & x; p2 ^= x; x = c;
          c = p3 & x; p3 ^= x; x = c;
          c = p4 & x; p4 ^= x; x = c;
          p5 ^= x;  // < 64 rows: plane 5 cannot carry out
        }
        for (const std::uint16_t j : options) {
          gain_by_mid_[j] = static_cast<std::uint16_t>(
              ((p0 >> j) & 1) | (((p1 >> j) & 1) << 1) |
              (((p2 >> j) & 1) << 2) | (((p3 >> j) & 1) << 3) |
              (((p4 >> j) & 1) << 4) | (((p5 >> j) & 1) << 5));
        }
      } else {
        // Transposed fallback for wide candidate sets or huge fanout: walk
        // each uncovered target's serve row once, bumping the gain of every
        // middle bit in it.
        for (const std::uint16_t j : options) gain_by_mid_[j] = 0;
        for (std::size_t t = 0; t < n_targets; ++t) {
          if (test_bit(covered_, t)) continue;
          const std::uint64_t* row = serves_.data() + t * cand_words_;
          for (std::size_t w = 0; w < cand_words_; ++w) {
            std::uint64_t word = row[w] & ~chosen_mask_[w];
            while (word != 0) {
              ++gain_by_mid_[w * 64 +
                             static_cast<std::size_t>(std::countr_zero(word))];
              word &= word - 1;
            }
          }
        }
      }
      }
      {
      std::sort(options.begin(), options.end(),
                [&](std::uint16_t a, std::uint16_t b) {
                  return gain_by_mid_[a] > gain_by_mid_[b];
                });
      }
      for (const std::size_t j : options) {
        apply(j);
        if (self(self)) return true;
        undo();
      }
      return false;
    };
    found = dfs(dfs);
  }
  if (!found) return nullptr;

  // --- materialize the route: assign each target to its covering branch ---
  // Re-derive the assignment: walk chosen in order, give each chosen middle
  // the targets it serves that are still unassigned. Branches and legs come
  // from the spare pools so their nested vectors keep their capacity.
  assigned_.assign(serve_words, 0);
  const SwitchModule& input = network_->input_module(in_module);
  std::vector<RouteBranch>& branch_pool = network_->branch_pool();
  std::vector<DeliveryLeg>& leg_pool = network_->leg_pool();
  for (const std::size_t j : chosen_) {
    if (!branch_pool.empty()) {
      route_.branches.push_back(std::move(branch_pool.back()));
      branch_pool.pop_back();
    } else {
      route_.branches.emplace_back();
    }
    RouteBranch& branch = route_.branches.back();
    branch.middle = j;
    const SwitchModule& middle = network_->middle_module(j);
    for (std::size_t t = 0; t < n_targets; ++t) {
      if (test_bit(assigned_, t) || !serves_bit(t, j)) {
        continue;
      }
      set_bit(assigned_, t);
      const std::size_t module = targets_[t];
      const ModuleDemand& demand = demands_[module];
      if (!leg_pool.empty()) {
        branch.legs.push_back(std::move(leg_pool.back()));
        leg_pool.pop_back();
      } else {
        branch.legs.emplace_back();
      }
      DeliveryLeg& leg = branch.legs.back();
      leg.out_module = module;
      if (demand.required_link_lane != kNoWavelength) {
        leg.link_lane = demand.required_link_lane;
      } else {
        // Preferred lane: the common destination lane when the module's
        // destinations agree (saves the output module a conversion), else
        // the source lane.
        Wavelength preferred = demand.destinations.front().lane;
        for (const auto& dest : demand.destinations) {
          if (dest.lane != preferred) {
            preferred = source_lane;
            break;
          }
        }
        const auto lane = pick_lane(middle, module, preferred,
                                    LinkStage::kMiddleToOutput, branch.middle);
        if (!lane) return nullptr;  // should not happen: serves_ said free
        leg.link_lane = *lane;
      }
      leg.destinations = demand.destinations;  // copy-assign: keeps capacity
    }
    if (branch.legs.empty()) {
      // Greedy may over-pick; drop the idle branch back into the pool.
      branch_pool.push_back(std::move(route_.branches.back()));
      route_.branches.pop_back();
      continue;
    }
    if (network_->construction() == Construction::kMswDominant) {
      branch.link_lane = source_lane;
    } else {
      const auto lane = pick_lane(input, branch.middle, source_lane,
                                  LinkStage::kInputToMiddle, in_module);
      if (!lane) return nullptr;  // candidate check said a lane was free
      branch.link_lane = *lane;
    }
  }
  return &route_;
}

std::optional<Wavelength> Router::pick_lane(const SwitchModule& module,
                                            std::size_t out_port,
                                            Wavelength preferred,
                                            LinkStage stage,
                                            std::size_t from_module) const {
  const FaultModel* faults = network_->active_fault_model();
  if (faults == nullptr) {
    if (policy_.lanes == LanePolicy::kPreferSource &&
        module.out_lane_free(out_port, preferred)) {
      return preferred;
    }
    return module.lowest_free_out_lane(out_port);
  }
  const auto lane_usable = [&](Wavelength lane) {
    return stage == LinkStage::kInputToMiddle
               ? faults->link12_usable(from_module, out_port, lane)
               : faults->link23_usable(from_module, out_port, lane);
  };
  if (policy_.lanes == LanePolicy::kPreferSource &&
      module.out_lane_free(out_port, preferred) && lane_usable(preferred)) {
    return preferred;
  }
  for (Wavelength lane = 0; lane < module.lanes(); ++lane) {
    if (module.out_lane_free(out_port, lane) && lane_usable(lane)) return lane;
  }
  return std::nullopt;
}

bool Router::usable_free_lane(const SwitchModule& module, std::size_t out_port,
                              LinkStage stage, std::size_t from_module) const {
  const FaultModel* faults = network_->active_fault_model();
  if (faults == nullptr) return module.free_out_lanes(out_port) > 0;
  for (Wavelength lane = 0; lane < module.lanes(); ++lane) {
    if (!module.out_lane_free(out_port, lane)) continue;
    const bool usable = stage == LinkStage::kInputToMiddle
                            ? faults->link12_usable(from_module, out_port, lane)
                            : faults->link23_usable(from_module, out_port, lane);
    if (usable) return true;
  }
  return false;
}

std::size_t conversions_in_route(const MulticastRequest& request,
                                 const Route& route) {
  std::size_t conversions = 0;
  for (const RouteBranch& branch : route.branches) {
    if (branch.link_lane != request.input.lane) ++conversions;  // input module
    for (const DeliveryLeg& leg : branch.legs) {
      if (leg.link_lane != branch.link_lane) ++conversions;  // middle module
      for (const auto& dest : leg.destinations) {
        if (dest.lane != leg.link_lane) ++conversions;  // output module
      }
    }
  }
  return conversions;
}

std::optional<ConnectionId> Router::try_connect(const MulticastRequest& request) {
  if (const auto error = network_->check_admissible(request)) {
    last_error_ = *error;
    return std::nullopt;
  }
  const Route* route = find_route_instrumented(request);
  if (route == nullptr) {
    last_error_ = ConnectError::kBlocked;
    return std::nullopt;
  }
  RouterMetrics::get().connects.add();
  const ConnectionId id = network_->install(request, *route);
  // Keep any primed batch mask rows truthful: every occupancy change the
  // router performs repairs the touched bits, so the caches survive
  // interleaved single-request traffic between batches (repair_masks is a
  // no-op until a batch primes the first row).
  repair_masks(request, *route, /*installed=*/true);
  return id;
}

void Router::disconnect(ConnectionId id) {
  // Release first: a stale id throws, and a rejected disconnect must not
  // move the counter (it moved even on throw before the stale-id audit).
  // The slot entry stays valid after release until the slot is reused, so
  // it can still drive the mask repair for the freed lanes.
  const auto* entry = masks_live_ ? network_->find_connection(id) : nullptr;
  network_->release(id);
  RouterMetrics::get().disconnects.add();
  if (entry != nullptr) repair_masks(entry->first, entry->second, /*installed=*/false);
}

ConnectionId Router::reinstall(ConnectionId id, const MulticastRequest& request,
                               const Route& route,
                               std::optional<ConnectionId> after) {
  const ConnectionId revived = network_->reinstall(id, request, route, after);
  repair_masks(request, route, /*installed=*/true);
  return revived;
}

bool Router::try_disconnect(ConnectionId id) {
  const auto* entry = masks_live_ ? network_->find_connection(id) : nullptr;
  if (!network_->try_release(id)) return false;
  RouterMetrics::get().disconnects.add();
  if (entry != nullptr) repair_masks(entry->first, entry->second, /*installed=*/false);
  return true;
}

// ---------------------------------------------------------------------------
// Batched request pipeline (DESIGN.md §3.10)
// ---------------------------------------------------------------------------

const std::uint64_t* Router::ensure_candidate_row(std::size_t in_module,
                                                  Wavelength lane) const {
  const ClosParams& params = network_->params();
  if (network_->construction() == Construction::kMswDominant) {
    const std::size_t row = in_module * params.k + lane;
    std::uint64_t* bits = cand_msw_.data() + row * cand_words_;
    if (cand_msw_stamp_[row] != batch_gen_) {
      cand_msw_stamp_[row] = batch_gen_;
      masks_live_ = true;
      pack_free_lane_bits(network_->input_module(in_module).out_words(), params.m,
                          lane, bits, cand_words_);
    }
    return bits;
  }
  std::uint64_t* bits = cand_any_.data() + in_module * cand_words_;
  if (cand_any_stamp_[in_module] != batch_gen_) {
    cand_any_stamp_[in_module] = batch_gen_;
    masks_live_ = true;
    const SwitchModule& input = network_->input_module(in_module);
    pack_any_free_bits(input.out_words(), params.m, input.out_lane_mask(), bits,
                       cand_words_);
  }
  return bits;
}

const std::uint64_t* Router::ensure_serve_row(std::size_t out_module,
                                              Wavelength lane) const {
  // Unlike the candidate rows (one module's port-contiguous occupancy words,
  // packable with the SIMD kernels), a serve row gathers one bit from each
  // of the m middle modules, so priming is a scalar gather. Rows persist
  // across batches (repair_masks keeps them truthful), so the gather is a
  // one-time cost per (output module, lane) pair, not a per-batch one.
  const ClosParams& params = network_->params();
  if (lane == kNoWavelength) {
    std::uint64_t* bits = serve_any_.data() + out_module * cand_words_;
    if (serve_any_stamp_[out_module] != batch_gen_) {
      serve_any_stamp_[out_module] = batch_gen_;
      masks_live_ = true;
      for (std::size_t w = 0; w < cand_words_; ++w) bits[w] = 0;
      for (std::size_t j = 0; j < params.m; ++j) {
        const SwitchModule& middle = network_->middle_module(j);
        bits[j >> 6] |= static_cast<std::uint64_t>(
                            middle.out_word(out_module) != middle.out_lane_mask())
                        << (j & 63);
      }
    }
    return bits;
  }
  const std::size_t row = out_module * params.k + lane;
  std::uint64_t* bits = serve_specific_.data() + row * cand_words_;
  if (serve_specific_stamp_[row] != batch_gen_) {
    serve_specific_stamp_[row] = batch_gen_;
    masks_live_ = true;
    for (std::size_t w = 0; w < cand_words_; ++w) bits[w] = 0;
    for (std::size_t j = 0; j < params.m; ++j) {
      bits[j >> 6] |= static_cast<std::uint64_t>(
                          network_->middle_module(j).out_lane_free(out_module, lane))
                      << (j & 63);
    }
  }
  return bits;
}

void Router::repair_masks(const MulticastRequest& request, const Route& route,
                          bool installed) const {
  if (!masks_live_) return;  // nothing primed yet: classic workloads pay nothing
  const ClosParams& params = network_->params();
  const std::size_t in_module = network_->input_module_of(request.input.port);
  const SwitchModule& input = network_->input_module(in_module);
  const auto assign_bit = [](std::uint64_t* row, std::size_t i, bool value) {
    const std::uint64_t bit = 1ull << (i & 63);
    if (value) {
      row[i >> 6] |= bit;
    } else {
      row[i >> 6] &= ~bit;
    }
  };
  // An install/release touches exactly: lane branch.link_lane on input-module
  // out port branch.middle (per branch), and lane leg.link_lane on the link
  // middle -> leg.out_module (per leg). The direction determines the new
  // cached bit outright -- install made those exact lanes busy, release
  // freed them -- so no module state is re-read except the any-free-lane
  // rows after an install (some other lane may or may not still be free).
  // Rows never primed fail the stamp check and are skipped.
  for (const RouteBranch& branch : route.branches) {
    const std::size_t j = branch.middle;
    const std::size_t cand_row = in_module * params.k + branch.link_lane;
    if (cand_msw_stamp_[cand_row] == batch_gen_) {
      assign_bit(cand_msw_.data() + cand_row * cand_words_, j, !installed);
    }
    if (cand_any_stamp_[in_module] == batch_gen_) {
      assign_bit(cand_any_.data() + in_module * cand_words_, j,
                 !installed || input.out_word(j) != input.out_lane_mask());
    }
    const SwitchModule& middle = network_->middle_module(j);
    for (const DeliveryLeg& leg : branch.legs) {
      const std::size_t p = leg.out_module;
      const std::size_t serve_row = p * params.k + leg.link_lane;
      if (serve_specific_stamp_[serve_row] == batch_gen_) {
        assign_bit(serve_specific_.data() + serve_row * cand_words_, j, !installed);
      }
      if (serve_any_stamp_[p] == batch_gen_) {
        assign_bit(serve_any_.data() + p * cand_words_, j,
                   !installed || middle.out_word(p) != middle.out_lane_mask());
      }
    }
  }
  // This mutation is now reflected in the masks; don't let begin_batch()
  // treat it as a foreign one.
  cached_epoch_ = network_->mutation_epoch();
}

const Route* Router::find_route_batched(const MulticastRequest& request,
                                        BatchAccum& acc) const {
  ++acc.attempts;
  {
  recycle_route();
  if (!build_demands(request)) {
    ++acc.blocked;
    return nullptr;
  }
  }
  const std::size_t in_module = network_->input_module_of(request.input.port);
  const Wavelength source_lane = request.input.lane;
  if (network_->active_fault_model() != nullptr) {
    // Fault-aware fallback: classic live probing. candidate_middles feeds
    // the registry directly, so counter totals still match a serial replay.
    candidate_middles(in_module, source_lane);
    if (candidates_.empty()) {
      ++acc.blocked;
      return nullptr;
    }
    build_serves_probing();
  } else {
    const ClosParams& params = network_->params();
    acc.middle_probes += params.m;
    const std::uint64_t* cand_row = ensure_candidate_row(in_module, source_lane);
    std::size_t n_candidates = 0;
    for (std::size_t w = 0; w < cand_words_; ++w) {
      cand_mask_[w] = cand_row[w];
      n_candidates += static_cast<std::size_t>(std::popcount(cand_row[w]));
    }
    RouterMetrics::get().candidates_per_attempt.record(n_candidates);
    if (n_candidates == 0) {
      ++acc.blocked;
      return nullptr;
    }
    // serves_ row t = (serve row of target t under its link-lane
    // requirement) AND the candidate mask -- exactly the predicate
    // build_serves_probing evaluates against live state, assembled from two
    // cached middle-masks per target instead of per-(candidate, target)
    // probes.
    const std::size_t n_targets = targets_.size();
    if (serves_.size() < n_targets * cand_words_) {
      serves_.resize(n_targets * cand_words_);
    }
    for (std::size_t t = 0; t < n_targets; ++t) {
      const std::size_t target = targets_[t];
      const std::uint64_t* serve =
          ensure_serve_row(target, demands_[target].required_link_lane);
      std::uint64_t* row = serves_.data() + t * cand_words_;
      for (std::size_t w = 0; w < cand_words_; ++w) {
        row[w] = serve[w] & cand_mask_[w];
      }
    }
  }
  const Route* route = cover_and_materialize(request);
  if (route != nullptr) {
    ++acc.found;
  } else {
    ++acc.blocked;
  }
  return route;
}

bool Router::batch_connect_one(const MulticastRequest& request, BatchOutcome& out,
                               BatchAccum& acc) {
  {
  if (const auto error = network_->check_admissible(request)) {
    last_error_ = *error;
    out = {false, 0, *error};
    return false;
  }
  }
  const Route* route = find_route_batched(request, acc);
  if (route == nullptr) {
    last_error_ = ConnectError::kBlocked;
    out = {false, 0, ConnectError::kBlocked};
    return false;
  }
  ++acc.connects;
  // The route was computed against current state and nothing ran in between:
  // skip the network-level re-validation that install() would repeat. The
  // scratch route is dead after this request, so hand its storage to the
  // slot outright (O(1) swap; route_ inherits the slot's previous vectors,
  // which the next request's recycle_route returns to the pools).
  ConnectionId id;
  {
    id = network_->install_trusted(request, std::move(route_));
  }
  {
  const auto* entry = network_->find_connection(id);
  repair_masks(entry->first, entry->second, /*installed=*/true);
  }
  out = {true, id, ConnectError::kBlocked};
  return true;
}

bool Router::batch_disconnect_one(ConnectionId id, BatchOutcome& out,
                                  BatchAccum& acc) {
  // The slot entry stays valid after release until the slot is reused, so it
  // can drive the mask repair for the freed lanes.
  const auto* entry = network_->find_connection(id);
  if (entry == nullptr) {
    out = {false, id, ConnectError::kBlocked};
    return false;
  }
  network_->release(id);
  ++acc.disconnects;
  repair_masks(entry->first, entry->second, /*installed=*/false);
  out = {true, id, ConnectError::kBlocked};
  return true;
}

void Router::flush_accum(const BatchAccum& acc) const {
  RouterMetrics& counters = RouterMetrics::get();
  if (acc.attempts != 0) counters.attempts.add(acc.attempts);
  if (acc.found != 0) counters.found.add(acc.found);
  if (acc.blocked != 0) counters.blocked.add(acc.blocked);
  if (acc.middle_probes != 0) counters.middle_probes.add(acc.middle_probes);
  if (acc.connects != 0) counters.connects.add(acc.connects);
  if (acc.disconnects != 0) counters.disconnects.add(acc.disconnects);
  if (pending_spread_ != 0) {
    counters.spread_expansions.add(pending_spread_);
    pending_spread_ = 0;
  }
}

std::size_t Router::run_batch(const BatchOp* ops, std::size_t count,
                              BatchOutcome* outcomes) {
  if (count == 0) return 0;
  const auto start = std::chrono::steady_clock::now();
  std::size_t succeeded = 0;
  if (count == 1) {
    // A batch of one IS the single-request path -- same counters and timers
    // to the bit -- plus the routing.batch_* instruments below.
    const BatchOp& op = ops[0];
    if (op.kind == BatchOp::Kind::kConnect) {
      const auto id = try_connect(op.request);
      outcomes[0] = {id.has_value(), id.value_or(0),
                     id.has_value() ? ConnectError::kBlocked : last_error_};
    } else {
      outcomes[0] = {try_disconnect(op.id), op.id, ConnectError::kBlocked};
    }
    succeeded = outcomes[0].ok ? 1 : 0;
  } else {
    TraceSpan span("routing.batch");
    span.arg("ops", static_cast<std::int64_t>(count));
    begin_batch();
    BatchAccum acc;
    for (std::size_t i = 0; i < count; ++i) {
      const BatchOp& op = ops[i];
      const bool ok = op.kind == BatchOp::Kind::kConnect
                          ? batch_connect_one(op.request, outcomes[i], acc)
                          : batch_disconnect_one(op.id, outcomes[i], acc);
      if (ok) ++succeeded;
    }
    flush_accum(acc);
  }
  BatchMetrics& batch_metrics = BatchMetrics::get();
  batch_metrics.batch_size.record(count);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  batch_metrics.batch_amortized.record_ns(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      count);
  return succeeded;
}

std::size_t Router::connect_batch(const MulticastRequest* requests, std::size_t count,
                                  BatchOutcome* outcomes) {
  if (count == 0) return 0;
  const auto start = std::chrono::steady_clock::now();
  std::size_t admitted = 0;
  if (count == 1) {
    const auto id = try_connect(requests[0]);
    outcomes[0] = {id.has_value(), id.value_or(0),
                   id.has_value() ? ConnectError::kBlocked : last_error_};
    admitted = outcomes[0].ok ? 1 : 0;
  } else {
    TraceSpan span("routing.batch");
    span.arg("ops", static_cast<std::int64_t>(count));
    begin_batch();
    BatchAccum acc;
    for (std::size_t i = 0; i < count; ++i) {
      if (batch_connect_one(requests[i], outcomes[i], acc)) ++admitted;
    }
    flush_accum(acc);
  }
  BatchMetrics& batch_metrics = BatchMetrics::get();
  batch_metrics.batch_size.record(count);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  batch_metrics.batch_amortized.record_ns(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
      count);
  return admitted;
}

}  // namespace wdm

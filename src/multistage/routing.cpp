#include "multistage/routing.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "faults/fault_model.h"
#include "util/metrics.h"
#include "util/trace_span.h"

namespace wdm {

namespace {

/// Router hot-path instruments (see docs/BENCHMARKS.md for definitions).
struct RouterMetrics {
  Counter& attempts = metrics().counter("routing.route_attempts");
  Counter& found = metrics().counter("routing.routes_found");
  Counter& blocked = metrics().counter("routing.route_blocked");
  Counter& middle_probes = metrics().counter("routing.middle_probes");
  Counter& spread_expansions = metrics().counter("routing.spread_expansions");
  Counter& connects = metrics().counter("routing.connects");
  Counter& disconnects = metrics().counter("routing.disconnects");
  TimerStat& find_route = metrics().timer("routing.find_route");
  Histogram& candidates_per_attempt =
      metrics().histogram("routing.candidates_per_attempt");

  static RouterMetrics& get() {
    static RouterMetrics instance;
    return instance;
  }
};

inline bool test_bit(const std::vector<std::uint64_t>& words, std::size_t i) {
  return (words[i >> 6] >> (i & 63)) & 1u;
}
inline void set_bit(std::vector<std::uint64_t>& words, std::size_t i) {
  words[i >> 6] |= 1ull << (i & 63);
}
inline void clear_bit(std::vector<std::uint64_t>& words, std::size_t i) {
  words[i >> 6] &= ~(1ull << (i & 63));
}

}  // namespace

Router::Router(ThreeStageNetwork& network, RoutingPolicy policy)
    : network_(&network), policy_(policy) {
  if (policy_.max_spread == 0) {
    throw std::invalid_argument("Router: max_spread must be >= 1");
  }
  const ClosParams& params = network_->params();
  demands_.resize(params.r);
  demand_stamp_.assign(params.r, 0);
  targets_.reserve(params.r);
  candidates_.reserve(params.m);
  chosen_.reserve(policy_.max_spread);
}

RoutingPolicy Router::recommended_policy(const ClosParams& params,
                                         Construction construction) {
  const NonblockingBound bound =
      construction == Construction::kMswDominant
          ? theorem1_min_m(params.n, params.r)
          : theorem2_min_m(params.n, params.r, params.k);
  return {bound.x, RouteSearch::kExhaustive};
}

void Router::candidate_middles(std::size_t in_module, Wavelength lane) const {
  const ClosParams& params = network_->params();
  const SwitchModule& input = network_->input_module(in_module);
  candidates_.clear();
  RouterMetrics& counters = RouterMetrics::get();
  counters.middle_probes.add(params.m);
  TraceSpan span("routing.middle_probe_loop");
  // Fault fast path: `faults` stays null unless a model is attached AND
  // carries an active fault, so a healthy network takes the original
  // branch-free checks.
  const FaultModel* faults = network_->active_fault_model();
  const bool msw = network_->construction() == Construction::kMswDominant;
  for (std::size_t j = 0; j < params.m; ++j) {
    if (faults != nullptr && faults->middle_failed(j)) continue;
    bool usable;
    if (msw) {
      usable = input.out_lane_free(j, lane) &&
               (faults == nullptr || faults->link12_usable(in_module, j, lane));
    } else if (faults == nullptr) {
      usable = input.free_out_lanes(j) > 0;
    } else {
      usable = usable_free_lane(input, j, LinkStage::kInputToMiddle, in_module);
    }
    if (usable) candidates_.push_back(j);
  }
  counters.candidates_per_attempt.record(candidates_.size());
  span.arg("probed", static_cast<std::int64_t>(params.m));
  span.arg("candidates", static_cast<std::int64_t>(candidates_.size()));
}

const Route* Router::find_route_instrumented(const MulticastRequest& request) const {
  RouterMetrics& counters = RouterMetrics::get();
  counters.attempts.add();
  ScopedTimer timer(counters.find_route);
  TraceSpan span("routing.find_route");
  span.arg("fanout", static_cast<std::int64_t>(request.outputs.size()));
  const Route* route = find_route_impl(request);
  span.arg("found", route != nullptr ? 1 : 0);
  (route != nullptr ? counters.found : counters.blocked).add();
  return route;
}

std::optional<Route> Router::find_route(const MulticastRequest& request) const {
  const Route* route = find_route_instrumented(request);
  if (route == nullptr) return std::nullopt;
  return *route;  // copy out of the scratch
}

void Router::recycle_route() const {
  for (RouteBranch& branch : route_.branches) {
    for (DeliveryLeg& leg : branch.legs) {
      leg.destinations.clear();
      spare_legs_.push_back(std::move(leg));
    }
    branch.legs.clear();
    spare_branches_.push_back(std::move(branch));
  }
  route_.branches.clear();
}

const Route* Router::find_route_impl(const MulticastRequest& request) const {
  recycle_route();

  const Construction construction = network_->construction();
  const MulticastModel output_model = network_->network_model();
  const std::size_t in_module = network_->input_module_of(request.input.port);
  const Wavelength source_lane = request.input.lane;

  // Group destinations by output module and work out each module's link-lane
  // requirement. The demand slots are stamp-gated: a slot belongs to this
  // request iff its stamp equals the fresh generation, so nothing is cleared
  // between requests. Targets are sorted ascending, reproducing the
  // iteration order of the std::map this replaced.
  const std::uint64_t gen = ++demand_gen_;
  targets_.clear();
  for (const auto& out : request.outputs) {
    const std::size_t module = network_->output_module_of(out.port);
    ModuleDemand& demand = demands_[module];
    if (demand_stamp_[module] != gen) {
      demand_stamp_[module] = gen;
      demand.destinations.clear();
      demand.required_link_lane = kNoWavelength;
      targets_.push_back(module);
    }
    demand.destinations.push_back(out);
  }
  std::sort(targets_.begin(), targets_.end());
  for (const std::size_t module : targets_) {
    ModuleDemand& demand = demands_[module];
    if (construction == Construction::kMswDominant) {
      // Stages 1-2 hold the source lane, so every module is fed on it.
      demand.required_link_lane = source_lane;
    } else if (output_model == MulticastModel::kMSW) {
      // MAW-dominant feeding an MSW output module: the module cannot
      // convert, so the link must already carry the destination lane (all
      // destinations in the module share it under an MSW network model).
      const Wavelength lane = demand.destinations.front().lane;
      for (const auto& dest : demand.destinations) {
        if (dest.lane != lane) return nullptr;  // unsatisfiable demand
      }
      demand.required_link_lane = lane;
    }
  }

  candidate_middles(in_module, source_lane);
  if (candidates_.empty()) return nullptr;

  // serves_ row c, bit t: can candidate c feed target t (targets ascending)?
  const std::size_t n_targets = targets_.size();
  const std::size_t n_candidates = candidates_.size();
  const std::size_t serve_words = (n_targets + 63) / 64;
  const std::size_t cand_words = (n_candidates + 63) / 64;
  const FaultModel* faults = network_->active_fault_model();
  serves_.assign(n_candidates * serve_words, 0);
  for (std::size_t c = 0; c < n_candidates; ++c) {
    const SwitchModule& middle = network_->middle_module(candidates_[c]);
    std::uint64_t* row = serves_.data() + c * serve_words;
    for (std::size_t t = 0; t < n_targets; ++t) {
      const ModuleDemand& demand = demands_[targets_[t]];
      bool serves;
      if (demand.required_link_lane == kNoWavelength) {
        serves = faults == nullptr
                     ? middle.free_out_lanes(targets_[t]) > 0
                     : usable_free_lane(middle, targets_[t],
                                        LinkStage::kMiddleToOutput, candidates_[c]);
      } else {
        serves =
            middle.out_lane_free(targets_[t], demand.required_link_lane) &&
            (faults == nullptr ||
             faults->link23_usable(candidates_[c], targets_[t],
                                   demand.required_link_lane));
      }
      if (serves) row[t >> 6] |= 1ull << (t & 63);
    }
  }

  // --- cover search: at most max_spread candidates covering all targets ---
  chosen_.clear();
  chosen_mask_.assign(cand_words, 0);
  covered_.assign(serve_words, 0);
  std::size_t uncovered = n_targets;
  if (newly_stack_.size() < policy_.max_spread * serve_words) {
    newly_stack_.resize(policy_.max_spread * serve_words);
  }

  auto coverage_gain = [&](std::size_t c) {
    const std::uint64_t* row = serves_.data() + c * serve_words;
    std::size_t gain = 0;
    for (std::size_t w = 0; w < serve_words; ++w) {
      gain += static_cast<std::size_t>(std::popcount(row[w] & ~covered_[w]));
    }
    return gain;
  };
  // apply/undo record the targets newly covered at each search level in
  // newly_stack_ row `level` (= chosen_.size() before/after the push).
  auto apply = [&](std::size_t c) {
    RouterMetrics::get().spread_expansions.add();
    const std::uint64_t* row = serves_.data() + c * serve_words;
    std::uint64_t* newly = newly_stack_.data() + chosen_.size() * serve_words;
    for (std::size_t w = 0; w < serve_words; ++w) {
      newly[w] = row[w] & ~covered_[w];
      covered_[w] |= newly[w];
      uncovered -= static_cast<std::size_t>(std::popcount(newly[w]));
    }
    chosen_.push_back(c);
    set_bit(chosen_mask_, c);
  };
  auto undo = [&]() {
    const std::size_t c = chosen_.back();
    chosen_.pop_back();
    clear_bit(chosen_mask_, c);
    const std::uint64_t* newly = newly_stack_.data() + chosen_.size() * serve_words;
    for (std::size_t w = 0; w < serve_words; ++w) {
      covered_[w] &= ~newly[w];
      uncovered += static_cast<std::size_t>(std::popcount(newly[w]));
    }
  };

  bool found = false;
  if (policy_.search == RouteSearch::kGreedy) {
    while (uncovered > 0 && chosen_.size() < policy_.max_spread) {
      std::size_t best = n_candidates;
      std::size_t best_gain = 0;
      for (std::size_t c = 0; c < n_candidates; ++c) {
        if (test_bit(chosen_mask_, c)) continue;
        const std::size_t gain = coverage_gain(c);
        if (gain > best_gain) {
          best_gain = gain;
          best = c;
        }
      }
      if (best == n_candidates) break;
      apply(best);
    }
    found = (uncovered == 0);
  } else {
    // Exhaustive: branch on the uncovered target with the fewest servers;
    // complete because any cover must include one of that target's servers.
    if (options_stack_.size() < policy_.max_spread) {
      options_stack_.resize(policy_.max_spread);
    }
    auto dfs = [&](auto&& self) -> bool {
      if (uncovered == 0) return true;
      if (chosen_.size() >= policy_.max_spread) return false;
      std::size_t pivot = n_targets;
      std::size_t pivot_servers = n_candidates + 1;
      for (std::size_t t = 0; t < n_targets; ++t) {
        if (test_bit(covered_, t)) continue;
        std::size_t servers = 0;
        for (std::size_t c = 0; c < n_candidates; ++c) {
          if (test_bit(serves_, c * serve_words * 64 + t) &&
              !test_bit(chosen_mask_, c)) {
            ++servers;
          }
        }
        if (servers == 0) return false;  // dead end
        if (servers < pivot_servers) {
          pivot_servers = servers;
          pivot = t;
        }
      }
      // Try the pivot's servers, highest additional coverage first.
      std::vector<std::size_t>& options = options_stack_[chosen_.size()];
      options.clear();
      for (std::size_t c = 0; c < n_candidates; ++c) {
        if (test_bit(serves_, c * serve_words * 64 + pivot) &&
            !test_bit(chosen_mask_, c)) {
          options.push_back(c);
        }
      }
      std::sort(options.begin(), options.end(), [&](std::size_t a, std::size_t b) {
        return coverage_gain(a) > coverage_gain(b);
      });
      for (const std::size_t c : options) {
        apply(c);
        if (self(self)) return true;
        undo();
      }
      return false;
    };
    found = dfs(dfs);
  }
  if (!found) return nullptr;

  // --- materialize the route: assign each target to its covering branch ---
  // Re-derive the assignment: walk chosen in order, give each chosen middle
  // the targets it serves that are still unassigned. Branches and legs come
  // from the spare pools so their nested vectors keep their capacity.
  assigned_.assign(serve_words, 0);
  const SwitchModule& input = network_->input_module(in_module);
  for (const std::size_t c : chosen_) {
    if (!spare_branches_.empty()) {
      route_.branches.push_back(std::move(spare_branches_.back()));
      spare_branches_.pop_back();
    } else {
      route_.branches.emplace_back();
    }
    RouteBranch& branch = route_.branches.back();
    branch.middle = candidates_[c];
    const SwitchModule& middle = network_->middle_module(branch.middle);
    for (std::size_t t = 0; t < n_targets; ++t) {
      if (test_bit(assigned_, t) || !test_bit(serves_, c * serve_words * 64 + t)) {
        continue;
      }
      set_bit(assigned_, t);
      const std::size_t module = targets_[t];
      const ModuleDemand& demand = demands_[module];
      if (!spare_legs_.empty()) {
        branch.legs.push_back(std::move(spare_legs_.back()));
        spare_legs_.pop_back();
      } else {
        branch.legs.emplace_back();
      }
      DeliveryLeg& leg = branch.legs.back();
      leg.out_module = module;
      if (demand.required_link_lane != kNoWavelength) {
        leg.link_lane = demand.required_link_lane;
      } else {
        // Preferred lane: the common destination lane when the module's
        // destinations agree (saves the output module a conversion), else
        // the source lane.
        Wavelength preferred = demand.destinations.front().lane;
        for (const auto& dest : demand.destinations) {
          if (dest.lane != preferred) {
            preferred = source_lane;
            break;
          }
        }
        const auto lane = pick_lane(middle, module, preferred,
                                    LinkStage::kMiddleToOutput, branch.middle);
        if (!lane) return nullptr;  // should not happen: serves_ said free
        leg.link_lane = *lane;
      }
      leg.destinations = demand.destinations;  // copy-assign: keeps capacity
    }
    if (branch.legs.empty()) {
      // Greedy may over-pick; drop the idle branch back into the pool.
      spare_branches_.push_back(std::move(route_.branches.back()));
      route_.branches.pop_back();
      continue;
    }
    if (network_->construction() == Construction::kMswDominant) {
      branch.link_lane = source_lane;
    } else {
      const auto lane = pick_lane(input, branch.middle, source_lane,
                                  LinkStage::kInputToMiddle, in_module);
      if (!lane) return nullptr;  // candidate check said a lane was free
      branch.link_lane = *lane;
    }
  }
  return &route_;
}

std::optional<Wavelength> Router::pick_lane(const SwitchModule& module,
                                            std::size_t out_port,
                                            Wavelength preferred,
                                            LinkStage stage,
                                            std::size_t from_module) const {
  const FaultModel* faults = network_->active_fault_model();
  if (faults == nullptr) {
    if (policy_.lanes == LanePolicy::kPreferSource &&
        module.out_lane_free(out_port, preferred)) {
      return preferred;
    }
    return module.lowest_free_out_lane(out_port);
  }
  const auto lane_usable = [&](Wavelength lane) {
    return stage == LinkStage::kInputToMiddle
               ? faults->link12_usable(from_module, out_port, lane)
               : faults->link23_usable(from_module, out_port, lane);
  };
  if (policy_.lanes == LanePolicy::kPreferSource &&
      module.out_lane_free(out_port, preferred) && lane_usable(preferred)) {
    return preferred;
  }
  for (Wavelength lane = 0; lane < module.lanes(); ++lane) {
    if (module.out_lane_free(out_port, lane) && lane_usable(lane)) return lane;
  }
  return std::nullopt;
}

bool Router::usable_free_lane(const SwitchModule& module, std::size_t out_port,
                              LinkStage stage, std::size_t from_module) const {
  const FaultModel* faults = network_->active_fault_model();
  if (faults == nullptr) return module.free_out_lanes(out_port) > 0;
  for (Wavelength lane = 0; lane < module.lanes(); ++lane) {
    if (!module.out_lane_free(out_port, lane)) continue;
    const bool usable = stage == LinkStage::kInputToMiddle
                            ? faults->link12_usable(from_module, out_port, lane)
                            : faults->link23_usable(from_module, out_port, lane);
    if (usable) return true;
  }
  return false;
}

std::size_t conversions_in_route(const MulticastRequest& request,
                                 const Route& route) {
  std::size_t conversions = 0;
  for (const RouteBranch& branch : route.branches) {
    if (branch.link_lane != request.input.lane) ++conversions;  // input module
    for (const DeliveryLeg& leg : branch.legs) {
      if (leg.link_lane != branch.link_lane) ++conversions;  // middle module
      for (const auto& dest : leg.destinations) {
        if (dest.lane != leg.link_lane) ++conversions;  // output module
      }
    }
  }
  return conversions;
}

std::optional<ConnectionId> Router::try_connect(const MulticastRequest& request) {
  if (const auto error = network_->check_admissible(request)) {
    last_error_ = *error;
    return std::nullopt;
  }
  const Route* route = find_route_instrumented(request);
  if (route == nullptr) {
    last_error_ = ConnectError::kBlocked;
    return std::nullopt;
  }
  RouterMetrics::get().connects.add();
  return network_->install(request, *route);
}

void Router::disconnect(ConnectionId id) {
  // Release first: a stale id throws, and a rejected disconnect must not
  // move the counter (it moved even on throw before the stale-id audit).
  network_->release(id);
  RouterMetrics::get().disconnects.add();
}

bool Router::try_disconnect(ConnectionId id) {
  if (!network_->try_release(id)) return false;
  RouterMetrics::get().disconnects.add();
  return true;
}

}  // namespace wdm

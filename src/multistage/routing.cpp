#include "multistage/routing.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "faults/fault_model.h"
#include "util/metrics.h"
#include "util/trace_span.h"

namespace wdm {

namespace {

/// Per-output-module delivery requirements of one request.
struct ModuleDemand {
  std::vector<WavelengthEndpoint> destinations;
  /// Set when the output module cannot convert (MSW): the one link lane that
  /// can feed it. kNoWavelength = any free lane acceptable.
  Wavelength required_link_lane = kNoWavelength;
};

/// Router hot-path instruments (see docs/BENCHMARKS.md for definitions).
struct RouterMetrics {
  Counter& attempts = metrics().counter("routing.route_attempts");
  Counter& found = metrics().counter("routing.routes_found");
  Counter& blocked = metrics().counter("routing.route_blocked");
  Counter& middle_probes = metrics().counter("routing.middle_probes");
  Counter& spread_expansions = metrics().counter("routing.spread_expansions");
  Counter& connects = metrics().counter("routing.connects");
  Counter& disconnects = metrics().counter("routing.disconnects");
  TimerStat& find_route = metrics().timer("routing.find_route");
  Histogram& candidates_per_attempt =
      metrics().histogram("routing.candidates_per_attempt");

  static RouterMetrics& get() {
    static RouterMetrics instance;
    return instance;
  }
};

}  // namespace

Router::Router(ThreeStageNetwork& network, RoutingPolicy policy)
    : network_(&network), policy_(policy) {
  if (policy_.max_spread == 0) {
    throw std::invalid_argument("Router: max_spread must be >= 1");
  }
}

RoutingPolicy Router::recommended_policy(const ClosParams& params,
                                         Construction construction) {
  const NonblockingBound bound =
      construction == Construction::kMswDominant
          ? theorem1_min_m(params.n, params.r)
          : theorem2_min_m(params.n, params.r, params.k);
  return {bound.x, RouteSearch::kExhaustive};
}

std::vector<std::size_t> Router::candidate_middles(std::size_t in_module,
                                                   Wavelength lane) const {
  const ClosParams& params = network_->params();
  const SwitchModule& input = network_->input_module(in_module);
  std::vector<std::size_t> candidates;
  candidates.reserve(params.m);
  RouterMetrics& counters = RouterMetrics::get();
  counters.middle_probes.add(params.m);
  TraceSpan span("routing.middle_probe_loop");
  // Fault fast path: `faults` stays null unless a model is attached AND
  // carries an active fault, so a healthy network takes the original
  // branch-free checks.
  const FaultModel* faults = network_->active_fault_model();
  const bool msw = network_->construction() == Construction::kMswDominant;
  for (std::size_t j = 0; j < params.m; ++j) {
    if (faults != nullptr && faults->middle_failed(j)) continue;
    bool usable;
    if (msw) {
      usable = input.out_lane_free(j, lane) &&
               (faults == nullptr || faults->link12_usable(in_module, j, lane));
    } else if (faults == nullptr) {
      usable = input.free_out_lanes(j) > 0;
    } else {
      usable = usable_free_lane(input, j, LinkStage::kInputToMiddle, in_module);
    }
    if (usable) candidates.push_back(j);
  }
  counters.candidates_per_attempt.record(candidates.size());
  span.arg("probed", static_cast<std::int64_t>(params.m));
  span.arg("candidates", static_cast<std::int64_t>(candidates.size()));
  return candidates;
}

std::optional<Route> Router::find_route(const MulticastRequest& request) const {
  RouterMetrics& counters = RouterMetrics::get();
  counters.attempts.add();
  ScopedTimer timer(counters.find_route);
  TraceSpan span("routing.find_route");
  span.arg("fanout", static_cast<std::int64_t>(request.outputs.size()));
  auto route = find_route_impl(request);
  span.arg("found", route ? 1 : 0);
  (route ? counters.found : counters.blocked).add();
  return route;
}

std::optional<Route> Router::find_route_impl(
    const MulticastRequest& request) const {
  const Construction construction = network_->construction();
  const MulticastModel output_model = network_->network_model();
  const std::size_t in_module = network_->input_module_of(request.input.port);
  const Wavelength source_lane = request.input.lane;

  // Group destinations by output module and work out each module's link-lane
  // requirement.
  std::map<std::size_t, ModuleDemand> demands;
  for (const auto& out : request.outputs) {
    demands[network_->output_module_of(out.port)].destinations.push_back(out);
  }
  for (auto& [module, demand] : demands) {
    if (construction == Construction::kMswDominant) {
      // Stages 1-2 hold the source lane, so every module is fed on it.
      demand.required_link_lane = source_lane;
    } else if (output_model == MulticastModel::kMSW) {
      // MAW-dominant feeding an MSW output module: the module cannot
      // convert, so the link must already carry the destination lane (all
      // destinations in the module share it under an MSW network model).
      const Wavelength lane = demand.destinations.front().lane;
      for (const auto& dest : demand.destinations) {
        if (dest.lane != lane) return std::nullopt;  // unsatisfiable demand
      }
      demand.required_link_lane = lane;
    }
  }

  const std::vector<std::size_t> candidates =
      candidate_middles(in_module, source_lane);
  if (candidates.empty()) return std::nullopt;

  // serves[c][t]: can candidate c feed target t (demands in map order)?
  std::vector<std::size_t> target_modules;
  target_modules.reserve(demands.size());
  for (const auto& [module, demand] : demands) target_modules.push_back(module);

  const std::size_t n_targets = target_modules.size();
  const FaultModel* faults = network_->active_fault_model();
  std::vector<std::vector<bool>> serves(candidates.size(),
                                        std::vector<bool>(n_targets, false));
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const SwitchModule& middle = network_->middle_module(candidates[c]);
    for (std::size_t t = 0; t < n_targets; ++t) {
      const ModuleDemand& demand = demands.at(target_modules[t]);
      if (demand.required_link_lane == kNoWavelength) {
        serves[c][t] =
            faults == nullptr
                ? middle.free_out_lanes(target_modules[t]) > 0
                : usable_free_lane(middle, target_modules[t],
                                   LinkStage::kMiddleToOutput, candidates[c]);
      } else {
        serves[c][t] =
            middle.out_lane_free(target_modules[t], demand.required_link_lane) &&
            (faults == nullptr ||
             faults->link23_usable(candidates[c], target_modules[t],
                                   demand.required_link_lane));
      }
    }
  }

  // --- cover search: at most max_spread candidates covering all targets ---
  std::vector<std::size_t> chosen;  // indices into `candidates`
  std::vector<bool> covered(n_targets, false);
  std::size_t uncovered = n_targets;

  auto coverage_gain = [&](std::size_t c) {
    std::size_t gain = 0;
    for (std::size_t t = 0; t < n_targets; ++t) {
      if (!covered[t] && serves[c][t]) ++gain;
    }
    return gain;
  };
  auto apply = [&](std::size_t c, std::vector<std::size_t>& newly) {
    RouterMetrics::get().spread_expansions.add();
    for (std::size_t t = 0; t < n_targets; ++t) {
      if (!covered[t] && serves[c][t]) {
        covered[t] = true;
        newly.push_back(t);
        --uncovered;
      }
    }
    chosen.push_back(c);
  };
  auto undo = [&](const std::vector<std::size_t>& newly) {
    for (const std::size_t t : newly) {
      covered[t] = false;
      ++uncovered;
    }
    chosen.pop_back();
  };

  bool found = false;
  if (policy_.search == RouteSearch::kGreedy) {
    while (uncovered > 0 && chosen.size() < policy_.max_spread) {
      std::size_t best = candidates.size();
      std::size_t best_gain = 0;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (std::find(chosen.begin(), chosen.end(), c) != chosen.end()) continue;
        const std::size_t gain = coverage_gain(c);
        if (gain > best_gain) {
          best_gain = gain;
          best = c;
        }
      }
      if (best == candidates.size()) break;
      std::vector<std::size_t> newly;
      apply(best, newly);
    }
    found = (uncovered == 0);
  } else {
    // Exhaustive: branch on the uncovered target with the fewest servers;
    // complete because any cover must include one of that target's servers.
    auto dfs = [&](auto&& self) -> bool {
      if (uncovered == 0) return true;
      if (chosen.size() >= policy_.max_spread) return false;
      std::size_t pivot = n_targets;
      std::size_t pivot_servers = candidates.size() + 1;
      for (std::size_t t = 0; t < n_targets; ++t) {
        if (covered[t]) continue;
        std::size_t servers = 0;
        for (std::size_t c = 0; c < candidates.size(); ++c) {
          if (serves[c][t] &&
              std::find(chosen.begin(), chosen.end(), c) == chosen.end()) {
            ++servers;
          }
        }
        if (servers == 0) return false;  // dead end
        if (servers < pivot_servers) {
          pivot_servers = servers;
          pivot = t;
        }
      }
      // Try the pivot's servers, highest additional coverage first.
      std::vector<std::size_t> options;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (serves[c][pivot] &&
            std::find(chosen.begin(), chosen.end(), c) == chosen.end()) {
          options.push_back(c);
        }
      }
      std::sort(options.begin(), options.end(), [&](std::size_t a, std::size_t b) {
        return coverage_gain(a) > coverage_gain(b);
      });
      for (const std::size_t c : options) {
        std::vector<std::size_t> newly;
        apply(c, newly);
        if (self(self)) return true;
        undo(newly);
      }
      return false;
    };
    found = dfs(dfs);
  }
  if (!found) return std::nullopt;

  // --- materialize the route: assign each target to its covering branch ---
  // Re-derive the assignment: walk chosen in order, give each chosen middle
  // the targets it serves that are still unassigned.
  std::vector<bool> assigned(n_targets, false);
  Route route;
  const SwitchModule& input = network_->input_module(in_module);
  for (const std::size_t c : chosen) {
    RouteBranch branch;
    branch.middle = candidates[c];
    const SwitchModule& middle = network_->middle_module(branch.middle);
    for (std::size_t t = 0; t < n_targets; ++t) {
      if (assigned[t] || !serves[c][t]) continue;
      assigned[t] = true;
      const std::size_t module = target_modules[t];
      const ModuleDemand& demand = demands.at(module);
      DeliveryLeg leg;
      leg.out_module = module;
      if (demand.required_link_lane != kNoWavelength) {
        leg.link_lane = demand.required_link_lane;
      } else {
        // Preferred lane: the common destination lane when the module's
        // destinations agree (saves the output module a conversion), else
        // the source lane.
        Wavelength preferred = demand.destinations.front().lane;
        for (const auto& dest : demand.destinations) {
          if (dest.lane != preferred) {
            preferred = source_lane;
            break;
          }
        }
        const auto lane = pick_lane(middle, module, preferred,
                                    LinkStage::kMiddleToOutput, branch.middle);
        if (!lane) return std::nullopt;  // should not happen: serves[] said free
        leg.link_lane = *lane;
      }
      leg.destinations = demand.destinations;
      branch.legs.push_back(std::move(leg));
    }
    if (branch.legs.empty()) continue;  // greedy may over-pick; drop idle branch
    if (network_->construction() == Construction::kMswDominant) {
      branch.link_lane = source_lane;
    } else {
      const auto lane = pick_lane(input, branch.middle, source_lane,
                                  LinkStage::kInputToMiddle, in_module);
      if (!lane) return std::nullopt;  // candidate check said a lane was free
      branch.link_lane = *lane;
    }
    route.branches.push_back(std::move(branch));
  }
  return route;
}

std::optional<Wavelength> Router::pick_lane(const SwitchModule& module,
                                            std::size_t out_port,
                                            Wavelength preferred,
                                            LinkStage stage,
                                            std::size_t from_module) const {
  const FaultModel* faults = network_->active_fault_model();
  if (faults == nullptr) {
    if (policy_.lanes == LanePolicy::kPreferSource &&
        module.out_lane_free(out_port, preferred)) {
      return preferred;
    }
    return module.lowest_free_out_lane(out_port);
  }
  const auto lane_usable = [&](Wavelength lane) {
    return stage == LinkStage::kInputToMiddle
               ? faults->link12_usable(from_module, out_port, lane)
               : faults->link23_usable(from_module, out_port, lane);
  };
  if (policy_.lanes == LanePolicy::kPreferSource &&
      module.out_lane_free(out_port, preferred) && lane_usable(preferred)) {
    return preferred;
  }
  for (Wavelength lane = 0; lane < module.lanes(); ++lane) {
    if (module.out_lane_free(out_port, lane) && lane_usable(lane)) return lane;
  }
  return std::nullopt;
}

bool Router::usable_free_lane(const SwitchModule& module, std::size_t out_port,
                              LinkStage stage, std::size_t from_module) const {
  const FaultModel* faults = network_->active_fault_model();
  if (faults == nullptr) return module.free_out_lanes(out_port) > 0;
  for (Wavelength lane = 0; lane < module.lanes(); ++lane) {
    if (!module.out_lane_free(out_port, lane)) continue;
    const bool usable = stage == LinkStage::kInputToMiddle
                            ? faults->link12_usable(from_module, out_port, lane)
                            : faults->link23_usable(from_module, out_port, lane);
    if (usable) return true;
  }
  return false;
}

std::size_t conversions_in_route(const MulticastRequest& request,
                                 const Route& route) {
  std::size_t conversions = 0;
  for (const RouteBranch& branch : route.branches) {
    if (branch.link_lane != request.input.lane) ++conversions;  // input module
    for (const DeliveryLeg& leg : branch.legs) {
      if (leg.link_lane != branch.link_lane) ++conversions;  // middle module
      for (const auto& dest : leg.destinations) {
        if (dest.lane != leg.link_lane) ++conversions;  // output module
      }
    }
  }
  return conversions;
}

std::optional<ConnectionId> Router::try_connect(const MulticastRequest& request) {
  if (const auto error = network_->check_admissible(request)) {
    last_error_ = *error;
    return std::nullopt;
  }
  const auto route = find_route(request);
  if (!route) {
    last_error_ = ConnectError::kBlocked;
    return std::nullopt;
  }
  RouterMetrics::get().connects.add();
  return network_->install(request, *route);
}

void Router::disconnect(ConnectionId id) {
  RouterMetrics::get().disconnects.add();
  network_->release(id);
}

}  // namespace wdm

#include "multistage/clos_params.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace wdm {

void ClosParams::validate() const {
  if (n == 0 || r == 0 || m == 0 || k == 0) {
    throw std::invalid_argument("ClosParams: all of n, r, m, k must be >= 1");
  }
  if (m < n) {
    throw std::invalid_argument(
        "ClosParams: m >= n required (fewer middle modules than module inputs "
        "cannot even carry a unicast permutation)");
  }
}

std::string ClosParams::to_string() const {
  std::ostringstream os;
  os << "Clos(n=" << n << ", r=" << r << ", m=" << m << ", k=" << k
     << ", N=" << port_count() << ")";
  return os.str();
}

ClosParams balanced_params(std::size_t N, std::size_t k, std::size_t m) {
  const auto root = static_cast<std::size_t>(std::llround(std::sqrt(static_cast<double>(N))));
  if (root * root != N) {
    throw std::invalid_argument("balanced_params: N must be a perfect square");
  }
  ClosParams params{root, root, m, k};
  params.validate();
  return params;
}

}  // namespace wdm

// Three-stage WDM multicast network state (paper §3, Fig. 8).
//
// ThreeStageNetwork embeds the full module grid -- r input modules (n x m),
// m middle modules (r x r), r output modules (m x n), every consecutive pair
// joined by one k-lane link -- and tracks which (link, lane) each active
// connection occupies. Stage-module models come from the construction
// (§3.1): MSW-dominant or MAW-dominant for stages 1-2, the network model for
// stage 3.
//
// A Route describes how one multicast connection threads the network: it
// splits at its input module toward at most x middle modules (branches);
// each branch's middle module fans out to the output modules it is
// responsible for (legs); each leg's output module delivers to the final
// destination wavelengths. install() validates a route end-to-end against
// every module's lane discipline before committing it, so the network state
// can never become physically meaningless; the Router (routing.h) is the
// component that *finds* routes.
//
// Hot-path data layout (see DESIGN.md): endpoint occupancy is flat
// `port * k + lane`-indexed vectors (0 = free) and the connection/transit
// tables are generation-checked free-list slots threaded on an
// insertion-order list, so install()/release() are O(route size) with zero
// steady-state heap allocations, and iteration over connections() preserves
// the old map's ascending-id (i.e. insertion) order. Like install/release
// themselves, the const validation queries reuse per-network scratch
// buffers, so a network must not be shared across threads without external
// synchronization (workloads that parallelize, e.g. sim/sweep, use one
// network per task; src/engine shards sessions across replicas, one mutex
// per network).
//
// Thread-safety contract, per method class:
//   * install/release/try_release and check_route mutate network state or
//     the mutable validation scratch -- exclusive access required.
//   * check_admissible, input_busy/output_busy, find_connection,
//     connections(), and the topology getters read only committed state
//     (flat busy vectors + slot table, no scratch), so concurrent readers
//     are safe with each other -- though still not with a concurrent writer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "combinatorics/multiset.h"
#include "core/connection.h"
#include "multistage/clos_params.h"
#include "multistage/module.h"

namespace wdm {

class FaultModel;

/// One output-module delivery of a route branch.
struct DeliveryLeg {
  std::size_t out_module = 0;
  /// Lane used on the middle-module -> output-module link.
  Wavelength link_lane = 0;
  /// Final destinations, all inside `out_module`.
  std::vector<WavelengthEndpoint> destinations;

  friend bool operator==(const DeliveryLeg&, const DeliveryLeg&) = default;
};

/// One middle-module subtree of a route.
struct RouteBranch {
  std::size_t middle = 0;
  /// Lane used on the input-module -> middle-module link.
  Wavelength link_lane = 0;
  std::vector<DeliveryLeg> legs;

  friend bool operator==(const RouteBranch&, const RouteBranch&) = default;
};

struct Route {
  std::vector<RouteBranch> branches;

  /// Number of middle modules used (the routing spread).
  [[nodiscard]] std::size_t spread() const { return branches.size(); }
  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const Route&, const Route&) = default;
};

class ThreeStageNetwork {
 public:
  /// Read-only view over the active connections, map-compatible: iterates
  /// (id, (request, route)) pairs in insertion order -- which is ascending
  /// creation order, exactly what the former std::map produced -- and
  /// supports at()/contains() in O(1) via the slot index embedded in the id.
  class ConnectionView {
   public:
    using Entry = std::pair<MulticastRequest, Route>;

    class const_iterator {
     public:
      using value_type = std::pair<ConnectionId, const Entry&>;

      const_iterator(const ThreeStageNetwork* network, std::uint32_t slot)
          : network_(network), slot_(slot) {}
      [[nodiscard]] value_type operator*() const;
      const_iterator& operator++();
      [[nodiscard]] bool operator==(const const_iterator&) const = default;

     private:
      const ThreeStageNetwork* network_;
      std::uint32_t slot_;
    };

    [[nodiscard]] const_iterator begin() const;
    [[nodiscard]] const_iterator end() const;
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] bool empty() const { return size() == 0; }
    [[nodiscard]] bool contains(ConnectionId id) const;
    /// Throws std::out_of_range for unknown ids (map::at contract).
    [[nodiscard]] const Entry& at(ConnectionId id) const;

   private:
    friend class ThreeStageNetwork;
    explicit ConnectionView(const ThreeStageNetwork* network) : network_(network) {}
    const ThreeStageNetwork* network_;
  };

  ThreeStageNetwork(ClosParams params, Construction construction,
                    MulticastModel network_model);

  [[nodiscard]] const ClosParams& params() const { return params_; }
  [[nodiscard]] Construction construction() const { return construction_; }
  [[nodiscard]] MulticastModel network_model() const { return network_model_; }
  [[nodiscard]] MulticastModel inner_model() const;
  [[nodiscard]] std::size_t port_count() const { return params_.port_count(); }
  [[nodiscard]] std::size_t lane_count() const { return params_.k; }

  // -- topology helpers -----------------------------------------------------
  [[nodiscard]] std::size_t input_module_of(std::size_t port) const {
    return port / params_.n;
  }
  [[nodiscard]] std::size_t output_module_of(std::size_t port) const {
    return port / params_.n;
  }
  [[nodiscard]] std::size_t local_port(std::size_t port) const {
    return port % params_.n;
  }

  [[nodiscard]] const SwitchModule& input_module(std::size_t i) const;
  [[nodiscard]] const SwitchModule& middle_module(std::size_t j) const;
  [[nodiscard]] const SwitchModule& output_module(std::size_t p) const;

  // -- fault awareness (src/faults) -----------------------------------------
  /// Attach (or detach, with nullptr) a fault model whose geometry matches
  /// this network; the caller keeps ownership. While attached, routing and
  /// route validation treat failed resources as unusable. With no model
  /// attached -- or an attached model carrying no active fault -- behavior
  /// is bit-identical to a fault-free network.
  void attach_fault_model(const FaultModel* faults);
  [[nodiscard]] const FaultModel* fault_model() const { return faults_; }

  /// The fault model, but only when it currently carries at least one
  /// active fault (the routing fast path: nullptr means "take the
  /// fault-free code path").
  [[nodiscard]] const FaultModel* active_fault_model() const;

  /// Middle module j is powered and reachable (true when no faults active).
  [[nodiscard]] bool middle_usable(std::size_t j) const;
  /// Lane `lane` of the input-module-i -> middle-j link can carry a signal.
  [[nodiscard]] bool link12_lane_usable(std::size_t i, std::size_t j,
                                        Wavelength lane) const;
  /// Lane `lane` of the middle-j -> output-module-p link can carry a signal.
  [[nodiscard]] bool link23_lane_usable(std::size_t j, std::size_t p,
                                        Wavelength lane) const;

  // -- admission ------------------------------------------------------------
  /// Shape legality under the network model plus endpoint availability.
  [[nodiscard]] std::optional<ConnectError> check_admissible(
      const MulticastRequest& request) const;

  /// Detailed route validation; nullopt = the route would install cleanly.
  [[nodiscard]] std::optional<std::string> check_route(
      const MulticastRequest& request, const Route& route) const;

  /// Commit a route. Throws std::logic_error with the check_route reason on
  /// any inconsistency.
  ConnectionId install(const MulticastRequest& request, const Route& route);

  /// Commit a route WITHOUT the check_admissible/check_route re-validation.
  /// Contract: `route` was produced by a Router against the network's
  /// current state with no intervening mutation (the batch pipeline's
  /// one-validation amortization; see DESIGN.md §3.10). A route violating
  /// the contract still trips the modules' own transit checks (which throw),
  /// but the caller owns the invariant -- misuse can leave a partial
  /// install. Behavior on valid routes is bit-identical to install().
  ConnectionId install_trusted(const MulticastRequest& request, const Route& route) {
    return commit_route(request, route);
  }

  /// install_trusted variant that takes ownership of `route` by swapping its
  /// branch vector into the connection slot (O(1) instead of a deep copy);
  /// `route` is left holding the slot's previous storage, whose nested
  /// capacity the caller can recycle. Same contract and committed state as
  /// install_trusted above.
  ConnectionId install_trusted(const MulticastRequest& request, Route&& route) {
    return commit_route_swapping(request, route);
  }

  /// Commit a route into the slot a released id names, reviving that EXACT
  /// id: after reinstall(id, ...), find_connection(id) is live again with
  /// the given request/route. This is the rollback primitive of the repack
  /// executor (repack/repack.h) -- undoing a break-before-make transaction
  /// must hand sessions back under the ids callers already hold. Requires
  /// `id` to name a currently-free slot (released, not reused); throws
  /// std::logic_error otherwise, and validates like install(). By default
  /// the revived connection joins the insertion-order view at the tail
  /// (same as any release + re-install); pass `after` to splice it back at
  /// an exact position instead -- directly after the live connection
  /// `*after` (or at the head when `*after == 0`). The repack executor
  /// captures each victim's predecessor_of() before releasing it and undoes
  /// in reverse, so a rolled-back transaction restores connections()
  /// iteration order bit-exactly. Re-arming the generation means ids the
  /// slot minted between the release and the reinstall may be minted again
  /// by a future occupant -- callers must guarantee no such intermediate id
  /// escaped (the repack executor does: its rollback tears every
  /// transaction-internal admission down before any reinstall, and those
  /// ids die with the transaction).
  ConnectionId reinstall(ConnectionId id, const MulticastRequest& request,
                         const Route& route,
                         std::optional<ConnectionId> after = std::nullopt);

  /// Id of the connection immediately before `id` in connections()
  /// iteration (insertion) order, or 0 when `id` is the first. Throws
  /// std::out_of_range for stale/unknown ids. This is the undo-log capture
  /// for reinstall(..., after): record it before releasing a connection and
  /// the pair (release, reinstall-after-predecessor) round-trips the view
  /// order exactly.
  [[nodiscard]] ConnectionId predecessor_of(ConnectionId id) const;

  /// Tear down a connection; throws std::out_of_range for unknown ids.
  void release(ConnectionId id);

  /// Non-throwing release. Returns false -- touching no state at all -- when
  /// `id` is stale: an unknown slot, a double-release, or a
  /// generation-tagged id from a slot that has since been disposed (and
  /// possibly reused by a newer connection). The free list and the live
  /// occupant of a reused slot are untouched either way.
  bool try_release(ConnectionId id);

  /// O(1) lookup of an active connection's (request, route); nullptr for
  /// stale ids. Reads only committed state (no validation scratch), so it is
  /// safe alongside other concurrent readers.
  [[nodiscard]] const ConnectionView::Entry* find_connection(ConnectionId id) const;

  /// The id encoding, exposed for layers that mirror the slot table without
  /// exclusive network access (the engine's lock-free session-generation
  /// table, obs/session_table.h): id = generation << 32 | slot. The
  /// generation is monotone per slot across reuse, which is what makes
  /// stale-id rejection -- here and in the lock-free mirror -- sound.
  [[nodiscard]] static std::uint32_t slot_of_id(ConnectionId id) {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  }
  [[nodiscard]] static std::uint32_t generation_of_id(ConnectionId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Monotone counter bumped by every occupancy mutation (commit_route and
  /// release). Cache layers above the network -- the Router's batch mask
  /// rows -- compare it against the epoch they last synced at to detect
  /// mutations that bypassed their repair hooks (e.g. a test or tool
  /// installing through the network directly) and invalidate wholesale
  /// instead of serving stale occupancy bits.
  [[nodiscard]] std::uint64_t mutation_epoch() const { return mutation_epoch_; }

  /// Shared route-storage pools (emptied branches/legs whose nested vectors
  /// keep their capacity). The slot copy machinery (copy_route_into) and the
  /// Router's scratch recycling draw from the SAME pools: the swapping
  /// install migrates storage between router scratch and connection slots,
  /// so with separate pools objects would drift one way (scratch -> slot ->
  /// network pool) and strand capacity, forcing the router to allocate fresh
  /// objects in steady state. One economy keeps the total object population
  /// monotone and the churn loop allocation-free once warm.
  [[nodiscard]] std::vector<RouteBranch>& branch_pool() {
    return spare_route_branches_;
  }
  [[nodiscard]] std::vector<DeliveryLeg>& leg_pool() {
    return spare_route_legs_;
  }

  [[nodiscard]] bool input_busy(const WavelengthEndpoint& endpoint) const;
  [[nodiscard]] bool output_busy(const WavelengthEndpoint& endpoint) const;
  [[nodiscard]] std::size_t active_connections() const { return active_count_; }
  [[nodiscard]] ConnectionView connections() const { return ConnectionView(this); }

  // -- analysis views (§3.3) ------------------------------------------------
  /// The destination multiset M_j of middle module j: multiplicity of output
  /// module p = number of lanes in use on the link j -> p (eq. 2).
  [[nodiscard]] DestinationMultiset middle_destination_multiset(std::size_t j) const;

  /// MSW-plane view: the set of output modules whose link from middle j has
  /// `lane` occupied (the ordinary destination set of §3.2).
  [[nodiscard]] std::vector<bool> middle_plane_destinations(std::size_t j,
                                                            Wavelength lane) const;

  /// Deep consistency check: every module self-checks, and busy-endpoint
  /// maps match the connection table. Throws std::logic_error on failure.
  void self_check() const;

 private:
  friend class ConnectionView;

  struct InstalledTransits {
    SwitchModule::TransitId input_transit = 0;
    std::vector<std::pair<std::size_t, SwitchModule::TransitId>> middle_transits;
    std::vector<std::pair<std::size_t, SwitchModule::TransitId>> output_transits;
  };

  /// One connection of the slot-reuse table. `entry`'s request/route vectors
  /// and the transit lists keep their capacity across slot reuse;
  /// `generation` is embedded in the public ConnectionId so stale ids are
  /// rejected in O(1); prev/next thread the insertion-order list behind
  /// ConnectionView.
  struct ConnectionSlot {
    ConnectionView::Entry entry;
    InstalledTransits transits;
    std::uint32_t generation = 0;
    std::uint32_t prev = kNoSlot;
    std::uint32_t next = kNoSlot;
    bool active = false;
  };

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  static ConnectionId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<ConnectionId>(generation) << 32) | slot;
  }
  /// Slot index of an id if it names an active connection, else kNoSlot.
  [[nodiscard]] std::uint32_t slot_of(ConnectionId id) const;

  /// The committing body of install(): slot acquisition, transit
  /// installation, endpoint marking. Both install() (after validating) and
  /// install_trusted() (router-validated routes) land here.
  ConnectionId commit_route(const MulticastRequest& request, const Route& route);
  /// commit_route with O(1) route ownership transfer instead of the deep
  /// copy; `route` is left holding the slot's previous storage.
  ConnectionId commit_route_swapping(const MulticastRequest& request, Route& route);
  /// Pop a free connection slot (or grow the table by one).
  [[nodiscard]] std::uint32_t acquire_slot();
  /// Shared tail of the commit_route variants: install the transits of the
  /// route already stored in `slot` and mark the endpoints busy.
  ConnectionId commit_slot(std::uint32_t slot);
  /// Unlink `slot` from the insertion-order list and re-link it directly
  /// after `prev_slot` (kNoSlot = new head). Occupancy is untouched; this
  /// is the reinstall(..., after) splice.
  void move_slot_after(std::uint32_t slot, std::uint32_t prev_slot);

  /// Structural copy of `src` into a slot's stored route that conserves
  /// nested-vector capacity: shrinking hands surplus branches/legs to the
  /// spare pools instead of destroying them, growing pulls them back. Plain
  /// vector copy-assign would free the nested buffers on every shrink, so a
  /// slot alternating between route shapes would re-allocate forever.
  void copy_route_into(Route& dst, const Route& src);

  [[nodiscard]] std::size_t endpoint_index(const WavelengthEndpoint& endpoint) const {
    return endpoint.port * params_.k + endpoint.lane;
  }

  ClosParams params_;
  Construction construction_;
  MulticastModel network_model_;

  std::vector<SwitchModule> inputs_;
  std::vector<SwitchModule> middles_;
  std::vector<SwitchModule> outputs_;

  const FaultModel* faults_ = nullptr;  // not owned; nullptr = fault-free

  // Flat endpoint occupancy: index = port * k + lane, value = owning
  // connection id (0 = free; ids are always nonzero).
  std::vector<ConnectionId> busy_inputs_;
  std::vector<ConnectionId> busy_outputs_;

  std::vector<ConnectionSlot> connection_slots_;
  std::vector<std::uint32_t> free_connection_slots_;
  // Branch/leg pools behind copy_route_into AND the Router's scratch
  // recycling (see branch_pool()/leg_pool()). Pooled objects hold emptied
  // but capacity-bearing nested vectors; since buffers are pooled rather
  // than freed, every buffer's capacity grows monotonically toward the
  // workload maximum and steady-state install() performs no heap
  // allocations.
  std::vector<RouteBranch> spare_route_branches_;
  std::vector<DeliveryLeg> spare_route_legs_;
  std::uint32_t head_ = kNoSlot;  // oldest active connection
  std::uint32_t tail_ = kNoSlot;  // newest active connection
  std::size_t active_count_ = 0;
  std::uint64_t mutation_epoch_ = 0;  // see mutation_epoch()

  // Reusable scratch for check_route/install (capacity survives calls, so
  // steady-state validation is allocation-free). The stamp arrays implement
  // "was this seen during generation g" sets without clearing: a cell is set
  // iff it equals the current generation counter.
  mutable std::vector<ModulePortLane> portlane_scratch_;
  mutable std::vector<std::uint64_t> endpoint_stamp_;  // per (port, lane)
  mutable std::vector<std::uint64_t> middle_stamp_;    // per middle module
  mutable std::vector<std::uint64_t> module_stamp_;    // per output module
  mutable std::uint64_t stamp_generation_ = 0;
};

}  // namespace wdm

// Three-stage WDM multicast network state (paper §3, Fig. 8).
//
// ThreeStageNetwork embeds the full module grid -- r input modules (n x m),
// m middle modules (r x r), r output modules (m x n), every consecutive pair
// joined by one k-lane link -- and tracks which (link, lane) each active
// connection occupies. Stage-module models come from the construction
// (§3.1): MSW-dominant or MAW-dominant for stages 1-2, the network model for
// stage 3.
//
// A Route describes how one multicast connection threads the network: it
// splits at its input module toward at most x middle modules (branches);
// each branch's middle module fans out to the output modules it is
// responsible for (legs); each leg's output module delivers to the final
// destination wavelengths. install() validates a route end-to-end against
// every module's lane discipline before committing it, so the network state
// can never become physically meaningless; the Router (routing.h) is the
// component that *finds* routes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "combinatorics/multiset.h"
#include "core/connection.h"
#include "multistage/clos_params.h"
#include "multistage/module.h"

namespace wdm {

class FaultModel;

/// One output-module delivery of a route branch.
struct DeliveryLeg {
  std::size_t out_module = 0;
  /// Lane used on the middle-module -> output-module link.
  Wavelength link_lane = 0;
  /// Final destinations, all inside `out_module`.
  std::vector<WavelengthEndpoint> destinations;
};

/// One middle-module subtree of a route.
struct RouteBranch {
  std::size_t middle = 0;
  /// Lane used on the input-module -> middle-module link.
  Wavelength link_lane = 0;
  std::vector<DeliveryLeg> legs;
};

struct Route {
  std::vector<RouteBranch> branches;

  /// Number of middle modules used (the routing spread).
  [[nodiscard]] std::size_t spread() const { return branches.size(); }
  [[nodiscard]] std::string to_string() const;
};

class ThreeStageNetwork {
 public:
  ThreeStageNetwork(ClosParams params, Construction construction,
                    MulticastModel network_model);

  [[nodiscard]] const ClosParams& params() const { return params_; }
  [[nodiscard]] Construction construction() const { return construction_; }
  [[nodiscard]] MulticastModel network_model() const { return network_model_; }
  [[nodiscard]] MulticastModel inner_model() const;
  [[nodiscard]] std::size_t port_count() const { return params_.port_count(); }
  [[nodiscard]] std::size_t lane_count() const { return params_.k; }

  // -- topology helpers -----------------------------------------------------
  [[nodiscard]] std::size_t input_module_of(std::size_t port) const {
    return port / params_.n;
  }
  [[nodiscard]] std::size_t output_module_of(std::size_t port) const {
    return port / params_.n;
  }
  [[nodiscard]] std::size_t local_port(std::size_t port) const {
    return port % params_.n;
  }

  [[nodiscard]] const SwitchModule& input_module(std::size_t i) const;
  [[nodiscard]] const SwitchModule& middle_module(std::size_t j) const;
  [[nodiscard]] const SwitchModule& output_module(std::size_t p) const;

  // -- fault awareness (src/faults) -----------------------------------------
  /// Attach (or detach, with nullptr) a fault model whose geometry matches
  /// this network; the caller keeps ownership. While attached, routing and
  /// route validation treat failed resources as unusable. With no model
  /// attached -- or an attached model carrying no active fault -- behavior
  /// is bit-identical to a fault-free network.
  void attach_fault_model(const FaultModel* faults);
  [[nodiscard]] const FaultModel* fault_model() const { return faults_; }

  /// The fault model, but only when it currently carries at least one
  /// active fault (the routing fast path: nullptr means "take the
  /// fault-free code path").
  [[nodiscard]] const FaultModel* active_fault_model() const;

  /// Middle module j is powered and reachable (true when no faults active).
  [[nodiscard]] bool middle_usable(std::size_t j) const;
  /// Lane `lane` of the input-module-i -> middle-j link can carry a signal.
  [[nodiscard]] bool link12_lane_usable(std::size_t i, std::size_t j,
                                        Wavelength lane) const;
  /// Lane `lane` of the middle-j -> output-module-p link can carry a signal.
  [[nodiscard]] bool link23_lane_usable(std::size_t j, std::size_t p,
                                        Wavelength lane) const;

  // -- admission ------------------------------------------------------------
  /// Shape legality under the network model plus endpoint availability.
  [[nodiscard]] std::optional<ConnectError> check_admissible(
      const MulticastRequest& request) const;

  /// Detailed route validation; nullopt = the route would install cleanly.
  [[nodiscard]] std::optional<std::string> check_route(
      const MulticastRequest& request, const Route& route) const;

  /// Commit a route. Throws std::logic_error with the check_route reason on
  /// any inconsistency.
  ConnectionId install(const MulticastRequest& request, const Route& route);

  /// Tear down a connection; throws std::out_of_range for unknown ids.
  void release(ConnectionId id);

  [[nodiscard]] bool input_busy(const WavelengthEndpoint& endpoint) const;
  [[nodiscard]] bool output_busy(const WavelengthEndpoint& endpoint) const;
  [[nodiscard]] std::size_t active_connections() const { return connections_.size(); }
  [[nodiscard]] const std::map<ConnectionId, std::pair<MulticastRequest, Route>>&
  connections() const {
    return connections_;
  }

  // -- analysis views (§3.3) ------------------------------------------------
  /// The destination multiset M_j of middle module j: multiplicity of output
  /// module p = number of lanes in use on the link j -> p (eq. 2).
  [[nodiscard]] DestinationMultiset middle_destination_multiset(std::size_t j) const;

  /// MSW-plane view: the set of output modules whose link from middle j has
  /// `lane` occupied (the ordinary destination set of §3.2).
  [[nodiscard]] std::vector<bool> middle_plane_destinations(std::size_t j,
                                                            Wavelength lane) const;

  /// Deep consistency check: every module self-checks, and busy-endpoint
  /// maps match the connection table. Throws std::logic_error on failure.
  void self_check() const;

 private:
  struct InstalledTransits {
    SwitchModule::TransitId input_transit = 0;
    std::vector<std::pair<std::size_t, SwitchModule::TransitId>> middle_transits;
    std::vector<std::pair<std::size_t, SwitchModule::TransitId>> output_transits;
  };

  ClosParams params_;
  Construction construction_;
  MulticastModel network_model_;

  std::vector<SwitchModule> inputs_;
  std::vector<SwitchModule> middles_;
  std::vector<SwitchModule> outputs_;

  const FaultModel* faults_ = nullptr;  // not owned; nullptr = fault-free

  std::map<ConnectionId, std::pair<MulticastRequest, Route>> connections_;
  std::map<ConnectionId, InstalledTransits> transits_;
  std::map<WavelengthEndpoint, ConnectionId> busy_inputs_;
  std::map<WavelengthEndpoint, ConnectionId> busy_outputs_;
  ConnectionId next_id_ = 1;
};

}  // namespace wdm

#include "multistage/builder.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "repack/repack.h"

namespace wdm {

ClosParams nonblocking_params(std::size_t n, std::size_t r, std::size_t k,
                              Construction construction) {
  const NonblockingBound bound = construction == Construction::kMswDominant
                                     ? theorem1_min_m(n, r)
                                     : theorem2_min_m(n, r, k);
  ClosParams params{n, r, std::max(bound.m, n), k};
  params.validate();
  return params;
}

MultistageSwitch::MultistageSwitch(ClosParams params, Construction construction,
                                   MulticastModel network_model,
                                   std::optional<RoutingPolicy> policy)
    : network_(params, construction, network_model),
      router_(network_,
              policy.value_or(Router::recommended_policy(params, construction))) {}

MultistageSwitch MultistageSwitch::nonblocking(std::size_t n, std::size_t r,
                                               std::size_t k,
                                               Construction construction,
                                               MulticastModel network_model) {
  return MultistageSwitch(nonblocking_params(n, r, k, construction), construction,
                          network_model);
}

MultistageSwitch::~MultistageSwitch() = default;

void MultistageSwitch::enable_repack(const repack::RepackPolicy& policy) {
  repack_ = std::make_unique<repack::RepackEngine>(router_, policy);
}

std::optional<ConnectionId> MultistageSwitch::connect_with_repack(
    const MulticastRequest& request) {
  return repack_ ? repack_->connect(request) : router_.try_connect(request);
}

ConnectionId MultistageSwitch::connect(const MulticastRequest& request) {
  const auto id = try_connect(request);
  if (!id) {
    throw std::runtime_error(std::string("MultistageSwitch::connect: ") +
                             connect_error_name(last_error()) + " for " +
                             request.to_string());
  }
  return *id;
}

}  // namespace wdm

// Rearrangeable routing: the classical baseline under the paper's theory.
//
// The multistage literature the paper builds on ([11]-[16]) rests on the
// Slepian-Duguid theorem: a three-stage Clos network with m >= n is
// *rearrangeably* nonblocking for unicast -- any permutation is routable if
// existing calls may be moved. Paull's matrix algorithm realizes this: rows
// are input modules, columns output modules, entries the middle modules
// carrying calls between them; a symbol may appear at most once per row and
// per column (one k=1 link each way). A new call takes a symbol free in its
// row and column, or triggers an alternating a/b swap chain.
//
// This gives the cost hierarchy the paper's Table 2 sits on top of:
//   rearrangeable unicast        m = n          (moves calls),
//   strict-sense unicast (Clos)  m = 2n-1       (never moves),
//   strict-sense multicast       m from Theorem 1 (never moves, multicast).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace wdm {

/// One call moved between middle modules during a rearrangement: the call
/// from input module `row` to output module `col` leaves `from_middle` for
/// `to_middle`. The one chain element shared by the offline Paull analyzer
/// (move_log / last_chain below) and the live repack subsystem (src/repack),
/// so both report swap chains in the same reusable form.
struct MiddleMove {
  std::size_t row, col;
  std::size_t from_middle, to_middle;

  friend bool operator==(const MiddleMove&, const MiddleMove&) = default;
};

class PaullMatrix {
 public:
  /// r x r matrix over m middle symbols; each input module has n ports (the
  /// per-row/column call count can then reach n).
  PaullMatrix(std::size_t r, std::size_t m, std::size_t n);

  [[nodiscard]] std::size_t rows() const { return r_; }
  [[nodiscard]] std::size_t symbols() const { return m_; }

  /// One moved call during an insertion.
  using Move = MiddleMove;

  /// Place a call from input module `row` to output module `col`. Returns
  /// the middle module assigned (rearranging existing calls if necessary)
  /// or nullopt when even rearrangement cannot help (only possible when the
  /// load is illegal or m < n). Moves performed are appended to the log.
  [[nodiscard]] std::optional<std::size_t> insert(std::size_t row, std::size_t col);

  /// Remove one call carried by `middle` between `row` and `col`; throws
  /// std::logic_error if absent.
  void remove(std::size_t row, std::size_t col, std::size_t middle);

  [[nodiscard]] std::size_t call_count() const { return calls_; }
  [[nodiscard]] const std::vector<Move>& move_log() const { return moves_; }

  /// The swap chain of the most recent insert(): the moves that call
  /// appended to move_log(), as a view into the log -- no per-call
  /// allocation, so planners can consume chains at churn rates. Empty when
  /// the insert took the fast path (or failed). Invalidated by the next
  /// insert (the log may reallocate).
  [[nodiscard]] std::span<const MiddleMove> last_chain() const {
    return {moves_.data() + last_insert_begin_,
            moves_.size() - last_insert_begin_};
  }

  /// Verify the Paull invariants (symbol once per row / column, counts
  /// within n); throws std::logic_error on violation.
  void check_invariants() const;

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  std::size_t r_, m_, n_;
  // row_col_[row][symbol] = column where this symbol is used in `row`.
  std::vector<std::vector<std::size_t>> row_col_;
  // col_row_[col][symbol] = row where this symbol is used in `col`.
  std::vector<std::vector<std::size_t>> col_row_;
  std::vector<std::size_t> row_count_;
  std::vector<std::size_t> col_count_;
  std::size_t calls_ = 0;
  std::vector<Move> moves_;
  std::size_t last_insert_begin_ = 0;  // move_log() offset of the last insert
};

struct PermutationRouting {
  /// middle_of_call[q] = middle module carrying input port q.
  std::vector<std::size_t> middle_of_call;
  std::size_t rearranged_calls = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Route the permutation `destination_of` (input port -> output port) on an
/// (n, r, m) Clos via Paull's algorithm. nullopt iff some call could not be
/// placed (never happens for m >= n -- Slepian-Duguid).
[[nodiscard]] std::optional<PermutationRouting> route_permutation(
    std::size_t n, std::size_t r, std::size_t m,
    const std::vector<std::size_t>& destination_of);

/// First-fit WITHOUT rearrangement (the strict-sense discipline): route the
/// permutation call by call, each taking a symbol free in row and column,
/// failing if none. Succeeds for every permutation when m >= 2n-1 (Clos'
/// theorem); may fail below.
[[nodiscard]] std::optional<PermutationRouting> route_permutation_first_fit(
    std::size_t n, std::size_t r, std::size_t m,
    const std::vector<std::size_t>& destination_of);

}  // namespace wdm

// The paper's routing strategy for three-stage WDM multicast networks.
//
// Each connection is realized through at most x middle modules (the spread;
// §3.2). Routing therefore reduces to a small set-cover feasibility
// question, which is exactly Lemma 4: x middle modules can carry the request
// iff every required output module is *served* by at least one of them,
// i.e. the intersection of their (restricted) destination sets is empty.
//
//   MSW-dominant: the connection stays on its source lane end-to-end through
//   stages 1-2, so middle module j is a candidate iff lane lambda is free on
//   the link in->j, and serves output module p iff lambda is free on j->p
//   (the per-wavelength-plane reduction of §3.2).
//
//   MAW-dominant: stages 1-2 convert freely, so j is a candidate iff the
//   link in->j has any free lane, and serves p iff the link j->p can carry
//   one more connection on whichever lane the *output* module's model needs:
//   any free lane for MSDW/MAW output modules, the destination lane itself
//   for MSW output modules (they cannot convert).
//
// The default search is exhaustive (complete within the spread limit):
// branch on the uncovered output module with the fewest serving candidates.
// A greedy most-coverage-first variant exists for ablation; it can block
// where the exhaustive search would not.
//
// Hot-path data layout (see DESIGN.md): the search runs entirely on
// per-router scratch buffers -- demands in a flat array indexed by output
// module (with stamp-based reset), the serves relation and cover state as
// 64-bit word masks, and the result route in a pooled scratch Route whose
// nested vectors keep their capacity -- so steady-state find_route +
// try_connect performs zero heap allocations. The scratch makes a Router
// single-threaded by construction (as it already was via its network).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "multistage/network.h"
#include "multistage/nonblocking.h"

namespace wdm {

enum class RouteSearch { kExhaustive, kGreedy };

/// Which lane an MAW-dominant route picks on a link when several are free
/// (MSW-dominant routes have no choice -- they hold the source lane).
///   kFirstFit     - lowest-numbered free lane (packs low lanes first);
///   kPreferSource - the connection's source lane when free, else first
///                   fit: minimizes wavelength conversions performed by the
///                   stage-1/2 MAW modules at no cost in routability.
enum class LanePolicy { kFirstFit, kPreferSource };

struct RoutingPolicy {
  /// Maximum middle modules per connection (the x of Theorems 1-2).
  std::size_t max_spread = 1;
  RouteSearch search = RouteSearch::kExhaustive;
  LanePolicy lanes = LanePolicy::kFirstFit;
};

/// One operation of a mixed batch (Router::run_batch).
struct BatchOp {
  enum class Kind { kConnect, kDisconnect };
  Kind kind = Kind::kConnect;
  MulticastRequest request;  // kConnect only
  ConnectionId id = 0;       // kDisconnect only
};

/// Per-operation outcome of a batch. Failed disconnects (stale ids) report
/// ok = false with the default error; failed connects carry the reason.
struct BatchOutcome {
  bool ok = false;
  ConnectionId id = 0;                          // admitted connects, torn-down disconnects
  ConnectError error = ConnectError::kBlocked;  // failed connects

  friend bool operator==(const BatchOutcome&, const BatchOutcome&) = default;
};

class Router {
 public:
  Router(ThreeStageNetwork& network, RoutingPolicy policy);

  /// Policy with the spread that optimizes the relevant theorem bound for
  /// this geometry (Theorem 1 for MSW-dominant, Theorem 2 for MAW-dominant).
  [[nodiscard]] static RoutingPolicy recommended_policy(const ClosParams& params,
                                                        Construction construction);

  [[nodiscard]] const RoutingPolicy& policy() const { return policy_; }
  [[nodiscard]] ThreeStageNetwork& network() { return *network_; }
  [[nodiscard]] const ThreeStageNetwork& network() const { return *network_; }

  /// Find a route for an (assumed admissible) request under the current
  /// network state. nullopt = blocked at the middle stage. The returned
  /// Route is a copy of the router's scratch; try_connect avoids the copy.
  [[nodiscard]] std::optional<Route> find_route(const MulticastRequest& request) const;

  /// Admission + routing + installation. nullopt on failure; the reason is
  /// retained in last_error().
  [[nodiscard]] std::optional<ConnectionId> try_connect(const MulticastRequest& request);

  void disconnect(ConnectionId id);

  /// Non-throwing disconnect; false (and no counter movement) for stale ids.
  bool try_disconnect(ConnectionId id);

  /// Validated id-reviving install of a route produced earlier against a
  /// state the network has since returned to -- the repack executor's
  /// rollback path (src/repack): reinstating a migrated session's original
  /// route, under its ORIGINAL id, after its lanes came free again (see
  /// ThreeStageNetwork::reinstall). Moves no routing counters (the session
  /// was counted when it first connected) but repairs any primed batch mask
  /// rows like every other occupancy change the router performs. `after`
  /// (a live id, or 0 for the head) splices the revived session back at an
  /// exact ConnectionView position so a full rollback restores iteration
  /// order bit-exactly; default is the tail. Throws like
  /// ThreeStageNetwork::install when the route no longer fits.
  ConnectionId reinstall(ConnectionId id, const MulticastRequest& request,
                         const Route& route,
                         std::optional<ConnectionId> after = std::nullopt);

  // -- batched request pipeline (DESIGN.md §3.10) ---------------------------
  // Operations execute strictly in submission order against live network
  // state, so every routing decision -- and with it every deterministic
  // counter -- is bit-identical to replaying the same ops one at a time
  // through try_connect/try_disconnect. The speedup is pure amortization:
  // lazily primed candidate/serve word masks shared by every request --
  // repaired in O(route size) after each install/release and kept truthful
  // across batches and interleaved single requests, so priming is a one-time
  // cost per (module, lane) pair -- trusted installs that skip the redundant
  // end-to-end re-validation, and instrumentation flushed once per batch. A
  // batch of size 1 delegates to the single-request path outright. With an
  // active fault model the mask caches are bypassed (per-request fault-aware
  // probing), order and outcomes unchanged.

  /// Execute a mixed connect/disconnect batch. `outcomes[i]` reports op i;
  /// returns the number of successful operations.
  std::size_t run_batch(const BatchOp* ops, std::size_t count, BatchOutcome* outcomes);

  /// Connect-only batch: admission + routing + installation per request, in
  /// order. Returns the number admitted.
  std::size_t connect_batch(const MulticastRequest* requests, std::size_t count,
                            BatchOutcome* outcomes);

  [[nodiscard]] ConnectError last_error() const { return last_error_; }

 private:
  /// Which inter-stage gap a link lives in (for fault lookups).
  enum class LinkStage { kInputToMiddle, kMiddleToOutput };

  /// Per-output-module delivery requirements of one request (scratch slot;
  /// `destinations` keeps its capacity across requests).
  struct ModuleDemand {
    std::vector<WavelengthEndpoint> destinations;
    /// Set when the output module cannot convert (MSW): the one link lane
    /// that can feed it. kNoWavelength = any free lane acceptable.
    Wavelength required_link_lane = kNoWavelength;
  };

  /// Deterministic-counter deltas of a batch, accumulated locally and
  /// flushed to the metrics registry once per batch so the registry totals
  /// match a serial replay while the hot loop touches no atomics.
  struct BatchAccum {
    std::uint64_t attempts = 0;
    std::uint64_t found = 0;
    std::uint64_t blocked = 0;
    std::uint64_t middle_probes = 0;
    std::uint64_t connects = 0;
    std::uint64_t disconnects = 0;
  };

  /// The uninstrumented search: fills the scratch `route_` and returns its
  /// address, or nullptr when blocked at the middle stage.
  [[nodiscard]] const Route* find_route_impl(const MulticastRequest& request) const;
  // find_route_impl is staged so the batched path can swap the probing stage
  // for mask gathers while sharing the decision-making stages verbatim:
  //   build_demands      - stamp per-output-module demands; false = a demand
  //                        is unsatisfiable under the output model (blocked
  //                        before any middle-stage probing).
  //   build_serves_probing - fill serves_ for candidates_ x targets_ by
  //                        probing live module state (single-request path).
  //   cover_and_materialize - Lemma-4 cover search + route materialization;
  //                        byte-for-byte the former find_route_impl tail, so
  //                        batched and single-request routing decisions are
  //                        identical by construction.
  [[nodiscard]] bool build_demands(const MulticastRequest& request) const;
  void build_serves_probing() const;
  [[nodiscard]] const Route* cover_and_materialize(const MulticastRequest& request) const;
  /// Batched-path search: identical decisions to find_route_impl, but
  /// candidates and the serves relation come from the batch mask caches
  /// (primed lazily, repaired after every install/release). Falls back to
  /// live probing when a fault model is active. Counter deltas go to `acc`.
  [[nodiscard]] const Route* find_route_batched(const MulticastRequest& request,
                                                BatchAccum& acc) const;
  /// find_route_impl wrapped with the route-attempt counters and the
  /// "routing.find_route" timer (see docs/BENCHMARKS.md); the result still
  /// points into the router's scratch.
  [[nodiscard]] const Route* find_route_instrumented(
      const MulticastRequest& request) const;
  /// Lane choice on a module's output link honoring the lane policy. The
  /// link runs `from_module` -> `out_port` in gap `stage`; with a degraded
  /// fault model attached, failed lanes are skipped.
  [[nodiscard]] std::optional<Wavelength> pick_lane(const SwitchModule& module,
                                                    std::size_t out_port,
                                                    Wavelength preferred,
                                                    LinkStage stage,
                                                    std::size_t from_module) const;
  /// Does the link have a lane that is both free and healthy? Equivalent to
  /// free_out_lanes(out_port) > 0 on a fault-free network.
  [[nodiscard]] bool usable_free_lane(const SwitchModule& module,
                                      std::size_t out_port, LinkStage stage,
                                      std::size_t from_module) const;
  /// Fill `candidates_` with the middle modules that could carry one more
  /// branch from input module `in_module` on source lane `lane`.
  void candidate_middles(std::size_t in_module, Wavelength lane) const;

  /// Move the previous scratch route's branches/legs back into the pools so
  /// their nested vectors' capacity is reused by the next request.
  void recycle_route() const;

  // -- batch mask caches ----------------------------------------------------
  // Word masks over middle modules (candidate side) and over output modules
  // (plane side), valid for the current batch generation only. Each row is
  // primed lazily from the module occupancy words the first time a batch
  // request needs it -- the lazy prime *is* the cross-request grouping: all
  // requests of the batch sharing a (module, lane) pair reuse one gather.
  /// Prime (if stale) and return the candidate row for `in_module`: bit j =
  /// middle j could carry one more branch from that module on `lane`
  /// (MSW-dominant: lane free on in->j; MAW-dominant: any lane free).
  [[nodiscard]] const std::uint64_t* ensure_candidate_row(std::size_t in_module,
                                                          Wavelength lane) const;
  /// Prime (if stale) and return the serving row for output module
  /// `out_module`: bit j = the link middle j -> out_module can deliver on
  /// `lane` (kNoWavelength = any free lane). Target-major, so one request
  /// needs one row per target instead of one lookup per (candidate, target).
  [[nodiscard]] const std::uint64_t* ensure_serve_row(std::size_t out_module,
                                                      Wavelength lane) const;
  /// Update the cached mask bits touched by `route` (each branch's
  /// candidate bit, each leg's serve bit). Called after every install
  /// (`installed` = true: the touched lanes just went busy, bits clear) and
  /// release (`installed` = false: the touched lanes just came free, bits
  /// set) the router performs -- batched or single-request -- so primed rows
  /// stay valid ACROSS batches; rows never primed are skipped. Only the
  /// any-free-lane rows after an install need a live module read; every
  /// other bit is implied by the direction. O(route size), independent of
  /// geometry. Syncs cached_epoch_, marking the network mutation as seen.
  void repair_masks(const MulticastRequest& request, const Route& route,
                    bool installed) const;
  /// Start a batch. Mask rows persist between batches; only a network
  /// mutation that bypassed the router's repair hooks (epoch advanced
  /// without us seeing it -- e.g. a direct network-level install by a test
  /// or tool) invalidates every row, in O(1).
  void begin_batch() const {
    if (network_->mutation_epoch() != cached_epoch_) {
      ++batch_gen_;
      cached_epoch_ = network_->mutation_epoch();
    }
  }

  /// One connect of a multi-op batch: admission, batched search, trusted
  /// install, mask repair. Updates `acc`; ok/id/error land in `out`.
  bool batch_connect_one(const MulticastRequest& request, BatchOutcome& out,
                         BatchAccum& acc);
  /// One disconnect of a multi-op batch: release + mask repair; false (and
  /// no counter movement) for stale ids.
  bool batch_disconnect_one(ConnectionId id, BatchOutcome& out, BatchAccum& acc);
  /// Push a batch's accumulated counter deltas into the metrics registry.
  void flush_accum(const BatchAccum& acc) const;

  ThreeStageNetwork* network_;
  RoutingPolicy policy_;
  ConnectError last_error_ = ConnectError::kBlocked;

  // -- reusable per-request scratch (see the header comment) ---------------
  // Demand slot per output module; a slot is live for the current request
  // iff its stamp equals demand_gen_ (no clearing between requests).
  mutable std::vector<ModuleDemand> demands_;
  mutable std::vector<std::uint64_t> demand_stamp_;
  mutable std::uint64_t demand_gen_ = 0;
  mutable std::vector<std::size_t> targets_;     // modules with demand, ascending
  mutable std::vector<std::size_t> candidates_;  // usable middle modules
  // serves_[t * cand_words_ + w]: bit j of word w set iff candidate middle j
  // can feed target t (target-major over middle-module indices; bits of
  // non-candidate middles are zero). covered_/assigned_ are word masks over
  // targets; cand_mask_/chosen_mask_ are word masks over middles (the
  // candidate set and the middles already chosen). chosen_ holds middle
  // module indices. gain_by_mid_[j] caches coverage gains for the
  // cover-search option sort; uint16 keeps the whole array within a cache
  // line or two (gains are bounded by the target count, indices by m).
  mutable std::vector<std::uint64_t> serves_;
  mutable std::vector<std::uint64_t> covered_;
  mutable std::vector<std::uint64_t> assigned_;
  mutable std::vector<std::uint64_t> cand_mask_;
  mutable std::vector<std::uint64_t> chosen_mask_;
  mutable std::vector<std::size_t> chosen_;
  mutable std::vector<std::uint16_t> gain_by_mid_;
  // Per-DFS-level scratch: the targets newly covered at each level (word
  // mask rows) and each level's candidate option list (middle indices;
  // uint16 halves the sort's element moves without touching its permutation,
  // which depends only on the comparator's gain values).
  mutable std::vector<std::uint64_t> newly_stack_;
  mutable std::vector<std::vector<std::uint16_t>> options_stack_;
  // Scratch result route. Emptied branches/legs are recycled through the
  // network's shared pools (branch_pool()/leg_pool()) so storage that the
  // swapping install migrates into connection slots flows back to the
  // router instead of stranding in a second pool system.
  mutable Route route_;

  // -- batch mask caches (see ensure_candidate_row / ensure_serve_row) -----
  // Rows are stamp-gated like demands_: a row is valid iff its stamp equals
  // batch_gen_. Rows persist across batches (begin_batch() only invalidates
  // after an unseen network mutation, in O(1)); every install/release the
  // router performs repairs the touched bits via repair_masks. All storage
  // is sized in the constructor, so the batched path allocates nothing in
  // steady state. Every row is a word mask over MIDDLE modules.
  mutable std::size_t cand_words_ = 0;  // words per middle-mask row (m middles)
  // cand_msw_[(i*k + lane) * cand_words_ ..]: per (input module, lane) row.
  // cand_any_[i * cand_words_ ..]: per input module any-free-lane row.
  mutable std::vector<std::uint64_t> cand_msw_;
  mutable std::vector<std::uint64_t> cand_any_;
  mutable std::vector<std::uint64_t> cand_msw_stamp_;
  mutable std::vector<std::uint64_t> cand_any_stamp_;
  // serve_specific_[(p*k + lane) * cand_words_ ..]: bit j = lane free on the
  // link middle j -> output module p. serve_any_[p * cand_words_ ..]: bit
  // j = any free lane on middle j -> p.
  mutable std::vector<std::uint64_t> serve_specific_;
  mutable std::vector<std::uint64_t> serve_any_;
  mutable std::vector<std::uint64_t> serve_specific_stamp_;
  mutable std::vector<std::uint64_t> serve_any_stamp_;
  mutable std::uint64_t batch_gen_ = 0;
  // Last network mutation epoch the mask caches have incorporated (primed or
  // repaired against); a mismatch in begin_batch() means someone mutated the
  // network behind the router's back.
  mutable std::uint64_t cached_epoch_ = 0;
  // True once any mask row has been primed. Gates the repair hooks on the
  // single-request paths so purely classic workloads pay nothing.
  mutable bool masks_live_ = false;
  // Spread expansions of the in-flight search, flushed by whichever path
  // (instrumented single-request or batch accumulator) owns the request.
  mutable std::uint64_t pending_spread_ = 0;
};

/// Number of wavelength conversions the route performs inside the network:
/// one whenever a link lane differs from the lane the signal arrived on
/// (stages 1-2), plus one per destination whose lane differs from the last
/// link lane (stage 3). Zero for any MSW-dominant route of an MSW request.
[[nodiscard]] std::size_t conversions_in_route(const MulticastRequest& request,
                                               const Route& route);

}  // namespace wdm

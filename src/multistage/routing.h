// The paper's routing strategy for three-stage WDM multicast networks.
//
// Each connection is realized through at most x middle modules (the spread;
// §3.2). Routing therefore reduces to a small set-cover feasibility
// question, which is exactly Lemma 4: x middle modules can carry the request
// iff every required output module is *served* by at least one of them,
// i.e. the intersection of their (restricted) destination sets is empty.
//
//   MSW-dominant: the connection stays on its source lane end-to-end through
//   stages 1-2, so middle module j is a candidate iff lane lambda is free on
//   the link in->j, and serves output module p iff lambda is free on j->p
//   (the per-wavelength-plane reduction of §3.2).
//
//   MAW-dominant: stages 1-2 convert freely, so j is a candidate iff the
//   link in->j has any free lane, and serves p iff the link j->p can carry
//   one more connection on whichever lane the *output* module's model needs:
//   any free lane for MSDW/MAW output modules, the destination lane itself
//   for MSW output modules (they cannot convert).
//
// The default search is exhaustive (complete within the spread limit):
// branch on the uncovered output module with the fewest serving candidates.
// A greedy most-coverage-first variant exists for ablation; it can block
// where the exhaustive search would not.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "multistage/network.h"
#include "multistage/nonblocking.h"

namespace wdm {

enum class RouteSearch { kExhaustive, kGreedy };

/// Which lane an MAW-dominant route picks on a link when several are free
/// (MSW-dominant routes have no choice -- they hold the source lane).
///   kFirstFit     - lowest-numbered free lane (packs low lanes first);
///   kPreferSource - the connection's source lane when free, else first
///                   fit: minimizes wavelength conversions performed by the
///                   stage-1/2 MAW modules at no cost in routability.
enum class LanePolicy { kFirstFit, kPreferSource };

struct RoutingPolicy {
  /// Maximum middle modules per connection (the x of Theorems 1-2).
  std::size_t max_spread = 1;
  RouteSearch search = RouteSearch::kExhaustive;
  LanePolicy lanes = LanePolicy::kFirstFit;
};

class Router {
 public:
  Router(ThreeStageNetwork& network, RoutingPolicy policy);

  /// Policy with the spread that optimizes the relevant theorem bound for
  /// this geometry (Theorem 1 for MSW-dominant, Theorem 2 for MAW-dominant).
  [[nodiscard]] static RoutingPolicy recommended_policy(const ClosParams& params,
                                                        Construction construction);

  [[nodiscard]] const RoutingPolicy& policy() const { return policy_; }
  [[nodiscard]] ThreeStageNetwork& network() { return *network_; }

  /// Find a route for an (assumed admissible) request under the current
  /// network state. nullopt = blocked at the middle stage.
  [[nodiscard]] std::optional<Route> find_route(const MulticastRequest& request) const;

  /// Admission + routing + installation. nullopt on failure; the reason is
  /// retained in last_error().
  [[nodiscard]] std::optional<ConnectionId> try_connect(const MulticastRequest& request);

  void disconnect(ConnectionId id);

  [[nodiscard]] ConnectError last_error() const { return last_error_; }

 private:
  /// Which inter-stage gap a link lives in (for fault lookups).
  enum class LinkStage { kInputToMiddle, kMiddleToOutput };

  /// The uninstrumented search; find_route wraps it with the route-attempt
  /// counters and the "routing.find_route" timer (see docs/BENCHMARKS.md).
  [[nodiscard]] std::optional<Route> find_route_impl(
      const MulticastRequest& request) const;
  /// Lane choice on a module's output link honoring the lane policy. The
  /// link runs `from_module` -> `out_port` in gap `stage`; with a degraded
  /// fault model attached, failed lanes are skipped.
  [[nodiscard]] std::optional<Wavelength> pick_lane(const SwitchModule& module,
                                                    std::size_t out_port,
                                                    Wavelength preferred,
                                                    LinkStage stage,
                                                    std::size_t from_module) const;
  /// Does the link have a lane that is both free and healthy? Equivalent to
  /// free_out_lanes(out_port) > 0 on a fault-free network.
  [[nodiscard]] bool usable_free_lane(const SwitchModule& module,
                                      std::size_t out_port, LinkStage stage,
                                      std::size_t from_module) const;
  /// Which middle modules could carry one more branch from input module i on
  /// source lane `lane`.
  [[nodiscard]] std::vector<std::size_t> candidate_middles(std::size_t in_module,
                                                           Wavelength lane) const;

  ThreeStageNetwork* network_;
  RoutingPolicy policy_;
  ConnectError last_error_ = ConnectError::kBlocked;
};

/// Number of wavelength conversions the route performs inside the network:
/// one whenever a link lane differs from the lane the signal arrived on
/// (stages 1-2), plus one per destination whose lane differs from the last
/// link lane (stage 3). Zero for any MSW-dominant route of an MSW request.
[[nodiscard]] std::size_t conversions_in_route(const MulticastRequest& request,
                                               const Route& route);

}  // namespace wdm

// The paper's routing strategy for three-stage WDM multicast networks.
//
// Each connection is realized through at most x middle modules (the spread;
// §3.2). Routing therefore reduces to a small set-cover feasibility
// question, which is exactly Lemma 4: x middle modules can carry the request
// iff every required output module is *served* by at least one of them,
// i.e. the intersection of their (restricted) destination sets is empty.
//
//   MSW-dominant: the connection stays on its source lane end-to-end through
//   stages 1-2, so middle module j is a candidate iff lane lambda is free on
//   the link in->j, and serves output module p iff lambda is free on j->p
//   (the per-wavelength-plane reduction of §3.2).
//
//   MAW-dominant: stages 1-2 convert freely, so j is a candidate iff the
//   link in->j has any free lane, and serves p iff the link j->p can carry
//   one more connection on whichever lane the *output* module's model needs:
//   any free lane for MSDW/MAW output modules, the destination lane itself
//   for MSW output modules (they cannot convert).
//
// The default search is exhaustive (complete within the spread limit):
// branch on the uncovered output module with the fewest serving candidates.
// A greedy most-coverage-first variant exists for ablation; it can block
// where the exhaustive search would not.
//
// Hot-path data layout (see DESIGN.md): the search runs entirely on
// per-router scratch buffers -- demands in a flat array indexed by output
// module (with stamp-based reset), the serves relation and cover state as
// 64-bit word masks, and the result route in a pooled scratch Route whose
// nested vectors keep their capacity -- so steady-state find_route +
// try_connect performs zero heap allocations. The scratch makes a Router
// single-threaded by construction (as it already was via its network).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "multistage/network.h"
#include "multistage/nonblocking.h"

namespace wdm {

enum class RouteSearch { kExhaustive, kGreedy };

/// Which lane an MAW-dominant route picks on a link when several are free
/// (MSW-dominant routes have no choice -- they hold the source lane).
///   kFirstFit     - lowest-numbered free lane (packs low lanes first);
///   kPreferSource - the connection's source lane when free, else first
///                   fit: minimizes wavelength conversions performed by the
///                   stage-1/2 MAW modules at no cost in routability.
enum class LanePolicy { kFirstFit, kPreferSource };

struct RoutingPolicy {
  /// Maximum middle modules per connection (the x of Theorems 1-2).
  std::size_t max_spread = 1;
  RouteSearch search = RouteSearch::kExhaustive;
  LanePolicy lanes = LanePolicy::kFirstFit;
};

class Router {
 public:
  Router(ThreeStageNetwork& network, RoutingPolicy policy);

  /// Policy with the spread that optimizes the relevant theorem bound for
  /// this geometry (Theorem 1 for MSW-dominant, Theorem 2 for MAW-dominant).
  [[nodiscard]] static RoutingPolicy recommended_policy(const ClosParams& params,
                                                        Construction construction);

  [[nodiscard]] const RoutingPolicy& policy() const { return policy_; }
  [[nodiscard]] ThreeStageNetwork& network() { return *network_; }
  [[nodiscard]] const ThreeStageNetwork& network() const { return *network_; }

  /// Find a route for an (assumed admissible) request under the current
  /// network state. nullopt = blocked at the middle stage. The returned
  /// Route is a copy of the router's scratch; try_connect avoids the copy.
  [[nodiscard]] std::optional<Route> find_route(const MulticastRequest& request) const;

  /// Admission + routing + installation. nullopt on failure; the reason is
  /// retained in last_error().
  [[nodiscard]] std::optional<ConnectionId> try_connect(const MulticastRequest& request);

  void disconnect(ConnectionId id);

  /// Non-throwing disconnect; false (and no counter movement) for stale ids.
  bool try_disconnect(ConnectionId id);

  [[nodiscard]] ConnectError last_error() const { return last_error_; }

 private:
  /// Which inter-stage gap a link lives in (for fault lookups).
  enum class LinkStage { kInputToMiddle, kMiddleToOutput };

  /// Per-output-module delivery requirements of one request (scratch slot;
  /// `destinations` keeps its capacity across requests).
  struct ModuleDemand {
    std::vector<WavelengthEndpoint> destinations;
    /// Set when the output module cannot convert (MSW): the one link lane
    /// that can feed it. kNoWavelength = any free lane acceptable.
    Wavelength required_link_lane = kNoWavelength;
  };

  /// The uninstrumented search: fills the scratch `route_` and returns its
  /// address, or nullptr when blocked at the middle stage.
  [[nodiscard]] const Route* find_route_impl(const MulticastRequest& request) const;
  /// find_route_impl wrapped with the route-attempt counters and the
  /// "routing.find_route" timer (see docs/BENCHMARKS.md); the result still
  /// points into the router's scratch.
  [[nodiscard]] const Route* find_route_instrumented(
      const MulticastRequest& request) const;
  /// Lane choice on a module's output link honoring the lane policy. The
  /// link runs `from_module` -> `out_port` in gap `stage`; with a degraded
  /// fault model attached, failed lanes are skipped.
  [[nodiscard]] std::optional<Wavelength> pick_lane(const SwitchModule& module,
                                                    std::size_t out_port,
                                                    Wavelength preferred,
                                                    LinkStage stage,
                                                    std::size_t from_module) const;
  /// Does the link have a lane that is both free and healthy? Equivalent to
  /// free_out_lanes(out_port) > 0 on a fault-free network.
  [[nodiscard]] bool usable_free_lane(const SwitchModule& module,
                                      std::size_t out_port, LinkStage stage,
                                      std::size_t from_module) const;
  /// Fill `candidates_` with the middle modules that could carry one more
  /// branch from input module `in_module` on source lane `lane`.
  void candidate_middles(std::size_t in_module, Wavelength lane) const;

  /// Move the previous scratch route's branches/legs back into the pools so
  /// their nested vectors' capacity is reused by the next request.
  void recycle_route() const;

  ThreeStageNetwork* network_;
  RoutingPolicy policy_;
  ConnectError last_error_ = ConnectError::kBlocked;

  // -- reusable per-request scratch (see the header comment) ---------------
  // Demand slot per output module; a slot is live for the current request
  // iff its stamp equals demand_gen_ (no clearing between requests).
  mutable std::vector<ModuleDemand> demands_;
  mutable std::vector<std::uint64_t> demand_stamp_;
  mutable std::uint64_t demand_gen_ = 0;
  mutable std::vector<std::size_t> targets_;     // modules with demand, ascending
  mutable std::vector<std::size_t> candidates_;  // usable middle modules
  // serves_[c * serve_words + w]: bit t of word w set iff candidate c can
  // feed target t. covered_/assigned_ are word masks over targets,
  // chosen_mask_ a word mask over candidates (replaces std::find scans).
  mutable std::vector<std::uint64_t> serves_;
  mutable std::vector<std::uint64_t> covered_;
  mutable std::vector<std::uint64_t> assigned_;
  mutable std::vector<std::uint64_t> chosen_mask_;
  mutable std::vector<std::size_t> chosen_;
  // Per-DFS-level scratch: the targets newly covered at each level (word
  // mask rows) and each level's candidate option list.
  mutable std::vector<std::uint64_t> newly_stack_;
  mutable std::vector<std::vector<std::size_t>> options_stack_;
  // Scratch result route plus branch/leg pools that conserve the capacity
  // of nested vectors while the route shrinks and grows across requests.
  mutable Route route_;
  mutable std::vector<RouteBranch> spare_branches_;
  mutable std::vector<DeliveryLeg> spare_legs_;
};

/// Number of wavelength conversions the route performs inside the network:
/// one whenever a link lane differs from the lane the signal arrived on
/// (stages 1-2), plus one per destination whose lane differs from the last
/// link lane (stage 3). Zero for any MSW-dominant route of an MSW request.
[[nodiscard]] std::size_t conversions_in_route(const MulticastRequest& request,
                                               const Route& route);

}  // namespace wdm

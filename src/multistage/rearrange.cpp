#include "multistage/rearrange.h"

#include <map>
#include <sstream>
#include <tuple>
#include <stdexcept>

namespace wdm {

PaullMatrix::PaullMatrix(std::size_t r, std::size_t m, std::size_t n)
    : r_(r), m_(m), n_(n) {
  if (r == 0 || m == 0 || n == 0) {
    throw std::invalid_argument("PaullMatrix: r, m, n >= 1");
  }
  row_col_.assign(r, std::vector<std::size_t>(m, kNone));
  col_row_.assign(r, std::vector<std::size_t>(m, kNone));
  row_count_.assign(r, 0);
  col_count_.assign(r, 0);
}

std::optional<std::size_t> PaullMatrix::insert(std::size_t row, std::size_t col) {
  if (row >= r_ || col >= r_) {
    throw std::out_of_range("PaullMatrix::insert: module index out of range");
  }
  last_insert_begin_ = moves_.size();  // last_chain() = everything appended below
  if (row_count_[row] >= n_ || col_count_[col] >= n_) {
    return std::nullopt;  // illegal load: more calls than module ports
  }

  // Fast path: a symbol free in both the row and the column.
  for (std::size_t s = 0; s < m_; ++s) {
    if (row_col_[row][s] == kNone && col_row_[col][s] == kNone) {
      row_col_[row][s] = col;
      col_row_[col][s] = row;
      ++row_count_[row];
      ++col_count_[col];
      ++calls_;
      return s;
    }
  }

  // Paull chain: pick a free-in-row symbol `a` and free-in-column symbol
  // `b`, then swap a<->b along the alternating chain so `a` becomes free in
  // the column too.
  std::size_t a = kNone, b = kNone;
  for (std::size_t s = 0; s < m_; ++s) {
    if (a == kNone && row_col_[row][s] == kNone) a = s;
    if (b == kNone && col_row_[col][s] == kNone) b = s;
  }
  if (a == kNone || b == kNone) return std::nullopt;  // m < n load pressure

  // Textbook alternating chain. We will give the new call symbol `a`, so
  // `a`'s existing occurrence in `col` must be displaced to `b`; if `b`
  // then collides in that row, its occurrence moves to `a`, and so on. The
  // chain visits distinct cells (an alternating path in the bipartite
  // row/column graph), so it terminates.
  // Loop invariant: the cell (pending_row, pending_col) carries
  // `from_symbol` (its row index says so) and must be converted to
  // `to_symbol`. The column index col_row_[pending_col][from_symbol] may
  // already point at a *kept* duplicate occurrence, so it is cleared only
  // when it points at this cell.
  std::size_t pending_row = col_row_[col][a];  // a is used in col (else fast path)
  std::size_t pending_col = col;
  const std::size_t from_symbol = a;
  const std::size_t to_symbol = b;
  while (pending_row != kNone) {
    const std::size_t r = pending_row;
    const std::size_t c = pending_col;
    // Where does `to_symbol` already occur in this row (the next row link)?
    const std::size_t to_col = row_col_[r][to_symbol];
    // Convert (r, c): from_symbol -> to_symbol.
    row_col_[r][from_symbol] = kNone;
    if (col_row_[c][from_symbol] == r) col_row_[c][from_symbol] = kNone;
    row_col_[r][to_symbol] = c;
    col_row_[c][to_symbol] = r;
    moves_.push_back({r, c, from_symbol, to_symbol});
    if (to_col == kNone) break;

    // to_symbol also sat at (r, to_col); convert that cell back to
    // from_symbol. from_symbol's prior occurrence in to_col (if any)
    // becomes the next conflict to displace.
    const std::size_t next_row = col_row_[to_col][from_symbol];
    if (col_row_[to_col][to_symbol] == r) col_row_[to_col][to_symbol] = kNone;
    row_col_[r][from_symbol] = to_col;
    col_row_[to_col][from_symbol] = r;
    moves_.push_back({r, to_col, to_symbol, from_symbol});
    if (next_row == kNone) break;
    pending_row = next_row;
    pending_col = to_col;
  }

  // `a` is now free in both row and col: place the new call on it.
  row_col_[row][a] = col;
  col_row_[col][a] = row;
  ++row_count_[row];
  ++col_count_[col];
  ++calls_;
  return a;
}

void PaullMatrix::remove(std::size_t row, std::size_t col, std::size_t middle) {
  if (row >= r_ || col >= r_ || middle >= m_) {
    throw std::out_of_range("PaullMatrix::remove: out of range");
  }
  if (row_col_[row][middle] != col || col_row_[col][middle] != row) {
    throw std::logic_error("PaullMatrix::remove: no such call");
  }
  row_col_[row][middle] = kNone;
  col_row_[col][middle] = kNone;
  --row_count_[row];
  --col_count_[col];
  --calls_;
}

void PaullMatrix::check_invariants() const {
  for (std::size_t row = 0; row < r_; ++row) {
    std::size_t count = 0;
    for (std::size_t s = 0; s < m_; ++s) {
      const std::size_t col = row_col_[row][s];
      if (col == kNone) continue;
      ++count;
      if (col >= r_ || col_row_[col][s] != row) {
        throw std::logic_error("PaullMatrix: row/column index mismatch");
      }
    }
    if (count != row_count_[row] || count > n_) {
      throw std::logic_error("PaullMatrix: row count invariant violated");
    }
  }
  for (std::size_t col = 0; col < r_; ++col) {
    std::size_t count = 0;
    for (std::size_t s = 0; s < m_; ++s) {
      if (col_row_[col][s] != kNone) ++count;
    }
    if (count != col_count_[col] || count > n_) {
      throw std::logic_error("PaullMatrix: column count invariant violated");
    }
  }
}

std::string PermutationRouting::to_string() const {
  std::ostringstream os;
  os << middle_of_call.size() << " calls, " << rearranged_calls
     << " rearranged";
  return os.str();
}

namespace {

void validate_permutation(std::size_t N, const std::vector<std::size_t>& perm) {
  if (perm.size() != N) {
    throw std::invalid_argument("route_permutation: permutation size != n*r");
  }
  std::vector<bool> seen(N, false);
  for (const std::size_t t : perm) {
    if (t >= N || seen[t]) {
      throw std::invalid_argument("route_permutation: not a permutation");
    }
    seen[t] = true;
  }
}

}  // namespace

std::optional<PermutationRouting> route_permutation(
    std::size_t n, std::size_t r, std::size_t m,
    const std::vector<std::size_t>& destination_of) {
  const std::size_t N = n * r;
  validate_permutation(N, destination_of);
  PaullMatrix matrix(r, m, n);
  PermutationRouting routing;
  routing.middle_of_call.resize(N);

  // Rearrangements move *earlier* calls between middles, so final
  // assignments are reconstructed by replaying the move log against a
  // (row, col, middle) -> call index map (a symbol appears once per row, so
  // the triple identifies the call uniquely).
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, std::size_t> cell_call;
  for (std::size_t q = 0; q < N; ++q) {
    const std::size_t row = q / n;
    const std::size_t col = destination_of[q] / n;
    const auto middle = matrix.insert(row, col);
    if (!middle) return std::nullopt;
    for (const MiddleMove& move : matrix.last_chain()) {
      const auto node = cell_call.extract({move.row, move.col, move.from_middle});
      if (node.empty()) {
        throw std::logic_error("route_permutation: move references unknown call");
      }
      const std::size_t moved_call = node.mapped();
      cell_call[{move.row, move.col, move.to_middle}] = moved_call;
      routing.middle_of_call[moved_call] = move.to_middle;
      ++routing.rearranged_calls;
    }
    cell_call[{row, col, *middle}] = q;
    routing.middle_of_call[q] = *middle;
    matrix.check_invariants();
  }
  return routing;
}

std::optional<PermutationRouting> route_permutation_first_fit(
    std::size_t n, std::size_t r, std::size_t m,
    const std::vector<std::size_t>& destination_of) {
  const std::size_t N = n * r;
  validate_permutation(N, destination_of);
  // Track row/column symbol usage directly (no chains).
  std::vector<std::vector<bool>> row_used(r, std::vector<bool>(m, false));
  std::vector<std::vector<bool>> col_used(r, std::vector<bool>(m, false));
  PermutationRouting routing;
  routing.middle_of_call.resize(N);
  for (std::size_t q = 0; q < N; ++q) {
    const std::size_t row = q / n;
    const std::size_t col = destination_of[q] / n;
    bool placed = false;
    for (std::size_t s = 0; s < m; ++s) {
      if (!row_used[row][s] && !col_used[col][s]) {
        row_used[row][s] = true;
        col_used[col][s] = true;
        routing.middle_of_call[q] = s;
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;
  }
  return routing;
}

}  // namespace wdm

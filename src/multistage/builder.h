// Assembled three-stage switch: network + router behind one interface.
//
// MultistageSwitch mirrors FabricSwitch's connection API so workloads can be
// replayed against either a crossbar fabric or a multistage network. The
// nonblocking() factory sizes the middle stage straight from Theorem 1 / 2
// and picks the optimizing routing spread, i.e. it constructs exactly the
// design point the paper proves nonblocking.
#pragma once

#include <memory>
#include <optional>

#include "multistage/routing.h"

namespace wdm {

namespace repack {
class RepackEngine;
struct RepackPolicy;
}  // namespace repack

/// ClosParams with m set to the smallest sufficient value from Theorem 1
/// (MSW-dominant) or Theorem 2 (MAW-dominant).
[[nodiscard]] ClosParams nonblocking_params(std::size_t n, std::size_t r,
                                            std::size_t k,
                                            Construction construction);

class MultistageSwitch {
 public:
  /// Explicit geometry; policy defaults to Router::recommended_policy.
  MultistageSwitch(ClosParams params, Construction construction,
                   MulticastModel network_model,
                   std::optional<RoutingPolicy> policy = std::nullopt);

  /// The paper's nonblocking design point for an (n*r) x (n*r) network.
  [[nodiscard]] static MultistageSwitch nonblocking(std::size_t n, std::size_t r,
                                                    std::size_t k,
                                                    Construction construction,
                                                    MulticastModel network_model);

  // Out of line: repack::RepackEngine is incomplete here (src/repack owns
  // it); the switch is never moved or copied (nonblocking() returns an
  // elided prvalue), so the declared destructor costs nothing.
  ~MultistageSwitch();

  [[nodiscard]] ThreeStageNetwork& network() { return network_; }
  [[nodiscard]] const ThreeStageNetwork& network() const { return network_; }
  [[nodiscard]] Router& router() { return router_; }

  [[nodiscard]] std::size_t port_count() const { return network_.port_count(); }
  [[nodiscard]] std::size_t lane_count() const { return network_.lane_count(); }
  [[nodiscard]] MulticastModel model() const { return network_.network_model(); }

  [[nodiscard]] std::optional<ConnectError> check_admissible(
      const MulticastRequest& request) const {
    return network_.check_admissible(request);
  }

  /// Route + install; nullopt on failure (reason in last_error()).
  [[nodiscard]] std::optional<ConnectionId> try_connect(const MulticastRequest& request) {
    return router_.try_connect(request);
  }

  /// Throwing variant of try_connect.
  ConnectionId connect(const MulticastRequest& request);

  void disconnect(ConnectionId id) { router_.disconnect(id); }

  /// Non-throwing disconnect; false for stale ids (see
  /// ThreeStageNetwork::try_release).
  bool try_disconnect(ConnectionId id) { return router_.try_disconnect(id); }

  /// Mixed connect/disconnect batch; see Router::run_batch for the ordering
  /// and bit-identity guarantees. Returns the number of successful ops.
  std::size_t run_batch(const BatchOp* ops, std::size_t count, BatchOutcome* outcomes) {
    return router_.run_batch(ops, count, outcomes);
  }

  /// Connect-only batch; see Router::connect_batch.
  std::size_t connect_batch(const MulticastRequest* requests, std::size_t count,
                            BatchOutcome* outcomes) {
    return router_.connect_batch(requests, count, outcomes);
  }

  [[nodiscard]] ConnectError last_error() const { return router_.last_error(); }
  [[nodiscard]] std::size_t active_connections() const {
    return network_.active_connections();
  }

  // -- rearrangeable mode (DESIGN.md §3.12) ----------------------------------

  /// Attach a repack engine: connect_with_repack may then migrate existing
  /// sessions to admit a request that blocks below the Theorem 1/2 bound.
  /// Replaces any previous engine (stats reset). The classic
  /// try_connect/connect/batch paths are untouched either way.
  void enable_repack(const repack::RepackPolicy& policy);

  /// try_connect, falling back to repack-on-block when a repack engine is
  /// attached and enabled. Without one (the default) this IS try_connect --
  /// same counters, same decisions.
  [[nodiscard]] std::optional<ConnectionId> connect_with_repack(
      const MulticastRequest& request);

  /// The attached repack engine (move stats, last_moved, the test seam), or
  /// nullptr when enable_repack was never called.
  [[nodiscard]] repack::RepackEngine* repack_engine() { return repack_.get(); }
  [[nodiscard]] const repack::RepackEngine* repack_engine() const {
    return repack_.get();
  }

 private:
  ThreeStageNetwork network_;
  Router router_;
  std::unique_ptr<repack::RepackEngine> repack_;
};

}  // namespace wdm

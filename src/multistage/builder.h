// Assembled three-stage switch: network + router behind one interface.
//
// MultistageSwitch mirrors FabricSwitch's connection API so workloads can be
// replayed against either a crossbar fabric or a multistage network. The
// nonblocking() factory sizes the middle stage straight from Theorem 1 / 2
// and picks the optimizing routing spread, i.e. it constructs exactly the
// design point the paper proves nonblocking.
#pragma once

#include <optional>

#include "multistage/routing.h"

namespace wdm {

/// ClosParams with m set to the smallest sufficient value from Theorem 1
/// (MSW-dominant) or Theorem 2 (MAW-dominant).
[[nodiscard]] ClosParams nonblocking_params(std::size_t n, std::size_t r,
                                            std::size_t k,
                                            Construction construction);

class MultistageSwitch {
 public:
  /// Explicit geometry; policy defaults to Router::recommended_policy.
  MultistageSwitch(ClosParams params, Construction construction,
                   MulticastModel network_model,
                   std::optional<RoutingPolicy> policy = std::nullopt);

  /// The paper's nonblocking design point for an (n*r) x (n*r) network.
  [[nodiscard]] static MultistageSwitch nonblocking(std::size_t n, std::size_t r,
                                                    std::size_t k,
                                                    Construction construction,
                                                    MulticastModel network_model);

  [[nodiscard]] ThreeStageNetwork& network() { return network_; }
  [[nodiscard]] const ThreeStageNetwork& network() const { return network_; }
  [[nodiscard]] Router& router() { return router_; }

  [[nodiscard]] std::size_t port_count() const { return network_.port_count(); }
  [[nodiscard]] std::size_t lane_count() const { return network_.lane_count(); }
  [[nodiscard]] MulticastModel model() const { return network_.network_model(); }

  [[nodiscard]] std::optional<ConnectError> check_admissible(
      const MulticastRequest& request) const {
    return network_.check_admissible(request);
  }

  /// Route + install; nullopt on failure (reason in last_error()).
  [[nodiscard]] std::optional<ConnectionId> try_connect(const MulticastRequest& request) {
    return router_.try_connect(request);
  }

  /// Throwing variant of try_connect.
  ConnectionId connect(const MulticastRequest& request);

  void disconnect(ConnectionId id) { router_.disconnect(id); }

  /// Non-throwing disconnect; false for stale ids (see
  /// ThreeStageNetwork::try_release).
  bool try_disconnect(ConnectionId id) { return router_.try_disconnect(id); }

  /// Mixed connect/disconnect batch; see Router::run_batch for the ordering
  /// and bit-identity guarantees. Returns the number of successful ops.
  std::size_t run_batch(const BatchOp* ops, std::size_t count, BatchOutcome* outcomes) {
    return router_.run_batch(ops, count, outcomes);
  }

  /// Connect-only batch; see Router::connect_batch.
  std::size_t connect_batch(const MulticastRequest* requests, std::size_t count,
                            BatchOutcome* outcomes) {
    return router_.connect_batch(requests, count, outcomes);
  }

  [[nodiscard]] ConnectError last_error() const { return router_.last_error(); }
  [[nodiscard]] std::size_t active_connections() const {
    return network_.active_connections();
  }

 private:
  ThreeStageNetwork network_;
  Router router_;
};

}  // namespace wdm

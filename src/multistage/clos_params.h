// Three-stage (Clos-type) network geometry (paper Fig. 8).
//
// An N x N network with N = n*r is built from
//   r  input-stage modules of size n x m,
//   m  middle-stage modules of size r x r,
//   r  output-stage modules of size m x n,
// with exactly one (k-wavelength) link between every pair of modules in
// consecutive stages. Construction flavor (§3.1): the first two stages are
// either all-MSW (MSW-dominant) or all-MAW (MAW-dominant); the output stage
// carries the network's own model.
#pragma once

#include <cstdint>
#include <string>

namespace wdm {

struct ClosParams {
  std::size_t n = 1;  // input ports per input module (= output ports per output module)
  std::size_t r = 1;  // number of input (= output) modules
  std::size_t m = 1;  // number of middle modules
  std::size_t k = 1;  // wavelengths per fiber link

  [[nodiscard]] std::size_t port_count() const { return n * r; }  // N

  /// Throws std::invalid_argument unless all fields >= 1 and m >= n (the
  /// minimum for the network to even be rearrangeable for unicast).
  void validate() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ClosParams&, const ClosParams&) = default;
};

enum class Construction { kMswDominant, kMawDominant };

[[nodiscard]] inline const char* construction_name(Construction construction) {
  return construction == Construction::kMswDominant ? "MSW-dominant" : "MAW-dominant";
}

/// Balanced geometry n = r = sqrt(N) used for the §3.4 cost analysis.
/// Throws std::invalid_argument if N is not a perfect square.
[[nodiscard]] ClosParams balanced_params(std::size_t N, std::size_t k, std::size_t m);

}  // namespace wdm

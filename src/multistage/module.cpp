#include "multistage/module.h"

#include <bit>
#include <stdexcept>

namespace wdm {

std::string ModulePortLane::to_string() const {
  return "(port " + std::to_string(port) + ", " + wavelength_name(lane) + ")";
}

SwitchModule::SwitchModule(std::size_t in_ports, std::size_t out_ports,
                           std::size_t lanes, MulticastModel model, std::string name)
    : lanes_(lanes), model_(model), name_(std::move(name)) {
  if (in_ports == 0 || out_ports == 0 || lanes == 0) {
    throw std::invalid_argument("SwitchModule: ports and lanes must be >= 1");
  }
  if (lanes > kMaxLanes) {
    throw std::invalid_argument(
        "SwitchModule: lanes must be <= 64 (per-port occupancy is one "
        "64-bit word; requested " + std::to_string(lanes) + ")");
  }
  lane_mask_ = lanes == 64 ? ~0ull : (1ull << lanes) - 1;
  in_used_.assign(in_ports, 0);
  out_used_.assign(out_ports, 0);
}

std::optional<std::string> SwitchModule::check_transit(
    const ModulePortLane& in, const std::vector<ModulePortLane>& outs) const {
  if (outs.empty()) return "transit has no outputs";
  if (in.port >= in_ports() || in.lane >= lanes_) {
    return "inbound " + in.to_string() + " out of range";
  }
  if (in_used_[in.port] >> in.lane & 1u) {
    return "inbound " + in.to_string() + " already carries a connection";
  }
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const ModulePortLane& out = outs[i];
    if (out.port >= out_ports() || out.lane >= lanes_) {
      return "outbound " + out.to_string() + " out of range";
    }
    // Duplicate-port scan instead of a std::set: outs is small (one entry
    // per distinct output port) and this keeps the check allocation-free.
    for (std::size_t j = 0; j < i; ++j) {
      if (outs[j].port == out.port) {
        return "two outbound lanes on port " + std::to_string(out.port) +
               " in one transit";
      }
    }
    if (out_used_[out.port] >> out.lane & 1u) {
      return "outbound " + out.to_string() + " already carries a connection";
    }
  }
  switch (model_) {
    case MulticastModel::kMSW:
      for (const auto& out : outs) {
        if (out.lane != in.lane) {
          return "MSW module cannot convert " + wavelength_name(in.lane) +
                 " to " + wavelength_name(out.lane);
        }
      }
      break;
    case MulticastModel::kMSDW: {
      const Wavelength lane = outs.front().lane;
      for (const auto& out : outs) {
        if (out.lane != lane) {
          return "MSDW module requires a single outbound lane per transit";
        }
      }
      break;
    }
    case MulticastModel::kMAW:
      break;
  }
  return std::nullopt;
}

SwitchModule::TransitId SwitchModule::add_transit(
    const ModulePortLane& in, const std::vector<ModulePortLane>& outs) {
  if (const auto reason = check_transit(in, outs)) {
    throw std::logic_error("SwitchModule[" + name_ + "]::add_transit: " + *reason);
  }
  in_used_[in.port] |= 1ull << in.lane;
  for (const auto& out : outs) out_used_[out.port] |= 1ull << out.lane;

  std::uint32_t slot;
  if (!free_transit_slots_.empty()) {
    slot = free_transit_slots_.back();
    free_transit_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(transit_slots_.size());
    transit_slots_.emplace_back();
  }
  TransitSlot& entry = transit_slots_[slot];
  entry.in = in;
  entry.outs = outs;  // copy-assign: a reused slot keeps its capacity
  ++entry.generation;
  entry.active = true;
  ++active_transits_;
  return make_id(slot, entry.generation);
}

void SwitchModule::remove_transit(TransitId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= transit_slots_.size() || !transit_slots_[slot].active ||
      transit_slots_[slot].generation != generation) {
    throw std::out_of_range("SwitchModule[" + name_ + "]: unknown transit id");
  }
  TransitSlot& entry = transit_slots_[slot];
  in_used_[entry.in.port] &= ~(1ull << entry.in.lane);
  for (const auto& out : entry.outs) out_used_[out.port] &= ~(1ull << out.lane);
  entry.active = false;
  --active_transits_;
  free_transit_slots_.push_back(slot);
}

std::size_t SwitchModule::free_out_lanes(std::size_t port) const {
  if (port >= out_used_.size()) {
    throw std::out_of_range("SwitchModule[" + name_ + "]: port out of range");
  }
  return static_cast<std::size_t>(
      std::popcount(~out_used_[port] & lane_mask_));
}

std::size_t SwitchModule::free_in_lanes(std::size_t port) const {
  if (port >= in_used_.size()) {
    throw std::out_of_range("SwitchModule[" + name_ + "]: port out of range");
  }
  return static_cast<std::size_t>(std::popcount(~in_used_[port] & lane_mask_));
}

std::optional<Wavelength> SwitchModule::lowest_free_out_lane(std::size_t port) const {
  if (port >= out_used_.size()) {
    throw std::out_of_range("SwitchModule[" + name_ + "]: port out of range");
  }
  const std::uint64_t free = ~out_used_[port] & lane_mask_;
  if (free == 0) return std::nullopt;
  return static_cast<Wavelength>(std::countr_zero(free));
}

void SwitchModule::self_check() const {
  std::vector<std::uint64_t> in_expected(in_ports(), 0);
  std::vector<std::uint64_t> out_expected(out_ports(), 0);
  std::size_t active = 0;
  for (const TransitSlot& entry : transit_slots_) {
    if (!entry.active) continue;
    ++active;
    if (in_expected[entry.in.port] >> entry.in.lane & 1u) {
      throw std::logic_error("SwitchModule[" + name_ +
                             "]: two transits share an inbound wavelength");
    }
    in_expected[entry.in.port] |= 1ull << entry.in.lane;
    for (const auto& out : entry.outs) {
      if (out_expected[out.port] >> out.lane & 1u) {
        throw std::logic_error("SwitchModule[" + name_ +
                               "]: two transits share an outbound wavelength");
      }
      out_expected[out.port] |= 1ull << out.lane;
    }
  }
  if (active != active_transits_) {
    throw std::logic_error("SwitchModule[" + name_ +
                           "]: active transit count diverged from slot table");
  }
  if (in_expected != in_used_ || out_expected != out_used_) {
    throw std::logic_error("SwitchModule[" + name_ +
                           "]: occupancy bitmap diverged from transit list");
  }
}

}  // namespace wdm

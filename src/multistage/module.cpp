#include "multistage/module.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace wdm {

std::string ModulePortLane::to_string() const {
  return "(port " + std::to_string(port) + ", " + wavelength_name(lane) + ")";
}

SwitchModule::SwitchModule(std::size_t in_ports, std::size_t out_ports,
                           std::size_t lanes, MulticastModel model, std::string name)
    : lanes_(lanes), model_(model), name_(std::move(name)) {
  if (in_ports == 0 || out_ports == 0 || lanes == 0) {
    throw std::invalid_argument("SwitchModule: ports and lanes must be >= 1");
  }
  in_used_.assign(in_ports, std::vector<bool>(lanes, false));
  out_used_.assign(out_ports, std::vector<bool>(lanes, false));
}

std::optional<std::string> SwitchModule::check_transit(
    const ModulePortLane& in, const std::vector<ModulePortLane>& outs) const {
  if (outs.empty()) return "transit has no outputs";
  if (in.port >= in_ports() || in.lane >= lanes_) {
    return "inbound " + in.to_string() + " out of range";
  }
  if (in_used_[in.port][in.lane]) {
    return "inbound " + in.to_string() + " already carries a connection";
  }
  std::set<std::size_t> out_ports_seen;
  for (const auto& out : outs) {
    if (out.port >= out_ports() || out.lane >= lanes_) {
      return "outbound " + out.to_string() + " out of range";
    }
    if (!out_ports_seen.insert(out.port).second) {
      return "two outbound lanes on port " + std::to_string(out.port) +
             " in one transit";
    }
    if (out_used_[out.port][out.lane]) {
      return "outbound " + out.to_string() + " already carries a connection";
    }
  }
  switch (model_) {
    case MulticastModel::kMSW:
      for (const auto& out : outs) {
        if (out.lane != in.lane) {
          return "MSW module cannot convert " + wavelength_name(in.lane) +
                 " to " + wavelength_name(out.lane);
        }
      }
      break;
    case MulticastModel::kMSDW: {
      const Wavelength lane = outs.front().lane;
      for (const auto& out : outs) {
        if (out.lane != lane) {
          return "MSDW module requires a single outbound lane per transit";
        }
      }
      break;
    }
    case MulticastModel::kMAW:
      break;
  }
  return std::nullopt;
}

SwitchModule::TransitId SwitchModule::add_transit(
    const ModulePortLane& in, const std::vector<ModulePortLane>& outs) {
  if (const auto reason = check_transit(in, outs)) {
    throw std::logic_error("SwitchModule[" + name_ + "]::add_transit: " + *reason);
  }
  in_used_[in.port][in.lane] = true;
  for (const auto& out : outs) out_used_[out.port][out.lane] = true;
  const TransitId id = next_id_++;
  transits_.emplace(id, Transit{in, outs});
  return id;
}

void SwitchModule::remove_transit(TransitId id) {
  const auto it = transits_.find(id);
  if (it == transits_.end()) {
    throw std::out_of_range("SwitchModule[" + name_ + "]: unknown transit id");
  }
  const Transit& transit = it->second;
  in_used_[transit.in.port][transit.in.lane] = false;
  for (const auto& out : transit.outs) out_used_[out.port][out.lane] = false;
  transits_.erase(it);
}

bool SwitchModule::in_lane_free(std::size_t port, Wavelength lane) const {
  return !in_used_.at(port).at(lane);
}

bool SwitchModule::out_lane_free(std::size_t port, Wavelength lane) const {
  return !out_used_.at(port).at(lane);
}

std::size_t SwitchModule::free_out_lanes(std::size_t port) const {
  const auto& slots = out_used_.at(port);
  return static_cast<std::size_t>(std::count(slots.begin(), slots.end(), false));
}

std::size_t SwitchModule::free_in_lanes(std::size_t port) const {
  const auto& slots = in_used_.at(port);
  return static_cast<std::size_t>(std::count(slots.begin(), slots.end(), false));
}

std::optional<Wavelength> SwitchModule::lowest_free_out_lane(std::size_t port) const {
  const auto& slots = out_used_.at(port);
  for (Wavelength lane = 0; lane < lanes_; ++lane) {
    if (!slots[lane]) return lane;
  }
  return std::nullopt;
}

void SwitchModule::self_check() const {
  std::vector<std::vector<bool>> in_expected(in_ports(),
                                             std::vector<bool>(lanes_, false));
  std::vector<std::vector<bool>> out_expected(out_ports(),
                                              std::vector<bool>(lanes_, false));
  for (const auto& [id, transit] : transits_) {
    if (in_expected[transit.in.port][transit.in.lane]) {
      throw std::logic_error("SwitchModule[" + name_ +
                             "]: two transits share an inbound wavelength");
    }
    in_expected[transit.in.port][transit.in.lane] = true;
    for (const auto& out : transit.outs) {
      if (out_expected[out.port][out.lane]) {
        throw std::logic_error("SwitchModule[" + name_ +
                               "]: two transits share an outbound wavelength");
      }
      out_expected[out.port][out.lane] = true;
    }
  }
  if (in_expected != in_used_ || out_expected != out_used_) {
    throw std::logic_error("SwitchModule[" + name_ +
                           "]: occupancy bitmap diverged from transit list");
  }
}

}  // namespace wdm

#include "multistage/network.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "faults/fault_model.h"

namespace wdm {

std::string Route::to_string() const {
  std::ostringstream os;
  os << "Route[";
  for (std::size_t b = 0; b < branches.size(); ++b) {
    if (b != 0) os << "; ";
    const RouteBranch& branch = branches[b];
    os << "mid " << branch.middle << '@' << wavelength_name(branch.link_lane) << " -> ";
    for (std::size_t l = 0; l < branch.legs.size(); ++l) {
      if (l != 0) os << ", ";
      os << "om" << branch.legs[l].out_module << '@'
         << wavelength_name(branch.legs[l].link_lane);
    }
  }
  os << ']';
  return os.str();
}

// -- ConnectionView ----------------------------------------------------------

ThreeStageNetwork::ConnectionView::const_iterator::value_type
ThreeStageNetwork::ConnectionView::const_iterator::operator*() const {
  const ConnectionSlot& slot = network_->connection_slots_[slot_];
  return {make_id(slot_, slot.generation), slot.entry};
}

ThreeStageNetwork::ConnectionView::const_iterator&
ThreeStageNetwork::ConnectionView::const_iterator::operator++() {
  slot_ = network_->connection_slots_[slot_].next;
  return *this;
}

ThreeStageNetwork::ConnectionView::const_iterator
ThreeStageNetwork::ConnectionView::begin() const {
  return {network_, network_->head_};
}

ThreeStageNetwork::ConnectionView::const_iterator
ThreeStageNetwork::ConnectionView::end() const {
  return {network_, kNoSlot};
}

std::size_t ThreeStageNetwork::ConnectionView::size() const {
  return network_->active_count_;
}

bool ThreeStageNetwork::ConnectionView::contains(ConnectionId id) const {
  return network_->slot_of(id) != kNoSlot;
}

const ThreeStageNetwork::ConnectionView::Entry&
ThreeStageNetwork::ConnectionView::at(ConnectionId id) const {
  const std::uint32_t slot = network_->slot_of(id);
  if (slot == kNoSlot) {
    throw std::out_of_range("ThreeStageNetwork: unknown connection id");
  }
  return network_->connection_slots_[slot].entry;
}

std::uint32_t ThreeStageNetwork::slot_of(ConnectionId id) const {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= connection_slots_.size() || !connection_slots_[slot].active ||
      connection_slots_[slot].generation != generation) {
    return kNoSlot;
  }
  return slot;
}

// -- ThreeStageNetwork -------------------------------------------------------

ThreeStageNetwork::ThreeStageNetwork(ClosParams params, Construction construction,
                                     MulticastModel network_model)
    : params_(params), construction_(construction), network_model_(network_model) {
  params_.validate();
  const MulticastModel inner = inner_model();
  inputs_.reserve(params_.r);
  outputs_.reserve(params_.r);
  middles_.reserve(params_.m);
  for (std::size_t i = 0; i < params_.r; ++i) {
    inputs_.emplace_back(params_.n, params_.m, params_.k, inner,
                         "in" + std::to_string(i));
    outputs_.emplace_back(params_.m, params_.n, params_.k, network_model,
                          "out" + std::to_string(i));
  }
  for (std::size_t j = 0; j < params_.m; ++j) {
    middles_.emplace_back(params_.r, params_.r, params_.k, inner,
                          "mid" + std::to_string(j));
  }
  busy_inputs_.assign(port_count() * params_.k, 0);
  busy_outputs_.assign(port_count() * params_.k, 0);
  endpoint_stamp_.assign(port_count() * params_.k, 0);
  middle_stamp_.assign(params_.m, 0);
  module_stamp_.assign(params_.r, 0);
}

MulticastModel ThreeStageNetwork::inner_model() const {
  return construction_ == Construction::kMswDominant ? MulticastModel::kMSW
                                                     : MulticastModel::kMAW;
}

void ThreeStageNetwork::attach_fault_model(const FaultModel* faults) {
  if (faults != nullptr && !(faults->params() == params_)) {
    throw std::invalid_argument(
        "ThreeStageNetwork::attach_fault_model: fault model geometry " +
        faults->params().to_string() + " does not match network " +
        params_.to_string());
  }
  faults_ = faults;
}

const FaultModel* ThreeStageNetwork::active_fault_model() const {
  return faults_ != nullptr && faults_->any() ? faults_ : nullptr;
}

bool ThreeStageNetwork::middle_usable(std::size_t j) const {
  const FaultModel* faults = active_fault_model();
  return faults == nullptr || !faults->middle_failed(j);
}

bool ThreeStageNetwork::link12_lane_usable(std::size_t i, std::size_t j,
                                           Wavelength lane) const {
  const FaultModel* faults = active_fault_model();
  return faults == nullptr || faults->link12_usable(i, j, lane);
}

bool ThreeStageNetwork::link23_lane_usable(std::size_t j, std::size_t p,
                                           Wavelength lane) const {
  const FaultModel* faults = active_fault_model();
  return faults == nullptr || faults->link23_usable(j, p, lane);
}

const SwitchModule& ThreeStageNetwork::input_module(std::size_t i) const {
  return inputs_.at(i);
}
const SwitchModule& ThreeStageNetwork::middle_module(std::size_t j) const {
  return middles_.at(j);
}
const SwitchModule& ThreeStageNetwork::output_module(std::size_t p) const {
  return outputs_.at(p);
}

std::optional<ConnectError> ThreeStageNetwork::check_admissible(
    const MulticastRequest& request) const {
  if (const auto error = check_request_shape(request, port_count(), params_.k,
                                             network_model_)) {
    return error;
  }
  // The shape check guarantees every endpoint is in range, so the flat
  // lookups below cannot go out of bounds.
  if (busy_inputs_[endpoint_index(request.input)] != 0) {
    return ConnectError::kInputBusy;
  }
  for (const auto& out : request.outputs) {
    if (busy_outputs_[endpoint_index(out)] != 0) return ConnectError::kOutputBusy;
  }
  return std::nullopt;
}

std::optional<std::string> ThreeStageNetwork::check_route(
    const MulticastRequest& request, const Route& route) const {
  if (route.branches.empty()) return "route has no branches";

  // One fresh stamp generation per validation: a stamp cell is "in the set"
  // iff it equals the current generation, so the former per-call std::sets
  // become array writes with no clearing and no allocation.
  const std::uint64_t gen = ++stamp_generation_;
  std::size_t routed_count = 0;

  // The legs must partition the request's destinations by output module.
  for (const RouteBranch& branch : route.branches) {
    if (branch.middle >= params_.m) return "branch middle module out of range";
    if (middle_stamp_[branch.middle] == gen) {
      return "route uses middle module " + std::to_string(branch.middle) + " twice";
    }
    middle_stamp_[branch.middle] = gen;
    if (branch.legs.empty()) return "branch with no legs";
    if (branch.link_lane >= params_.k) return "branch link lane out of range";
    for (const DeliveryLeg& leg : branch.legs) {
      if (leg.out_module >= params_.r) return "leg output module out of range";
      if (leg.link_lane >= params_.k) return "leg link lane out of range";
      if (module_stamp_[leg.out_module] == gen) {
        return "two legs deliver to output module " + std::to_string(leg.out_module);
      }
      module_stamp_[leg.out_module] = gen;
      if (leg.destinations.empty()) return "leg with no destinations";
      for (const auto& dest : leg.destinations) {
        if (output_module_of(dest.port) != leg.out_module) {
          return "destination " + dest.to_string() + " not in leg's output module";
        }
        // The module-membership check bounds dest.port; a lane beyond k
        // cannot be stamped (it has no endpoint cell) but also cannot have
        // been routed before, and the module dry-run below rejects it.
        if (dest.lane < params_.k) {
          const std::size_t index = endpoint_index(dest);
          if (endpoint_stamp_[index] == gen) {
            return "destination " + dest.to_string() + " routed twice";
          }
          endpoint_stamp_[index] = gen;
        }
        ++routed_count;
      }
    }
  }
  if (routed_count != request.outputs.size()) {
    return "route covers " + std::to_string(routed_count) + " of " +
           std::to_string(request.outputs.size()) + " destinations";
  }
  for (const auto& out : request.outputs) {
    if (out.port >= port_count() || out.lane >= params_.k ||
        endpoint_stamp_[endpoint_index(out)] != gen) {
      return "destination " + out.to_string() + " missing from route";
    }
  }

  // Failed hardware is unusable no matter what the modules would admit.
  if (const FaultModel* faults = active_fault_model()) {
    const std::size_t in = input_module_of(request.input.port);
    for (const RouteBranch& branch : route.branches) {
      if (faults->middle_failed(branch.middle)) {
        return "middle module " + std::to_string(branch.middle) + " is failed";
      }
      if (!faults->link12_usable(in, branch.middle, branch.link_lane)) {
        return "stage 1-2 link " + std::to_string(in) + "->" +
               std::to_string(branch.middle) + " lane " +
               wavelength_name(branch.link_lane) + " is failed";
      }
      for (const DeliveryLeg& leg : branch.legs) {
        if (!faults->link23_usable(branch.middle, leg.out_module, leg.link_lane)) {
          return "stage 2-3 link " + std::to_string(branch.middle) + "->" +
                 std::to_string(leg.out_module) + " lane " +
                 wavelength_name(leg.link_lane) + " is failed";
        }
      }
    }
  }

  // Module-level dry runs (lane discipline + occupancy).
  const std::size_t in_module = input_module_of(request.input.port);
  std::vector<ModulePortLane>& outs = portlane_scratch_;
  outs.clear();
  for (const RouteBranch& branch : route.branches) {
    outs.push_back({branch.middle, branch.link_lane});
  }
  if (const auto reason = inputs_[in_module].check_transit(
          {local_port(request.input.port), request.input.lane}, outs)) {
    return "input module: " + *reason;
  }
  for (const RouteBranch& branch : route.branches) {
    outs.clear();
    for (const DeliveryLeg& leg : branch.legs) {
      outs.push_back({leg.out_module, leg.link_lane});
    }
    if (const auto reason = middles_[branch.middle].check_transit(
            {in_module, branch.link_lane}, outs)) {
      return "middle module " + std::to_string(branch.middle) + ": " + *reason;
    }
    for (const DeliveryLeg& leg : branch.legs) {
      outs.clear();
      for (const auto& dest : leg.destinations) {
        outs.push_back({local_port(dest.port), dest.lane});
      }
      if (const auto reason = outputs_[leg.out_module].check_transit(
              {branch.middle, leg.link_lane}, outs)) {
        return "output module " + std::to_string(leg.out_module) + ": " + *reason;
      }
    }
  }
  return std::nullopt;
}

void ThreeStageNetwork::copy_route_into(Route& dst, const Route& src) {
  while (dst.branches.size() > src.branches.size()) {
    RouteBranch& surplus = dst.branches.back();
    while (!surplus.legs.empty()) {
      surplus.legs.back().destinations.clear();
      spare_route_legs_.push_back(std::move(surplus.legs.back()));
      surplus.legs.pop_back();
    }
    spare_route_branches_.push_back(std::move(surplus));
    dst.branches.pop_back();
  }
  while (dst.branches.size() < src.branches.size()) {
    if (spare_route_branches_.empty()) {
      dst.branches.emplace_back();
    } else {
      dst.branches.push_back(std::move(spare_route_branches_.back()));
      spare_route_branches_.pop_back();
    }
  }
  for (std::size_t b = 0; b < src.branches.size(); ++b) {
    RouteBranch& dst_branch = dst.branches[b];
    const RouteBranch& src_branch = src.branches[b];
    dst_branch.middle = src_branch.middle;
    dst_branch.link_lane = src_branch.link_lane;
    while (dst_branch.legs.size() > src_branch.legs.size()) {
      dst_branch.legs.back().destinations.clear();
      spare_route_legs_.push_back(std::move(dst_branch.legs.back()));
      dst_branch.legs.pop_back();
    }
    while (dst_branch.legs.size() < src_branch.legs.size()) {
      if (spare_route_legs_.empty()) {
        dst_branch.legs.emplace_back();
      } else {
        dst_branch.legs.push_back(std::move(spare_route_legs_.back()));
        spare_route_legs_.pop_back();
      }
    }
    for (std::size_t l = 0; l < src_branch.legs.size(); ++l) {
      DeliveryLeg& dst_leg = dst_branch.legs[l];
      const DeliveryLeg& src_leg = src_branch.legs[l];
      dst_leg.out_module = src_leg.out_module;
      dst_leg.link_lane = src_leg.link_lane;
      dst_leg.destinations = src_leg.destinations;  // flat: capacity reuse
    }
  }
}

ConnectionId ThreeStageNetwork::install(const MulticastRequest& request,
                                        const Route& route) {
  if (const auto error = check_admissible(request)) {
    throw std::logic_error(std::string("ThreeStageNetwork::install: ") +
                           connect_error_name(*error) + " for " + request.to_string());
  }
  if (const auto reason = check_route(request, route)) {
    throw std::logic_error("ThreeStageNetwork::install: " + *reason);
  }
  return commit_route(request, route);
}

ConnectionId ThreeStageNetwork::reinstall(ConnectionId id,
                                          const MulticastRequest& request,
                                          const Route& route,
                                          std::optional<ConnectionId> after) {
  // Resolve the splice target up front so a bad `after` rejects the whole
  // call before any state moves (kNoSlot doubles as "leave at the tail").
  std::uint32_t after_slot = kNoSlot;
  bool splice = false;
  if (after) {
    splice = true;
    if (*after != 0) {
      after_slot = slot_of(*after);
      if (after_slot == kNoSlot) {
        throw std::logic_error(
            "ThreeStageNetwork::reinstall: `after` does not name a live "
            "connection");
      }
    }
  }
  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= connection_slots_.size() || connection_slots_[slot].active ||
      generation == 0) {
    throw std::logic_error(
        "ThreeStageNetwork::reinstall: id does not name a free slot");
  }
  if (const auto error = check_admissible(request)) {
    throw std::logic_error(std::string("ThreeStageNetwork::reinstall: ") +
                           connect_error_name(*error) + " for " +
                           request.to_string());
  }
  if (const auto reason = check_route(request, route)) {
    throw std::logic_error("ThreeStageNetwork::reinstall: " + *reason);
  }
  // Claim the specific slot off the free list (cold path: rollback only).
  bool found = false;
  for (std::size_t i = 0; i < free_connection_slots_.size(); ++i) {
    if (free_connection_slots_[i] == slot) {
      free_connection_slots_[i] = free_connection_slots_.back();
      free_connection_slots_.pop_back();
      found = true;
      break;
    }
  }
  if (!found) {
    throw std::logic_error(
        "ThreeStageNetwork::reinstall: slot missing from the free list");
  }
  ++mutation_epoch_;
  ConnectionSlot& entry = connection_slots_[slot];
  entry.entry.first = request;  // copy-assign: keeps vector capacity
  copy_route_into(entry.entry.second, route);
  // commit_slot bumps the generation, so re-arm it one below the target:
  // the id it mints is bit-identical to the one the caller is reviving.
  entry.generation = generation - 1;
  const ConnectionId revived = commit_slot(slot);
  // commit_slot appended at the tail; splice to the requested position.
  if (splice) move_slot_after(slot, after_slot);
  return revived;
}

ConnectionId ThreeStageNetwork::predecessor_of(ConnectionId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) {
    throw std::out_of_range(
        "ThreeStageNetwork::predecessor_of: unknown connection id");
  }
  const std::uint32_t prev = connection_slots_[slot].prev;
  if (prev == kNoSlot) return 0;
  return make_id(prev, connection_slots_[prev].generation);
}

void ThreeStageNetwork::move_slot_after(std::uint32_t slot,
                                        std::uint32_t prev_slot) {
  if (prev_slot == slot) return;  // already trivially in place
  ConnectionSlot& entry = connection_slots_[slot];
  if (entry.prev == prev_slot) return;  // nothing to do
  // Unlink.
  if (entry.prev != kNoSlot) {
    connection_slots_[entry.prev].next = entry.next;
  } else {
    head_ = entry.next;
  }
  if (entry.next != kNoSlot) {
    connection_slots_[entry.next].prev = entry.prev;
  } else {
    tail_ = entry.prev;
  }
  // Re-link after prev_slot (kNoSlot = head).
  if (prev_slot == kNoSlot) {
    entry.prev = kNoSlot;
    entry.next = head_;
    if (head_ != kNoSlot) {
      connection_slots_[head_].prev = slot;
    } else {
      tail_ = slot;
    }
    head_ = slot;
  } else {
    ConnectionSlot& prev = connection_slots_[prev_slot];
    entry.prev = prev_slot;
    entry.next = prev.next;
    if (prev.next != kNoSlot) {
      connection_slots_[prev.next].prev = slot;
    } else {
      tail_ = slot;
    }
    prev.next = slot;
  }
}

std::uint32_t ThreeStageNetwork::acquire_slot() {
  // Acquire a slot first so the transit lists can be built directly into its
  // reusable vectors (a reused slot performs no allocations here).
  if (!free_connection_slots_.empty()) {
    const std::uint32_t slot = free_connection_slots_.back();
    free_connection_slots_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(connection_slots_.size());
  connection_slots_.emplace_back();
  return slot;
}

ConnectionId ThreeStageNetwork::commit_route(const MulticastRequest& request,
                                             const Route& route) {
  ++mutation_epoch_;
  const std::uint32_t slot = acquire_slot();
  ConnectionSlot& entry = connection_slots_[slot];
  entry.entry.first = request;  // copy-assign: keeps vector capacity
  copy_route_into(entry.entry.second, route);
  return commit_slot(slot);
}

ConnectionId ThreeStageNetwork::commit_route_swapping(const MulticastRequest& request,
                                                      Route& route) {
  ++mutation_epoch_;
  const std::uint32_t slot = acquire_slot();
  ConnectionSlot& entry = connection_slots_[slot];
  entry.entry.first = request;  // copy-assign: keeps vector capacity
  // O(1) ownership transfer: the slot takes the caller's branches and the
  // caller is left holding the slot's previous storage (nested capacity the
  // caller recycles into its own pools).
  entry.entry.second.branches.swap(route.branches);
  return commit_slot(slot);
}

ConnectionId ThreeStageNetwork::commit_slot(std::uint32_t slot) {
  ConnectionSlot& entry = connection_slots_[slot];
  const MulticastRequest& request = entry.entry.first;
  const Route& route = entry.entry.second;
  const std::size_t in_module = input_module_of(request.input.port);
  InstalledTransits& installed = entry.transits;
  installed.middle_transits.clear();
  installed.output_transits.clear();
  std::vector<ModulePortLane>& outs = portlane_scratch_;
  outs.clear();
  for (const RouteBranch& branch : route.branches) {
    outs.push_back({branch.middle, branch.link_lane});
  }
  installed.input_transit = inputs_[in_module].add_transit(
      {local_port(request.input.port), request.input.lane}, outs);
  for (const RouteBranch& branch : route.branches) {
    outs.clear();
    for (const DeliveryLeg& leg : branch.legs) {
      outs.push_back({leg.out_module, leg.link_lane});
    }
    installed.middle_transits.emplace_back(
        branch.middle,
        middles_[branch.middle].add_transit({in_module, branch.link_lane}, outs));
    for (const DeliveryLeg& leg : branch.legs) {
      outs.clear();
      for (const auto& dest : leg.destinations) {
        outs.push_back({local_port(dest.port), dest.lane});
      }
      installed.output_transits.emplace_back(
          leg.out_module,
          outputs_[leg.out_module].add_transit({branch.middle, leg.link_lane}, outs));
    }
  }

  // Commit: bump the generation (ids are nonzero because generation >= 1),
  // link at the tail of the insertion-order list, mark the endpoints.
  ++entry.generation;
  entry.active = true;
  entry.prev = tail_;
  entry.next = kNoSlot;
  if (tail_ != kNoSlot) {
    connection_slots_[tail_].next = slot;
  } else {
    head_ = slot;
  }
  tail_ = slot;
  ++active_count_;

  const ConnectionId id = make_id(slot, entry.generation);
  busy_inputs_[endpoint_index(request.input)] = id;
  for (const auto& out : request.outputs) busy_outputs_[endpoint_index(out)] = id;
  return id;
}

void ThreeStageNetwork::release(ConnectionId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNoSlot) {
    throw std::out_of_range("ThreeStageNetwork::release: unknown connection id");
  }
  ++mutation_epoch_;
  ConnectionSlot& entry = connection_slots_[slot];
  const auto& [request, route] = entry.entry;
  const InstalledTransits& installed = entry.transits;

  inputs_[input_module_of(request.input.port)].remove_transit(installed.input_transit);
  for (const auto& [module, transit] : installed.middle_transits) {
    middles_[module].remove_transit(transit);
  }
  for (const auto& [module, transit] : installed.output_transits) {
    outputs_[module].remove_transit(transit);
  }

  busy_inputs_[endpoint_index(request.input)] = 0;
  for (const auto& out : request.outputs) busy_outputs_[endpoint_index(out)] = 0;

  if (entry.prev != kNoSlot) {
    connection_slots_[entry.prev].next = entry.next;
  } else {
    head_ = entry.next;
  }
  if (entry.next != kNoSlot) {
    connection_slots_[entry.next].prev = entry.prev;
  } else {
    tail_ = entry.prev;
  }
  entry.active = false;
  --active_count_;
  free_connection_slots_.push_back(slot);
}

bool ThreeStageNetwork::try_release(ConnectionId id) {
  if (slot_of(id) == kNoSlot) return false;
  release(id);
  return true;
}

const ThreeStageNetwork::ConnectionView::Entry* ThreeStageNetwork::find_connection(
    ConnectionId id) const {
  const std::uint32_t slot = slot_of(id);
  return slot == kNoSlot ? nullptr : &connection_slots_[slot].entry;
}

bool ThreeStageNetwork::input_busy(const WavelengthEndpoint& endpoint) const {
  if (endpoint.port >= port_count() || endpoint.lane >= params_.k) return false;
  return busy_inputs_[endpoint_index(endpoint)] != 0;
}

bool ThreeStageNetwork::output_busy(const WavelengthEndpoint& endpoint) const {
  if (endpoint.port >= port_count() || endpoint.lane >= params_.k) return false;
  return busy_outputs_[endpoint_index(endpoint)] != 0;
}

DestinationMultiset ThreeStageNetwork::middle_destination_multiset(
    std::size_t j) const {
  const SwitchModule& middle = middles_.at(j);
  DestinationMultiset multiset(params_.r, static_cast<std::uint32_t>(params_.k));
  for (std::size_t p = 0; p < params_.r; ++p) {
    const std::size_t used = params_.k - middle.free_out_lanes(p);
    for (std::size_t occurrence = 0; occurrence < used; ++occurrence) multiset.add(p);
  }
  return multiset;
}

std::vector<bool> ThreeStageNetwork::middle_plane_destinations(
    std::size_t j, Wavelength lane) const {
  const SwitchModule& middle = middles_.at(j);
  std::vector<bool> destinations(params_.r);
  for (std::size_t p = 0; p < params_.r; ++p) {
    destinations[p] = !middle.out_lane_free(p, lane);
  }
  return destinations;
}

void ThreeStageNetwork::self_check() const {
  for (const auto& module : inputs_) module.self_check();
  for (const auto& module : middles_) module.self_check();
  for (const auto& module : outputs_) module.self_check();

  // Link mirroring: both endpoint modules of every inter-stage link must
  // agree lane by lane (an input module's output port IS the middle
  // module's input port, and likewise for stage 2 -> 3).
  for (std::size_t i = 0; i < params_.r; ++i) {
    for (std::size_t j = 0; j < params_.m; ++j) {
      for (Wavelength lane = 0; lane < params_.k; ++lane) {
        if (inputs_[i].out_lane_free(j, lane) != middles_[j].in_lane_free(i, lane)) {
          throw std::logic_error(
              "ThreeStageNetwork: stage 1-2 link state diverged between its "
              "endpoint modules");
        }
      }
    }
  }
  for (std::size_t j = 0; j < params_.m; ++j) {
    for (std::size_t p = 0; p < params_.r; ++p) {
      for (Wavelength lane = 0; lane < params_.k; ++lane) {
        if (middles_[j].out_lane_free(p, lane) != outputs_[p].in_lane_free(j, lane)) {
          throw std::logic_error(
              "ThreeStageNetwork: stage 2-3 link state diverged between its "
              "endpoint modules");
        }
      }
    }
  }

  // Rebuild the expected endpoint occupancy from the connection table and
  // compare with the flat busy vectors; also re-derive the active count and
  // insertion-list length so slot bookkeeping cannot silently diverge.
  std::vector<ConnectionId> expected_inputs(busy_inputs_.size(), 0);
  std::vector<ConnectionId> expected_outputs(busy_outputs_.size(), 0);
  std::size_t walked = 0;
  for (const auto& [id, entry] : connections()) {
    ++walked;
    const auto& [request, route] = entry;
    expected_inputs[endpoint_index(request.input)] = id;
    for (const auto& out : request.outputs) {
      expected_outputs[endpoint_index(out)] = id;
    }
  }
  if (walked != active_count_) {
    throw std::logic_error(
        "ThreeStageNetwork: connection list length diverged from active count");
  }
  if (expected_inputs != busy_inputs_ || expected_outputs != busy_outputs_) {
    throw std::logic_error(
        "ThreeStageNetwork: endpoint busy maps diverged from connection table");
  }
}

}  // namespace wdm

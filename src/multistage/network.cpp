#include "multistage/network.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "faults/fault_model.h"

namespace wdm {

std::string Route::to_string() const {
  std::ostringstream os;
  os << "Route[";
  for (std::size_t b = 0; b < branches.size(); ++b) {
    if (b != 0) os << "; ";
    const RouteBranch& branch = branches[b];
    os << "mid " << branch.middle << '@' << wavelength_name(branch.link_lane) << " -> ";
    for (std::size_t l = 0; l < branch.legs.size(); ++l) {
      if (l != 0) os << ", ";
      os << "om" << branch.legs[l].out_module << '@'
         << wavelength_name(branch.legs[l].link_lane);
    }
  }
  os << ']';
  return os.str();
}

ThreeStageNetwork::ThreeStageNetwork(ClosParams params, Construction construction,
                                     MulticastModel network_model)
    : params_(params), construction_(construction), network_model_(network_model) {
  params_.validate();
  const MulticastModel inner = inner_model();
  inputs_.reserve(params_.r);
  outputs_.reserve(params_.r);
  middles_.reserve(params_.m);
  for (std::size_t i = 0; i < params_.r; ++i) {
    inputs_.emplace_back(params_.n, params_.m, params_.k, inner,
                         "in" + std::to_string(i));
    outputs_.emplace_back(params_.m, params_.n, params_.k, network_model,
                          "out" + std::to_string(i));
  }
  for (std::size_t j = 0; j < params_.m; ++j) {
    middles_.emplace_back(params_.r, params_.r, params_.k, inner,
                          "mid" + std::to_string(j));
  }
}

MulticastModel ThreeStageNetwork::inner_model() const {
  return construction_ == Construction::kMswDominant ? MulticastModel::kMSW
                                                     : MulticastModel::kMAW;
}

void ThreeStageNetwork::attach_fault_model(const FaultModel* faults) {
  if (faults != nullptr && !(faults->params() == params_)) {
    throw std::invalid_argument(
        "ThreeStageNetwork::attach_fault_model: fault model geometry " +
        faults->params().to_string() + " does not match network " +
        params_.to_string());
  }
  faults_ = faults;
}

const FaultModel* ThreeStageNetwork::active_fault_model() const {
  return faults_ != nullptr && faults_->any() ? faults_ : nullptr;
}

bool ThreeStageNetwork::middle_usable(std::size_t j) const {
  const FaultModel* faults = active_fault_model();
  return faults == nullptr || !faults->middle_failed(j);
}

bool ThreeStageNetwork::link12_lane_usable(std::size_t i, std::size_t j,
                                           Wavelength lane) const {
  const FaultModel* faults = active_fault_model();
  return faults == nullptr || faults->link12_usable(i, j, lane);
}

bool ThreeStageNetwork::link23_lane_usable(std::size_t j, std::size_t p,
                                           Wavelength lane) const {
  const FaultModel* faults = active_fault_model();
  return faults == nullptr || faults->link23_usable(j, p, lane);
}

const SwitchModule& ThreeStageNetwork::input_module(std::size_t i) const {
  return inputs_.at(i);
}
const SwitchModule& ThreeStageNetwork::middle_module(std::size_t j) const {
  return middles_.at(j);
}
const SwitchModule& ThreeStageNetwork::output_module(std::size_t p) const {
  return outputs_.at(p);
}

std::optional<ConnectError> ThreeStageNetwork::check_admissible(
    const MulticastRequest& request) const {
  if (const auto error = check_request_shape(request, port_count(), params_.k,
                                             network_model_)) {
    return error;
  }
  if (busy_inputs_.contains(request.input)) return ConnectError::kInputBusy;
  for (const auto& out : request.outputs) {
    if (busy_outputs_.contains(out)) return ConnectError::kOutputBusy;
  }
  return std::nullopt;
}

std::optional<std::string> ThreeStageNetwork::check_route(
    const MulticastRequest& request, const Route& route) const {
  if (route.branches.empty()) return "route has no branches";

  // The legs must partition the request's destinations by output module.
  std::set<WavelengthEndpoint> routed;
  std::set<std::size_t> middles_used;
  std::set<std::size_t> modules_delivered;
  for (const RouteBranch& branch : route.branches) {
    if (branch.middle >= params_.m) return "branch middle module out of range";
    if (!middles_used.insert(branch.middle).second) {
      return "route uses middle module " + std::to_string(branch.middle) + " twice";
    }
    if (branch.legs.empty()) return "branch with no legs";
    if (branch.link_lane >= params_.k) return "branch link lane out of range";
    for (const DeliveryLeg& leg : branch.legs) {
      if (leg.out_module >= params_.r) return "leg output module out of range";
      if (leg.link_lane >= params_.k) return "leg link lane out of range";
      if (!modules_delivered.insert(leg.out_module).second) {
        return "two legs deliver to output module " + std::to_string(leg.out_module);
      }
      if (leg.destinations.empty()) return "leg with no destinations";
      for (const auto& dest : leg.destinations) {
        if (output_module_of(dest.port) != leg.out_module) {
          return "destination " + dest.to_string() + " not in leg's output module";
        }
        if (!routed.insert(dest).second) {
          return "destination " + dest.to_string() + " routed twice";
        }
      }
    }
  }
  if (routed.size() != request.outputs.size()) {
    return "route covers " + std::to_string(routed.size()) + " of " +
           std::to_string(request.outputs.size()) + " destinations";
  }
  for (const auto& out : request.outputs) {
    if (!routed.contains(out)) {
      return "destination " + out.to_string() + " missing from route";
    }
  }

  // Failed hardware is unusable no matter what the modules would admit.
  if (const FaultModel* faults = active_fault_model()) {
    const std::size_t in = input_module_of(request.input.port);
    for (const RouteBranch& branch : route.branches) {
      if (faults->middle_failed(branch.middle)) {
        return "middle module " + std::to_string(branch.middle) + " is failed";
      }
      if (!faults->link12_usable(in, branch.middle, branch.link_lane)) {
        return "stage 1-2 link " + std::to_string(in) + "->" +
               std::to_string(branch.middle) + " lane " +
               wavelength_name(branch.link_lane) + " is failed";
      }
      for (const DeliveryLeg& leg : branch.legs) {
        if (!faults->link23_usable(branch.middle, leg.out_module, leg.link_lane)) {
          return "stage 2-3 link " + std::to_string(branch.middle) + "->" +
                 std::to_string(leg.out_module) + " lane " +
                 wavelength_name(leg.link_lane) + " is failed";
        }
      }
    }
  }

  // Module-level dry runs (lane discipline + occupancy).
  const std::size_t in_module = input_module_of(request.input.port);
  {
    std::vector<ModulePortLane> outs;
    outs.reserve(route.branches.size());
    for (const RouteBranch& branch : route.branches) {
      outs.push_back({branch.middle, branch.link_lane});
    }
    if (const auto reason = inputs_[in_module].check_transit(
            {local_port(request.input.port), request.input.lane}, outs)) {
      return "input module: " + *reason;
    }
  }
  for (const RouteBranch& branch : route.branches) {
    std::vector<ModulePortLane> outs;
    outs.reserve(branch.legs.size());
    for (const DeliveryLeg& leg : branch.legs) {
      outs.push_back({leg.out_module, leg.link_lane});
    }
    if (const auto reason = middles_[branch.middle].check_transit(
            {in_module, branch.link_lane}, outs)) {
      return "middle module " + std::to_string(branch.middle) + ": " + *reason;
    }
    for (const DeliveryLeg& leg : branch.legs) {
      std::vector<ModulePortLane> deliveries;
      deliveries.reserve(leg.destinations.size());
      for (const auto& dest : leg.destinations) {
        deliveries.push_back({local_port(dest.port), dest.lane});
      }
      if (const auto reason = outputs_[leg.out_module].check_transit(
              {branch.middle, leg.link_lane}, deliveries)) {
        return "output module " + std::to_string(leg.out_module) + ": " + *reason;
      }
    }
  }
  return std::nullopt;
}

ConnectionId ThreeStageNetwork::install(const MulticastRequest& request,
                                        const Route& route) {
  if (const auto error = check_admissible(request)) {
    throw std::logic_error(std::string("ThreeStageNetwork::install: ") +
                           connect_error_name(*error) + " for " + request.to_string());
  }
  if (const auto reason = check_route(request, route)) {
    throw std::logic_error("ThreeStageNetwork::install: " + *reason);
  }

  const std::size_t in_module = input_module_of(request.input.port);
  InstalledTransits installed;
  {
    std::vector<ModulePortLane> outs;
    for (const RouteBranch& branch : route.branches) {
      outs.push_back({branch.middle, branch.link_lane});
    }
    installed.input_transit = inputs_[in_module].add_transit(
        {local_port(request.input.port), request.input.lane}, outs);
  }
  for (const RouteBranch& branch : route.branches) {
    std::vector<ModulePortLane> outs;
    for (const DeliveryLeg& leg : branch.legs) {
      outs.push_back({leg.out_module, leg.link_lane});
    }
    installed.middle_transits.emplace_back(
        branch.middle,
        middles_[branch.middle].add_transit({in_module, branch.link_lane}, outs));
    for (const DeliveryLeg& leg : branch.legs) {
      std::vector<ModulePortLane> deliveries;
      for (const auto& dest : leg.destinations) {
        deliveries.push_back({local_port(dest.port), dest.lane});
      }
      installed.output_transits.emplace_back(
          leg.out_module, outputs_[leg.out_module].add_transit(
                              {branch.middle, leg.link_lane}, deliveries));
    }
  }

  const ConnectionId id = next_id_++;
  busy_inputs_[request.input] = id;
  for (const auto& out : request.outputs) busy_outputs_[out] = id;
  connections_.emplace(id, std::make_pair(request, route));
  transits_.emplace(id, std::move(installed));
  return id;
}

void ThreeStageNetwork::release(ConnectionId id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) {
    throw std::out_of_range("ThreeStageNetwork::release: unknown connection id");
  }
  const auto& [request, route] = it->second;
  const InstalledTransits& installed = transits_.at(id);

  inputs_[input_module_of(request.input.port)].remove_transit(installed.input_transit);
  for (const auto& [module, transit] : installed.middle_transits) {
    middles_[module].remove_transit(transit);
  }
  for (const auto& [module, transit] : installed.output_transits) {
    outputs_[module].remove_transit(transit);
  }

  busy_inputs_.erase(request.input);
  for (const auto& out : request.outputs) busy_outputs_.erase(out);
  transits_.erase(id);
  connections_.erase(it);
}

bool ThreeStageNetwork::input_busy(const WavelengthEndpoint& endpoint) const {
  return busy_inputs_.contains(endpoint);
}

bool ThreeStageNetwork::output_busy(const WavelengthEndpoint& endpoint) const {
  return busy_outputs_.contains(endpoint);
}

DestinationMultiset ThreeStageNetwork::middle_destination_multiset(
    std::size_t j) const {
  const SwitchModule& middle = middles_.at(j);
  DestinationMultiset multiset(params_.r, static_cast<std::uint32_t>(params_.k));
  for (std::size_t p = 0; p < params_.r; ++p) {
    const std::size_t used = params_.k - middle.free_out_lanes(p);
    for (std::size_t occurrence = 0; occurrence < used; ++occurrence) multiset.add(p);
  }
  return multiset;
}

std::vector<bool> ThreeStageNetwork::middle_plane_destinations(
    std::size_t j, Wavelength lane) const {
  const SwitchModule& middle = middles_.at(j);
  std::vector<bool> destinations(params_.r);
  for (std::size_t p = 0; p < params_.r; ++p) {
    destinations[p] = !middle.out_lane_free(p, lane);
  }
  return destinations;
}

void ThreeStageNetwork::self_check() const {
  for (const auto& module : inputs_) module.self_check();
  for (const auto& module : middles_) module.self_check();
  for (const auto& module : outputs_) module.self_check();

  // Link mirroring: both endpoint modules of every inter-stage link must
  // agree lane by lane (an input module's output port IS the middle
  // module's input port, and likewise for stage 2 -> 3).
  for (std::size_t i = 0; i < params_.r; ++i) {
    for (std::size_t j = 0; j < params_.m; ++j) {
      for (Wavelength lane = 0; lane < params_.k; ++lane) {
        if (inputs_[i].out_lane_free(j, lane) != middles_[j].in_lane_free(i, lane)) {
          throw std::logic_error(
              "ThreeStageNetwork: stage 1-2 link state diverged between its "
              "endpoint modules");
        }
      }
    }
  }
  for (std::size_t j = 0; j < params_.m; ++j) {
    for (std::size_t p = 0; p < params_.r; ++p) {
      for (Wavelength lane = 0; lane < params_.k; ++lane) {
        if (middles_[j].out_lane_free(p, lane) != outputs_[p].in_lane_free(j, lane)) {
          throw std::logic_error(
              "ThreeStageNetwork: stage 2-3 link state diverged between its "
              "endpoint modules");
        }
      }
    }
  }

  std::map<WavelengthEndpoint, ConnectionId> expected_inputs;
  std::map<WavelengthEndpoint, ConnectionId> expected_outputs;
  for (const auto& [id, entry] : connections_) {
    const auto& [request, route] = entry;
    expected_inputs[request.input] = id;
    for (const auto& out : request.outputs) expected_outputs[out] = id;
  }
  if (expected_inputs != busy_inputs_ || expected_outputs != busy_outputs_) {
    throw std::logic_error(
        "ThreeStageNetwork: endpoint busy maps diverged from connection table");
  }
}

}  // namespace wdm

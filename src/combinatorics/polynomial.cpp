#include "combinatorics/polynomial.h"

namespace wdm {

const BigUInt Polynomial::kZero{};

Polynomial::Polynomial(std::vector<BigUInt> coefficients)
    : coefficients_(std::move(coefficients)) {
  trim();
}

void Polynomial::trim() {
  while (!coefficients_.empty() && coefficients_.back().is_zero()) {
    coefficients_.pop_back();
  }
}

const BigUInt& Polynomial::coefficient(std::size_t power) const {
  if (power >= coefficients_.size()) return kZero;
  return coefficients_[power];
}

void Polynomial::set_coefficient(std::size_t power, BigUInt value) {
  if (power >= coefficients_.size()) {
    if (value.is_zero()) return;
    coefficients_.resize(power + 1);
  }
  coefficients_[power] = std::move(value);
  trim();
}

Polynomial& Polynomial::operator+=(const Polynomial& rhs) {
  if (coefficients_.size() < rhs.coefficients_.size()) {
    coefficients_.resize(rhs.coefficients_.size());
  }
  for (std::size_t i = 0; i < rhs.coefficients_.size(); ++i) {
    coefficients_[i] += rhs.coefficients_[i];
  }
  trim();
  return *this;
}

Polynomial operator*(const Polynomial& lhs, const Polynomial& rhs) {
  if (lhs.is_zero() || rhs.is_zero()) return {};
  Polynomial result;
  result.coefficients_.assign(
      lhs.coefficients_.size() + rhs.coefficients_.size() - 1, BigUInt{});
  for (std::size_t i = 0; i < lhs.coefficients_.size(); ++i) {
    if (lhs.coefficients_[i].is_zero()) continue;
    for (std::size_t j = 0; j < rhs.coefficients_.size(); ++j) {
      if (rhs.coefficients_[j].is_zero()) continue;
      result.coefficients_[i + j] += lhs.coefficients_[i] * rhs.coefficients_[j];
    }
  }
  result.trim();
  return result;
}

Polynomial& Polynomial::operator*=(const Polynomial& rhs) {
  *this = *this * rhs;
  return *this;
}

Polynomial Polynomial::pow(std::uint64_t exponent) const {
  Polynomial result(std::vector<BigUInt>{BigUInt{1}});
  Polynomial base = *this;
  while (exponent != 0) {
    if (exponent & 1) result *= base;
    exponent >>= 1;
    if (exponent != 0) base *= base;
  }
  return result;
}

BigUInt Polynomial::evaluate(const BigUInt& point) const {
  BigUInt result;
  for (std::size_t i = coefficients_.size(); i-- > 0;) {
    result *= point;
    result += coefficients_[i];
  }
  return result;
}

BigUInt Polynomial::coefficient_sum() const {
  BigUInt total;
  for (const auto& coefficient : coefficients_) total += coefficient;
  return total;
}

}  // namespace wdm

#include "combinatorics/multiset.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace wdm {

DestinationMultiset::DestinationMultiset(std::size_t universe,
                                         std::uint32_t max_multiplicity)
    : counts_(universe, 0), cap_(max_multiplicity) {
  if (max_multiplicity == 0) {
    throw std::invalid_argument("DestinationMultiset: multiplicity cap must be >= 1");
  }
}

std::uint32_t DestinationMultiset::multiplicity(std::size_t p) const {
  return counts_.at(p);
}

void DestinationMultiset::add(std::size_t p) {
  std::uint32_t& count = counts_.at(p);
  if (count >= cap_) {
    throw std::logic_error("DestinationMultiset::add: element already saturated");
  }
  ++count;
  ++total_;
  if (count == cap_) ++saturated_;
}

void DestinationMultiset::remove(std::size_t p) {
  std::uint32_t& count = counts_.at(p);
  if (count == 0) {
    throw std::logic_error("DestinationMultiset::remove: element not present");
  }
  if (count == cap_) --saturated_;
  --count;
  --total_;
}

bool DestinationMultiset::can_serve(std::size_t p) const {
  return counts_.at(p) < cap_;
}

std::size_t DestinationMultiset::saturated_count() const { return saturated_; }

DestinationMultiset DestinationMultiset::intersect(
    const DestinationMultiset& other) const {
  if (other.counts_.size() != counts_.size() || other.cap_ != cap_) {
    throw std::invalid_argument(
        "DestinationMultiset::intersect: mismatched universe or cap");
  }
  DestinationMultiset result(counts_.size(), cap_);
  for (std::size_t p = 0; p < counts_.size(); ++p) {
    const std::uint32_t m = std::min(counts_[p], other.counts_[p]);
    result.counts_[p] = m;
    result.total_ += m;
    if (m == cap_) ++result.saturated_;
  }
  return result;
}

std::vector<std::size_t> DestinationMultiset::saturated_elements() const {
  std::vector<std::size_t> elements;
  elements.reserve(saturated_);
  for (std::size_t p = 0; p < counts_.size(); ++p) {
    if (counts_[p] == cap_) elements.push_back(p);
  }
  return elements;
}

std::string DestinationMultiset::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (std::size_t p = 0; p < counts_.size(); ++p) {
    if (counts_[p] == 0) continue;
    if (!first) os << ", ";
    os << p << '^' << counts_[p];
    first = false;
  }
  os << '}';
  return os.str();
}

}  // namespace wdm

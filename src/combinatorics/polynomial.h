// Dense univariate polynomials over BigUInt coefficients.
//
// Used to evaluate the MSDW capacity of Lemma 3 without enumerating the
// N^k-term sum: the per-wavelength choices factor into a generating
// polynomial f(z) (coefficient of z^j = number of ways one wavelength class
// contributes j multicast connections), so the capacity is
//     sum_t P(Nk, t) * [z^t] f(z)^k,
// and f(z)^k is ordinary polynomial exponentiation.
#pragma once

#include <cstdint>
#include <vector>

#include "util/biguint.h"

namespace wdm {

class Polynomial {
 public:
  /// Zero polynomial.
  Polynomial() = default;
  /// From coefficients, index = degree. Trailing zeros are trimmed.
  explicit Polynomial(std::vector<BigUInt> coefficients);

  [[nodiscard]] bool is_zero() const { return coefficients_.empty(); }
  /// Degree of the polynomial; -1 for the zero polynomial.
  [[nodiscard]] int degree() const { return static_cast<int>(coefficients_.size()) - 1; }

  /// Coefficient of z^power (0 beyond the degree).
  [[nodiscard]] const BigUInt& coefficient(std::size_t power) const;

  /// Set the coefficient of z^power, extending with zeros if needed.
  void set_coefficient(std::size_t power, BigUInt value);

  Polynomial& operator+=(const Polynomial& rhs);
  friend Polynomial operator+(Polynomial lhs, const Polynomial& rhs) { return lhs += rhs; }
  friend Polynomial operator*(const Polynomial& lhs, const Polynomial& rhs);
  Polynomial& operator*=(const Polynomial& rhs);

  /// this**exponent via repeated squaring (pow(0) == 1).
  [[nodiscard]] Polynomial pow(std::uint64_t exponent) const;

  /// Evaluate at a BigUInt point (Horner).
  [[nodiscard]] BigUInt evaluate(const BigUInt& point) const;

  /// Sum of all coefficients (== evaluate(1), but cheaper).
  [[nodiscard]] BigUInt coefficient_sum() const;

  friend bool operator==(const Polynomial& lhs, const Polynomial& rhs) = default;

 private:
  void trim();
  std::vector<BigUInt> coefficients_;
  static const BigUInt kZero;
};

}  // namespace wdm

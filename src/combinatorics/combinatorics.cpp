#include "combinatorics/combinatorics.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace wdm {

BigUInt falling_factorial(std::uint64_t x, std::uint64_t i) {
  if (i > x) return BigUInt{0};
  BigUInt result{1};
  for (std::uint64_t step = 0; step < i; ++step) {
    result *= BigUInt{x - step};
  }
  return result;
}

BigUInt binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return BigUInt{0};
  if (k > n - k) k = n - k;
  // Multiply ascending and divide immediately so every intermediate value is
  // itself a binomial coefficient (hence the division is exact).
  BigUInt result{1};
  for (std::uint64_t step = 1; step <= k; ++step) {
    result *= BigUInt{n - k + step};
    result /= BigUInt{step};
  }
  return result;
}

BigUInt factorial(std::uint64_t n) { return falling_factorial(n, n); }

BigUInt ipow(std::uint64_t base, std::uint64_t exp) {
  return BigUInt{base}.pow(exp);
}

StirlingTable::StirlingTable(std::size_t n_max) {
  rows_.resize(n_max + 1);
  rows_[0] = {BigUInt{1}};  // S(0, 0) = 1
  for (std::size_t n = 1; n <= n_max; ++n) {
    rows_[n].resize(n + 1);
    rows_[n][0] = BigUInt{0};
    for (std::size_t j = 1; j <= n; ++j) {
      // S(n, j) = j * S(n-1, j) + S(n-1, j-1)
      BigUInt value = rows_[n - 1][j - 1];
      if (j <= n - 1) value += BigUInt{j} * rows_[n - 1][j];
      rows_[n][j] = std::move(value);
    }
  }
}

const BigUInt& StirlingTable::get(std::size_t n, std::size_t j) const {
  if (n >= rows_.size()) throw std::out_of_range("StirlingTable: n exceeds n_max");
  if (j > n) return zero_;
  return rows_[n][j];
}

BigUInt stirling2(std::size_t n, std::size_t j) {
  if (j > n) return BigUInt{0};
  StirlingTable table(n);
  return table.get(n, j);
}

double log10_falling_factorial(double x, double i) {
  if (i > x) return -std::numeric_limits<double>::infinity();
  if (i == 0) return 0.0;
  return (std::lgamma(x + 1) - std::lgamma(x - i + 1)) / std::log(10.0);
}

double log10_binomial(double n, double k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return (std::lgamma(n + 1) - std::lgamma(k + 1) - std::lgamma(n - k + 1)) /
         std::log(10.0);
}

}  // namespace wdm

// Exact combinatorics used by the capacity lemmas (Lemmas 1-3).
//
// The paper's formulas are built from three primitives:
//   P(x, i)  - the falling factorial x(x-1)...(x-i+1)  (permutations),
//   C(n, k)  - binomial coefficients,
//   S(n, j)  - Stirling numbers of the second kind (ways to partition n
//              labelled items into j non-empty groups).
// All are computed exactly over BigUInt; double-precision log variants are
// provided for parameter ranges where only magnitudes are needed.
#pragma once

#include <cstdint>
#include <vector>

#include "util/biguint.h"

namespace wdm {

/// Falling factorial P(x, i) = x (x-1) ... (x-i+1). P(x, 0) == 1.
/// Returns 0 when i > x (the paper's convention: no way to choose).
[[nodiscard]] BigUInt falling_factorial(std::uint64_t x, std::uint64_t i);

/// Binomial coefficient C(n, k); 0 when k > n.
[[nodiscard]] BigUInt binomial(std::uint64_t n, std::uint64_t k);

/// n! as BigUInt.
[[nodiscard]] BigUInt factorial(std::uint64_t n);

/// Integer power base**exp as BigUInt.
[[nodiscard]] BigUInt ipow(std::uint64_t base, std::uint64_t exp);

/// Stirling numbers of the second kind.
///
/// StirlingTable(n_max) precomputes S(n, j) for all 0 <= j <= n <= n_max via
/// the recurrence S(n, j) = j*S(n-1, j) + S(n-1, j-1); lookups are O(1).
class StirlingTable {
 public:
  explicit StirlingTable(std::size_t n_max);

  [[nodiscard]] std::size_t n_max() const { return rows_.size() - 1; }

  /// S(n, j). Throws std::out_of_range if n > n_max. S(0,0)=1; S(n,0)=0 for
  /// n>0; S(n,j)=0 for j>n.
  [[nodiscard]] const BigUInt& get(std::size_t n, std::size_t j) const;

 private:
  std::vector<std::vector<BigUInt>> rows_;  // rows_[n][j], j in [0, n]
  BigUInt zero_;
};

/// Convenience one-shot S(n, j).
[[nodiscard]] BigUInt stirling2(std::size_t n, std::size_t j);

/// log10 of the falling factorial, stable for large x (uses lgamma).
[[nodiscard]] double log10_falling_factorial(double x, double i);

/// log10 of C(n, k).
[[nodiscard]] double log10_binomial(double n, double k);

}  // namespace wdm

// Destination multisets with bounded multiplicity (paper §3.3, eqs. 2-5).
//
// In a three-stage network, the traffic a middle-stage switch j currently
// carries is summarized by which output-stage switches it reaches. With k
// wavelengths per link, switch j can route up to k connections to the same
// output switch p, so the summary is a *multiset* M_j over {0..r-1} with
// multiplicities in [0, k]:
//     M_j = { 0^{i_0}, 1^{i_1}, ..., (r-1)^{i_{r-1}} },  0 <= i_p <= k.  (2)
// The paper defines, for the purpose of admitting one more connection:
//   * intersection: element-wise minimum of multiplicities            (3)
//   * cardinality |M|: the number of elements whose multiplicity is
//     exactly k -- i.e. the number of *saturated* output switches      (4)
//   * null: M == null iff |M| == 0                                    (5)
// An output switch p is usable through j iff its multiplicity is < k; the
// electronic (k = 1) case degenerates to ordinary destination sets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wdm {

class DestinationMultiset {
 public:
  /// Empty multiset over `universe` output switches with multiplicity cap
  /// `max_multiplicity` (the per-link wavelength count k; >= 1).
  DestinationMultiset(std::size_t universe, std::uint32_t max_multiplicity);

  [[nodiscard]] std::size_t universe() const { return counts_.size(); }
  [[nodiscard]] std::uint32_t max_multiplicity() const { return cap_; }

  /// Current multiplicity of element p.
  [[nodiscard]] std::uint32_t multiplicity(std::size_t p) const;

  /// Add one occurrence of p. Throws std::logic_error if p is saturated.
  void add(std::size_t p);

  /// Remove one occurrence of p. Throws std::logic_error if absent.
  void remove(std::size_t p);

  /// True iff p can absorb one more occurrence (multiplicity < k).
  [[nodiscard]] bool can_serve(std::size_t p) const;

  /// Paper eq. (4): the number of saturated elements (multiplicity == k).
  [[nodiscard]] std::size_t saturated_count() const;

  /// Paper eq. (5): null iff no element is saturated.
  [[nodiscard]] bool is_null() const { return saturated_ == 0; }

  /// Total number of occurrences (sum of multiplicities) -- the number of
  /// connections currently transiting this middle switch.
  [[nodiscard]] std::size_t total_occurrences() const { return total_; }

  /// Paper eq. (3): element-wise minimum. Both operands must share universe
  /// and cap.
  [[nodiscard]] DestinationMultiset intersect(const DestinationMultiset& other) const;

  /// The set of saturated elements, ascending.
  [[nodiscard]] std::vector<std::size_t> saturated_elements() const;

  /// Debug rendering, e.g. "{0^2, 3^1}".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const DestinationMultiset&, const DestinationMultiset&) = default;

 private:
  std::vector<std::uint32_t> counts_;
  std::uint32_t cap_;
  std::size_t saturated_ = 0;  // cached eq. (4)
  std::size_t total_ = 0;
};

}  // namespace wdm

// Single-writer shard execution: bounded MPSC submission queues drained by
// a small worker set (DESIGN.md §3.13).
//
// The sharded engine's default mode is lock-per-op: every public call locks
// the owning shard's mutex. That serializes correctly but scales poorly --
// under N client threads hammering S shards, every op pays an uncontended-at
// -best / convoyed-at-worst mutex handoff, and a slow op on a shard blocks
// every later submitter in kernel wait queues. The executor inverts the
// model, the way Click pins router elements to task queues: callers *ship*
// ops into a per-shard BoundedMpscQueue (util/mpsc_queue.h) and return
// immediately with a completion ticket; a fixed worker pool *executes* them,
// with exactly one worker draining a given shard at a time. Exclusivity
// comes from shard ownership -- a CAS-claimed flag per shard -- so the shard
// body (the same *_locked code the mutex mode runs) executes with no mutex
// at all.
//
// Scheduling is home-biased scan with work stealing: worker w starts its
// scan at shard w (its "home"), so disjoint workers prefer disjoint shards,
// but any worker drains any claimable non-empty shard -- a stalled worker
// never strands a queue. A claim drains at most `drain_quantum` ops before
// releasing the shard, bounding how long one hot shard can monopolize a
// worker while cold shards wait. Workers park on a condition variable when
// the global pending count hits zero and are woken by the next submission.
//
// Ownership handoff is the correctness crux: worker A's release-store of the
// claim flag synchronizes-with worker B's later acquire-CAS of it, so every
// shard mutation worker A made happens-before worker B's drain. The shard
// never has two concurrent writers, which is the same exclusivity contract
// the mutex gave -- TSan agrees (tests/executor_test.cpp runs under the tsan
// label).
//
// Backpressure: submission to a full queue spins/yields until space frees.
// Bounded queues ARE the admission control -- see mpsc_queue.h.
//
// Determinism: a shard's ops execute in queue (FIFO) order regardless of
// which workers drain them or how drains interleave across shards, so any
// single-submitter workload is bit-identical at every worker count and
// queue depth (ChurnDriver's queued mode builds on exactly this; the
// executor_test enforces it).
//
// Rules of use:
//   * Construct AFTER the engine, destroy BEFORE it (the destructor
//     quiesces, detaches, and joins).
//   * While attached, the engine's public connect/disconnect/grow route
//     here automatically; never take shard_mutex() yourself.
//   * Never call the blocking wrappers (connect/disconnect/grow/run_task/
//     quiesce) from inside a submitted task: with one worker that deadlocks
//     (the worker would wait on a ticket only it can complete). Task bodies
//     use the engine's *_locked API on their own shard instead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "engine/sharded_engine.h"
#include "util/mpsc_queue.h"

namespace wdm::engine {

struct ExecutorConfig {
  /// Draining workers. Clamped to at least 1.
  std::size_t workers = 4;
  /// Per-shard submission queue capacity (rounded up to a power of two).
  /// Small values are legal and deterministic -- they just mean submitters
  /// feel backpressure earlier.
  std::size_t queue_capacity = 1024;
  /// Max ops one claim executes before releasing the shard to the scan
  /// (fairness bound between hot and cold shards).
  std::size_t drain_quantum = 128;
};

/// Caller-owned completion handle for one submitted op. One-shot: submit
/// with a fresh ticket, wait, read the outcome. The submitter must keep the
/// ticket (and any op payload it points to) alive until wait() returns.
class OpTicket {
 public:
  OpTicket() = default;
  OpTicket(const OpTicket&) = delete;
  OpTicket& operator=(const OpTicket&) = delete;

  /// Spin briefly, then yield, until the op has executed.
  void wait() const;
  [[nodiscard]] bool done() const {
    return state_.load(std::memory_order_acquire) != 0;
  }
  /// Op-specific primary result (id for connect/grow, 0/1 for disconnect).
  /// Valid only after wait()/done().
  [[nodiscard]] std::uint64_t value() const { return value_; }
  /// Op-specific secondary result (has-id flag, GrowResult status).
  [[nodiscard]] std::uint64_t extra() const { return extra_; }

 private:
  friend class ShardExecutor;
  void complete(std::uint64_t value, std::uint64_t extra) {
    value_ = value;
    extra_ = extra;
    state_.store(1, std::memory_order_release);  // publishes value_/extra_
  }

  std::atomic<std::uint32_t> state_{0};
  std::uint64_t value_ = 0;
  std::uint64_t extra_ = 0;
};

class ShardExecutor {
 public:
  explicit ShardExecutor(ShardedEngine& engine,
                         const ExecutorConfig& config = {});
  /// Quiesces, detaches from the engine, stops and joins the workers.
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }
  [[nodiscard]] const ExecutorConfig& config() const { return config_; }

  // -- async submission (any thread; blocks only on queue-full) -------------
  /// `request` must stay alive until the ticket completes (ops carry
  /// pointers, not copies -- the hot path allocates nothing).
  void submit_connect(std::size_t shard, const MulticastRequest* request,
                      OpTicket* ticket);
  void submit_disconnect(std::size_t shard, ConnectionId id, OpTicket* ticket);
  void submit_grow(std::size_t shard, ConnectionId id,
                   const WavelengthEndpoint& destination, OpTicket* ticket);
  /// Batched connect (engine::connect_batch_locked); `requests` and
  /// `outcomes` must outlive the ticket. Ticket value() = admitted count.
  void submit_batch(std::size_t shard, const MulticastRequest* requests,
                    std::size_t count, BatchOutcome* outcomes,
                    OpTicket* ticket);
  /// Arbitrary closure executed with exclusive access to `shard`.
  /// `fn(ctx, arg)` runs on the draining worker; keep `ctx` alive until the
  /// ticket completes.
  void submit_task(std::size_t shard, void (*fn)(void*, std::uint64_t),
                   void* ctx, std::uint64_t arg, OpTicket* ticket);

  // -- blocking wrappers (the engine's public API routes through these) -----
  std::optional<ConnectionId> connect(std::size_t shard,
                                      const MulticastRequest& request);
  bool disconnect(std::size_t shard, ConnectionId id);
  GrowResult grow(std::size_t shard, ConnectionId id,
                  const WavelengthEndpoint& destination);
  /// Run `fn` under shard exclusivity and wait for it (the executor-mode
  /// body of ShardedEngine::with_shard_exclusive).
  void run_task(std::size_t shard, const std::function<void()>& fn);

  /// Block until every op submitted so far has executed. A barrier, not a
  /// shutdown: workers keep running and new submissions are legal after.
  void quiesce();

  /// Ops executed since construction (monotone; == submitted at quiescence).
  [[nodiscard]] std::uint64_t executed_ops() const {
    return executed_.load(std::memory_order_acquire);
  }

 private:
  struct Op {
    enum class Kind : std::uint8_t {
      kConnect,
      kDisconnect,
      kGrow,
      kBatch,
      kTask,
    };
    Kind kind = Kind::kTask;
    const MulticastRequest* request = nullptr;  // connect / batch (array)
    ConnectionId id = 0;                        // disconnect / grow
    WavelengthEndpoint destination{};           // grow
    std::size_t count = 0;                      // batch
    BatchOutcome* outcomes = nullptr;           // batch
    void (*fn)(void*, std::uint64_t) = nullptr; // task
    void* ctx = nullptr;                        // task
    std::uint64_t arg = 0;                      // task
    OpTicket* ticket = nullptr;
    std::uint64_t enqueue_ns = 0;  // engine.op_wait_ns sample origin
  };

  /// One shard's submission lane. The claim flag is the single-writer
  /// exclusivity token: release-store on unclaim / acquire-CAS on claim
  /// chains every owner's writes happens-before the next owner's reads.
  struct alignas(64) Lane {
    explicit Lane(std::size_t capacity) : queue(capacity) {}
    BoundedMpscQueue<Op> queue;
    std::atomic<bool> claimed{false};
  };

  void push(std::size_t shard, Op op);
  void worker_loop(std::size_t index);
  /// Claim + drain up to drain_quantum ops; returns ops executed (0 when
  /// empty or already claimed by another worker).
  std::size_t drain_shard(std::size_t shard);
  void execute(std::size_t shard, Op& op);

  ShardedEngine& engine_;
  ExecutorConfig config_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  /// Ops submitted minus ops executed (parking condition).
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<bool> stop_{false};

  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  /// Workers inside the park protocol. Atomic (not mutex-guarded) so push()
  /// can skip the mutex entirely when nobody sleeps -- the common case under
  /// load; see the Dekker pairing in push()/worker_loop().
  std::atomic<std::size_t> sleepers_{0};

  std::vector<std::thread> threads_;
};

}  // namespace wdm::engine

#include "engine/churn_driver.h"

#include <algorithm>
#include <atomic>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "engine/shard_executor.h"
#include "util/metrics.h"
#include "util/trace_span.h"

namespace wdm::engine {

namespace {

/// Driver instruments (see docs/BENCHMARKS.md glossary). engine.batches and
/// the outcome counters are deterministic; engine.drain_batch is wall time.
struct DriverMetrics {
  Counter& batches = metrics().counter("engine.batches");
  Counter& arrivals = metrics().counter("engine.arrivals");
  Counter& blocked = metrics().counter("engine.blocked");
  TimerStat& drain_batch = metrics().timer("engine.drain_batch");
  Histogram& request_fanout = metrics().histogram("engine.request_fanout");
  Histogram& grow_candidates = metrics().histogram("engine.grow_candidates");

  static DriverMetrics& get() {
    static DriverMetrics instance;
    return instance;
  }
};

}  // namespace

std::string ChurnStats::to_string() const {
  std::ostringstream os;
  os << "shards=" << per_shard.size() << " " << total.sim.to_string()
     << " grows=" << total.grows << "/" << total.grow_attempts
     << " stale_rejected=" << total.stale_rejected << "/" << total.stale_probes
     << " leftover=" << leftover_sessions;
  return os.str();
}

ChurnDriver::ChurnDriver(ShardedEngine& engine, ChurnConfig config)
    : engine_(&engine), config_(config) {}

void ChurnDriver::fail(const char* what) const {
  engine_->dump_flight_recorders(std::cerr);
  throw std::logic_error(what);
}

void ChurnDriver::remember_stale(Lane& lane, ConnectionId id) {
  if (lane.stale.size() < kStaleRing) {
    lane.stale.push_back(id);
  } else {
    lane.stale[lane.stale_cursor] = id;
    lane.stale_cursor = (lane.stale_cursor + 1) % kStaleRing;
  }
}

void ChurnDriver::tick(Lane& lane) {
  if (config_.connect_batch > 0) {
    tick_batched(lane);
    return;
  }
  DriverMetrics& instruments = DriverMetrics::get();
  MultistageSwitch& sw = engine_->shard_switch(lane.shard);
  ThreeStageNetwork& network = sw.network();
  ShardChurnStats& stats = lane.stats;
  SimStats& sim = stats.sim;

  ++sim.steps;
  sim.active_connection_steps += lane.active.size();

  // Stale-id probe: replay a disposed (possibly slot-reused) id against the
  // shard; the generation tag must reject it without touching anything.
  if (!lane.stale.empty() && lane.rng.next_bool(config_.stale_probe_fraction)) {
    ++stats.stale_probes;
    const ConnectionId stale =
        lane.stale[lane.rng.next_below(lane.stale.size())];
    if (network.try_release(stale)) {
      ++stats.stale_accepted;  // corruption; surfaced by every caller's checks
    } else {
      ++stats.stale_rejected;
      metrics().counter("engine.stale_rejected").add();
    }
  }

  const bool arrive =
      lane.active.empty() || lane.rng.next_bool(config_.arrival_fraction);
  if (arrive) {
    const auto request = random_admissible_request(
        lane.rng, network, config_.fanout, engine_->owned_ports(lane.shard));
    if (request) {
      ++sim.attempts;
      instruments.arrivals.add();
      instruments.request_fanout.record(request->outputs.size());
      if (const auto id = engine_->connect_locked(lane.shard, *request)) {
        ++sim.admitted;
        sim.conversions += conversions_in_route(
            *request, network.find_connection(*id)->second);
        lane.active.push_back(*id);
        sim.max_concurrent = std::max(sim.max_concurrent, lane.active.size());
      } else {
        ++sim.blocked;
        instruments.blocked.add();
      }
    }
  } else if (lane.rng.next_bool(config_.grow_fraction)) {
    grow_tick(lane, static_cast<std::size_t>(
                        lane.rng.next_below(lane.active.size())));
  } else {
    const std::size_t victim =
        static_cast<std::size_t>(lane.rng.next_below(lane.active.size()));
    const ConnectionId id = lane.active[victim];
    if (!engine_->disconnect_locked(lane.shard, id)) {
      fail("ChurnDriver: live session rejected as stale");
    }
    remember_stale(lane, id);
    lane.active[victim] = lane.active.back();
    lane.active.pop_back();
    ++sim.departures;
  }

  if (config_.self_check_every != 0 &&
      sim.steps % config_.self_check_every == 0) {
    network.self_check();
  }
}

void ChurnDriver::tick_batched(Lane& lane) {
  ShardChurnStats& stats = lane.stats;
  SimStats& sim = stats.sim;
  ++sim.steps;

  const ThreeStageNetwork& network = engine_->shard_switch(lane.shard).network();
  // Every decision below draws only on the shard rng -- never on live state
  // -- so the tick stream (and with it every flush boundary) is a pure
  // function of (seed, shard, tick index), independent of batch size.
  if (lane.rng.next_bool(config_.arrival_fraction)) {
    // State-free arrival: a uniform request remapped onto an owned source
    // port (the remap keeps the shard-ownership invariant; the lane
    // discipline is port-independent, so the remapped request stays legal).
    // A shard can own no ports (rendezvous hashing makes no coverage
    // promise); the classic path's generator returns nullopt there, and the
    // batched path mirrors it by skipping the arrival. Ownership is a
    // per-config constant, so the rng stream stays batch-size-independent.
    const auto& owned = engine_->owned_ports(lane.shard);
    if (owned.empty()) return;
    MulticastRequest request =
        random_request(lane.rng, network.port_count(), network.lane_count(),
                       network.network_model(), config_.fanout);
    request.input.port = owned[lane.rng.next_below(owned.size())];
    ++sim.attempts;
    DriverMetrics& instruments = DriverMetrics::get();
    instruments.arrivals.add();
    instruments.request_fanout.record(request.outputs.size());
    lane.pending.push_back(std::move(request));
    if (lane.pending.size() >= config_.connect_batch) flush_pending(lane);
  } else {
    // Flush-before-any-state-read: the victim draw and the emptiness test
    // must see the canonical (all-prior-ops-applied) session set.
    flush_pending(lane);
    sim.active_connection_steps += lane.active.size();
    if (!lane.active.empty()) {
      const std::size_t victim =
          static_cast<std::size_t>(lane.rng.next_below(lane.active.size()));
      const ConnectionId id = lane.active[victim];
      if (!engine_->disconnect_locked(lane.shard, id)) {
        fail("ChurnDriver: live session rejected as stale");
      }
      lane.active[victim] = lane.active.back();
      lane.active.pop_back();
      ++sim.departures;
    }
  }

  if (config_.self_check_every != 0 &&
      sim.steps % config_.self_check_every == 0) {
    flush_pending(lane);
    network.self_check();
  }
}

void ChurnDriver::flush_pending(Lane& lane) {
  if (lane.pending.empty()) return;
  const std::size_t n = lane.pending.size();
  lane.outcomes.resize(n);
  engine_->connect_batch_locked(lane.shard, lane.pending.data(), n,
                                lane.outcomes.data());

  const ThreeStageNetwork& network = engine_->shard_switch(lane.shard).network();
  SimStats& sim = lane.stats.sim;
  // Deferred account-before-op: when pending op i was generated, every
  // earlier op had either flushed or sat ahead of it in this buffer, so its
  // canonical "sessions live before me" is base + the admissions ahead.
  const std::size_t base = lane.active.size();
  std::size_t admitted_ahead = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sim.active_connection_steps += base + admitted_ahead;
    const BatchOutcome& out = lane.outcomes[i];
    if (out.ok) {
      ++sim.admitted;
      sim.conversions += conversions_in_route(
          lane.pending[i], network.find_connection(out.id)->second);
      lane.active.push_back(out.id);
      ++admitted_ahead;
    } else if (out.error == ConnectError::kBlocked) {
      // Routing blocks count as blocked; busy-endpoint rejections (possible
      // because generation is state-free) are neither admitted nor blocked.
      ++sim.blocked;
      DriverMetrics::get().blocked.add();
    }
  }
  // Sessions only accumulate between departures, and departures flush first,
  // so every concurrency peak is visible at the end of some flush.
  sim.max_concurrent = std::max(sim.max_concurrent, lane.active.size());
  lane.pending.clear();
}

void ChurnDriver::grow_tick(Lane& lane, std::size_t victim) {
  ShardChurnStats& stats = lane.stats;
  ++stats.grow_attempts;
  ThreeStageNetwork& network = engine_->shard_switch(lane.shard).network();
  const ConnectionId id = lane.active[victim];
  const auto* entry = network.find_connection(id);
  if (entry == nullptr) {
    fail("ChurnDriver: lost track of a live session");
  }
  const MulticastRequest& request = entry->first;
  const std::size_t N = network.port_count();
  const std::size_t k = network.lane_count();

  // One wavelength per output port: only ports the session does not already
  // deliver to can take the new destination.
  auto port_used = [&request](std::size_t port) {
    return std::any_of(request.outputs.begin(), request.outputs.end(),
                       [port](const WavelengthEndpoint& out) {
                         return out.port == port;
                       });
  };

  // Candidate destinations under the network model's lane discipline
  // (mirrors random_admissible_request's per-model rules).
  std::vector<WavelengthEndpoint> candidates;
  switch (network.network_model()) {
    case MulticastModel::kMSW:
    case MulticastModel::kMSDW: {
      // MSW fans out on the source lane; MSDW on the request's (single)
      // destination lane. Both pin every destination to one lane.
      const Wavelength lane_required = network.network_model() ==
                                               MulticastModel::kMSW
                                           ? request.input.lane
                                           : request.outputs.front().lane;
      for (std::size_t port = 0; port < N; ++port) {
        if (!port_used(port) && !network.output_busy({port, lane_required})) {
          candidates.push_back({port, lane_required});
        }
      }
      break;
    }
    case MulticastModel::kMAW: {
      for (std::size_t port = 0; port < N; ++port) {
        if (port_used(port)) continue;
        std::vector<Wavelength> lanes;
        for (Wavelength lane_candidate = 0; lane_candidate < k;
             ++lane_candidate) {
          if (!network.output_busy({port, lane_candidate})) {
            lanes.push_back(lane_candidate);
          }
        }
        if (!lanes.empty()) {
          candidates.push_back(
              {port, lanes[lane.rng.next_below(lanes.size())]});
        }
      }
      break;
    }
  }
  DriverMetrics::get().grow_candidates.record(candidates.size());
  if (candidates.empty()) {
    ++stats.grow_blocked;
    metrics().counter("engine.grow_blocked").add();
    return;
  }

  const WavelengthEndpoint destination =
      candidates[lane.rng.next_below(candidates.size())];
  const GrowResult result = engine_->grow_locked(lane.shard, id, destination);
  switch (result.status) {
    case GrowResult::Status::kGrown:
      ++stats.grows;
      break;
    case GrowResult::Status::kBlocked:
      ++stats.grow_blocked;
      break;
    case GrowResult::Status::kStaleSession:
      fail("ChurnDriver: grow lost a live session");
  }
  // Break-before-make: the session carries a fresh id either way, and the
  // old id is exactly the stale-probe material we want.
  remember_stale(lane, id);
  lane.active[victim] = result.connection;
}

void ChurnDriver::drain(Lane& lane) {
  std::lock_guard shard_lock(engine_->shard_mutex(lane.shard));
  for (;;) {
    std::size_t size = 0;
    {
      std::lock_guard queue_lock(lane.queue_mutex);
      if (lane.queue_head == lane.queue.size()) {
        lane.queue.clear();
        lane.queue_head = 0;
        break;
      }
      size = lane.queue[lane.queue_head++];
    }
    ScopedTimer timer(DriverMetrics::get().drain_batch);
    TraceSpan span("engine.drain_batch");
    span.arg("shard", static_cast<std::int64_t>(lane.shard));
    span.arg("ops", static_cast<std::int64_t>(size));
    for (std::size_t i = 0; i < size; ++i) tick(lane);
  }
}

ChurnStats ChurnDriver::merge(std::vector<std::unique_ptr<Lane>>& lanes) const {
  ChurnStats out;
  out.per_shard.reserve(lanes.size());
  for (const auto& lane : lanes) {  // ascending shard order, always
    const ShardChurnStats& stats = lane->stats;
    out.per_shard.push_back(stats);
    out.total.sim += stats.sim;
    out.total.grow_attempts += stats.grow_attempts;
    out.total.grows += stats.grows;
    out.total.grow_blocked += stats.grow_blocked;
    out.total.stale_probes += stats.stale_probes;
    out.total.stale_rejected += stats.stale_rejected;
    out.total.stale_accepted += stats.stale_accepted;
    out.leftover_sessions += lane->active.size();
  }
  return out;
}

void ChurnDriver::queued_batch(void* ctx, std::uint64_t ops) {
  auto* task = static_cast<QueuedLaneCtx*>(ctx);
  Lane& lane = *task->lane;
  // A prior batch on this shard failed: stop advancing the stream so the
  // error surfaces with the lane state that produced it.
  if (lane.task_error) return;
  try {
    ScopedTimer timer(DriverMetrics::get().drain_batch);
    TraceSpan span("engine.drain_batch");
    span.arg("shard", static_cast<std::int64_t>(lane.shard));
    span.arg("ops", static_cast<std::int64_t>(ops));
    for (std::uint64_t i = 0; i < ops; ++i) task->driver->tick(lane);
  } catch (...) {
    // Never let an exception escape into the executor's worker loop (that
    // would terminate the process); run_queued rethrows after quiescing.
    lane.task_error = std::current_exception();
  }
}

ChurnStats ChurnDriver::run_queued() {
  const std::size_t shard_count = engine_->shard_count();
  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    lanes.push_back(std::make_unique<Lane>(s, config_));
  }
  if (config_.ops_per_shard != 0) {
    const std::size_t batch = std::max<std::size_t>(1, config_.batch);
    const std::size_t batches_per_shard =
        (config_.ops_per_shard + batch - 1) / batch;

    ExecutorConfig exec_config;
    exec_config.workers = std::max<std::size_t>(1, config_.workers);
    exec_config.queue_capacity = std::max<std::size_t>(2, config_.queue_depth);
    ShardExecutor executor(*engine_, exec_config);

    std::vector<QueuedLaneCtx> contexts(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      contexts[s] = {this, lanes[s].get()};
    }
    // Same batch schedule as the locked mode (round-robin over shards), but
    // shipped: the single submitting thread pushes count-carrying tasks into
    // the owning shard's queue and never touches lane state itself. FIFO
    // drain per shard reproduces the serial stream exactly; a full queue
    // blocks the submitter (backpressure), which delays but never reorders.
    for (std::size_t claim = 0; claim < batches_per_shard * shard_count;
         ++claim) {
      const std::size_t shard = claim % shard_count;
      const std::size_t begin = (claim / shard_count) * batch;
      const std::size_t size =
          std::min(batch, config_.ops_per_shard - begin);
      DriverMetrics::get().batches.add();
      executor.submit_task(shard, &ChurnDriver::queued_batch,
                           &contexts[shard], size, nullptr);
    }
    executor.quiesce();
    if (config_.connect_batch > 0) {
      // Tail flush as owned tasks, for the same reason run() flushes under
      // the shard mutex: pending buffers are lane state.
      for (std::size_t s = 0; s < shard_count; ++s) {
        Lane& lane = *lanes[s];
        if (lane.task_error) continue;
        executor.run_task(s, [this, &lane] { flush_pending(lane); });
      }
    }
    // Executor destructor: quiesce, detach from the engine, join workers.
  }
  for (const auto& lane : lanes) {
    if (lane->task_error) std::rethrow_exception(lane->task_error);
  }
  return merge(lanes);
}

ChurnStats ChurnDriver::run(ThreadPool& pool) {
  if (config_.queued) return run_queued();
  const std::size_t shard_count = engine_->shard_count();
  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    lanes.push_back(std::make_unique<Lane>(s, config_));
  }
  if (config_.ops_per_shard == 0) return merge(lanes);

  const std::size_t batch = std::max<std::size_t>(1, config_.batch);
  const std::size_t batches_per_shard =
      (config_.ops_per_shard + batch - 1) / batch;
  const std::size_t total_batches = batches_per_shard * shard_count;
  std::atomic<std::size_t> cursor{0};

  const std::size_t workers = std::max<std::size_t>(1, config_.workers);
  pool.parallel_for(workers, [&](std::size_t) {
    TraceSpan span("engine.worker");
    for (;;) {
      const std::size_t claim = cursor.fetch_add(1, std::memory_order_relaxed);
      if (claim >= total_batches) return;
      Lane& lane = *lanes[claim % shard_count];
      const std::size_t begin = (claim / shard_count) * batch;
      const std::size_t size = std::min(batch, config_.ops_per_shard - begin);
      {
        std::lock_guard queue_lock(lane.queue_mutex);
        lane.queue.push_back(size);
      }
      DriverMetrics::get().batches.add();
      drain(lane);
    }
  });

  // Every submitter drains after pushing, so no batch can be left behind
  // once parallel_for joins. A leftover means the scheduling invariant (and
  // with it the determinism argument) is broken -- fail loudly.
  for (const auto& lane : lanes) {
    std::lock_guard queue_lock(lane->queue_mutex);
    if (lane->queue_head != lane->queue.size()) {
      throw std::logic_error("ChurnDriver: undrained batch queue after join");
    }
  }
  if (config_.connect_batch > 0) {
    // Arrivals still buffered when the tick streams ran out flush here, so
    // every generated op lands in the stats regardless of batch alignment.
    for (const auto& lane : lanes) {
      std::lock_guard shard_lock(engine_->shard_mutex(lane->shard));
      flush_pending(*lane);
    }
  }
  return merge(lanes);
}

ChurnStats ChurnDriver::run() { return run(default_pool()); }

ChurnStats ChurnDriver::run_serial() {
  const std::size_t shard_count = engine_->shard_count();
  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    lanes.push_back(std::make_unique<Lane>(s, config_));
    Lane& lane = *lanes.back();
    std::lock_guard shard_lock(engine_->shard_mutex(s));
    for (std::size_t op = 0; op < config_.ops_per_shard; ++op) tick(lane);
    if (config_.connect_batch > 0) flush_pending(lane);
  }
  return merge(lanes);
}

}  // namespace wdm::engine

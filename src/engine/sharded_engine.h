// Sharded concurrent session engine over ThreeStageNetwork replicas.
//
// A ThreeStageNetwork/Router pair is single-threaded by construction (the
// routing hot path runs on mutable per-object scratch; see network.h), so
// one fabric can never use more than one core for connect/disconnect churn.
// The engine scales the session plane the way modular Clos deployments scale
// hardware -- and the way the AWG-based Clos literature decomposes fabrics
// into independent planes: S full MultistageSwitch replicas ("shards"), each
// guarded by its own mutex, with every session pinned to the shard that owns
// its source port.
//
// Port ownership uses rendezvous (highest-random-weight) hashing: shard s
// owns port p iff mix(p, s) is the maximum over all shards. That gives the
// consistent-hash properties the session plane needs with no ring state:
//   * deterministic and uniform (each shard owns ~N/S ports),
//   * stable -- adding a shard moves only the ~N/(S+1) ports the new shard
//     wins; no port ever moves between two surviving shards.
//
// Thread-safety contract: the public session API (connect / disconnect /
// grow) locks exactly the owning shard, so sessions on distinct shards never
// contend. The *_locked variants are for drivers that batch many operations
// under one shard_mutex() hold (see churn_driver.h); they must be called
// with that mutex held. Determinism across thread counts is a driver
// property: the engine itself is deterministic per shard because a shard is
// just a serial MultistageSwitch behind a mutex.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "multistage/builder.h"
#include "multistage/nonblocking.h"
#include "obs/flight_recorder.h"
#include "obs/health_snapshot.h"
#include "repack/repack.h"

namespace wdm::engine {

/// A live session: the owning shard plus the shard-local connection id.
struct SessionId {
  std::uint32_t shard = 0;
  ConnectionId connection = 0;

  friend bool operator==(const SessionId&, const SessionId&) = default;
};

struct EngineConfig {
  /// Geometry of each shard replica.
  ClosParams params{4, 4, 5, 2};
  Construction construction = Construction::kMswDominant;
  MulticastModel network_model = MulticastModel::kMSW;
  /// Routing policy per shard; nullopt = Router::recommended_policy.
  std::optional<RoutingPolicy> policy;
  std::size_t shards = 4;
  /// Per-shard repack engine (rearrangeable mode, DESIGN.md §3.12). Disabled
  /// by default: the classic connect path -- decisions, counters, flight
  /// records -- stays bit-identical unless a config opts in.
  repack::RepackPolicy repack{.enabled = false};
};

/// Rendezvous hash: the shard that owns `port` among `shard_count` shards.
/// Exposed standalone so tests can verify the consistent-hash properties.
[[nodiscard]] std::size_t rendezvous_shard(std::size_t port,
                                           std::size_t shard_count);

/// The outcome of a grow() call. Growing is break-before-make (the grown
/// request reuses the session's own input wavelength, so the old route must
/// come down before the new one can be admitted); consequently the session
/// carries a NEW id after both kGrown and kBlocked -- on kBlocked the
/// original route is reinstalled under a fresh generation. kStaleSession
/// means the id no longer names a live session; nothing changed.
struct GrowResult {
  enum class Status { kGrown, kBlocked, kStaleSession };
  Status status = Status::kStaleSession;
  ConnectionId connection = 0;  // the session's id after the call
};

class ShardedEngine {
 public:
  explicit ShardedEngine(const EngineConfig& config);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Ports per shard replica (every replica has the same geometry).
  [[nodiscard]] std::size_t port_count() const { return config_.params.port_count(); }

  /// The shard that owns sessions originating at `source_port`.
  [[nodiscard]] std::size_t shard_of(std::size_t source_port) const;
  /// The source ports shard `shard` owns, ascending.
  [[nodiscard]] const std::vector<std::size_t>& owned_ports(std::size_t shard) const;

  // -- session API (thread-safe: locks the owning shard) --------------------
  /// Route + install on the owning shard; nullopt when inadmissible or
  /// blocked there.
  [[nodiscard]] std::optional<SessionId> connect(const MulticastRequest& request);
  /// Tear down; false for stale ids (double-disconnect safe).
  bool disconnect(SessionId session);
  /// Add one destination to a live session (multicast grow); see GrowResult.
  GrowResult grow(SessionId session, const WavelengthEndpoint& destination);
  /// Live sessions across all shards (locks each shard briefly).
  [[nodiscard]] std::size_t active_sessions() const;
  /// Deep-check every shard replica (throws std::logic_error on corruption,
  /// after dumping every shard's flight recorder to stderr).
  void self_check() const;

  // -- lock-free observability (src/obs) ------------------------------------
  /// The Theorem-1/2 bound for one shard replica's geometry (computed once
  /// at construction; Theorem 1 for MSW-dominant, Theorem 2 for
  /// MAW-dominant).
  [[nodiscard]] const NonblockingBound& theorem_bound() const { return bound_; }

  /// The shard's latest published health snapshot, read with ZERO mutex
  /// acquisition (seqlock retry loop; see obs/health_snapshot.h). Safe from
  /// any thread at any time -- including while every shard mutex is held by
  /// someone else. Shards publish at every commit point (connect /
  /// disconnect / grow / batch), plus once at construction, so the result is
  /// always a complete, internally consistent snapshot.
  [[nodiscard]] obs::EngineHealthSnapshot health_snapshot(std::size_t shard) const;
  /// All shards' snapshots, ascending shard order. Lock-free like
  /// health_snapshot(); the per-shard snapshots are individually (not
  /// mutually) consistent.
  [[nodiscard]] std::vector<obs::EngineHealthSnapshot> health_snapshots() const;

  /// A coherent copy of one shard's flight-recorder ring (oldest first).
  [[nodiscard]] obs::FlightRecorder::Dump flight_dump(std::size_t shard) const;
  /// Render every shard's ring to `os` (the on-failure diagnostic; also
  /// written to WDM_FLIGHT_DUMP by run_benches for CI artifacts).
  void dump_flight_recorders(std::ostream& os) const;

  // -- shard plumbing for batching drivers ----------------------------------
  /// The mutex guarding shard `shard`'s switch. Hold it across any use of
  /// shard_switch() or the *_locked calls.
  [[nodiscard]] std::mutex& shard_mutex(std::size_t shard) const;
  /// The shard's replica; requires shard_mutex(shard) (or a quiescent engine).
  [[nodiscard]] MultistageSwitch& shard_switch(std::size_t shard);

  /// connect/disconnect/grow bodies without the lock; callers hold
  /// shard_mutex(shard). connect_locked does NOT re-check ownership of the
  /// request's source port -- drivers that generate per-shard traffic from
  /// owned_ports() satisfy it by construction.
  [[nodiscard]] std::optional<ConnectionId> connect_locked(
      std::size_t shard, const MulticastRequest& request);
  /// Batched connect_locked: one Router::connect_batch call on the shard's
  /// replica (submission order, bit-identical outcomes to serial replay;
  /// see routing.h). Returns the number admitted.
  std::size_t connect_batch_locked(std::size_t shard,
                                   const MulticastRequest* requests,
                                   std::size_t count, BatchOutcome* outcomes);
  bool disconnect_locked(std::size_t shard, ConnectionId id);
  GrowResult grow_locked(std::size_t shard, ConnectionId id,
                         const WavelengthEndpoint& destination);

 private:
  /// Mutex + replica, heap-pinned (mutexes are immovable) and padded so two
  /// shards' hot state never shares a cache line. The observability tail
  /// (tallies, flight ring, seqlock slot, encode scratch) is written only
  /// under `mutex`; the seqlock slot is additionally read lock-free.
  struct alignas(64) Shard {
    Shard(std::uint32_t index, const EngineConfig& config);
    mutable std::mutex mutex;
    MultistageSwitch sw;
    // Deterministic per-shard churn tallies (mirror the engine.* counters).
    std::uint64_t connects = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t grows = 0;
    std::uint64_t grow_blocked = 0;
    std::uint64_t stale_rejected = 0;
    std::uint64_t publish_version = 0;
    obs::FlightRecorder flight;
    obs::SeqlockSnapshotSlot health;
    /// Reusable encode buffer (sized once, so publishing allocates nothing).
    std::vector<std::uint64_t> encode_scratch;
  };

  /// Encode the shard's current state and publish it through the seqlock
  /// slot. Requires the shard mutex (the single-writer contract).
  void publish_health(Shard& shard);

  EngineConfig config_;
  NonblockingBound bound_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<std::size_t>> owned_ports_;  // [shard] -> ports
};

}  // namespace wdm::engine

// Sharded concurrent session engine over ThreeStageNetwork replicas.
//
// A ThreeStageNetwork/Router pair is single-threaded by construction (the
// routing hot path runs on mutable per-object scratch; see network.h), so
// one fabric can never use more than one core for connect/disconnect churn.
// The engine scales the session plane the way modular Clos deployments scale
// hardware -- and the way the AWG-based Clos literature decomposes fabrics
// into independent planes: S full MultistageSwitch replicas ("shards"), each
// guarded by its own mutex, with every session pinned to the shard that owns
// its source port.
//
// Port ownership uses rendezvous (highest-random-weight) hashing: shard s
// owns port p iff mix(p, s) is the maximum over all shards. That gives the
// consistent-hash properties the session plane needs with no ring state:
//   * deterministic and uniform (each shard owns ~N/S ports),
//   * stable -- adding a shard moves only the ~N/(S+1) ports the new shard
//     wins; no port ever moves between two surviving shards.
//
// Thread-safety contract: a shard's state is guarded by *exclusive shard
// access*, which comes in two interchangeable flavors:
//
//   * mutex mode (the default): the public session API (connect /
//     disconnect / grow) locks exactly the owning shard, so sessions on
//     distinct shards never contend. The *_locked variants are for drivers
//     that batch many operations under one shard_mutex() hold (see
//     churn_driver.h); they must be called with that mutex held.
//
//   * executor mode (DESIGN.md §3.13): while a ShardExecutor is attached
//     (shard_executor.h), exclusivity comes from queue ownership instead --
//     exactly one worker drains a shard's submission queue at a time, so
//     the shard body runs with no mutex at all. The public session API
//     transparently routes through the executor's queues in this mode; the
//     *_locked variants are then for op bodies executing on the owning
//     worker. Never take shard_mutex() while an executor is attached.
//
// Lock-free reads ride neither: is_active / find_session probe the
// per-shard session-generation table (obs/session_table.h) and
// admission_precheck / active_sessions read the seqlock health-snapshot
// spine (obs/health_snapshot.h) -- zero mutex acquisitions, safe from any
// thread in either mode, even while every shard is saturated.
//
// Determinism across thread counts is a driver property: the engine itself
// is deterministic per shard because a shard is just a serial
// MultistageSwitch behind an exclusivity discipline.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "multistage/builder.h"
#include "multistage/nonblocking.h"
#include "obs/flight_recorder.h"
#include "obs/health_snapshot.h"
#include "obs/session_table.h"
#include "repack/repack.h"

namespace wdm::engine {

class ShardExecutor;

/// A live session: the owning shard plus the shard-local connection id.
struct SessionId {
  std::uint32_t shard = 0;
  ConnectionId connection = 0;

  friend bool operator==(const SessionId&, const SessionId&) = default;
};

struct EngineConfig {
  /// Geometry of each shard replica.
  ClosParams params{4, 4, 5, 2};
  Construction construction = Construction::kMswDominant;
  MulticastModel network_model = MulticastModel::kMSW;
  /// Routing policy per shard; nullopt = Router::recommended_policy.
  std::optional<RoutingPolicy> policy;
  std::size_t shards = 4;
  /// Per-shard repack engine (rearrangeable mode, DESIGN.md §3.12). Disabled
  /// by default: the classic connect path -- decisions, counters, flight
  /// records -- stays bit-identical unless a config opts in.
  repack::RepackPolicy repack{.enabled = false};
};

/// Rendezvous hash: the shard that owns `port` among `shard_count` shards.
/// Exposed standalone so tests can verify the consistent-hash properties.
[[nodiscard]] std::size_t rendezvous_shard(std::size_t port,
                                           std::size_t shard_count);

/// The outcome of a grow() call. Growing is break-before-make (the grown
/// request reuses the session's own input wavelength, so the old route must
/// come down before the new one can be admitted); consequently the session
/// carries a NEW id after both kGrown and kBlocked -- on kBlocked the
/// original route is reinstalled under a fresh generation. kStaleSession
/// means the id no longer names a live session; nothing changed.
struct GrowResult {
  enum class Status { kGrown, kBlocked, kStaleSession };
  Status status = Status::kStaleSession;
  ConnectionId connection = 0;  // the session's id after the call
};

/// The outcome of a cross-shard grow (grow_to_shard / grow_anywhere).
/// kGrown: `session` names the migrated session on its new shard. kBlocked:
/// the target shard could not admit the grown request; the original session
/// is untouched and `session` still names it. kStaleSession: the id named no
/// live session (either at the start, or -- for the rollback race -- the
/// session was torn down concurrently after the grown copy was admitted; the
/// copy is then released and nothing leaks).
struct CrossGrowResult {
  GrowResult::Status status = GrowResult::Status::kStaleSession;
  SessionId session;
};

/// A successful lock-free session probe (find_session): where the session
/// lives and the generation under which its slot is currently active.
struct SessionProbe {
  std::uint32_t shard = 0;
  std::uint32_t slot = 0;
  std::uint32_t generation = 0;
};

/// A lock-free admission pre-check for one shard: the live Theorem-1/2
/// margin read off the health-snapshot spine. `admit` is advisory -- the
/// margin can change between the probe and a subsequent connect() -- but it
/// is exact as of snapshot `version`, so admission control loops can shed
/// load without ever touching a shard mutex.
struct AdmissionPrecheck {
  bool admit = false;
  /// bound_m - peak middle-stage occupancy (negative = over the bound, which
  /// rearrangeable/repack configs can legally reach).
  std::int64_t margin = 0;
  std::uint64_t sessions = 0;  // live sessions on the shard at `version`
  std::uint64_t version = 0;   // the shard's publish version probed
};

class ShardedEngine {
 public:
  explicit ShardedEngine(const EngineConfig& config);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Ports per shard replica (every replica has the same geometry).
  [[nodiscard]] std::size_t port_count() const { return config_.params.port_count(); }

  /// The shard that owns sessions originating at `source_port`.
  [[nodiscard]] std::size_t shard_of(std::size_t source_port) const;
  /// The source ports shard `shard` owns, ascending.
  [[nodiscard]] const std::vector<std::size_t>& owned_ports(std::size_t shard) const;

  // -- session API (thread-safe: exclusive shard access, see header note) ---
  /// Route + install on the owning shard; nullopt when inadmissible or
  /// blocked there.
  [[nodiscard]] std::optional<SessionId> connect(const MulticastRequest& request);
  /// Tear down; false for stale ids (double-disconnect safe).
  bool disconnect(SessionId session);
  /// Add one destination to a live session (multicast grow); see GrowResult.
  GrowResult grow(SessionId session, const WavelengthEndpoint& destination);
  /// Move a live session to shard `target` while growing it by
  /// `destination` -- the cross-shard escape hatch when the home shard's
  /// margin is exhausted. Make-before-break two-phase (DESIGN.md §3.13):
  /// shard replicas have independent endpoints, so the grown copy is
  /// admitted on `target` BEFORE the original comes down; if the original
  /// vanishes between the phases (concurrent disconnect), the copy is rolled
  /// back and the call reports kStaleSession. Never holds two shards
  /// exclusively at once.
  CrossGrowResult grow_to_shard(SessionId session,
                                const WavelengthEndpoint& destination,
                                std::size_t target);
  /// grow() on the home shard first; if blocked there, retry via
  /// grow_to_shard on candidate shards ordered by the lock-free admission
  /// pre-check (largest margin first). Note a blocked local grow still
  /// renews the session id (break-before-make), so the returned session must
  /// always replace the caller's handle.
  CrossGrowResult grow_anywhere(SessionId session,
                                const WavelengthEndpoint& destination);
  /// Live sessions across all shards -- lock-free (sums the health-snapshot
  /// spine; each shard's count is individually consistent as of its latest
  /// publish). At quiescence this equals active_sessions_locked() exactly.
  [[nodiscard]] std::size_t active_sessions() const;
  /// The locked reference count (locks each shard briefly); for tests that
  /// verify the snapshot spine against ground truth at quiescence. Mutex
  /// mode only -- never call while an executor is attached.
  [[nodiscard]] std::size_t active_sessions_locked() const;
  /// Deep-check every shard replica (throws std::logic_error on corruption,
  /// after dumping every shard's flight recorder to stderr).
  void self_check() const;

  // -- lock-free session reads (obs/session_table.h) ------------------------
  /// True iff `session` currently names a live session: its slot's
  /// generation table entry is active under exactly the id's generation.
  /// ZERO mutex acquisitions; safe while every shard queue is saturated.
  /// Never true for a stale id -- generations are monotone per slot, so a
  /// released-and-reused slot carries a later generation than the stale id.
  [[nodiscard]] bool is_active(SessionId session) const;
  /// Lock-free probe: where `session` lives, or nullopt when stale. The
  /// result is a consistent point-in-time fact (the session WAS live at the
  /// probe), not a lease -- it can be torn down the next instant.
  [[nodiscard]] std::optional<SessionProbe> find_session(SessionId session) const;
  /// Lock-free Theorem-margin read for shard `shard` (see AdmissionPrecheck).
  [[nodiscard]] AdmissionPrecheck admission_precheck(std::size_t shard) const;

  // -- lock-free observability (src/obs) ------------------------------------
  /// The Theorem-1/2 bound for one shard replica's geometry (computed once
  /// at construction; Theorem 1 for MSW-dominant, Theorem 2 for
  /// MAW-dominant).
  [[nodiscard]] const NonblockingBound& theorem_bound() const { return bound_; }

  /// The shard's latest published health snapshot, read with ZERO mutex
  /// acquisition (seqlock retry loop; see obs/health_snapshot.h). Safe from
  /// any thread at any time -- including while every shard mutex is held by
  /// someone else. Shards publish at every commit point (connect /
  /// disconnect / grow / batch), plus once at construction, so the result is
  /// always a complete, internally consistent snapshot.
  [[nodiscard]] obs::EngineHealthSnapshot health_snapshot(std::size_t shard) const;
  /// All shards' snapshots, ascending shard order. Lock-free like
  /// health_snapshot(); the per-shard snapshots are individually (not
  /// mutually) consistent.
  [[nodiscard]] std::vector<obs::EngineHealthSnapshot> health_snapshots() const;

  /// A coherent copy of one shard's flight-recorder ring (oldest first).
  [[nodiscard]] obs::FlightRecorder::Dump flight_dump(std::size_t shard) const;
  /// Render every shard's ring to `os` (the on-failure diagnostic; also
  /// written to WDM_FLIGHT_DUMP by run_benches for CI artifacts).
  void dump_flight_recorders(std::ostream& os) const;

  // -- shard plumbing for batching drivers ----------------------------------
  /// The mutex guarding shard `shard`'s switch. Hold it across any use of
  /// shard_switch() or the *_locked calls.
  [[nodiscard]] std::mutex& shard_mutex(std::size_t shard) const;
  /// The shard's replica; requires shard_mutex(shard) (or a quiescent engine).
  [[nodiscard]] MultistageSwitch& shard_switch(std::size_t shard);

  /// connect/disconnect/grow bodies without the lock; callers hold
  /// shard_mutex(shard). connect_locked does NOT re-check ownership of the
  /// request's source port -- drivers that generate per-shard traffic from
  /// owned_ports() satisfy it by construction.
  [[nodiscard]] std::optional<ConnectionId> connect_locked(
      std::size_t shard, const MulticastRequest& request);
  /// Batched connect_locked: one Router::connect_batch call on the shard's
  /// replica (submission order, bit-identical outcomes to serial replay;
  /// see routing.h). Returns the number admitted.
  std::size_t connect_batch_locked(std::size_t shard,
                                   const MulticastRequest* requests,
                                   std::size_t count, BatchOutcome* outcomes);
  bool disconnect_locked(std::size_t shard, ConnectionId id);
  GrowResult grow_locked(std::size_t shard, ConnectionId id,
                         const WavelengthEndpoint& destination);

  // -- executor seam (shard_executor.h, DESIGN.md §3.13) --------------------
  /// Route the public session API through `executor`'s per-shard submission
  /// queues (single-writer mode). Pass nullptr to detach (the executor does
  /// this from its destructor after quiescing). Attach/detach only at
  /// quiescence -- in-flight public calls on the old path would race the
  /// mode switch.
  void attach_executor(ShardExecutor* executor);
  [[nodiscard]] ShardExecutor* executor() const {
    return executor_.load(std::memory_order_acquire);
  }

 private:
  friend class ShardExecutor;
  /// Mutex + replica, heap-pinned (mutexes are immovable) and padded so two
  /// shards' hot state never shares a cache line. The observability tail
  /// (tallies, flight ring, seqlock slot, encode scratch) is written only
  /// under `mutex`; the seqlock slot is additionally read lock-free.
  struct alignas(64) Shard {
    Shard(std::uint32_t index, const EngineConfig& config);
    mutable std::mutex mutex;
    MultistageSwitch sw;
    // Deterministic per-shard churn tallies (mirror the engine.* counters).
    std::uint64_t connects = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t grows = 0;
    std::uint64_t grow_blocked = 0;
    std::uint64_t stale_rejected = 0;
    std::uint64_t publish_version = 0;
    obs::FlightRecorder flight;
    obs::SeqlockSnapshotSlot health;
    /// Reusable encode buffer (sized once, so publishing allocates nothing).
    std::vector<std::uint64_t> encode_scratch;
    /// Lock-free session-generation table: written at every commit point
    /// under shard exclusivity, probed by is_active/find_session from any
    /// thread with no lock (obs/session_table.h).
    obs::SessionGenTable session_table;
  };

  /// Encode the shard's current state and publish it through the seqlock
  /// slot. Requires exclusive shard access (the single-writer contract).
  void publish_health(Shard& shard);

  /// Run `fn` with exclusive access to shard `shard`: a lock_guard in mutex
  /// mode, a submitted task (awaited) in executor mode. The unit of the
  /// two-phase cross-shard grow -- each phase claims exactly one shard, so
  /// no lock ordering between shards ever exists. Const because exclusivity
  /// is a read-side concern too (self_check); `fn` mutates shard state only
  /// through the engine's own mutable paths.
  void with_shard_exclusive(std::size_t shard,
                            const std::function<void()>& fn) const;

  /// Sync the session-generation table after an op that renewed or released
  /// ids. Requires exclusive shard access.
  void note_session_active(Shard& shard, ConnectionId id);
  void note_session_released(Shard& shard, ConnectionId id);

  EngineConfig config_;
  NonblockingBound bound_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<std::size_t>> owned_ports_;  // [shard] -> ports
  std::atomic<ShardExecutor*> executor_{nullptr};

 public:
  /// Test seam: runs between phase 2 (grown copy admitted on the target) and
  /// phase 3 (original released) of every grow_to_shard. Lets tests inject a
  /// concurrent disconnect deterministically to exercise the rollback path.
  /// Not for production use; default is empty.
  std::function<void(SessionId original, SessionId grown)>
      cross_grow_between_phases_hook;
};

}  // namespace wdm::engine

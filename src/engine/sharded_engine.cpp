#include "engine/sharded_engine.h"

#include <bit>
#include <iostream>
#include <stdexcept>

#include "faults/fault_model.h"
#include "util/metrics.h"

namespace wdm::engine {

namespace {

/// Engine-plane instruments (see docs/BENCHMARKS.md glossary). All counters
/// here track deterministic per-shard outcomes, so their totals are
/// bit-identical at any thread count.
struct EngineMetrics {
  Counter& connects = metrics().counter("engine.connects");
  Counter& disconnects = metrics().counter("engine.disconnects");
  Counter& grows = metrics().counter("engine.grows");
  Counter& grow_blocked = metrics().counter("engine.grow_blocked");
  Counter& stale_rejected = metrics().counter("engine.stale_rejected");
  Counter& snapshot_publishes = metrics().counter("obs.snapshot_publishes");
  Counter& snapshot_reads = metrics().counter("obs.snapshot_reads");
  Counter& snapshot_retries = metrics().counter("obs.snapshot_retries");

  static EngineMetrics& get() {
    static EngineMetrics instance;
    return instance;
  }
};

/// splitmix64 finalizer: the bijective mixer behind Rng seeding, reused here
/// to score (port, shard) pairs for rendezvous hashing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t rendezvous_shard(std::size_t port, std::size_t shard_count) {
  if (shard_count == 0) {
    throw std::invalid_argument("rendezvous_shard: shard_count must be > 0");
  }
  std::size_t winner = 0;
  std::uint64_t best = 0;
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    // Score both inputs through one mix so neither port nor shard ordering
    // leaks into the weights.
    const std::uint64_t weight =
        mix64(mix64(static_cast<std::uint64_t>(port)) ^
              static_cast<std::uint64_t>(shard) * 0xD1B54A32D192ED03ull);
    if (shard == 0 || weight > best) {
      winner = shard;
      best = weight;
    }
  }
  return winner;
}

ShardedEngine::Shard::Shard(std::uint32_t index, const EngineConfig& config)
    : sw(config.params, config.construction, config.network_model,
         config.policy),
      flight(index),
      health(obs::EngineHealthSnapshot::encoded_words(config.params.m,
                                                      config.params.r)),
      encode_scratch(obs::EngineHealthSnapshot::encoded_words(config.params.m,
                                                              config.params.r),
                     0) {
  if (config.repack.enabled) sw.enable_repack(config.repack);
}

ShardedEngine::ShardedEngine(const EngineConfig& config)
    : config_(config),
      bound_(config.construction == Construction::kMswDominant
                 ? theorem1_min_m(config.params.n, config.params.r)
                 : theorem2_min_m(config.params.n, config.params.r,
                                  config.params.k)) {
  if (config_.shards == 0) {
    throw std::invalid_argument("ShardedEngine: need at least one shard");
  }
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(static_cast<std::uint32_t>(s),
                                              config_));
    // Publish the empty-fabric snapshot so readers never see version 0 /
    // all-zero geometry, even before the first session arrives.
    publish_health(*shards_.back());
  }
  owned_ports_.resize(config_.shards);
  for (std::size_t port = 0; port < port_count(); ++port) {
    owned_ports_[rendezvous_shard(port, config_.shards)].push_back(port);
  }
}

void ShardedEngine::publish_health(Shard& shard) {
  const ThreeStageNetwork& network = shard.sw.network();
  const ClosParams& params = network.params();
  std::uint64_t* words = shard.encode_scratch.data();

  words[0] = ++shard.publish_version;
  words[1] = shard.flight.shard();
  words[2] = params.m;
  words[3] = params.r;
  words[4] = network.active_connections();
  // words[5] (busy_middle_lanes) filled below from the occupancy sweep.
  words[6] = shard.connects;
  words[7] = shard.disconnects;
  words[8] = shard.grows;
  words[9] = shard.grow_blocked;
  words[10] = shard.stale_rejected;
  words[11] = bound_.m;
  const FaultModel* faults = network.active_fault_model();
  const std::uint64_t failed =
      faults == nullptr ? 0 : faults->failed_middle_count();
  words[12] = failed;
  const std::uint64_t effective = failed >= params.m ? 0 : params.m - failed;
  const std::int64_t margin = static_cast<std::int64_t>(effective) -
                              static_cast<std::int64_t>(bound_.m);
  words[13] = static_cast<std::uint64_t>(margin);
  words[14] = margin >= 0 ? 1 : 0;
  const repack::RepackEngine* repacker = shard.sw.repack_engine();
  words[15] = repacker == nullptr ? 0 : repacker->sessions_moved_total();
  words[16] = repacker == nullptr ? 0 : repacker->max_chain_length();

  std::uint64_t busy = 0;
  std::size_t cursor = obs::EngineHealthSnapshot::kHeaderWords;
  for (std::size_t j = 0; j < params.m; ++j) {
    const std::uint64_t* row = network.middle_module(j).out_words();
    for (std::size_t p = 0; p < params.r; ++p) {
      const std::uint64_t word = row[p];
      words[cursor++] = word;
      busy += static_cast<std::uint64_t>(std::popcount(word));
    }
  }
  words[5] = busy;

  shard.health.publish(words, shard.encode_scratch.size());
  EngineMetrics::get().snapshot_publishes.add();
}

obs::EngineHealthSnapshot ShardedEngine::health_snapshot(
    std::size_t shard) const {
  const Shard& owner = *shards_.at(shard);
  // Stack buffer sized from the (immutable) geometry: the read itself makes
  // no heap allocation and takes no lock; only decoding copies to a vector.
  std::vector<std::uint64_t> buffer(owner.health.capacity());
  std::size_t retries = 0;
  owner.health.read(buffer.data(), buffer.size(), &retries);
  EngineMetrics& counters = EngineMetrics::get();
  counters.snapshot_reads.add();
  if (retries != 0) counters.snapshot_retries.add(retries);
  return obs::EngineHealthSnapshot::decode(buffer.data(), buffer.size());
}

std::vector<obs::EngineHealthSnapshot> ShardedEngine::health_snapshots() const {
  std::vector<obs::EngineHealthSnapshot> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    out.push_back(health_snapshot(s));
  }
  return out;
}

obs::FlightRecorder::Dump ShardedEngine::flight_dump(std::size_t shard) const {
  return shards_.at(shard)->flight.dump();
}

void ShardedEngine::dump_flight_recorders(std::ostream& os) const {
  for (const auto& shard : shards_) {
    obs::FlightRecorder::print(shard->flight.dump(), os);
  }
}

std::size_t ShardedEngine::shard_of(std::size_t source_port) const {
  return rendezvous_shard(source_port, shards_.size());
}

const std::vector<std::size_t>& ShardedEngine::owned_ports(
    std::size_t shard) const {
  return owned_ports_.at(shard);
}

std::mutex& ShardedEngine::shard_mutex(std::size_t shard) const {
  return shards_.at(shard)->mutex;
}

MultistageSwitch& ShardedEngine::shard_switch(std::size_t shard) {
  return shards_.at(shard)->sw;
}

std::optional<SessionId> ShardedEngine::connect(const MulticastRequest& request) {
  const std::size_t shard = shard_of(request.input.port);
  std::lock_guard lock(shards_[shard]->mutex);
  const auto id = connect_locked(shard, request);
  if (!id) return std::nullopt;
  return SessionId{static_cast<std::uint32_t>(shard), *id};
}

bool ShardedEngine::disconnect(SessionId session) {
  if (session.shard >= shards_.size()) return false;
  std::lock_guard lock(shards_[session.shard]->mutex);
  return disconnect_locked(session.shard, session.connection);
}

GrowResult ShardedEngine::grow(SessionId session,
                               const WavelengthEndpoint& destination) {
  if (session.shard >= shards_.size()) return {};
  std::lock_guard lock(shards_[session.shard]->mutex);
  return grow_locked(session.shard, session.connection, destination);
}

std::size_t ShardedEngine::active_sessions() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->sw.active_connections();
  }
  return total;
}

void ShardedEngine::self_check() const {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    try {
      shard->sw.network().self_check();
    } catch (const std::logic_error&) {
      // The post-mortem window: what the shards did leading up to the
      // corruption, before the exception unwinds the run away.
      dump_flight_recorders(std::cerr);
      throw;
    }
  }
}

std::optional<ConnectionId> ShardedEngine::connect_locked(
    std::size_t shard, const MulticastRequest& request) {
  Shard& owner = *shards_[shard];
  const auto id = owner.sw.connect_with_repack(request);
  if (id) {
    EngineMetrics::get().connects.add();
    ++owner.connects;
    // A repack admission gets its own op kind with the chain length as the
    // detail, so flight dumps show which admits rearranged standing sessions.
    const repack::RepackEngine* repacker = owner.sw.repack_engine();
    const std::size_t chain =
        repacker == nullptr ? 0 : repacker->last_moved().size();
    owner.flight.record(chain != 0 ? obs::EngineOp::kRepack
                                   : obs::EngineOp::kConnect,
                        obs::EngineOpOutcome::kAdmitted, *id,
                        static_cast<std::uint32_t>(chain));
  } else {
    owner.flight.record(obs::EngineOp::kConnect,
                        obs::EngineOpOutcome::kBlocked, 0);
  }
  publish_health(owner);
  return id;
}

std::size_t ShardedEngine::connect_batch_locked(std::size_t shard,
                                                const MulticastRequest* requests,
                                                std::size_t count,
                                                BatchOutcome* outcomes) {
  Shard& owner = *shards_[shard];
  const std::size_t admitted =
      owner.sw.connect_batch(requests, count, outcomes);
  if (admitted != 0) {
    EngineMetrics::get().connects.add(admitted);
    owner.connects += admitted;
  }
  owner.flight.record(obs::EngineOp::kBatchConnect,
                      admitted == count ? obs::EngineOpOutcome::kAdmitted
                                        : obs::EngineOpOutcome::kBlocked,
                      0, static_cast<std::uint32_t>(admitted));
  publish_health(owner);
  return admitted;
}

bool ShardedEngine::disconnect_locked(std::size_t shard, ConnectionId id) {
  EngineMetrics& counters = EngineMetrics::get();
  Shard& owner = *shards_[shard];
  if (!owner.sw.try_disconnect(id)) {
    counters.stale_rejected.add();
    ++owner.stale_rejected;
    owner.flight.record(obs::EngineOp::kDisconnect,
                        obs::EngineOpOutcome::kStale, id);
    publish_health(owner);
    return false;
  }
  counters.disconnects.add();
  ++owner.disconnects;
  owner.flight.record(obs::EngineOp::kDisconnect,
                      obs::EngineOpOutcome::kAdmitted, id);
  publish_health(owner);
  return true;
}

GrowResult ShardedEngine::grow_locked(std::size_t shard, ConnectionId id,
                                      const WavelengthEndpoint& destination) {
  EngineMetrics& counters = EngineMetrics::get();
  Shard& owner = *shards_[shard];
  MultistageSwitch& sw = owner.sw;
  ThreeStageNetwork& network = sw.network();

  const auto* entry = network.find_connection(id);
  if (entry == nullptr) {
    counters.stale_rejected.add();
    ++owner.stale_rejected;
    owner.flight.record(obs::EngineOp::kGrow, obs::EngineOpOutcome::kStale, id);
    publish_health(owner);
    return {};
  }

  // Copies must be taken before the release disposes the slot.
  MulticastRequest grown = entry->first;
  grown.outputs.push_back(destination);
  const MulticastRequest original_request = entry->first;
  const Route original_route = entry->second;

  // Break-before-make: the grown request reuses the session's own input
  // wavelength, so it is inadmissible while the session stands. The internal
  // try_connect is a grow, not an admission -- it bumps no connect tallies.
  network.release(id);
  if (const auto grown_id = sw.try_connect(grown)) {
    counters.grows.add();
    ++owner.grows;
    owner.flight.record(obs::EngineOp::kGrow, obs::EngineOpOutcome::kGrown,
                        *grown_id);
    publish_health(owner);
    return {GrowResult::Status::kGrown, *grown_id};
  }

  // Roll back. The release freed exactly the original route's resources and
  // the failed try_connect installed nothing, so reinstalling the original
  // route over the original request cannot fail.
  const ConnectionId restored = network.install(original_request, original_route);
  counters.grow_blocked.add();
  ++owner.grow_blocked;
  owner.flight.record(obs::EngineOp::kGrow,
                      obs::EngineOpOutcome::kGrowBlocked, restored);
  publish_health(owner);
  return {GrowResult::Status::kBlocked, restored};
}

}  // namespace wdm::engine

#include "engine/sharded_engine.h"

#include <algorithm>
#include <bit>
#include <exception>
#include <iostream>
#include <stdexcept>

#include "engine/shard_executor.h"
#include "faults/fault_model.h"
#include "util/metrics.h"

namespace wdm::engine {

namespace {

/// Engine-plane instruments (see docs/BENCHMARKS.md glossary). All counters
/// here track deterministic per-shard outcomes, so their totals are
/// bit-identical at any thread count.
struct EngineMetrics {
  Counter& connects = metrics().counter("engine.connects");
  Counter& disconnects = metrics().counter("engine.disconnects");
  Counter& grows = metrics().counter("engine.grows");
  Counter& grow_blocked = metrics().counter("engine.grow_blocked");
  Counter& stale_rejected = metrics().counter("engine.stale_rejected");
  Counter& snapshot_publishes = metrics().counter("obs.snapshot_publishes");
  Counter& snapshot_reads = metrics().counter("obs.snapshot_reads");
  Counter& snapshot_retries = metrics().counter("obs.snapshot_retries");

  static EngineMetrics& get() {
    static EngineMetrics instance;
    return instance;
  }
};

/// splitmix64 finalizer: the bijective mixer behind Rng seeding, reused here
/// to score (port, shard) pairs for rendezvous hashing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t rendezvous_shard(std::size_t port, std::size_t shard_count) {
  if (shard_count == 0) {
    throw std::invalid_argument("rendezvous_shard: shard_count must be > 0");
  }
  std::size_t winner = 0;
  std::uint64_t best = 0;
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    // Score both inputs through one mix so neither port nor shard ordering
    // leaks into the weights.
    const std::uint64_t weight =
        mix64(mix64(static_cast<std::uint64_t>(port)) ^
              static_cast<std::uint64_t>(shard) * 0xD1B54A32D192ED03ull);
    if (shard == 0 || weight > best) {
      winner = shard;
      best = weight;
    }
  }
  return winner;
}

ShardedEngine::Shard::Shard(std::uint32_t index, const EngineConfig& config)
    : sw(config.params, config.construction, config.network_model,
         config.policy),
      flight(index),
      health(obs::EngineHealthSnapshot::encoded_words(config.params.m,
                                                      config.params.r)),
      encode_scratch(obs::EngineHealthSnapshot::encoded_words(config.params.m,
                                                              config.params.r),
                     0) {
  if (config.repack.enabled) sw.enable_repack(config.repack);
}

ShardedEngine::ShardedEngine(const EngineConfig& config)
    : config_(config),
      bound_(config.construction == Construction::kMswDominant
                 ? theorem1_min_m(config.params.n, config.params.r)
                 : theorem2_min_m(config.params.n, config.params.r,
                                  config.params.k)) {
  if (config_.shards == 0) {
    throw std::invalid_argument("ShardedEngine: need at least one shard");
  }
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(static_cast<std::uint32_t>(s),
                                              config_));
    // Publish the empty-fabric snapshot so readers never see version 0 /
    // all-zero geometry, even before the first session arrives.
    publish_health(*shards_.back());
  }
  owned_ports_.resize(config_.shards);
  for (std::size_t port = 0; port < port_count(); ++port) {
    owned_ports_[rendezvous_shard(port, config_.shards)].push_back(port);
  }
}

void ShardedEngine::publish_health(Shard& shard) {
  const ThreeStageNetwork& network = shard.sw.network();
  const ClosParams& params = network.params();
  std::uint64_t* words = shard.encode_scratch.data();

  words[0] = ++shard.publish_version;
  words[1] = shard.flight.shard();
  words[2] = params.m;
  words[3] = params.r;
  words[4] = network.active_connections();
  // words[5] (busy_middle_lanes) filled below from the occupancy sweep.
  words[6] = shard.connects;
  words[7] = shard.disconnects;
  words[8] = shard.grows;
  words[9] = shard.grow_blocked;
  words[10] = shard.stale_rejected;
  words[11] = bound_.m;
  const FaultModel* faults = network.active_fault_model();
  const std::uint64_t failed =
      faults == nullptr ? 0 : faults->failed_middle_count();
  words[12] = failed;
  const std::uint64_t effective = failed >= params.m ? 0 : params.m - failed;
  const std::int64_t margin = static_cast<std::int64_t>(effective) -
                              static_cast<std::int64_t>(bound_.m);
  words[13] = static_cast<std::uint64_t>(margin);
  words[14] = margin >= 0 ? 1 : 0;
  const repack::RepackEngine* repacker = shard.sw.repack_engine();
  words[15] = repacker == nullptr ? 0 : repacker->sessions_moved_total();
  words[16] = repacker == nullptr ? 0 : repacker->max_chain_length();

  std::uint64_t busy = 0;
  std::size_t cursor = obs::EngineHealthSnapshot::kHeaderWords;
  for (std::size_t j = 0; j < params.m; ++j) {
    const std::uint64_t* row = network.middle_module(j).out_words();
    for (std::size_t p = 0; p < params.r; ++p) {
      const std::uint64_t word = row[p];
      words[cursor++] = word;
      busy += static_cast<std::uint64_t>(std::popcount(word));
    }
  }
  words[5] = busy;

  shard.health.publish(words, shard.encode_scratch.size());
  EngineMetrics::get().snapshot_publishes.add();
}

obs::EngineHealthSnapshot ShardedEngine::health_snapshot(
    std::size_t shard) const {
  const Shard& owner = *shards_.at(shard);
  // Stack buffer sized from the (immutable) geometry: the read itself makes
  // no heap allocation and takes no lock; only decoding copies to a vector.
  std::vector<std::uint64_t> buffer(owner.health.capacity());
  std::size_t retries = 0;
  owner.health.read(buffer.data(), buffer.size(), &retries);
  EngineMetrics& counters = EngineMetrics::get();
  counters.snapshot_reads.add();
  if (retries != 0) counters.snapshot_retries.add(retries);
  return obs::EngineHealthSnapshot::decode(buffer.data(), buffer.size());
}

std::vector<obs::EngineHealthSnapshot> ShardedEngine::health_snapshots() const {
  std::vector<obs::EngineHealthSnapshot> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    out.push_back(health_snapshot(s));
  }
  return out;
}

obs::FlightRecorder::Dump ShardedEngine::flight_dump(std::size_t shard) const {
  return shards_.at(shard)->flight.dump();
}

void ShardedEngine::dump_flight_recorders(std::ostream& os) const {
  for (const auto& shard : shards_) {
    obs::FlightRecorder::print(shard->flight.dump(), os);
  }
}

std::size_t ShardedEngine::shard_of(std::size_t source_port) const {
  return rendezvous_shard(source_port, shards_.size());
}

const std::vector<std::size_t>& ShardedEngine::owned_ports(
    std::size_t shard) const {
  return owned_ports_.at(shard);
}

std::mutex& ShardedEngine::shard_mutex(std::size_t shard) const {
  return shards_.at(shard)->mutex;
}

MultistageSwitch& ShardedEngine::shard_switch(std::size_t shard) {
  return shards_.at(shard)->sw;
}

std::optional<SessionId> ShardedEngine::connect(const MulticastRequest& request) {
  const std::size_t shard = shard_of(request.input.port);
  std::optional<ConnectionId> id;
  if (ShardExecutor* exec = executor()) {
    id = exec->connect(shard, request);
  } else {
    std::lock_guard lock(shards_[shard]->mutex);
    id = connect_locked(shard, request);
  }
  if (!id) return std::nullopt;
  return SessionId{static_cast<std::uint32_t>(shard), *id};
}

bool ShardedEngine::disconnect(SessionId session) {
  if (session.shard >= shards_.size()) return false;
  if (ShardExecutor* exec = executor()) {
    return exec->disconnect(session.shard, session.connection);
  }
  std::lock_guard lock(shards_[session.shard]->mutex);
  return disconnect_locked(session.shard, session.connection);
}

GrowResult ShardedEngine::grow(SessionId session,
                               const WavelengthEndpoint& destination) {
  if (session.shard >= shards_.size()) return {};
  if (ShardExecutor* exec = executor()) {
    return exec->grow(session.shard, session.connection, destination);
  }
  std::lock_guard lock(shards_[session.shard]->mutex);
  return grow_locked(session.shard, session.connection, destination);
}

void ShardedEngine::attach_executor(ShardExecutor* executor) {
  executor_.store(executor, std::memory_order_release);
}

void ShardedEngine::with_shard_exclusive(
    std::size_t shard, const std::function<void()>& fn) const {
  if (ShardExecutor* exec = executor()) {
    exec->run_task(shard, fn);
    return;
  }
  std::lock_guard lock(shards_.at(shard)->mutex);
  fn();
}

std::size_t ShardedEngine::active_sessions() const {
  // Lock-free: the per-shard session counts ride the seqlock health spine,
  // and a header-prefix read is a valid consistent read
  // (obs/health_snapshot.h). Each term is exact as of that shard's latest
  // publish; at quiescence the sum equals active_sessions_locked().
  std::uint64_t header[obs::EngineHealthSnapshot::kHeaderWords];
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    shard->health.read(header, obs::EngineHealthSnapshot::kHeaderWords);
    total += static_cast<std::size_t>(header[4]);  // sessions word
  }
  EngineMetrics::get().snapshot_reads.add(shards_.size());
  return total;
}

std::size_t ShardedEngine::active_sessions_locked() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->sw.active_connections();
  }
  return total;
}

bool ShardedEngine::is_active(SessionId session) const {
  if (session.shard >= shards_.size()) return false;
  return shards_[session.shard]->session_table.is_active(
      ThreeStageNetwork::slot_of_id(session.connection),
      ThreeStageNetwork::generation_of_id(session.connection));
}

std::optional<SessionProbe> ShardedEngine::find_session(
    SessionId session) const {
  if (!is_active(session)) return std::nullopt;
  return SessionProbe{session.shard,
                      ThreeStageNetwork::slot_of_id(session.connection),
                      ThreeStageNetwork::generation_of_id(session.connection)};
}

AdmissionPrecheck ShardedEngine::admission_precheck(std::size_t shard) const {
  std::uint64_t header[obs::EngineHealthSnapshot::kHeaderWords];
  shards_.at(shard)->health.read(header,
                                 obs::EngineHealthSnapshot::kHeaderWords);
  EngineMetrics::get().snapshot_reads.add();
  AdmissionPrecheck out;
  out.version = header[0];
  out.sessions = header[4];
  out.margin = static_cast<std::int64_t>(header[13]);
  out.admit = header[14] != 0;
  return out;
}

void ShardedEngine::self_check() const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    // Capture instead of throwing out of the closure: in executor mode the
    // body runs on a worker thread, and an exception escaping a worker
    // would terminate the process instead of failing the caller.
    std::exception_ptr error;
    with_shard_exclusive(s, [this, s, &error] {
      try {
        shards_[s]->sw.network().self_check();
      } catch (...) {
        error = std::current_exception();
      }
    });
    if (error) {
      // The post-mortem window: what the shards did leading up to the
      // corruption, before the exception unwinds the run away.
      dump_flight_recorders(std::cerr);
      std::rethrow_exception(error);
    }
  }
}

void ShardedEngine::note_session_active(Shard& shard, ConnectionId id) {
  shard.session_table.mark_active(ThreeStageNetwork::slot_of_id(id),
                                  ThreeStageNetwork::generation_of_id(id));
}

void ShardedEngine::note_session_released(Shard& shard, ConnectionId id) {
  shard.session_table.mark_released(ThreeStageNetwork::slot_of_id(id),
                                    ThreeStageNetwork::generation_of_id(id));
}

std::optional<ConnectionId> ShardedEngine::connect_locked(
    std::size_t shard, const MulticastRequest& request) {
  Shard& owner = *shards_[shard];
  const auto id = owner.sw.connect_with_repack(request);
  if (id) {
    note_session_active(owner, *id);
    EngineMetrics::get().connects.add();
    ++owner.connects;
    // A repack admission gets its own op kind with the chain length as the
    // detail, so flight dumps show which admits rearranged standing sessions.
    const repack::RepackEngine* repacker = owner.sw.repack_engine();
    const std::size_t chain =
        repacker == nullptr ? 0 : repacker->last_moved().size();
    owner.flight.record(chain != 0 ? obs::EngineOp::kRepack
                                   : obs::EngineOp::kConnect,
                        obs::EngineOpOutcome::kAdmitted, *id,
                        static_cast<std::uint32_t>(chain));
  } else {
    owner.flight.record(obs::EngineOp::kConnect,
                        obs::EngineOpOutcome::kBlocked, 0);
  }
  publish_health(owner);
  return id;
}

std::size_t ShardedEngine::connect_batch_locked(std::size_t shard,
                                                const MulticastRequest* requests,
                                                std::size_t count,
                                                BatchOutcome* outcomes) {
  Shard& owner = *shards_[shard];
  const std::size_t admitted =
      owner.sw.connect_batch(requests, count, outcomes);
  if (admitted != 0) {
    for (std::size_t i = 0; i < count; ++i) {
      if (outcomes[i].ok) note_session_active(owner, outcomes[i].id);
    }
    EngineMetrics::get().connects.add(admitted);
    owner.connects += admitted;
  }
  owner.flight.record(obs::EngineOp::kBatchConnect,
                      admitted == count ? obs::EngineOpOutcome::kAdmitted
                                        : obs::EngineOpOutcome::kBlocked,
                      0, static_cast<std::uint32_t>(admitted));
  publish_health(owner);
  return admitted;
}

bool ShardedEngine::disconnect_locked(std::size_t shard, ConnectionId id) {
  EngineMetrics& counters = EngineMetrics::get();
  Shard& owner = *shards_[shard];
  if (!owner.sw.try_disconnect(id)) {
    counters.stale_rejected.add();
    ++owner.stale_rejected;
    owner.flight.record(obs::EngineOp::kDisconnect,
                        obs::EngineOpOutcome::kStale, id);
    publish_health(owner);
    return false;
  }
  note_session_released(owner, id);
  counters.disconnects.add();
  ++owner.disconnects;
  owner.flight.record(obs::EngineOp::kDisconnect,
                      obs::EngineOpOutcome::kAdmitted, id);
  publish_health(owner);
  return true;
}

GrowResult ShardedEngine::grow_locked(std::size_t shard, ConnectionId id,
                                      const WavelengthEndpoint& destination) {
  EngineMetrics& counters = EngineMetrics::get();
  Shard& owner = *shards_[shard];
  MultistageSwitch& sw = owner.sw;
  ThreeStageNetwork& network = sw.network();

  const auto* entry = network.find_connection(id);
  if (entry == nullptr) {
    counters.stale_rejected.add();
    ++owner.stale_rejected;
    owner.flight.record(obs::EngineOp::kGrow, obs::EngineOpOutcome::kStale, id);
    publish_health(owner);
    return {};
  }

  // Copies must be taken before the release disposes the slot.
  MulticastRequest grown = entry->first;
  grown.outputs.push_back(destination);
  const MulticastRequest original_request = entry->first;
  const Route original_route = entry->second;

  // Break-before-make: the grown request reuses the session's own input
  // wavelength, so it is inadmissible while the session stands. The internal
  // try_connect is a grow, not an admission -- it bumps no connect tallies.
  network.release(id);
  if (const auto grown_id = sw.try_connect(grown)) {
    // The session renewed its id either way; the old one is stale forever.
    // Released-before-active keeps the table's per-slot word monotone.
    note_session_released(owner, id);
    note_session_active(owner, *grown_id);
    counters.grows.add();
    ++owner.grows;
    owner.flight.record(obs::EngineOp::kGrow, obs::EngineOpOutcome::kGrown,
                        *grown_id);
    publish_health(owner);
    return {GrowResult::Status::kGrown, *grown_id};
  }

  // Roll back. The release freed exactly the original route's resources and
  // the failed try_connect installed nothing, so reinstalling the original
  // route over the original request cannot fail.
  const ConnectionId restored = network.install(original_request, original_route);
  note_session_released(owner, id);
  note_session_active(owner, restored);
  counters.grow_blocked.add();
  ++owner.grow_blocked;
  owner.flight.record(obs::EngineOp::kGrow,
                      obs::EngineOpOutcome::kGrowBlocked, restored);
  publish_health(owner);
  return {GrowResult::Status::kBlocked, restored};
}

CrossGrowResult ShardedEngine::grow_to_shard(
    SessionId session, const WavelengthEndpoint& destination,
    std::size_t target) {
  if (session.shard >= shards_.size() || target >= shards_.size()) return {};
  if (target == session.shard) {
    // Degenerate case: an ordinary local grow (break-before-make).
    const GrowResult local = grow(session, destination);
    return {local.status, SessionId{session.shard, local.connection}};
  }
  EngineMetrics& counters = EngineMetrics::get();
  Shard& source = *shards_[session.shard];
  Shard& dest = *shards_[target];

  // Phase 1 (source exclusive): copy the live request. Unlike the local
  // grow, nothing is released yet -- shard replicas have independent
  // endpoints, so the grown copy can coexist with the original.
  MulticastRequest grown;
  bool found = false;
  with_shard_exclusive(session.shard, [&] {
    const auto* entry = source.sw.network().find_connection(session.connection);
    if (entry != nullptr) {
      grown = entry->first;
      found = true;
      return;
    }
    counters.stale_rejected.add();
    ++source.stale_rejected;
    source.flight.record(obs::EngineOp::kMigrateOut,
                         obs::EngineOpOutcome::kStale, session.connection);
    publish_health(source);
  });
  if (!found) return {};
  grown.outputs.push_back(destination);

  // Phase 2 (target exclusive): admit the grown copy. A migration, not a
  // fresh admission -- it bumps no connect tallies; a refusal counts as a
  // blocked grow on the shard that refused.
  std::optional<ConnectionId> grown_id;
  with_shard_exclusive(target, [&] {
    grown_id = dest.sw.try_connect(grown);
    if (grown_id) {
      note_session_active(dest, *grown_id);
      dest.flight.record(obs::EngineOp::kMigrateIn,
                         obs::EngineOpOutcome::kAdmitted, *grown_id);
    } else {
      counters.grow_blocked.add();
      ++dest.grow_blocked;
      dest.flight.record(obs::EngineOp::kMigrateIn,
                         obs::EngineOpOutcome::kBlocked, 0);
    }
    publish_health(dest);
  });
  if (!grown_id) return {GrowResult::Status::kBlocked, session};

  if (cross_grow_between_phases_hook) {
    cross_grow_between_phases_hook(session, SessionId{
        static_cast<std::uint32_t>(target), *grown_id});
  }

  // Phase 3 (source exclusive): release the original, generation-validated.
  // A concurrent disconnect may have beaten us here; then the migration
  // loses and must roll the copy back.
  bool released = false;
  with_shard_exclusive(session.shard, [&] {
    if (source.sw.try_disconnect(session.connection)) {
      released = true;
      note_session_released(source, session.connection);
      counters.grows.add();
      ++source.grows;
      source.flight.record(obs::EngineOp::kMigrateOut,
                           obs::EngineOpOutcome::kAdmitted, session.connection);
    } else {
      counters.stale_rejected.add();
      ++source.stale_rejected;
      source.flight.record(obs::EngineOp::kMigrateOut,
                           obs::EngineOpOutcome::kStale, session.connection);
    }
    publish_health(source);
  });
  if (released) {
    return {GrowResult::Status::kGrown,
            SessionId{static_cast<std::uint32_t>(target), *grown_id}};
  }

  // Rollback (target exclusive): the session died mid-migration, so the
  // grown copy must not survive it. The copy's id never escaped (it is
  // returned only on success), so releasing it leaks nothing.
  with_shard_exclusive(target, [&] {
    // try_disconnect (not a raw network release) so the router's caches see
    // the teardown through their usual repair hooks. It cannot fail: the
    // copy's id never left this function, so nothing else could release it.
    dest.sw.try_disconnect(*grown_id);
    note_session_released(dest, *grown_id);
    dest.flight.record(obs::EngineOp::kMigrateIn, obs::EngineOpOutcome::kStale,
                       *grown_id);
    publish_health(dest);
  });
  return {};
}

CrossGrowResult ShardedEngine::grow_anywhere(
    SessionId session, const WavelengthEndpoint& destination) {
  // Home shard first: the cheap path, and the only one that needs no
  // migration. Remember that a BLOCKED local grow still renews the id.
  const GrowResult local = grow(session, destination);
  SessionId current{session.shard, local.connection};
  if (local.status != GrowResult::Status::kBlocked) {
    return {local.status, current};
  }

  // Candidates ordered by the lock-free pre-check: largest margin first,
  // then fewest sessions, then shard index (a total order, so the retry
  // sequence is deterministic for a given snapshot state).
  struct Candidate {
    std::size_t shard;
    AdmissionPrecheck pre;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(shards_.size() - 1);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (s == session.shard) continue;
    candidates.push_back({s, admission_precheck(s)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.pre.margin != b.pre.margin) return a.pre.margin > b.pre.margin;
              if (a.pre.sessions != b.pre.sessions) return a.pre.sessions < b.pre.sessions;
              return a.shard < b.shard;
            });
  for (const Candidate& candidate : candidates) {
    const CrossGrowResult result =
        grow_to_shard(current, destination, candidate.shard);
    if (result.status != GrowResult::Status::kBlocked) return result;
    current = result.session;  // unchanged on kBlocked, but stay exact
  }
  return {GrowResult::Status::kBlocked, current};
}

}  // namespace wdm::engine

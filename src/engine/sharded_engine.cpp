#include "engine/sharded_engine.h"

#include <stdexcept>

#include "util/metrics.h"

namespace wdm::engine {

namespace {

/// Engine-plane instruments (see docs/BENCHMARKS.md glossary). All counters
/// here track deterministic per-shard outcomes, so their totals are
/// bit-identical at any thread count.
struct EngineMetrics {
  Counter& connects = metrics().counter("engine.connects");
  Counter& disconnects = metrics().counter("engine.disconnects");
  Counter& grows = metrics().counter("engine.grows");
  Counter& grow_blocked = metrics().counter("engine.grow_blocked");
  Counter& stale_rejected = metrics().counter("engine.stale_rejected");

  static EngineMetrics& get() {
    static EngineMetrics instance;
    return instance;
  }
};

/// splitmix64 finalizer: the bijective mixer behind Rng seeding, reused here
/// to score (port, shard) pairs for rendezvous hashing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t rendezvous_shard(std::size_t port, std::size_t shard_count) {
  if (shard_count == 0) {
    throw std::invalid_argument("rendezvous_shard: shard_count must be > 0");
  }
  std::size_t winner = 0;
  std::uint64_t best = 0;
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    // Score both inputs through one mix so neither port nor shard ordering
    // leaks into the weights.
    const std::uint64_t weight =
        mix64(mix64(static_cast<std::uint64_t>(port)) ^
              static_cast<std::uint64_t>(shard) * 0xD1B54A32D192ED03ull);
    if (shard == 0 || weight > best) {
      winner = shard;
      best = weight;
    }
  }
  return winner;
}

ShardedEngine::Shard::Shard(const EngineConfig& config)
    : sw(config.params, config.construction, config.network_model,
         config.policy) {}

ShardedEngine::ShardedEngine(const EngineConfig& config) : config_(config) {
  if (config_.shards == 0) {
    throw std::invalid_argument("ShardedEngine: need at least one shard");
  }
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(config_));
  }
  owned_ports_.resize(config_.shards);
  for (std::size_t port = 0; port < port_count(); ++port) {
    owned_ports_[rendezvous_shard(port, config_.shards)].push_back(port);
  }
}

std::size_t ShardedEngine::shard_of(std::size_t source_port) const {
  return rendezvous_shard(source_port, shards_.size());
}

const std::vector<std::size_t>& ShardedEngine::owned_ports(
    std::size_t shard) const {
  return owned_ports_.at(shard);
}

std::mutex& ShardedEngine::shard_mutex(std::size_t shard) const {
  return shards_.at(shard)->mutex;
}

MultistageSwitch& ShardedEngine::shard_switch(std::size_t shard) {
  return shards_.at(shard)->sw;
}

std::optional<SessionId> ShardedEngine::connect(const MulticastRequest& request) {
  const std::size_t shard = shard_of(request.input.port);
  std::lock_guard lock(shards_[shard]->mutex);
  const auto id = connect_locked(shard, request);
  if (!id) return std::nullopt;
  return SessionId{static_cast<std::uint32_t>(shard), *id};
}

bool ShardedEngine::disconnect(SessionId session) {
  if (session.shard >= shards_.size()) return false;
  std::lock_guard lock(shards_[session.shard]->mutex);
  return disconnect_locked(session.shard, session.connection);
}

GrowResult ShardedEngine::grow(SessionId session,
                               const WavelengthEndpoint& destination) {
  if (session.shard >= shards_.size()) return {};
  std::lock_guard lock(shards_[session.shard]->mutex);
  return grow_locked(session.shard, session.connection, destination);
}

std::size_t ShardedEngine::active_sessions() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    total += shard->sw.active_connections();
  }
  return total;
}

void ShardedEngine::self_check() const {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->sw.network().self_check();
  }
}

std::optional<ConnectionId> ShardedEngine::connect_locked(
    std::size_t shard, const MulticastRequest& request) {
  const auto id = shards_[shard]->sw.try_connect(request);
  if (id) EngineMetrics::get().connects.add();
  return id;
}

std::size_t ShardedEngine::connect_batch_locked(std::size_t shard,
                                                const MulticastRequest* requests,
                                                std::size_t count,
                                                BatchOutcome* outcomes) {
  const std::size_t admitted =
      shards_[shard]->sw.connect_batch(requests, count, outcomes);
  if (admitted != 0) EngineMetrics::get().connects.add(admitted);
  return admitted;
}

bool ShardedEngine::disconnect_locked(std::size_t shard, ConnectionId id) {
  EngineMetrics& counters = EngineMetrics::get();
  if (!shards_[shard]->sw.try_disconnect(id)) {
    counters.stale_rejected.add();
    return false;
  }
  counters.disconnects.add();
  return true;
}

GrowResult ShardedEngine::grow_locked(std::size_t shard, ConnectionId id,
                                      const WavelengthEndpoint& destination) {
  EngineMetrics& counters = EngineMetrics::get();
  MultistageSwitch& sw = shards_[shard]->sw;
  ThreeStageNetwork& network = sw.network();

  const auto* entry = network.find_connection(id);
  if (entry == nullptr) {
    counters.stale_rejected.add();
    return {};
  }

  // Copies must be taken before the release disposes the slot.
  MulticastRequest grown = entry->first;
  grown.outputs.push_back(destination);
  const MulticastRequest original_request = entry->first;
  const Route original_route = entry->second;

  // Break-before-make: the grown request reuses the session's own input
  // wavelength, so it is inadmissible while the session stands.
  network.release(id);
  if (const auto grown_id = sw.try_connect(grown)) {
    counters.grows.add();
    return {GrowResult::Status::kGrown, *grown_id};
  }

  // Roll back. The release freed exactly the original route's resources and
  // the failed try_connect installed nothing, so reinstalling the original
  // route over the original request cannot fail.
  const ConnectionId restored = network.install(original_request, original_route);
  counters.grow_blocked.add();
  return {GrowResult::Status::kBlocked, restored};
}

}  // namespace wdm::engine

// Multithreaded connect/disconnect/grow churn over a ShardedEngine, with
// bit-identical results at any thread count.
//
// The driver turns the engine's shard decomposition into a deterministic
// concurrent workload:
//
//   * Each shard carries its own op stream: a shard-resident Rng
//     (Rng(seed).split(shard)) drives every decision -- arrival vs departure
//     vs grow, request shape, victim choice, stale-id probes -- and arrivals
//     draw their source port only from the shard's owned_ports(). The stream
//     is therefore a pure function of (seed, shard, ops executed so far).
//
//   * Work is cut into fixed-size batches scheduled round-robin across
//     shards. Worker threads claim batches from an atomic cursor, submit
//     each claim into the owning shard's mutex-guarded queue, then drain
//     that queue under the shard's mutex. Draining serializes each shard, so
//     its op stream advances exactly as in a single-threaded run no matter
//     which worker executes which batch or in which order batches land --
//     batches carry op *counts*, not op content, and content comes from the
//     shard-resident stream.
//
//   * A submitter always drains after enqueueing, so by the time run()
//     joins, every queue is empty: a pushed batch is executed either by a
//     concurrent drainer that saw it or by its own submitter's drain.
//
// Aggregation merges per-shard stats in ascending shard order, so ChurnStats
// -- down to every counter -- is bit-identical for 1, 2, or 64 workers
// (enforced by tests/engine_test.cpp and bench_churn). run_serial() executes
// the same streams with no queues, batches, or pool, as an independent
// replay reference.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "engine/sharded_engine.h"
#include "sim/blocking_sim.h"
#include "sim/request.h"
#include "util/thread_pool.h"

namespace wdm::engine {

struct ChurnConfig {
  /// Churn ops (ticks) each shard executes.
  std::size_t ops_per_shard = 2000;
  /// Ops per queued batch (the submission granularity).
  std::size_t batch = 64;
  /// Worker threads for run(); clamped to >= 1. The thread count must never
  /// change results -- that is the point.
  std::size_t workers = 4;
  /// Probability a tick attempts an arrival (otherwise departure/grow).
  double arrival_fraction = 0.6;
  /// Probability a non-arrival tick attempts a multicast grow.
  double grow_fraction = 0.25;
  /// Probability per tick of replaying a disposed connection id against the
  /// shard (must be cleanly rejected; counted in stale_probes/_rejected).
  double stale_probe_fraction = 0.05;
  FanoutRange fanout{1, 4};
  std::uint64_t seed = 0xC0FFEE;
  /// Deep-check a shard every this many of its ticks (0 = never).
  std::size_t self_check_every = 0;
  /// 0 = classic interactive mode (one routed op per tick, with grows and
  /// stale probes). > 0 = batched-arrival mode: ticks reduce to arrivals and
  /// departures; arrival requests are generated state-free (random_request
  /// remapped onto the shard's owned ports) and accumulate into a pending
  /// buffer that flushes through Router::connect_batch when this many are
  /// pending -- and always before any state read (departure victim choice,
  /// self-check, end of run). Because every tick decision draws only on the
  /// shard rng and every state read happens post-flush, ChurnStats is
  /// bit-identical across worker counts AND across connect_batch values
  /// (see DESIGN.md §3.10). Grow/stale fields stay zero in this mode.
  std::size_t connect_batch = 0;
  /// Queued submission mode (DESIGN.md §3.13): run() creates a ShardExecutor
  /// (`workers` draining workers, per-shard queues of `queue_depth`) and
  /// ships each batch as a count-carrying task into the owning shard's
  /// queue instead of locking the shard mutex. Op content still comes from
  /// the shard-resident rng stream and each shard's tasks execute in FIFO
  /// submission order under single-writer exclusivity, so ChurnStats stays
  /// bit-identical to the locked mode, to run_serial(), and to itself at any
  /// worker count or queue depth (enforced by tests/executor_test.cpp).
  bool queued = false;
  /// Per-shard submission queue capacity in queued mode (rounded up to a
  /// power of two; small values just surface backpressure earlier).
  std::size_t queue_depth = 1024;
};

/// One shard's outcome tally. Deterministic per (engine config, churn
/// config, shard) -- independent of worker count and batch interleaving.
struct ShardChurnStats {
  SimStats sim;  // attempts/admitted/blocked/departures/steps/...
  std::size_t grow_attempts = 0;
  std::size_t grows = 0;         // sessions that gained a destination
  std::size_t grow_blocked = 0;  // no candidate or middle-stage block
  std::size_t stale_probes = 0;
  std::size_t stale_rejected = 0;
  /// Stale ids the network *accepted* -- any nonzero value is a bug.
  std::size_t stale_accepted = 0;

  friend bool operator==(const ShardChurnStats&, const ShardChurnStats&) = default;
};

struct ChurnStats {
  /// Shard-ordered merge of per_shard (shard 0 first -- fixed order, so the
  /// merge itself cannot introduce nondeterminism).
  ShardChurnStats total;
  std::vector<ShardChurnStats> per_shard;
  /// Driver-owned sessions still live at the end of the run.
  std::size_t leftover_sessions = 0;

  friend bool operator==(const ChurnStats&, const ChurnStats&) = default;
  [[nodiscard]] std::string to_string() const;
};

class ChurnDriver {
 public:
  ChurnDriver(ShardedEngine& engine, ChurnConfig config);

  [[nodiscard]] const ChurnConfig& config() const { return config_; }

  /// Multithreaded churn on `pool` (the overload without a pool uses
  /// default_pool()). Safe to call from inside a pool task: the nested
  /// parallel_for runs inline (see thread_pool.h).
  ChurnStats run(ThreadPool& pool);
  ChurnStats run();

  /// Single-threaded reference replay: the same per-shard op streams,
  /// executed shard 0..S-1 with no queues, batches, or pool. Produces
  /// bit-identical ChurnStats to run() on an identically-configured engine.
  ChurnStats run_serial();

 private:
  /// Per-shard run state: the shard-resident stream plus the driver's
  /// session bookkeeping and the mutex-guarded batch queue.
  struct Lane {
    explicit Lane(std::size_t shard_index, const ChurnConfig& config)
        : shard(shard_index), rng(Rng(config.seed).split(shard_index)) {}

    const std::size_t shard;
    Rng rng;
    std::vector<ConnectionId> active;  // driver-owned live sessions
    /// Ring of recently disposed ids for stale probes (kStaleRing entries).
    std::vector<ConnectionId> stale;
    std::size_t stale_cursor = 0;
    ShardChurnStats stats;
    /// Batched-arrival mode: requests awaiting the next connect_batch flush,
    /// plus the reusable outcome buffer (both empty in classic mode).
    std::vector<MulticastRequest> pending;
    std::vector<BatchOutcome> outcomes;

    std::mutex queue_mutex;
    std::vector<std::size_t> queue;  // pending batch sizes (FIFO)
    std::size_t queue_head = 0;

    /// Queued mode: first exception a batch task hit (written under shard
    /// ownership, read by run() after quiescing). Later batches on the lane
    /// see it and stop advancing the stream.
    std::exception_ptr task_error;
  };

  static constexpr std::size_t kStaleRing = 32;

  void tick(Lane& lane);
  /// Batched-arrival tick (config_.connect_batch > 0); see ChurnConfig.
  void tick_batched(Lane& lane);
  /// Push the lane's pending arrivals through connect_batch_locked and fold
  /// the outcomes into its stats. Requires the shard mutex. Deferred
  /// active_connection_steps accounting reproduces the classic
  /// account-before-op values at any flush boundary.
  void flush_pending(Lane& lane);
  void grow_tick(Lane& lane, std::size_t victim);
  void remember_stale(Lane& lane, ConnectionId id);
  /// Invariant-violation exit: dump every shard's flight recorder to stderr
  /// (the post-mortem window CI uploads as an artifact), then throw
  /// std::logic_error(what).
  [[noreturn]] void fail(const char* what) const;
  /// Execute every queued batch of `lane` under the shard mutex.
  void drain(Lane& lane);
  ChurnStats merge(std::vector<std::unique_ptr<Lane>>& lanes) const;

  /// Queued-mode run body (config_.queued): single-threaded submission of
  /// batch tasks into a ShardExecutor, then quiesce and merge.
  ChurnStats run_queued();
  /// Context for one lane's queued batch tasks (submit_task trampoline).
  struct QueuedLaneCtx {
    ChurnDriver* driver = nullptr;
    Lane* lane = nullptr;
  };
  /// Batch task body: `ops` ticks of the lane, executed on the worker that
  /// owns the shard. Exceptions land in Lane::task_error, never escape.
  static void queued_batch(void* ctx, std::uint64_t ops);

  ShardedEngine* engine_;
  ChurnConfig config_;
};

}  // namespace wdm::engine

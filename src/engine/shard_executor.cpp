#include "engine/shard_executor.h"

#include <chrono>

#include "util/metrics.h"

namespace wdm::engine {

namespace {

/// Submission-plane instruments (docs/BENCHMARKS.md glossary).
/// engine.queue_depth samples the shard queue's occupancy at every push;
/// engine.op_wait_ns measures submit-to-execute latency per op.
struct ExecutorMetrics {
  Histogram& queue_depth = metrics().histogram("engine.queue_depth");
  TimerStat& op_wait = metrics().timer("engine.op_wait_ns");

  static ExecutorMetrics& get() {
    static ExecutorMetrics instance;
    return instance;
  }
};

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void OpTicket::wait() const {
  // Spin briefly (the common case: the op is already on a worker), then
  // yield so a saturated box makes progress instead of burning the core.
  for (int spin = 0; spin < 1024; ++spin) {
    if (done()) return;
  }
  while (!done()) {
    std::this_thread::yield();
  }
}

ShardExecutor::ShardExecutor(ShardedEngine& engine,
                             const ExecutorConfig& config)
    : engine_(engine), config_(config) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.drain_quantum == 0) config_.drain_quantum = 1;
  lanes_.reserve(engine_.shard_count());
  for (std::size_t s = 0; s < engine_.shard_count(); ++s) {
    lanes_.push_back(std::make_unique<Lane>(config_.queue_capacity));
  }
  threads_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
  engine_.attach_executor(this);
}

ShardExecutor::~ShardExecutor() {
  quiesce();
  engine_.attach_executor(nullptr);
  {
    std::lock_guard lock(park_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  park_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardExecutor::push(std::size_t shard, Op op) {
  Lane& lane = *lanes_.at(shard);
  if (metrics_enabled()) {
    op.enqueue_ns = steady_now_ns();
    ExecutorMetrics::get().queue_depth.record(lane.queue.approx_size());
  }
  // fetch_add BEFORE the queue push so a worker that pops the op and then
  // decrements pending_ can never drive the counter below zero. seq_cst
  // pairs with the worker's sleepers_++ / pending_ re-check (Dekker): either
  // we observe the sleeper and wake it, or it observes our pending op and
  // never sleeps.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1, std::memory_order_seq_cst);
  while (!lane.queue.try_push(op)) {
    // Backpressure: the shard is saturated. Yield until the drain frees a
    // cell -- this is the executor's admission control (mpsc_queue.h).
    std::this_thread::yield();
  }
  if (sleepers_.load(std::memory_order_seq_cst) != 0) {
    // The empty critical section orders this notify after the sleeper's
    // predicate check: if it read pending_ == 0 it has not blocked yet and
    // we cannot take the mutex until it does, so the notify is never lost.
    { std::lock_guard lock(park_mutex_); }
    park_cv_.notify_one();
  }
}

void ShardExecutor::worker_loop(std::size_t index) {
  const std::size_t shard_count = lanes_.size();
  while (true) {
    std::size_t executed = 0;
    // Home-biased scan: worker w starts at shard w, so workers spread over
    // disjoint shards first; the full sweep is the work-stealing part.
    for (std::size_t i = 0; i < shard_count; ++i) {
      executed += drain_shard((index + i) % shard_count);
    }
    if (executed != 0) continue;
    // Nothing claimable anywhere: park until a submission arrives. Publish
    // sleepers_++ BEFORE re-checking pending_ (both seq_cst): a concurrent
    // push() either sees our sleeper count and notifies (after taking
    // park_mutex_, which it cannot do until we block), or its pending_
    // increment precedes our re-check and we skip the wait.
    std::unique_lock lock(park_mutex_);
    if (stop_.load(std::memory_order_acquire)) return;
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (pending_.load(std::memory_order_seq_cst) == 0) {
      park_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) ||
               pending_.load(std::memory_order_relaxed) != 0;
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

std::size_t ShardExecutor::drain_shard(std::size_t shard) {
  Lane& lane = *lanes_[shard];
  if (lane.queue.approx_size() == 0) return 0;  // cheap racy pre-check
  // Claim: the acquire exchange synchronizes-with the previous owner's
  // release store, so all of its shard mutations happen-before ours.
  if (lane.claimed.exchange(true, std::memory_order_acquire)) return 0;
  std::size_t executed = 0;
  Op op;
  while (executed < config_.drain_quantum && lane.queue.try_pop(op)) {
    execute(shard, op);
    ++executed;
  }
  lane.queue.sync_approx_head();
  lane.claimed.store(false, std::memory_order_release);
  if (executed != 0) {
    executed_.fetch_add(executed, std::memory_order_release);
    pending_.fetch_sub(executed, std::memory_order_release);
  }
  return executed;
}

void ShardExecutor::execute(std::size_t shard, Op& op) {
  if (op.enqueue_ns != 0) {
    ExecutorMetrics::get().op_wait.record_ns(steady_now_ns() - op.enqueue_ns);
  }
  switch (op.kind) {
    case Op::Kind::kConnect: {
      const auto id = engine_.connect_locked(shard, *op.request);
      if (op.ticket) op.ticket->complete(id.value_or(0), id.has_value());
      return;
    }
    case Op::Kind::kDisconnect: {
      const bool ok = engine_.disconnect_locked(shard, op.id);
      if (op.ticket) op.ticket->complete(ok ? 1 : 0, 0);
      return;
    }
    case Op::Kind::kGrow: {
      const GrowResult result =
          engine_.grow_locked(shard, op.id, op.destination);
      if (op.ticket) {
        op.ticket->complete(result.connection,
                            static_cast<std::uint64_t>(result.status));
      }
      return;
    }
    case Op::Kind::kBatch: {
      const std::size_t admitted = engine_.connect_batch_locked(
          shard, op.request, op.count, op.outcomes);
      if (op.ticket) op.ticket->complete(admitted, 0);
      return;
    }
    case Op::Kind::kTask: {
      op.fn(op.ctx, op.arg);
      if (op.ticket) op.ticket->complete(0, 0);
      return;
    }
  }
}

void ShardExecutor::submit_connect(std::size_t shard,
                                   const MulticastRequest* request,
                                   OpTicket* ticket) {
  Op op;
  op.kind = Op::Kind::kConnect;
  op.request = request;
  op.ticket = ticket;
  push(shard, op);
}

void ShardExecutor::submit_disconnect(std::size_t shard, ConnectionId id,
                                      OpTicket* ticket) {
  Op op;
  op.kind = Op::Kind::kDisconnect;
  op.id = id;
  op.ticket = ticket;
  push(shard, op);
}

void ShardExecutor::submit_grow(std::size_t shard, ConnectionId id,
                                const WavelengthEndpoint& destination,
                                OpTicket* ticket) {
  Op op;
  op.kind = Op::Kind::kGrow;
  op.id = id;
  op.destination = destination;
  op.ticket = ticket;
  push(shard, op);
}

void ShardExecutor::submit_batch(std::size_t shard,
                                 const MulticastRequest* requests,
                                 std::size_t count, BatchOutcome* outcomes,
                                 OpTicket* ticket) {
  Op op;
  op.kind = Op::Kind::kBatch;
  op.request = requests;
  op.count = count;
  op.outcomes = outcomes;
  op.ticket = ticket;
  push(shard, op);
}

void ShardExecutor::submit_task(std::size_t shard,
                                void (*fn)(void*, std::uint64_t), void* ctx,
                                std::uint64_t arg, OpTicket* ticket) {
  Op op;
  op.kind = Op::Kind::kTask;
  op.fn = fn;
  op.ctx = ctx;
  op.arg = arg;
  op.ticket = ticket;
  push(shard, op);
}

std::optional<ConnectionId> ShardExecutor::connect(
    std::size_t shard, const MulticastRequest& request) {
  OpTicket ticket;
  submit_connect(shard, &request, &ticket);
  ticket.wait();
  if (ticket.extra() == 0) return std::nullopt;
  return static_cast<ConnectionId>(ticket.value());
}

bool ShardExecutor::disconnect(std::size_t shard, ConnectionId id) {
  OpTicket ticket;
  submit_disconnect(shard, id, &ticket);
  ticket.wait();
  return ticket.value() != 0;
}

GrowResult ShardExecutor::grow(std::size_t shard, ConnectionId id,
                               const WavelengthEndpoint& destination) {
  OpTicket ticket;
  submit_grow(shard, id, destination, &ticket);
  ticket.wait();
  return {static_cast<GrowResult::Status>(ticket.extra()),
          static_cast<ConnectionId>(ticket.value())};
}

void ShardExecutor::run_task(std::size_t shard,
                             const std::function<void()>& fn) {
  OpTicket ticket;
  submit_task(
      shard,
      [](void* ctx, std::uint64_t) {
        (*static_cast<const std::function<void()>*>(ctx))();
      },
      const_cast<std::function<void()>*>(&fn), 0, &ticket);
  ticket.wait();
}

void ShardExecutor::quiesce() {
  // Snapshot-then-wait: ops submitted concurrently with quiesce() are not
  // waited for (the barrier covers "submitted so far", nothing more).
  const std::uint64_t target = submitted_.load(std::memory_order_acquire);
  int spin = 0;
  while (executed_.load(std::memory_order_acquire) < target) {
    if (++spin > 256) std::this_thread::yield();
  }
}

}  // namespace wdm::engine

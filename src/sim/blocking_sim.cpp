#include "sim/blocking_sim.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "repack/repack.h"
#include "util/metrics.h"
#include "util/trace_span.h"

namespace wdm {

namespace {

/// Simulator instruments (see docs/BENCHMARKS.md for definitions).
struct SimMetrics {
  Counter& arrivals = metrics().counter("sim.arrivals");
  Counter& admitted = metrics().counter("sim.admitted");
  Counter& blocked = metrics().counter("sim.blocked");
  Counter& departures = metrics().counter("sim.departures");
  Counter& self_checks = metrics().counter("sim.self_checks");
  Counter& attacks = metrics().counter("sim.attacks");
  Counter& attack_blocked = metrics().counter("sim.attack_blocked");
  Counter& attack_fillers = metrics().counter("sim.attack_fillers");
  TimerStat& self_check = metrics().timer("sim.self_check");
  TimerStat& dynamic_sim = metrics().timer("sim.dynamic_sim");
  TimerStat& connect = metrics().timer("sim.connect");
  TimerStat& disconnect = metrics().timer("sim.disconnect");
  Histogram& request_fanout = metrics().histogram("sim.request_fanout");

  static SimMetrics& get() {
    static SimMetrics instance;
    return instance;
  }
};

}  // namespace

SimStats& SimStats::operator+=(const SimStats& rhs) {
  attempts += rhs.attempts;
  admitted += rhs.admitted;
  blocked += rhs.blocked;
  departures += rhs.departures;
  max_concurrent = std::max(max_concurrent, rhs.max_concurrent);
  steps += rhs.steps;
  active_connection_steps += rhs.active_connection_steps;
  conversions += rhs.conversions;
  repacked_admits += rhs.repacked_admits;
  repack_moves += rhs.repack_moves;
  return *this;
}

std::pair<double, double> SimStats::blocking_ci95() const {
  if (attempts == 0) return {0.0, 1.0};
  // Wilson score interval, z = 1.96.
  const double z = 1.96;
  const double n = static_cast<double>(attempts);
  const double p = blocking_probability();
  const double denominator = 1.0 + z * z / n;
  const double center = (p + z * z / (2 * n)) / denominator;
  const double margin =
      z * std::sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denominator;
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

std::string SimStats::to_string() const {
  std::ostringstream os;
  os << "attempts=" << attempts << " admitted=" << admitted
     << " blocked=" << blocked << " P(block)=" << blocking_probability()
     << " peak=" << max_concurrent;
  if (repacked_admits != 0) {
    os << " repacked=" << repacked_admits << " moves=" << repack_moves;
  }
  return os.str();
}

namespace {

/// Batched-arrival variant of run_dynamic_sim (config.connect_batch >= 1).
/// Decisions draw only on the rng and every state read happens after a
/// flush, so SimStats is bit-identical at any batch size; the batch is pure
/// amortization (DESIGN.md §3.10).
SimStats run_dynamic_sim_batched(MultistageSwitch& sw, const SimConfig& config) {
  SimMetrics& counters = SimMetrics::get();
  ScopedTimer sim_timer(counters.dynamic_sim);
  Rng rng(config.seed);
  SimStats stats;
  std::vector<ConnectionId> active;
  std::vector<MulticastRequest> pending;
  std::vector<BatchOutcome> outcomes;
  pending.reserve(config.connect_batch);
  const std::size_t N = sw.port_count();
  const std::size_t k = sw.lane_count();

  const auto flush = [&] {
    if (pending.empty()) return;
    const std::size_t n = pending.size();
    outcomes.resize(n);
    const auto start = std::chrono::steady_clock::now();
    sw.connect_batch(pending.data(), n, outcomes.data());
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const std::uint64_t amortized_ns =
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()) /
        n;
    // Deferred account-before-op (see ChurnDriver::flush_pending): op i's
    // canonical live-session count is the flush-time base plus the
    // admissions ahead of it in this buffer.
    const std::size_t base = active.size();
    std::size_t admitted_ahead = 0;
    for (std::size_t i = 0; i < n; ++i) {
      counters.connect.record_ns(amortized_ns);
      stats.active_connection_steps += base + admitted_ahead;
      const BatchOutcome& out = outcomes[i];
      if (out.ok) {
        ++stats.attempts;
        counters.arrivals.add();
        counters.request_fanout.record(pending[i].outputs.size());
        ++stats.admitted;
        counters.admitted.add();
        stats.conversions += conversions_in_route(
            pending[i], sw.network().find_connection(out.id)->second);
        active.push_back(out.id);
        ++admitted_ahead;
      } else if (out.error == ConnectError::kBlocked) {
        ++stats.attempts;
        counters.arrivals.add();
        counters.request_fanout.record(pending[i].outputs.size());
        ++stats.blocked;
        counters.blocked.add();
      }
      // Endpoint-busy rejections fall through: not an admissible offer,
      // mirroring the classic path's skipped inadmissible steps.
    }
    stats.max_concurrent = std::max(stats.max_concurrent, active.size());
    pending.clear();
  };

  for (std::size_t step = 0; step < config.steps; ++step) {
    ++stats.steps;
    if (rng.next_bool(config.arrival_fraction)) {
      pending.push_back(random_request(rng, N, k, sw.model(), config.fanout));
      if (pending.size() >= config.connect_batch) flush();
    } else {
      flush();  // victim choice and emptiness test read canonical state
      stats.active_connection_steps += active.size();
      if (!active.empty()) {
        const std::size_t victim = rng.next_below(active.size());
        {
          ScopedTimer disconnect_timer(counters.disconnect);
          TraceSpan span("sim.disconnect");
          sw.disconnect(active[victim]);
        }
        active[victim] = active.back();
        active.pop_back();
        ++stats.departures;
        counters.departures.add();
      }
    }
    if (config.self_check_every != 0 && step % config.self_check_every == 0) {
      flush();
      counters.self_checks.add();
      ScopedTimer check_timer(counters.self_check);
      TraceSpan span("sim.self_check");
      sw.network().self_check();
    }
  }
  flush();
  return stats;
}

}  // namespace

SimStats run_dynamic_sim(MultistageSwitch& sw, const SimConfig& config) {
  if (config.repack && config.connect_batch > 0) {
    throw std::invalid_argument(
        "run_dynamic_sim: repack mode requires classic arrivals "
        "(connect_batch == 0)");
  }
  if (config.connect_batch > 0) return run_dynamic_sim_batched(sw, config);
  if (config.repack && sw.repack_engine() == nullptr) {
    sw.enable_repack(repack::RepackPolicy{});
  }
  SimMetrics& counters = SimMetrics::get();
  ScopedTimer sim_timer(counters.dynamic_sim);
  Rng rng(config.seed);
  SimStats stats;
  std::vector<ConnectionId> active;

  for (std::size_t step = 0; step < config.steps; ++step) {
    ++stats.steps;
    stats.active_connection_steps += active.size();
    const bool arrive = active.empty() || rng.next_bool(config.arrival_fraction);
    if (arrive) {
      const auto request =
          random_admissible_request(rng, sw.network(), config.fanout);
      if (!request) continue;  // endpoints exhausted at this load
      ++stats.attempts;
      counters.arrivals.add();
      counters.request_fanout.record(request->outputs.size());
      std::optional<ConnectionId> id;
      {
        ScopedTimer connect_timer(counters.connect);
        TraceSpan span("sim.connect");
        span.arg("fanout", static_cast<std::int64_t>(request->outputs.size()));
        id = config.repack ? sw.connect_with_repack(*request)
                           : sw.try_connect(*request);
        span.arg("admitted", id ? 1 : 0);
      }
      if (id) {
        ++stats.admitted;
        counters.admitted.add();
        stats.conversions += conversions_in_route(
            *request, sw.network().connections().at(*id).second);
        if (config.repack) {
          // Migrated sessions carry fresh ids; patch the departure pool so
          // later victims name live sessions.
          const auto moved = sw.repack_engine()->last_moved();
          if (!moved.empty()) {
            ++stats.repacked_admits;
            stats.repack_moves += moved.size();
            for (const auto& [old_id, new_id] : moved) {
              for (ConnectionId& live : active) {
                if (live == old_id) {
                  live = new_id;
                  break;
                }
              }
            }
          }
        }
        active.push_back(*id);
        stats.max_concurrent = std::max(stats.max_concurrent, active.size());
      } else {
        ++stats.blocked;
        counters.blocked.add();
      }
    } else {
      const std::size_t victim = rng.next_below(active.size());
      {
        ScopedTimer disconnect_timer(counters.disconnect);
        TraceSpan span("sim.disconnect");
        sw.disconnect(active[victim]);
      }
      active[victim] = active.back();
      active.pop_back();
      ++stats.departures;
      counters.departures.add();
    }
    if (config.self_check_every != 0 && step % config.self_check_every == 0) {
      counters.self_checks.add();
      ScopedTimer check_timer(counters.self_check);
      TraceSpan span("sim.self_check");
      sw.network().self_check();
    }
  }
  return stats;
}

std::string AttackResult::to_string() const {
  std::ostringstream os;
  os << (challenge_blocked ? "BLOCKED" : "routed")
     << " unavailable_middles=" << unavailable_middles
     << " fillers=" << filler_connections;
  return os.str();
}

namespace {

/// Try to install `request` over `route`; false (no side effects) if the
/// route is not currently valid.
bool try_install(ThreeStageNetwork& network, const MulticastRequest& request,
                 const Route& route) {
  if (network.check_admissible(request)) return false;
  if (network.check_route(request, route)) return false;
  network.install(request, route);
  return true;
}

}  // namespace

AttackResult saturation_attack(MultistageSwitch& sw, Rng& rng) {
  ThreeStageNetwork& network = sw.network();
  const ClosParams params = network.params();
  const auto [n, r, m, k] = params;
  const std::size_t spread = sw.router().policy().max_spread;
  const bool msw_dominant =
      network.construction() == Construction::kMswDominant;

  AttackResult result;

  // The challenge: input wavelength (port 0, λ1) to the first port of every
  // output module, all on λ1 (legal under every network model).
  MulticastRequest challenge;
  challenge.input = {0, 0};
  for (std::size_t p = 0; p < r; ++p) challenge.outputs.push_back({p * n, 0});

  // Rotating middle index for spreading filler branches.
  std::size_t middle_cursor = rng.next_below(m);
  auto next_middle = [&] {
    const std::size_t j = middle_cursor;
    middle_cursor = (middle_cursor + 1) % m;
    return j;
  };

  // --- Phase 1: burn the challenge module's other input wavelengths -------
  // Each filler takes `spread` destinations in distinct output modules and is
  // explicitly routed over `spread` middle modules (strategy-compliant), so
  // it consumes one in-link lane on each of those middles.
  for (std::size_t q = 0; q < n; ++q) {
    for (Wavelength lane = 0; lane < k; ++lane) {
      if (q == 0 && lane == 0) continue;  // the challenge's own wavelength
      // Under MSW-dominant, only the challenge's own plane matters.
      if (msw_dominant && lane != 0) continue;

      MulticastRequest filler;
      filler.input = {q, lane};
      Route route;
      std::size_t branches_placed = 0;
      for (std::size_t attempt = 0; attempt < m && branches_placed < spread;
           ++attempt) {
        const std::size_t j = next_middle();
        // One destination module per branch, rotated.
        const std::size_t p = (q + branches_placed + attempt) % r;
        // Spare destination port in module p (port 0 of each module is
        // reserved for the challenge).
        std::size_t dest_port = p * n;
        bool found = false;
        for (std::size_t local = (n > 1 ? 1 : 0); local < n; ++local) {
          const WavelengthEndpoint endpoint{p * n + local, lane};
          if (!network.output_busy(endpoint)) {
            dest_port = endpoint.port;
            found = true;
            break;
          }
        }
        if (!found) continue;
        const Wavelength in_link_lane =
            msw_dominant
                ? lane
                : network.input_module(0).lowest_free_out_lane(j).value_or(lane);
        RouteBranch branch{j, in_link_lane, {{p, lane, {{dest_port, lane}}}}};
        Route probe = route;
        probe.branches.push_back(branch);
        filler.outputs.push_back({dest_port, lane});
        if (network.check_route(filler, probe)) {
          filler.outputs.pop_back();  // branch not placeable; try next middle
          continue;
        }
        route = std::move(probe);
        ++branches_placed;
      }
      if (branches_placed == 0) continue;
      if (try_install(network, filler, route)) ++result.filler_connections;
    }
  }

  // --- Phase 2: poison the remaining middles' out-links --------------------
  // From donor input modules (1..r-1), pin unicast connections on λ1 through
  // each still-available middle so it can no longer serve some challenge
  // module on λ1.
  std::size_t donor_module = 1 % r;
  std::size_t donor_port_offset = 0;
  std::size_t victim_module = rng.next_below(r);
  for (std::size_t j = 0; j < m && r > 1; ++j) {
    const bool middle_reachable =
        msw_dominant ? network.input_module(0).out_lane_free(j, 0)
                     : network.input_module(0).free_out_lanes(j) > 0;
    if (!middle_reachable) continue;

    bool poisoned = false;
    for (std::size_t tries = 0; tries < r && !poisoned; ++tries) {
      const std::size_t p = (victim_module + tries) % r;
      if (!network.middle_module(j).out_lane_free(p, 0)) {
        poisoned = true;  // already cannot serve module p on λ1
        break;
      }
      // Spare destination port on λ1 in module p.
      std::size_t dest_port = p * n + 1;
      bool dest_found = false;
      for (std::size_t local = (n > 1 ? 1 : 0); local < n; ++local) {
        if (!network.output_busy({p * n + local, 0})) {
          dest_port = p * n + local;
          dest_found = true;
          break;
        }
      }
      if (!dest_found) continue;
      // Free donor input wavelength on λ1 outside the challenge module.
      bool installed = false;
      for (std::size_t scan = 0; scan < (r - 1) * n && !installed; ++scan) {
        const std::size_t port =
            donor_module * n + (donor_port_offset % n);
        ++donor_port_offset;
        if (donor_port_offset % n == 0) {
          donor_module = donor_module % (r - 1) + 1;
        }
        const WavelengthEndpoint donor{port, 0};
        if (network.input_busy(donor)) continue;
        MulticastRequest poison;
        poison.input = donor;
        poison.outputs = {{dest_port, 0}};
        const Route route{{{j, 0, {{p, 0, {{dest_port, 0}}}}}}};
        if (try_install(network, poison, route)) {
          ++result.filler_connections;
          installed = true;
          poisoned = true;
        }
      }
    }
    ++victim_module;
    victim_module %= r;
  }

  // --- Count middles unusable for the challenge ----------------------------
  for (std::size_t j = 0; j < m; ++j) {
    const bool reachable =
        msw_dominant ? network.input_module(0).out_lane_free(j, 0)
                     : network.input_module(0).free_out_lanes(j) > 0;
    if (!reachable) ++result.unavailable_middles;
  }

  result.challenge_blocked = !sw.try_connect(challenge).has_value();
  SimMetrics& counters = SimMetrics::get();
  counters.attacks.add();
  counters.attack_fillers.add(result.filler_connections);
  if (result.challenge_blocked) counters.attack_blocked.add();
  return result;
}

}  // namespace wdm

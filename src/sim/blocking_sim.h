// Dynamic blocking simulation on three-stage networks.
//
// The paper's nonblocking claims (Theorems 1-2) are *worst case over all
// request/release sequences* under the limited-spread routing strategy. We
// probe them empirically from two directions:
//   * run_dynamic_sim: random admissible arrivals interleaved with random
//     departures at a configurable load; any observed block at m >= the
//     theorem bound would falsify the theorem (none should occur), while
//     for m well below the bound blocks should appear.
//   * saturation_attack: a structured adversary shaped like the theorems'
//     worst case -- fill the challenge input module's other wavelengths and
//     spray middle-stage occupancy from other modules, then issue a
//     full-spread challenge.
#pragma once

#include <cstdint>
#include <string>

#include "multistage/builder.h"
#include "sim/request.h"
#include "util/rng.h"

namespace wdm {

struct SimConfig {
  std::size_t steps = 2000;
  /// Probability a step attempts an arrival (otherwise a departure).
  double arrival_fraction = 0.65;
  FanoutRange fanout = {};
  std::uint64_t seed = 0x5EED;
  /// Run network.self_check() every this many steps (0 = never).
  std::size_t self_check_every = 0;
  /// 0 = classic per-request arrivals (admissible generation, one
  /// try_connect per arrival). >= 1 = batched arrivals: requests are
  /// generated state-free and flushed through
  /// MultistageSwitch::connect_batch whenever this many are pending -- and
  /// always before any departure, self-check, or the end of the run.
  /// Endpoint-busy rejections (possible under state-free generation) count
  /// as neither attempts nor blocks, mirroring the classic path's skipped
  /// inadmissible steps. SimStats is bit-identical across batch sizes (see
  /// DESIGN.md §3.10); "sim.connect" then records the amortized per-request
  /// connect cost, so its p50 stays comparable with the classic path.
  std::size_t connect_batch = 0;
  /// Route arrivals through MultistageSwitch::connect_with_repack so blocked
  /// requests may be admitted by migrating standing sessions (rearrangeable
  /// mode, DESIGN.md §3.12). The sim attaches a default-policy repack engine
  /// unless the caller already enabled one. Classic arrivals only:
  /// combining with connect_batch throws std::invalid_argument. With
  /// `repack` false the sim is untouched -- identical decisions, counters,
  /// and SimStats.
  bool repack = false;
};

struct SimStats {
  std::size_t attempts = 0;    // admissible requests offered to the router
  std::size_t admitted = 0;
  std::size_t blocked = 0;     // router found no route (middle-stage block)
  std::size_t departures = 0;
  std::size_t max_concurrent = 0;
  std::size_t steps = 0;
  /// Sum over steps of the live connection count (for mean utilization).
  std::size_t active_connection_steps = 0;
  /// Sum of conversions_in_route over admitted connections.
  std::size_t conversions = 0;
  /// Admissions that needed at least one migration (config.repack only;
  /// always zero otherwise, preserving SimStats equality for classic runs).
  std::size_t repacked_admits = 0;
  /// Standing sessions migrated across all repacked admissions.
  std::size_t repack_moves = 0;

  [[nodiscard]] double blocking_probability() const {
    return attempts == 0 ? 0.0 : static_cast<double>(blocked) /
                                     static_cast<double>(attempts);
  }
  /// Wilson 95% confidence interval on the blocking probability.
  [[nodiscard]] std::pair<double, double> blocking_ci95() const;
  /// Mean live connections per step divided by capacity (N*k input
  /// wavelengths); pass the network's N*k.
  [[nodiscard]] double mean_utilization(std::size_t capacity) const {
    return steps == 0 || capacity == 0
               ? 0.0
               : static_cast<double>(active_connection_steps) /
                     (static_cast<double>(steps) * static_cast<double>(capacity));
  }
  /// Mean wavelength conversions per admitted connection.
  [[nodiscard]] double mean_conversions() const {
    return admitted == 0 ? 0.0 : static_cast<double>(conversions) /
                                     static_cast<double>(admitted);
  }
  SimStats& operator+=(const SimStats& rhs);
  /// Field-by-field equality: the bit-identical-determinism check used by
  /// the concurrent engine ("same counters at any thread count").
  friend bool operator==(const SimStats&, const SimStats&) = default;
  [[nodiscard]] std::string to_string() const;
};

/// Drive `sw` with random admissible arrivals/departures.
[[nodiscard]] SimStats run_dynamic_sim(MultistageSwitch& sw, const SimConfig& config);

struct AttackResult {
  bool challenge_blocked = false;
  /// Middle modules unusable for the challenge at the moment it was issued.
  std::size_t unavailable_middles = 0;
  std::size_t filler_connections = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Structured adversary following the Theorem 1/2 worst-case shape: occupy
/// the other n*k - 1 input wavelengths of the challenge's input module with
/// spread-heavy connections, then issue a full-fanout challenge from the
/// remaining wavelength. Randomized by `rng`; leaves the network loaded
/// (callers own cleanup or discard the switch).
[[nodiscard]] AttackResult saturation_attack(MultistageSwitch& sw, Rng& rng);

}  // namespace wdm

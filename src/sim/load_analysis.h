// Average-case load analysis and middle-stage provisioning.
//
// The paper's theorems size m for the adversarial worst case; a network
// operator who tolerates a tiny blocking probability can provision fewer
// middle modules. This module quantifies that trade: blocking/utilization
// curves vs offered load, and a provisioner that finds the smallest m whose
// observed blocking stays under a target at a given load -- reporting the
// crosspoint saving relative to the theorem-sized design.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/blocking_sim.h"

namespace wdm {

struct LoadPoint {
  /// The arrival_fraction used (proxy for offered load).
  double load = 0.0;
  SimStats stats;
  double mean_utilization = 0.0;  // of the N*k input wavelengths
};

/// Blocking and utilization vs offered load on a fixed geometry, aggregated
/// over `trials` seeded runs per point.
[[nodiscard]] std::vector<LoadPoint> blocking_vs_load(
    const ClosParams& params, Construction construction,
    MulticastModel network_model, const RoutingPolicy& policy,
    const std::vector<double>& loads, const SimConfig& base_config,
    std::size_t trials);

struct ProvisioningResult {
  std::size_t chosen_m = 0;
  double observed_blocking = 0.0;
  double blocking_ci95_upper = 0.0;
  std::size_t theorem_m = 0;
  /// Crosspoint cost at chosen_m / cost at theorem_m (< 1 = saving).
  double crosspoint_ratio = 1.0;
};

/// Smallest m in [n, theorem bound] whose aggregated blocking probability
/// over `trials` runs is <= `target_blocking` (the theorem bound always
/// qualifies with blocking 0, so the search always succeeds).
[[nodiscard]] ProvisioningResult provision_middle_stage(
    std::size_t n, std::size_t r, std::size_t k, Construction construction,
    MulticastModel network_model, const SimConfig& base_config,
    double target_blocking, std::size_t trials);

}  // namespace wdm

#include "sim/request.h"

#include <algorithm>
#include <stdexcept>

namespace wdm {

namespace {

std::size_t clamp_max_fanout(FanoutRange fanout, std::size_t N) {
  const std::size_t upper = fanout.max == 0 ? N : std::min(fanout.max, N);
  if (fanout.min == 0 || fanout.min > upper) {
    throw std::invalid_argument("FanoutRange: need 1 <= min <= max <= N");
  }
  return upper;
}

}  // namespace

MulticastRequest random_request(Rng& rng, std::size_t N, std::size_t k,
                                MulticastModel model, FanoutRange fanout) {
  const std::size_t upper = clamp_max_fanout(fanout, N);
  MulticastRequest request;
  request.input.port = static_cast<std::size_t>(rng.next_below(N));
  request.input.lane = static_cast<Wavelength>(rng.next_below(k));

  const std::size_t size =
      fanout.min + static_cast<std::size_t>(rng.next_below(upper - fanout.min + 1));
  const std::vector<std::size_t> ports = rng.sample_without_replacement(N, size);

  const Wavelength common_lane = model == MulticastModel::kMSW
                                     ? request.input.lane
                                     : static_cast<Wavelength>(rng.next_below(k));
  for (const std::size_t port : ports) {
    const Wavelength lane = model == MulticastModel::kMAW
                                ? static_cast<Wavelength>(rng.next_below(k))
                                : common_lane;
    request.outputs.push_back({port, lane});
  }
  return request;
}

namespace {

/// Shared generator body; `source_ports` restricts the input-wavelength draw
/// when non-null (the engine's shard-ownership case).
std::optional<MulticastRequest> admissible_request_impl(
    Rng& rng, const ThreeStageNetwork& network, FanoutRange fanout,
    const std::vector<std::size_t>* source_ports) {
  const std::size_t N = network.port_count();
  const std::size_t k = network.lane_count();
  const MulticastModel model = network.network_model();
  const std::size_t upper = clamp_max_fanout(fanout, N);

  // Free input wavelengths (on the allowed source ports).
  std::vector<WavelengthEndpoint> free_inputs;
  auto collect_port = [&](std::size_t port) {
    for (Wavelength lane = 0; lane < k; ++lane) {
      if (!network.input_busy({port, lane})) free_inputs.push_back({port, lane});
    }
  };
  if (source_ports == nullptr) {
    for (std::size_t port = 0; port < N; ++port) collect_port(port);
  } else {
    for (const std::size_t port : *source_ports) {
      if (port < N) collect_port(port);
    }
  }
  if (free_inputs.empty()) return std::nullopt;
  MulticastRequest request;
  request.input = free_inputs[rng.next_below(free_inputs.size())];

  // Candidate destinations consistent with the model's lane discipline.
  auto free_output = [&](std::size_t port, Wavelength lane) {
    return !network.output_busy({port, lane});
  };

  std::vector<WavelengthEndpoint> candidates;  // at most one per port
  switch (model) {
    case MulticastModel::kMSW: {
      for (std::size_t port = 0; port < N; ++port) {
        if (free_output(port, request.input.lane)) {
          candidates.push_back({port, request.input.lane});
        }
      }
      break;
    }
    case MulticastModel::kMSDW: {
      // Pick the destination lane first (uniform over lanes that have at
      // least one free port), then use all ports free on it.
      std::vector<Wavelength> usable_lanes;
      for (Wavelength lane = 0; lane < k; ++lane) {
        for (std::size_t port = 0; port < N; ++port) {
          if (free_output(port, lane)) {
            usable_lanes.push_back(lane);
            break;
          }
        }
      }
      if (usable_lanes.empty()) return std::nullopt;
      const Wavelength lane = usable_lanes[rng.next_below(usable_lanes.size())];
      for (std::size_t port = 0; port < N; ++port) {
        if (free_output(port, lane)) candidates.push_back({port, lane});
      }
      break;
    }
    case MulticastModel::kMAW: {
      for (std::size_t port = 0; port < N; ++port) {
        // Uniform choice among the port's free lanes.
        std::vector<Wavelength> lanes;
        for (Wavelength lane = 0; lane < k; ++lane) {
          if (free_output(port, lane)) lanes.push_back(lane);
        }
        if (!lanes.empty()) {
          candidates.push_back({port, lanes[rng.next_below(lanes.size())]});
        }
      }
      break;
    }
  }
  if (candidates.empty()) return std::nullopt;

  const std::size_t available = candidates.size();
  if (available < fanout.min) return std::nullopt;
  const std::size_t cap = std::min(upper, available);
  const std::size_t size =
      fanout.min + static_cast<std::size_t>(rng.next_below(cap - fanout.min + 1));
  const std::vector<std::size_t> picks =
      rng.sample_without_replacement(available, size);
  for (const std::size_t pick : picks) request.outputs.push_back(candidates[pick]);
  return request;
}

}  // namespace

std::optional<MulticastRequest> random_admissible_request(
    Rng& rng, const ThreeStageNetwork& network, FanoutRange fanout) {
  return admissible_request_impl(rng, network, fanout, nullptr);
}

std::optional<MulticastRequest> random_admissible_request(
    Rng& rng, const ThreeStageNetwork& network, FanoutRange fanout,
    const std::vector<std::size_t>& source_ports) {
  return admissible_request_impl(rng, network, fanout, &source_ports);
}

Fig10Scenario fig10_scenario() {
  Fig10Scenario scenario;
  scenario.params = ClosParams{2, 2, 2, 2};  // n=2, r=2, m=2, k=2 -> N=4
  scenario.network_model = MulticastModel::kMSW;

  // Prior A: input wavelength (port 1, λ1) -> output (port 1, λ1), routed
  // through middle 0. Occupies λ1 on links in0->mid0 and mid0->out0.
  {
    ScriptedConnection a;
    a.request.input = {1, 0};
    a.request.outputs = {{1, 0}};
    a.route.branches = {{/*middle=*/0, /*link_lane=*/0,
                         {{/*out_module=*/0, /*link_lane=*/0, {{1, 0}}}}}};
    scenario.prior.push_back(std::move(a));
  }
  // Prior B: input wavelength (port 2, λ1) -> output (port 3, λ1), routed
  // through middle 1. Occupies λ1 on links in1->mid1 and mid1->out1.
  {
    ScriptedConnection b;
    b.request.input = {2, 0};
    b.request.outputs = {{3, 0}};
    b.route.branches = {{/*middle=*/1, /*link_lane=*/0,
                         {{/*out_module=*/1, /*link_lane=*/0, {{3, 0}}}}}};
    scenario.prior.push_back(std::move(b));
  }
  // Challenge: (port 0, λ1) -> {(port 0, λ1), (port 2, λ1)}. Under
  // MSW-dominant construction the only λ1-reachable middle is mid 1 (mid 0's
  // input link lost λ1 to prior A), and mid 1 cannot reach output module 1
  // on λ1 (prior B) -- blocked. Under MAW-dominant, stage 1 moves to λ2 so
  // both middles are reachable and the pair {mid0 -> out1, mid1 -> out0}
  // covers the fanout.
  scenario.challenge.input = {0, 0};
  scenario.challenge.outputs = {{0, 0}, {2, 0}};
  return scenario;
}

void install_scripted(ThreeStageNetwork& network,
                      const std::vector<ScriptedConnection>& prior) {
  for (const auto& connection : prior) {
    network.install(connection.request, connection.route);
  }
}

}  // namespace wdm

#include "sim/witness.h"

#include <algorithm>
#include <sstream>

namespace wdm {

std::string BlockingWitness::to_string() const {
  std::ostringstream os;
  os << "witness at m=" << m << ": " << state.size()
     << " connections block " << blocked_request.to_string();
  return os.str();
}

namespace {

BlockingWitness capture_witness(const ThreeStageNetwork& network,
                                const MulticastRequest& blocked) {
  BlockingWitness witness;
  witness.m = network.params().m;
  witness.blocked_request = blocked;
  for (const auto& [id, entry] : network.connections()) {
    witness.state.push_back(entry);
  }
  return witness;
}

}  // namespace

std::optional<BlockingWitness> find_blocking_witness(
    const ClosParams& params, Construction construction,
    MulticastModel network_model, const RoutingPolicy& policy,
    const WitnessSearchConfig& config) {
  for (std::size_t restart = 0; restart < config.restarts; ++restart) {
    Rng rng = Rng(config.seed).split(restart);

    // Phase A: the structured adversary often blocks immediately.
    {
      MultistageSwitch sw(params, construction, network_model, policy);
      Rng attack_rng = rng.split(1000);
      const AttackResult attack = saturation_attack(sw, attack_rng);
      if (attack.challenge_blocked) {
        MulticastRequest challenge;
        challenge.input = {0, 0};
        for (std::size_t p = 0; p < params.r; ++p) {
          challenge.outputs.push_back({p * params.n, 0});
        }
        return capture_witness(sw.network(), challenge);
      }
    }

    // Phase B: random churn with routability probes.
    MultistageSwitch sw(params, construction, network_model, policy);
    std::vector<ConnectionId> live;
    for (std::size_t step = 0; step < config.churn_steps; ++step) {
      if (live.empty() || rng.next_bool(0.75)) {
        const auto request = random_admissible_request(rng, sw.network(), {});
        if (request) {
          if (const auto id = sw.try_connect(*request)) {
            live.push_back(*id);
          } else {
            return capture_witness(sw.network(), *request);
          }
        }
      } else {
        const std::size_t victim = rng.next_below(live.size());
        sw.disconnect(live[victim]);
        live[victim] = live.back();
        live.pop_back();
      }
      // Probe without installing: would some fresh request block right now?
      for (std::size_t probe = 0; probe < config.probes_per_step; ++probe) {
        const auto request = random_admissible_request(rng, sw.network(), {});
        if (request && !sw.router().find_route(*request)) {
          return capture_witness(sw.network(), *request);
        }
      }
    }
  }
  return std::nullopt;
}

namespace {

/// Does `state` (minus the connection at skip_index, if any) still block
/// `request` on a fresh network?
bool still_blocks(const std::vector<std::pair<MulticastRequest, Route>>& state,
                  std::size_t skip_index, const MulticastRequest& request,
                  const ClosParams& params, Construction construction,
                  MulticastModel network_model, const RoutingPolicy& policy) {
  ThreeStageNetwork network(params, construction, network_model);
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (i == skip_index) continue;
    network.install(state[i].first, state[i].second);
  }
  if (network.check_admissible(request)) return false;  // endpoint freed: moot
  Router router(network, policy);
  return !router.find_route(request).has_value();
}

}  // namespace

BlockingWitness shrink_witness(const BlockingWitness& witness,
                               const ClosParams& params,
                               Construction construction,
                               MulticastModel network_model,
                               const RoutingPolicy& policy) {
  constexpr std::size_t kKeepAll = static_cast<std::size_t>(-1);
  if (!still_blocks(witness.state, kKeepAll, witness.blocked_request, params,
                    construction, network_model, policy)) {
    throw std::invalid_argument("shrink_witness: input witness does not block");
  }
  BlockingWitness shrunk = witness;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < shrunk.state.size(); ++i) {
      if (still_blocks(shrunk.state, i, shrunk.blocked_request, params,
                       construction, network_model, policy)) {
        shrunk.state.erase(shrunk.state.begin() + static_cast<std::ptrdiff_t>(i));
        progress = true;
        break;  // restart: indices shifted
      }
    }
  }
  return shrunk;
}

TightnessReport probe_tightness(std::size_t n, std::size_t r, std::size_t k,
                                Construction construction,
                                MulticastModel network_model,
                                const WitnessSearchConfig& config) {
  const NonblockingBound bound = construction == Construction::kMswDominant
                                     ? theorem1_min_m(n, r)
                                     : theorem2_min_m(n, r, k);
  TightnessReport report;
  report.theorem_bound_m = bound.m;
  const RoutingPolicy policy{bound.x, RouteSearch::kExhaustive};
  for (std::size_t m = bound.m; m-- > n;) {
    const ClosParams params{n, r, std::max(m, n), k};
    if (find_blocking_witness(params, construction, network_model, policy,
                              config)) {
      report.largest_blocking_m = m;
      return report;
    }
  }
  return report;
}

}  // namespace wdm

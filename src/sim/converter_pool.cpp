#include "sim/converter_pool.h"

#include <algorithm>
#include <stdexcept>

#include "faults/fault_model.h"
#include "util/metrics.h"
#include "util/trace_span.h"

namespace wdm {

namespace {

/// Shared-converter-bank instruments (see docs/BENCHMARKS.md).
struct PoolMetrics {
  Counter& attempts = metrics().counter("converter_pool.attempts");
  Counter& admitted = metrics().counter("converter_pool.admitted");
  Counter& blocked = metrics().counter("converter_pool.blocked");
  Counter& conversions = metrics().counter("converter_pool.conversions");
  Gauge& in_use = metrics().gauge("converter_pool.in_use");
  TimerStat& acquire = metrics().timer("converter_pool.acquire");
  Histogram& demand = metrics().histogram("converter_pool.demand");

  static PoolMetrics& get() {
    static PoolMetrics instance;
    return instance;
  }
};

}  // namespace

ConverterPoolSwitch::ConverterPoolSwitch(std::size_t N, std::size_t k,
                                         std::size_t pool_size)
    : n_(N), k_(k), pool_(pool_size) {
  if (N == 0 || k == 0) {
    throw std::invalid_argument("ConverterPoolSwitch: N, k >= 1");
  }
}

std::size_t ConverterPoolSwitch::converter_demand(const MulticastRequest& request) {
  std::size_t demand = 0;
  for (const auto& out : request.outputs) {
    if (out.lane != request.input.lane) ++demand;
  }
  return demand;
}

std::optional<ConnectError> ConverterPoolSwitch::check_admissible(
    const MulticastRequest& request) const {
  if (const auto error =
          check_request_shape(request, n_, k_, MulticastModel::kMAW)) {
    return error;
  }
  if (busy_inputs_.contains(request.input)) return ConnectError::kInputBusy;
  for (const auto& out : request.outputs) {
    if (busy_outputs_.contains(out)) return ConnectError::kOutputBusy;
  }
  if (in_use_ + converter_demand(request) > effective_pool_size()) {
    return ConnectError::kBlocked;
  }
  return std::nullopt;
}

std::size_t ConverterPoolSwitch::effective_pool_size() const {
  if (faults_ == nullptr || !faults_->any()) return pool_;
  const std::size_t failed = faults_->failed_converter_slots();
  return failed >= pool_ ? 0 : pool_ - failed;
}

std::optional<ConnectionId> ConverterPoolSwitch::try_connect(
    const MulticastRequest& request) {
  PoolMetrics& counters = PoolMetrics::get();
  counters.attempts.add();
  ScopedTimer acquire_timer(counters.acquire);
  TraceSpan span("converter_pool.acquire");
  if (const auto error = check_admissible(request)) {
    last_error_ = *error;
    if (*error == ConnectError::kBlocked) counters.blocked.add();
    span.arg("admitted", 0);
    return std::nullopt;
  }
  const std::size_t demand = converter_demand(request);
  counters.demand.record(demand);
  span.arg("demand", static_cast<std::int64_t>(demand));
  span.arg("admitted", 1);
  in_use_ += demand;
  counters.admitted.add();
  counters.conversions.add(demand);
  counters.in_use.set(static_cast<std::int64_t>(in_use_));
  const ConnectionId id = next_id_++;
  busy_inputs_[request.input] = id;
  for (const auto& out : request.outputs) busy_outputs_[out] = id;
  connections_.emplace(id, std::make_pair(request, demand));
  return id;
}

void ConverterPoolSwitch::disconnect(ConnectionId id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) {
    throw std::out_of_range("ConverterPoolSwitch: unknown connection id");
  }
  const auto& [request, demand] = it->second;
  in_use_ -= demand;
  PoolMetrics::get().in_use.set(static_cast<std::int64_t>(in_use_));
  busy_inputs_.erase(request.input);
  for (const auto& out : request.outputs) busy_outputs_.erase(out);
  connections_.erase(it);
}

std::vector<PoolSweepPoint> sweep_converter_pool(
    std::size_t N, std::size_t k, const std::vector<std::size_t>& pool_sizes,
    std::size_t steps, std::uint64_t seed) {
  std::vector<PoolSweepPoint> points;
  points.reserve(pool_sizes.size());
  for (const std::size_t pool : pool_sizes) {
    ConverterPoolSwitch sw(N, k, pool);
    Rng rng(seed);  // identical workload stream for every pool size
    PoolSweepPoint point;
    point.pool_size = pool;
    std::vector<ConnectionId> live;
    for (std::size_t step = 0; step < steps; ++step) {
      if (live.empty() || rng.next_bool(0.65)) {
        // Random MAW request over currently free endpoints.
        MulticastRequest request;
        bool found = false;
        const std::size_t start = rng.next_below(N * k);
        for (std::size_t probe = 0; probe < N * k && !found; ++probe) {
          const std::size_t index = (start + probe) % (N * k);
          const WavelengthEndpoint candidate{index / k,
                                             static_cast<Wavelength>(index % k)};
          if (sw.check_admissible({candidate, {{0, 0}}}) !=
              ConnectError::kInputBusy) {
            request.input = candidate;
            found = true;
          }
        }
        if (!found) continue;
        const std::size_t fanout = 1 + rng.next_below(std::min<std::size_t>(4, N));
        for (const std::size_t port : rng.sample_without_replacement(N, fanout)) {
          const WavelengthEndpoint out{port, static_cast<Wavelength>(rng.next_below(k))};
          request.outputs.push_back(out);
        }
        // Drop outputs that are busy (keep the offered shape admissible in
        // space so every recorded block is a converter block).
        std::erase_if(request.outputs, [&](const WavelengthEndpoint& out) {
          return sw.check_admissible({request.input, {out}}) ==
                 ConnectError::kOutputBusy;
        });
        if (request.outputs.empty()) continue;
        ++point.attempts;
        if (const auto id = sw.try_connect(request)) {
          live.push_back(*id);
          point.peak_in_use = std::max(point.peak_in_use, sw.converters_in_use());
        } else if (sw.last_error() == ConnectError::kBlocked) {
          ++point.blocked_on_converters;
        }
      } else {
        const std::size_t victim = rng.next_below(live.size());
        sw.disconnect(live[victim]);
        live[victim] = live.back();
        live.pop_back();
      }
    }
    point.peak_pool_utilization =
        pool == 0 ? 0.0
                  : static_cast<double>(point.peak_in_use) /
                        static_cast<double>(pool);
    points.push_back(point);
  }
  return points;
}

}  // namespace wdm

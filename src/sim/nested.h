// Live validation of the §3 recursion claim.
//
// The recursive construction replaces each r x r middle module with a
// (theorem-sized) three-stage network of the same size and model. That is
// sound only if every traffic pattern the outer routing strategy offers a
// middle module is itself routable by such an inner network. This validator
// makes the claim empirical: it shadows an outer MultistageSwitch with m
// inner MultistageSwitch instances (one per middle module) and mirrors
// every middle-module transit onto the corresponding inner network as a
// real routed connection. Any inner block is a counterexample to the
// recursion (none is ever expected).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "multistage/builder.h"

namespace wdm {

class NestedRecursionValidator {
 public:
  /// Builds one inner switch per outer middle module. The inner geometry
  /// factors r (outer middle size) as balanced n' x r' and sizes its own
  /// middle stage by the matching theorem. Throws std::invalid_argument if
  /// r is prime or < 4 (no inner decomposition exists).
  explicit NestedRecursionValidator(MultistageSwitch& outer);

  /// Mirror an accepted outer connection into the inner networks. Returns
  /// false iff some inner network blocked (the recursion claim would be
  /// falsified); on false the partially-mirrored branches are rolled back.
  [[nodiscard]] bool on_connect(ConnectionId outer_id);

  /// Mirror an outer disconnect. Must be called BEFORE the outer switch's
  /// disconnect (the route is read from the outer connection table).
  void on_disconnect(ConnectionId outer_id);

  [[nodiscard]] std::size_t inner_count() const { return inner_.size(); }
  [[nodiscard]] const MultistageSwitch& inner(std::size_t j) const {
    return *inner_.at(j);
  }
  /// Total connections currently mirrored across all inner networks.
  [[nodiscard]] std::size_t mirrored_connections() const;

  /// Deep-check every inner network.
  void self_check() const;

 private:
  MultistageSwitch* outer_;
  std::vector<std::unique_ptr<MultistageSwitch>> inner_;  // [middle index]
  /// outer connection -> per-branch (middle index, inner connection id).
  std::map<ConnectionId, std::vector<std::pair<std::size_t, ConnectionId>>> mirror_;
};

/// A five-stage switch as a first-class object: a theorem-sized three-stage
/// outer network whose r x r middle modules are genuinely operated as
/// theorem-sized inner three-stage networks (stages 2-4 of the five-stage
/// picture). Every connection is routed by the outer limited-spread
/// strategy AND realized inside the touched inner networks; §3's recursion
/// claim guarantees try_connect never fails for admissible requests (a
/// std::logic_error is thrown if it ever would -- that would falsify the
/// construction).
class FiveStageSwitch {
 public:
  /// Geometry: outer (n, r) with k lanes; r must factor for the inner
  /// networks. Both levels take their m from the matching theorem.
  FiveStageSwitch(std::size_t n, std::size_t r, std::size_t k,
                  Construction construction, MulticastModel network_model);

  [[nodiscard]] std::size_t port_count() const { return outer_.port_count(); }
  [[nodiscard]] std::size_t lane_count() const { return outer_.lane_count(); }
  [[nodiscard]] std::size_t stage_count() const { return 5; }
  [[nodiscard]] MultistageSwitch& outer() { return outer_; }
  [[nodiscard]] const NestedRecursionValidator& nested() const { return nested_; }

  [[nodiscard]] std::optional<ConnectError> check_admissible(
      const MulticastRequest& request) const {
    return outer_.check_admissible(request);
  }
  [[nodiscard]] std::optional<ConnectionId> try_connect(const MulticastRequest& request);
  void disconnect(ConnectionId id);
  [[nodiscard]] ConnectError last_error() const { return outer_.last_error(); }
  [[nodiscard]] std::size_t active_connections() const {
    return outer_.active_connections();
  }

  /// Total crosspoints of the five-stage realization (edge stages as
  /// crossbar modules, middles expanded), for cost comparisons.
  [[nodiscard]] std::uint64_t crosspoints() const;

  void self_check() const;

 private:
  MultistageSwitch outer_;
  NestedRecursionValidator nested_;
};

}  // namespace wdm

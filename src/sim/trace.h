// Connection-event traces: record, serialize, replay.
//
// A trace is the reproducibility artifact of a blocking experiment: the
// ordered list of connect/disconnect events, each connect carrying the full
// multicast request. Traces round-trip through a line-oriented CSV so a
// workload observed once (from the random generators, from an example app,
// from a bug report) can be replayed bit-identically against any switch
// implementation or geometry -- the foundation for regression fixtures.
//
// CSV schema, one event per line:
//   connect,<key>,<in_port>,<in_lane>,<p:l|p:l|...>
//   disconnect,<key>
// Keys are trace-local labels chosen by the recorder.
//
// Serialized traces open with a version header, `# wdm-trace/1`. The parser
// skips any `#` comment line, accepts headerless legacy files, and rejects a
// wdm-trace header naming a version it does not understand.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/blocking_sim.h"

namespace wdm {

struct TraceEvent {
  enum class Type { kConnect, kDisconnect };
  Type type = Type::kConnect;
  std::uint64_t key = 0;
  MulticastRequest request;  // meaningful for kConnect only

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class TraceRecorder {
 public:
  /// Record a connect attempt (call regardless of admission so replays see
  /// the same offered load; the replay decides admission itself).
  void on_connect(std::uint64_t key, const MulticastRequest& request);
  void on_disconnect(std::uint64_t key);

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  /// Serialize with the `# wdm-trace/1` version header first.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<TraceEvent> events_;
};

/// Parse a trace CSV; throws std::invalid_argument with a line number on any
/// malformed record.
[[nodiscard]] std::vector<TraceEvent> parse_trace_csv(const std::string& csv);

struct ReplayResult {
  std::size_t connects = 0;
  std::size_t admitted = 0;
  std::size_t blocked = 0;        // admissible but unroutable
  std::size_t inadmissible = 0;   // endpoint busy / shape illegal here
  std::size_t disconnects = 0;
  std::size_t unmatched_disconnects = 0;  // key unknown or was not admitted

  friend bool operator==(const ReplayResult&, const ReplayResult&) = default;
  [[nodiscard]] std::string to_string() const;
};

/// Replay a trace against any switch implementation exposing the shared
/// connection API (MultistageSwitch, FabricSwitch, ClosFabricSwitch,
/// FiveStageSwitch, ConverterPoolSwitch). Disconnects apply only to keys
/// whose connect was admitted here.
template <typename Switch>
[[nodiscard]] ReplayResult replay_trace(Switch& sw,
                                        const std::vector<TraceEvent>& events) {
  ReplayResult result;
  std::map<std::uint64_t, ConnectionId> live;
  for (const TraceEvent& event : events) {
    if (event.type == TraceEvent::Type::kConnect) {
      ++result.connects;
      if (sw.check_admissible(event.request)) {
        ++result.inadmissible;
        continue;
      }
      if (const auto id = sw.try_connect(event.request)) {
        ++result.admitted;
        live[event.key] = *id;
      } else {
        ++result.blocked;
      }
    } else {
      ++result.disconnects;
      const auto it = live.find(event.key);
      if (it == live.end()) {
        ++result.unmatched_disconnects;
        continue;
      }
      sw.disconnect(it->second);
      live.erase(it);
    }
  }
  return result;
}

/// Generate a reproducible random churn trace (the dynamic-sim workload,
/// captured instead of applied): runs the churn against a scratch switch of
/// the given geometry so every recorded connect was admissible then.
[[nodiscard]] std::vector<TraceEvent> record_random_workload(
    const ClosParams& params, Construction construction,
    MulticastModel network_model, const SimConfig& config);

}  // namespace wdm

// Shared wavelength-converter pools: how many converters does a MAW switch
// really need?
//
// The paper prices the MAW model at kN dedicated converters (one per output
// wavelength, Fig. 3b) and repeatedly notes converters are the expensive
// device. But a connection only *uses* a converter at destinations whose
// lane differs from the source lane; same-lane deliveries pass through
// transparently. If the kN dedicated devices are replaced by a shared bank
// of C converters (reachable from any output, a standard share-per-node /
// share-per-switch architecture), the switch stays crossbar-nonblocking in
// space and blocks only when the bank runs dry.
//
// ConverterPoolSwitch models that admission discipline at the connection
// level: demand(request) = #destinations on a lane != the source lane; a
// request is admitted iff endpoints are free AND demand <= free converters.
// C = kN reproduces the paper's full-MAW behaviour exactly (demand can
// never exceed supply); C = 0 degenerates to the MSW-shaped subset of
// traffic. The sweep quantifies the provisioning curve between them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/connection.h"
#include "util/rng.h"

namespace wdm {

class FaultModel;

class ConverterPoolSwitch {
 public:
  /// An N x N k-lane crossbar under MAW semantics with a shared bank of
  /// `pool_size` converters.
  ConverterPoolSwitch(std::size_t N, std::size_t k, std::size_t pool_size);

  [[nodiscard]] std::size_t port_count() const { return n_; }
  [[nodiscard]] std::size_t lane_count() const { return k_; }
  [[nodiscard]] std::size_t pool_size() const { return pool_; }
  [[nodiscard]] std::size_t converters_in_use() const { return in_use_; }

  /// Attach (or detach, with nullptr) a fault model; failed converter-pool
  /// slots shrink the bank's effective capacity. Converters already in use
  /// are unaffected (failures consume spare slots first -- in_use_ may
  /// transiently exceed the effective capacity, which only delays new
  /// admissions). The caller keeps ownership.
  void attach_fault_model(const FaultModel* faults) { faults_ = faults; }
  [[nodiscard]] const FaultModel* fault_model() const { return faults_; }

  /// Bank capacity minus currently-failed slots (= pool_size() when no
  /// fault model is attached).
  [[nodiscard]] std::size_t effective_pool_size() const;
  [[nodiscard]] std::size_t active_connections() const { return connections_.size(); }

  /// Conversions this request would consume from the bank.
  [[nodiscard]] static std::size_t converter_demand(const MulticastRequest& request);

  /// Admission check: request shape (MAW), endpoint availability, bank
  /// capacity. nullopt = admissible. Bank exhaustion reports kBlocked.
  [[nodiscard]] std::optional<ConnectError> check_admissible(
      const MulticastRequest& request) const;

  [[nodiscard]] std::optional<ConnectionId> try_connect(const MulticastRequest& request);
  void disconnect(ConnectionId id);
  [[nodiscard]] ConnectError last_error() const { return last_error_; }

 private:
  std::size_t n_, k_, pool_;
  std::size_t in_use_ = 0;
  const FaultModel* faults_ = nullptr;  // not owned; nullptr = fault-free
  std::map<ConnectionId, std::pair<MulticastRequest, std::size_t>> connections_;
  std::map<WavelengthEndpoint, ConnectionId> busy_inputs_;
  std::map<WavelengthEndpoint, ConnectionId> busy_outputs_;
  ConnectionId next_id_ = 1;
  ConnectError last_error_ = ConnectError::kBlocked;
};

struct PoolSweepPoint {
  std::size_t pool_size = 0;
  std::size_t attempts = 0;
  std::size_t blocked_on_converters = 0;  // admissible in space, bank dry
  double peak_pool_utilization = 0.0;     // max in-use / pool (0 if pool 0)
  std::size_t peak_in_use = 0;

  [[nodiscard]] double converter_blocking_probability() const {
    return attempts == 0 ? 0.0
                         : static_cast<double>(blocked_on_converters) /
                               static_cast<double>(attempts);
  }
};

/// Random dynamic load against a ladder of pool sizes (same seeded workload
/// per point). Requests are MAW-shaped with uniform lanes, so the mean
/// demand per connection is fanout*(k-1)/k.
[[nodiscard]] std::vector<PoolSweepPoint> sweep_converter_pool(
    std::size_t N, std::size_t k, const std::vector<std::size_t>& pool_sizes,
    std::size_t steps, std::uint64_t seed);

}  // namespace wdm

// Continuous-time traffic models (Erlang framing).
//
// The step-based simulator (blocking_sim.h) is ideal for worst-case probing;
// capacity planning speaks teletraffic instead: sessions arrive as a Poisson
// process with rate lambda, hold for exponential time 1/mu, and the offered
// load is a = lambda/mu Erlangs. run_erlang_sim drives a three-stage switch
// from an event calendar, optionally with Zipf-skewed destination popularity
// (hotspot content, the video-on-demand reality), and reports time-averaged
// blocking and occupancy. Deterministic under the seed.
#pragma once

#include <cstdint>
#include <string>

#include "multistage/builder.h"
#include "sim/request.h"
#include "util/rng.h"

namespace wdm {

struct ErlangConfig {
  double arrival_rate = 1.0;    // lambda, sessions per unit time
  double mean_holding = 1.0;    // 1/mu
  double duration = 1000.0;     // simulated time horizon
  FanoutRange fanout = {};
  /// Zipf exponent for destination-port popularity; 0 = uniform.
  double zipf_exponent = 0.0;
  std::uint64_t seed = 0xE51A;

  [[nodiscard]] double offered_erlangs() const {
    return arrival_rate * mean_holding;
  }
};

struct ErlangStats {
  std::size_t arrivals = 0;          // admissible offers to the router
  std::size_t admitted = 0;
  std::size_t blocked = 0;           // middle-stage routing blocks
  std::size_t abandoned = 0;         // no free endpoints at arrival
  double time_weighted_sessions = 0; // integral of live sessions over time
  double duration = 0;

  [[nodiscard]] double blocking_probability() const {
    return arrivals == 0 ? 0.0 : static_cast<double>(blocked) /
                                     static_cast<double>(arrivals);
  }
  /// Mean concurrent sessions (carried traffic in Erlangs).
  [[nodiscard]] double carried_erlangs() const {
    return duration == 0 ? 0.0 : time_weighted_sessions / duration;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Event-driven Poisson/exponential simulation on a multistage switch.
[[nodiscard]] ErlangStats run_erlang_sim(MultistageSwitch& sw,
                                         const ErlangConfig& config);

class ZipfSampler;

/// Build an admissible request with Zipf-skewed destination ports (the
/// hot-content arrival draw run_erlang_sim uses). Falls back to the uniform
/// generator when `popularity` is null. nullopt if endpoints are exhausted.
[[nodiscard]] std::optional<MulticastRequest> skewed_admissible_request(
    Rng& rng, const ThreeStageNetwork& network, FanoutRange fanout,
    const ZipfSampler* popularity);

/// Zipf(s) sampler over [0, n): P(i) proportional to 1/(i+1)^s. s = 0 is
/// uniform. Deterministic per rng stream; O(n) setup, O(log n) per draw.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);
  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> cumulative_;  // normalized CDF
};

}  // namespace wdm

// Parallel parameter sweeps for blocking experiments.
//
// Sweeps the middle-stage size m (and optionally the routing spread x)
// around the theorem bounds, running several independently-seeded dynamic
// simulations per point. Trials fan out over the default thread pool; each
// derives its RNG from (seed, point, trial) so results are bit-identical
// regardless of scheduling.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/blocking_sim.h"

namespace wdm {

struct SweepConfig {
  std::size_t n = 4;
  std::size_t r = 4;
  std::size_t k = 2;
  Construction construction = Construction::kMswDominant;
  MulticastModel network_model = MulticastModel::kMSW;
  /// Middle-stage sizes to probe (empty = a default range around the bound).
  std::vector<std::size_t> m_values;
  /// Routing spread; 0 = theorem-optimal for each point.
  std::size_t spread = 0;
  RouteSearch search = RouteSearch::kExhaustive;
  std::size_t trials = 8;
  SimConfig sim;
};

struct SweepPoint {
  std::size_t m = 0;
  std::size_t spread = 0;
  SimStats stats;             // aggregated over trials
  std::size_t attack_blocked = 0;  // saturation_attack successes over trials
  std::size_t theorem_bound_m = 0;
};

/// Blocking probability vs m. Each point runs `trials` dynamic sims plus
/// `trials` saturation attacks on fresh networks.
[[nodiscard]] std::vector<SweepPoint> sweep_middle_count(const SweepConfig& config);

/// Default m-range for a geometry: from n (the structural minimum) to a bit
/// past the theorem bound.
[[nodiscard]] std::vector<std::size_t> default_m_range(std::size_t n, std::size_t r,
                                                       std::size_t k,
                                                       Construction construction);

}  // namespace wdm

// Blocking-witness search: empirical probe of the bounds' tightness.
//
// Theorems 1-2 are sufficient conditions; the paper notes (citing the
// electronic lower-bound result) that matching *necessary* values of m can
// be obtained. This module searches for concrete witnesses from below: a
// strategy-compliant network state plus an admissible request that the
// router cannot satisfy. Witness search combines random churn with
// full-fanout probing and the structured saturation adversary; a found
// witness is a constructive proof that the given m is NOT nonblocking, so
// the largest m with a witness lower-bounds the true threshold.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/blocking_sim.h"

namespace wdm {

struct BlockingWitness {
  /// The connections installed when the block occurred (request + route).
  std::vector<std::pair<MulticastRequest, Route>> state;
  /// The admissible request no route could satisfy.
  MulticastRequest blocked_request;
  std::size_t m = 0;

  [[nodiscard]] std::string to_string() const;
};

struct WitnessSearchConfig {
  std::size_t churn_steps = 1500;
  /// After every arrival, probe this many random admissible requests for
  /// routability (without installing them).
  std::size_t probes_per_step = 2;
  std::size_t restarts = 4;
  std::uint64_t seed = 0x517EC7;
};

/// Search for a blocking witness on a fresh network of the given geometry.
/// Returns the first witness found, or nullopt if the budget is exhausted
/// (which suggests -- but does not prove -- m is sufficient).
[[nodiscard]] std::optional<BlockingWitness> find_blocking_witness(
    const ClosParams& params, Construction construction,
    MulticastModel network_model, const RoutingPolicy& policy,
    const WitnessSearchConfig& config);

/// Scan m downward from the theorem bound: the largest m for which a
/// witness was found (0 if none anywhere). `max_probe_m` defaults to
/// bound-1 (witnesses at or above the bound would falsify the theorem).
struct TightnessReport {
  std::size_t theorem_bound_m = 0;
  std::size_t largest_blocking_m = 0;  // 0 = no witness found at all
  /// Gap between the proven-sufficient m and the largest observed-blocking
  /// m; 1 means the bound is empirically tight.
  [[nodiscard]] std::size_t gap() const {
    return theorem_bound_m - largest_blocking_m;
  }
};

[[nodiscard]] TightnessReport probe_tightness(std::size_t n, std::size_t r,
                                              std::size_t k,
                                              Construction construction,
                                              MulticastModel network_model,
                                              const WitnessSearchConfig& config);

/// Greedily shrink a witness: drop connections whose removal keeps the
/// request blocked, until no single removal does. The result is a
/// 1-minimal blocking core -- usually a handful of connections that make
/// the counterexample human-readable. The witness must actually block
/// (throws std::invalid_argument otherwise).
[[nodiscard]] BlockingWitness shrink_witness(const BlockingWitness& witness,
                                             const ClosParams& params,
                                             Construction construction,
                                             MulticastModel network_model,
                                             const RoutingPolicy& policy);

}  // namespace wdm

#include "sim/sweep.h"

#include <algorithm>
#include <mutex>

#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace_span.h"

namespace wdm {

std::vector<std::size_t> default_m_range(std::size_t n, std::size_t r, std::size_t k,
                                         Construction construction) {
  const NonblockingBound bound = construction == Construction::kMswDominant
                                     ? theorem1_min_m(n, r)
                                     : theorem2_min_m(n, r, k);
  const std::size_t low = n;  // structural minimum (ClosParams requires m >= n)
  const std::size_t high = bound.m + std::max<std::size_t>(2, bound.m / 4);
  std::vector<std::size_t> values;
  for (std::size_t m = low; m <= high; ++m) values.push_back(m);
  return values;
}

std::vector<SweepPoint> sweep_middle_count(const SweepConfig& config) {
  const std::vector<std::size_t> m_values =
      config.m_values.empty()
          ? default_m_range(config.n, config.r, config.k, config.construction)
          : config.m_values;
  const NonblockingBound bound =
      config.construction == Construction::kMswDominant
          ? theorem1_min_m(config.n, config.r)
          : theorem2_min_m(config.n, config.r, config.k);

  std::vector<SweepPoint> points(m_values.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].m = m_values[i];
    points[i].spread = config.spread != 0 ? config.spread : bound.x;
    points[i].theorem_bound_m = bound.m;
  }

  static Counter& point_count = metrics().counter("sweep.points");
  static Counter& trial_count = metrics().counter("sweep.trials");
  static TimerStat& trial_time = metrics().timer("sweep.trial");
  point_count.add(points.size());

  std::mutex merge_mutex;
  const std::size_t total_tasks = points.size() * config.trials;
  default_pool().parallel_for(total_tasks, [&](std::size_t task) {
    trial_count.add();
    ScopedTimer timer(trial_time);
    const std::size_t point = task / config.trials;
    const std::size_t trial = task % config.trials;
    const std::size_t m = m_values[point];
    TraceSpan span("sweep.trial");
    span.arg("m", static_cast<std::int64_t>(m));
    span.arg("trial", static_cast<std::int64_t>(trial));

    const ClosParams params{config.n, config.r, std::max(m, config.n), config.k};
    const RoutingPolicy policy{points[point].spread, config.search};

    // Dynamic-load simulation.
    MultistageSwitch dynamic_switch(params, config.construction,
                                    config.network_model, policy);
    SimConfig sim = config.sim;
    sim.seed = Rng(config.sim.seed).split(task).next_u64();
    const SimStats stats = run_dynamic_sim(dynamic_switch, sim);

    // Structured adversary on a fresh network.
    MultistageSwitch attack_switch(params, config.construction,
                                   config.network_model, policy);
    Rng attack_rng = Rng(config.sim.seed ^ 0xA77A).split(task);
    const AttackResult attack = saturation_attack(attack_switch, attack_rng);

    // Scoped so the trailing span/timer destructors run outside the lock:
    // the critical section covers only the shared-state merge.
    {
      std::lock_guard lock(merge_mutex);
      points[point].stats += stats;
      if (attack.challenge_blocked) ++points[point].attack_blocked;
    }
  });

  return points;
}

}  // namespace wdm

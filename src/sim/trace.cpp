#include "sim/trace.h"

#include <sstream>
#include <stdexcept>
#include <string_view>

namespace wdm {

void TraceRecorder::on_connect(std::uint64_t key, const MulticastRequest& request) {
  events_.push_back({TraceEvent::Type::kConnect, key, request});
}

void TraceRecorder::on_disconnect(std::uint64_t key) {
  events_.push_back({TraceEvent::Type::kDisconnect, key, {}});
}

std::string TraceRecorder::to_csv() const {
  std::ostringstream os;
  os << "# wdm-trace/1\n";
  for (const TraceEvent& event : events_) {
    if (event.type == TraceEvent::Type::kConnect) {
      os << "connect," << event.key << ',' << event.request.input.port << ','
         << event.request.input.lane << ',';
      for (std::size_t i = 0; i < event.request.outputs.size(); ++i) {
        if (i != 0) os << '|';
        os << event.request.outputs[i].port << ':' << event.request.outputs[i].lane;
      }
      os << '\n';
    } else {
      os << "disconnect," << event.key << '\n';
    }
  }
  return os.str();
}

namespace {

std::vector<std::string> split(const std::string& text, char separator) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == separator) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

std::uint64_t parse_number(const std::string& text, std::size_t line) {
  try {
    std::size_t consumed = 0;
    const std::uint64_t value = std::stoull(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument("trailing junk");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("trace line " + std::to_string(line) +
                                ": bad number '" + text + "'");
  }
}

}  // namespace

std::vector<TraceEvent> parse_trace_csv(const std::string& csv) {
  std::vector<TraceEvent> events;
  std::istringstream stream(csv);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line.front() == '#') {
      // Comment / version header. Headerless legacy files are fine; a
      // wdm-trace header we do not understand is not.
      const std::string_view text(line);
      constexpr std::string_view kPrefix = "# wdm-trace/";
      if (text.starts_with(kPrefix) && text != "# wdm-trace/1") {
        throw std::invalid_argument(
            "trace line " + std::to_string(line_number) +
            ": unsupported trace version '" + line + "'");
      }
      continue;
    }
    const std::vector<std::string> fields = split(line, ',');
    TraceEvent event;
    if (fields[0] == "disconnect") {
      if (fields.size() != 2) {
        throw std::invalid_argument("trace line " + std::to_string(line_number) +
                                    ": disconnect needs exactly one key");
      }
      event.type = TraceEvent::Type::kDisconnect;
      event.key = parse_number(fields[1], line_number);
    } else if (fields[0] == "connect") {
      if (fields.size() != 5) {
        throw std::invalid_argument("trace line " + std::to_string(line_number) +
                                    ": connect needs key,port,lane,outputs");
      }
      event.type = TraceEvent::Type::kConnect;
      event.key = parse_number(fields[1], line_number);
      event.request.input.port =
          static_cast<std::size_t>(parse_number(fields[2], line_number));
      event.request.input.lane =
          static_cast<Wavelength>(parse_number(fields[3], line_number));
      if (fields[4].empty()) {
        throw std::invalid_argument("trace line " + std::to_string(line_number) +
                                    ": connect with no outputs");
      }
      for (const std::string& chunk : split(fields[4], '|')) {
        const std::vector<std::string> endpoint = split(chunk, ':');
        if (endpoint.size() != 2) {
          throw std::invalid_argument("trace line " + std::to_string(line_number) +
                                      ": bad output '" + chunk + "'");
        }
        event.request.outputs.push_back(
            {static_cast<std::size_t>(parse_number(endpoint[0], line_number)),
             static_cast<Wavelength>(parse_number(endpoint[1], line_number))});
      }
    } else {
      throw std::invalid_argument("trace line " + std::to_string(line_number) +
                                  ": unknown event '" + fields[0] + "'");
    }
    events.push_back(std::move(event));
  }
  return events;
}

std::string ReplayResult::to_string() const {
  std::ostringstream os;
  os << "connects=" << connects << " admitted=" << admitted
     << " blocked=" << blocked << " inadmissible=" << inadmissible
     << " disconnects=" << disconnects;
  return os.str();
}

std::vector<TraceEvent> record_random_workload(const ClosParams& params,
                                               Construction construction,
                                               MulticastModel network_model,
                                               const SimConfig& config) {
  MultistageSwitch sw(params, construction, network_model);
  TraceRecorder recorder;
  Rng rng(config.seed);
  std::vector<std::pair<std::uint64_t, ConnectionId>> live;
  std::uint64_t next_key = 1;
  for (std::size_t step = 0; step < config.steps; ++step) {
    if (live.empty() || rng.next_bool(config.arrival_fraction)) {
      const auto request = random_admissible_request(rng, sw.network(), config.fanout);
      if (!request) continue;
      const std::uint64_t key = next_key++;
      recorder.on_connect(key, *request);
      if (const auto id = sw.try_connect(*request)) live.emplace_back(key, *id);
    } else {
      const std::size_t victim = rng.next_below(live.size());
      recorder.on_disconnect(live[victim].first);
      sw.disconnect(live[victim].second);
      live[victim] = live.back();
      live.pop_back();
    }
  }
  return recorder.events();
}

}  // namespace wdm

#include "sim/traffic_models.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace wdm {

std::string ErlangStats::to_string() const {
  std::ostringstream os;
  os << "arrivals=" << arrivals << " blocked=" << blocked
     << " P(block)=" << blocking_probability()
     << " carried=" << carried_erlangs() << "E";
  return os.str();
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n >= 1");
  cumulative_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cumulative_[i] = total;
  }
  for (double& value : cumulative_) value /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin());
}

double ZipfSampler::probability(std::size_t i) const {
  if (i >= cumulative_.size()) return 0.0;
  return i == 0 ? cumulative_[0] : cumulative_[i] - cumulative_[i - 1];
}

namespace {

double exponential(Rng& rng, double mean) {
  // Inverse CDF; guard against log(0).
  double u = rng.next_double();
  if (u <= 0.0) u = 1e-12;
  return -mean * std::log(u);
}

}  // namespace

std::optional<MulticastRequest> skewed_admissible_request(
    Rng& rng, const ThreeStageNetwork& network, FanoutRange fanout,
    const ZipfSampler* popularity) {
  if (popularity == nullptr) {
    return random_admissible_request(rng, network, fanout);
  }
  const std::size_t N = network.port_count();
  const std::size_t k = network.lane_count();
  // Free input wavelength, uniform (sources are not skewed).
  std::vector<WavelengthEndpoint> free_inputs;
  for (std::size_t port = 0; port < N; ++port) {
    for (Wavelength lane = 0; lane < k; ++lane) {
      if (!network.input_busy({port, lane})) free_inputs.push_back({port, lane});
    }
  }
  if (free_inputs.empty()) return std::nullopt;
  MulticastRequest request;
  request.input = free_inputs[rng.next_below(free_inputs.size())];

  const Wavelength lane = network.network_model() == MulticastModel::kMSW
                              ? request.input.lane
                              : static_cast<Wavelength>(rng.next_below(k));
  const std::size_t upper = fanout.max == 0 ? N : std::min(fanout.max, N);
  const std::size_t want =
      fanout.min + rng.next_below(upper - fanout.min + 1);
  std::vector<bool> taken(N, false);
  for (int attempts = 0; attempts < 200 && request.outputs.size() < want;
       ++attempts) {
    const std::size_t port = popularity->sample(rng);
    if (taken[port]) continue;
    Wavelength dest_lane = lane;
    if (network.network_model() == MulticastModel::kMAW) {
      // Any free lane of the popular port.
      bool found = false;
      for (Wavelength candidate = 0; candidate < k; ++candidate) {
        if (!network.output_busy({port, candidate})) {
          dest_lane = candidate;
          found = true;
          break;
        }
      }
      if (!found) continue;
    } else if (network.output_busy({port, dest_lane})) {
      continue;
    }
    taken[port] = true;
    request.outputs.push_back({port, dest_lane});
  }
  if (request.outputs.size() < fanout.min) return std::nullopt;
  return request;
}

ErlangStats run_erlang_sim(MultistageSwitch& sw, const ErlangConfig& config) {
  if (config.arrival_rate <= 0 || config.mean_holding <= 0 ||
      config.duration <= 0) {
    throw std::invalid_argument("run_erlang_sim: rates and duration must be > 0");
  }
  Rng rng(config.seed);
  const ZipfSampler popularity(sw.port_count(),
                               std::max(0.0, config.zipf_exponent));
  const ZipfSampler* skew =
      config.zipf_exponent > 0.0 ? &popularity : nullptr;

  ErlangStats stats;
  stats.duration = config.duration;

  // Departure calendar: time -> connection id (map keeps times ordered; ties
  // get nudged by insertion order via multimap).
  std::multimap<double, ConnectionId> departures;
  double now = 0.0;
  double next_arrival = exponential(rng, 1.0 / config.arrival_rate);
  std::size_t live = 0;

  auto advance_to = [&](double t) {
    stats.time_weighted_sessions += static_cast<double>(live) * (t - now);
    now = t;
  };

  while (true) {
    const double next_departure =
        departures.empty() ? std::numeric_limits<double>::infinity()
                           : departures.begin()->first;
    const double next_event = std::min(next_arrival, next_departure);
    if (next_event > config.duration) {
      advance_to(config.duration);
      break;
    }
    advance_to(next_event);

    if (next_arrival <= next_departure) {
      next_arrival = now + exponential(rng, 1.0 / config.arrival_rate);
      const auto request =
          skewed_admissible_request(rng, sw.network(), config.fanout, skew);
      if (!request) {
        ++stats.abandoned;
        continue;
      }
      ++stats.arrivals;
      if (const auto id = sw.try_connect(*request)) {
        ++stats.admitted;
        ++live;
        departures.emplace(now + exponential(rng, config.mean_holding), *id);
      } else {
        ++stats.blocked;
      }
    } else {
      sw.disconnect(departures.begin()->second);
      departures.erase(departures.begin());
      --live;
    }
  }
  return stats;
}

}  // namespace wdm

#include "sim/load_analysis.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace wdm {

std::vector<LoadPoint> blocking_vs_load(const ClosParams& params,
                                        Construction construction,
                                        MulticastModel network_model,
                                        const RoutingPolicy& policy,
                                        const std::vector<double>& loads,
                                        const SimConfig& base_config,
                                        std::size_t trials) {
  std::vector<LoadPoint> points(loads.size());
  std::mutex merge_mutex;
  default_pool().parallel_for(loads.size() * trials, [&](std::size_t task) {
    const std::size_t point = task / trials;
    MultistageSwitch sw(params, construction, network_model, policy);
    SimConfig config = base_config;
    config.arrival_fraction = loads[point];
    config.seed = Rng(base_config.seed).split(task).next_u64();
    const SimStats stats = run_dynamic_sim(sw, config);
    std::lock_guard lock(merge_mutex);
    points[point].stats += stats;
  });
  const std::size_t capacity = params.port_count() * params.k;
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].load = loads[i];
    points[i].mean_utilization = points[i].stats.mean_utilization(capacity);
  }
  return points;
}

ProvisioningResult provision_middle_stage(std::size_t n, std::size_t r,
                                          std::size_t k, Construction construction,
                                          MulticastModel network_model,
                                          const SimConfig& base_config,
                                          double target_blocking,
                                          std::size_t trials) {
  const NonblockingBound bound = construction == Construction::kMswDominant
                                     ? theorem1_min_m(n, r)
                                     : theorem2_min_m(n, r, k);
  ProvisioningResult result;
  result.theorem_m = bound.m;

  const auto cost_at = [&](std::size_t m) {
    return multistage_cost(ClosParams{n, r, std::max(m, n), k}, construction,
                           network_model)
        .crosspoints;
  };

  for (std::size_t m = n; m <= bound.m; ++m) {
    const ClosParams params{n, r, m, k};
    SimStats total;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      MultistageSwitch sw(params, construction, network_model,
                          RoutingPolicy{bound.x});
      SimConfig config = base_config;
      config.seed = Rng(base_config.seed ^ m).split(trial).next_u64();
      total += run_dynamic_sim(sw, config);
    }
    if (total.blocking_probability() <= target_blocking) {
      result.chosen_m = m;
      result.observed_blocking = total.blocking_probability();
      result.blocking_ci95_upper = total.blocking_ci95().second;
      result.crosspoint_ratio = static_cast<double>(cost_at(m)) /
                                static_cast<double>(cost_at(bound.m));
      return result;
    }
  }
  // Unreachable in practice: the bound itself observes zero blocking.
  result.chosen_m = bound.m;
  result.crosspoint_ratio = 1.0;
  return result;
}

}  // namespace wdm

#include "sim/nested.h"

#include <stdexcept>

#include "core/switch_design.h"

namespace wdm {

NestedRecursionValidator::NestedRecursionValidator(MultistageSwitch& outer)
    : outer_(&outer) {
  const ClosParams& params = outer.network().params();
  const auto [inner_n, inner_r] = balanced_factorization(params.r);
  const Construction construction = outer.network().construction();
  // The inner network replaces a *middle* module, so its network model is
  // the construction's inner model (MSW or MAW), not the outer network
  // model.
  const MulticastModel inner_model = outer.network().inner_model();
  inner_.reserve(params.m);
  for (std::size_t j = 0; j < params.m; ++j) {
    inner_.push_back(std::make_unique<MultistageSwitch>(
        nonblocking_params(inner_n, inner_r, params.k, construction),
        construction, inner_model));
  }
}

bool NestedRecursionValidator::on_connect(ConnectionId outer_id) {
  const auto& [request, route] =
      outer_->network().connections().at(outer_id);
  (void)request;
  std::vector<std::pair<std::size_t, ConnectionId>> mirrored;
  const std::size_t in_module =
      outer_->network().input_module_of(request.input.port);

  for (const RouteBranch& branch : route.branches) {
    // Inside middle module `branch.middle` the transit enters at module
    // input port = the outer input module's index, on the branch link lane,
    // and leaves at ports {leg.out_module} on the leg link lanes.
    MulticastRequest inner_request;
    inner_request.input = {in_module, branch.link_lane};
    for (const DeliveryLeg& leg : branch.legs) {
      inner_request.outputs.push_back({leg.out_module, leg.link_lane});
    }
    const auto inner_id = inner_[branch.middle]->try_connect(inner_request);
    if (!inner_id) {
      // Counterexample to the recursion claim: roll back and report.
      for (const auto& [middle, id] : mirrored) inner_[middle]->disconnect(id);
      return false;
    }
    mirrored.emplace_back(branch.middle, *inner_id);
  }
  mirror_.emplace(outer_id, std::move(mirrored));
  return true;
}

void NestedRecursionValidator::on_disconnect(ConnectionId outer_id) {
  const auto it = mirror_.find(outer_id);
  if (it == mirror_.end()) {
    throw std::out_of_range("NestedRecursionValidator: unknown outer connection");
  }
  for (const auto& [middle, inner_id] : it->second) {
    inner_[middle]->disconnect(inner_id);
  }
  mirror_.erase(it);
}

std::size_t NestedRecursionValidator::mirrored_connections() const {
  std::size_t total = 0;
  for (const auto& inner : inner_) total += inner->active_connections();
  return total;
}

void NestedRecursionValidator::self_check() const {
  for (const auto& inner : inner_) inner->network().self_check();
}

FiveStageSwitch::FiveStageSwitch(std::size_t n, std::size_t r, std::size_t k,
                                 Construction construction,
                                 MulticastModel network_model)
    : outer_(MultistageSwitch::nonblocking(n, r, k, construction, network_model)),
      nested_(outer_) {}

std::optional<ConnectionId> FiveStageSwitch::try_connect(
    const MulticastRequest& request) {
  const auto id = outer_.try_connect(request);
  if (!id) return std::nullopt;
  if (!nested_.on_connect(*id)) {
    // Would falsify the §3 recursion: surface loudly rather than mask it.
    outer_.disconnect(*id);
    throw std::logic_error(
        "FiveStageSwitch: an inner network blocked a transit the outer "
        "middle-module abstraction admitted");
  }
  return id;
}

void FiveStageSwitch::disconnect(ConnectionId id) {
  nested_.on_disconnect(id);
  outer_.disconnect(id);
}

std::uint64_t FiveStageSwitch::crosspoints() const {
  const ClosParams& params = outer_.network().params();
  const MulticastModel inner_model = outer_.network().inner_model();
  const auto [n, r, m, k] = params;
  // Edge stages as crossbar modules (same accounting as multistage_cost)...
  const std::uint64_t per_lane_in = static_cast<std::uint64_t>(n) * m * k;
  const std::uint64_t per_lane_out = static_cast<std::uint64_t>(m) * n * k;
  const std::uint64_t in_stage =
      r * (inner_model == MulticastModel::kMSW ? per_lane_in : per_lane_in * k);
  const std::uint64_t out_stage =
      r * (outer_.model() == MulticastModel::kMSW ? per_lane_out
                                                  : per_lane_out * k);
  // ...plus the m inner three-stage networks.
  std::uint64_t middles = 0;
  for (std::size_t j = 0; j < nested_.inner_count(); ++j) {
    const ClosParams& inner_params = nested_.inner(j).network().params();
    middles += multistage_cost(inner_params,
                               outer_.network().construction(), inner_model)
                   .crosspoints;
  }
  return in_stage + out_stage + middles;
}

void FiveStageSwitch::self_check() const {
  outer_.network().self_check();
  nested_.self_check();
}

}  // namespace wdm

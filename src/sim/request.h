// Workload generation for the blocking simulations.
//
// Random generators produce *admissible* requests (free input wavelength,
// free + model-consistent output wavelengths) so that every failure the
// simulator observes is a genuine middle-stage routing block, not an
// endpoint collision. The scripted Fig. 10 scenario reproduces the paper's
// example of a connection that an MSW middle stage cannot carry but an MAW
// middle stage can.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "multistage/network.h"
#include "util/rng.h"

namespace wdm {

struct FanoutRange {
  std::size_t min = 1;
  /// Inclusive; clamped to the number of output ports. 0 = "up to N".
  std::size_t max = 0;
};

/// Uniform random request legal under `model` for an N-port k-lane network,
/// ignoring current occupancy (used for fabric tests and shape churn).
[[nodiscard]] MulticastRequest random_request(Rng& rng, std::size_t N, std::size_t k,
                                              MulticastModel model,
                                              FanoutRange fanout = {});

/// Random request that is admissible against the network's current endpoint
/// state (input wavelength free, all chosen output wavelengths free).
/// nullopt if no free input wavelength or no compatible output exists.
[[nodiscard]] std::optional<MulticastRequest> random_admissible_request(
    Rng& rng, const ThreeStageNetwork& network, FanoutRange fanout = {});

/// As above, but the input wavelength is drawn only from `source_ports`
/// (out-of-range ports are skipped); destinations stay unrestricted. This is
/// the shard-ownership restriction of the concurrent session engine
/// (src/engine): each shard originates sessions only from the ports it owns.
[[nodiscard]] std::optional<MulticastRequest> random_admissible_request(
    Rng& rng, const ThreeStageNetwork& network, FanoutRange fanout,
    const std::vector<std::size_t>& source_ports);

/// A connection pre-installed over an explicit route (bypassing the router)
/// so scenarios can pin down the exact network state.
struct ScriptedConnection {
  MulticastRequest request;
  Route route;
};

/// The paper's Fig. 10 situation, scripted: two prior unicast connections
/// occupy lane lambda_1 on the links that matter; the challenge request
/// (fanout 2, also on lambda_1) then has no lambda_1 path through any single
/// set of middle modules under the MSW-dominant construction, while the
/// MAW-dominant construction routes it by moving to a free lane in stages
/// 1-2.
struct Fig10Scenario {
  ClosParams params;                        // n=2, r=2, m=2, k=2
  MulticastModel network_model;             // MSW at the network level
  std::vector<ScriptedConnection> prior;    // valid under both constructions
  MulticastRequest challenge;
};

[[nodiscard]] Fig10Scenario fig10_scenario();

/// Install every prior connection of a scenario into `network` (throws if
/// any route is rejected -- the scenario is construction-agnostic by design).
void install_scripted(ThreeStageNetwork& network,
                      const std::vector<ScriptedConnection>& prior);

}  // namespace wdm

// Measuring asymptotic exponents (making Table 2's big-O claims testable).
//
// The paper states costs like O(k N^1.5 log N / log log N) without
// constants. We fit measured counts y(N) to the three-parameter model
//     log y = a * log N + b * log(log N / log log N) + c
// by ordinary least squares over a geometric N-ladder, recovering the
// polynomial exponent a and the log-factor weight b. The crossbar's k N^2
// must fit with a ~ 2, b ~ 0; the theorem-sized three-stage network with
// a ~ 1.5, b ~ 1 -- a quantitative reproduction of the asymptotic rows.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace wdm {

struct AsymptoticFit {
  double poly_exponent = 0.0;   // a in N^a
  double log_factor = 0.0;      // b in (log N / log log N)^b
  double log_constant = 0.0;    // c (natural-log scale)
  double max_relative_error = 0.0;  // of the fit over the sample points

  [[nodiscard]] std::string to_string() const;
};

/// Least-squares fit of the sampled cost function over the given N values
/// (all must be >= 4 so log log N > 0). Throws std::invalid_argument on
/// fewer than 3 samples or non-positive costs.
[[nodiscard]] AsymptoticFit fit_asymptotics(
    const std::vector<std::size_t>& sizes,
    const std::function<double(std::size_t)>& cost);

/// Evaluate the fitted model at N.
[[nodiscard]] double evaluate_fit(const AsymptoticFit& fit, std::size_t N);

/// Constrained fit with the log-factor weight pinned (b = 0 tests the pure
/// power hypothesis, b = 1 the paper's logN/loglogN correction). The free
/// basis {log N, 1} is well-conditioned, so this is the right tool for
/// hypothesis comparison on real (lumpy) cost curves where the full
/// three-parameter basis is nearly collinear.
[[nodiscard]] AsymptoticFit fit_with_fixed_log_factor(
    const std::vector<std::size_t>& sizes,
    const std::function<double(std::size_t)>& cost, double log_factor);

}  // namespace wdm

#include "analysis/asymptotics.h"

#include <array>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace wdm {

std::string AsymptoticFit::to_string() const {
  std::ostringstream os;
  os.precision(3);
  os << "N^" << poly_exponent << " * (logN/loglogN)^" << log_factor
     << " (max rel err " << max_relative_error << ")";
  return os.str();
}

AsymptoticFit fit_asymptotics(const std::vector<std::size_t>& sizes,
                              const std::function<double(std::size_t)>& cost) {
  if (sizes.size() < 3) {
    throw std::invalid_argument("fit_asymptotics: need >= 3 sample sizes");
  }
  // Normal equations for least squares with basis
  //   phi0 = log N, phi1 = log(log N / log log N), phi2 = 1.
  std::array<std::array<double, 3>, 3> ata{};
  std::array<double, 3> aty{};
  std::vector<std::array<double, 3>> rows;
  std::vector<double> targets;
  for (const std::size_t N : sizes) {
    if (N < 4) throw std::invalid_argument("fit_asymptotics: sizes must be >= 4");
    const double y = cost(N);
    if (y <= 0.0) throw std::invalid_argument("fit_asymptotics: cost must be > 0");
    const double ln = std::log(static_cast<double>(N));
    const std::array<double, 3> row = {ln, std::log(ln / std::log(ln)), 1.0};
    const double target = std::log(y);
    rows.push_back(row);
    targets.push_back(target);
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) ata[i][j] += row[i] * row[j];
      aty[i] += row[i] * target;
    }
  }

  // Solve the 3x3 system by Gaussian elimination with partial pivoting.
  std::array<std::array<double, 4>, 3> augmented{};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) augmented[i][j] = ata[i][j];
    augmented[i][3] = aty[i];
  }
  for (int pivot = 0; pivot < 3; ++pivot) {
    int best = pivot;
    for (int row = pivot + 1; row < 3; ++row) {
      if (std::abs(augmented[row][pivot]) > std::abs(augmented[best][pivot])) {
        best = row;
      }
    }
    std::swap(augmented[pivot], augmented[best]);
    if (std::abs(augmented[pivot][pivot]) < 1e-12) {
      throw std::invalid_argument("fit_asymptotics: degenerate sample ladder");
    }
    for (int row = 0; row < 3; ++row) {
      if (row == pivot) continue;
      const double factor = augmented[row][pivot] / augmented[pivot][pivot];
      for (int col = pivot; col < 4; ++col) {
        augmented[row][col] -= factor * augmented[pivot][col];
      }
    }
  }

  AsymptoticFit fit;
  fit.poly_exponent = augmented[0][3] / augmented[0][0];
  fit.log_factor = augmented[1][3] / augmented[1][1];
  fit.log_constant = augmented[2][3] / augmented[2][2];

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double predicted = fit.poly_exponent * rows[i][0] +
                             fit.log_factor * rows[i][1] + fit.log_constant;
    const double relative =
        std::abs(std::exp(predicted - targets[i]) - 1.0);
    fit.max_relative_error = std::max(fit.max_relative_error, relative);
  }
  return fit;
}

AsymptoticFit fit_with_fixed_log_factor(
    const std::vector<std::size_t>& sizes,
    const std::function<double(std::size_t)>& cost, double log_factor) {
  if (sizes.size() < 2) {
    throw std::invalid_argument("fit_with_fixed_log_factor: need >= 2 samples");
  }
  // Ordinary least squares on log y - b*phi1 = a*log N + c.
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_xy = 0;
  std::vector<double> xs, ys;
  for (const std::size_t N : sizes) {
    if (N < 4) {
      throw std::invalid_argument("fit_with_fixed_log_factor: sizes >= 4");
    }
    const double y_raw = cost(N);
    if (y_raw <= 0.0) {
      throw std::invalid_argument("fit_with_fixed_log_factor: cost must be > 0");
    }
    const double ln = std::log(static_cast<double>(N));
    const double x = ln;
    const double y = std::log(y_raw) - log_factor * std::log(ln / std::log(ln));
    xs.push_back(x);
    ys.push_back(y);
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
  }
  const double count = static_cast<double>(sizes.size());
  const double denominator = count * sum_xx - sum_x * sum_x;
  if (std::abs(denominator) < 1e-12) {
    throw std::invalid_argument("fit_with_fixed_log_factor: degenerate ladder");
  }
  AsymptoticFit fit;
  fit.log_factor = log_factor;
  fit.poly_exponent = (count * sum_xy - sum_x * sum_y) / denominator;
  fit.log_constant = (sum_y - fit.poly_exponent * sum_x) / count;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double predicted = fit.poly_exponent * xs[i] + fit.log_constant;
    fit.max_relative_error = std::max(fit.max_relative_error,
                                      std::abs(std::exp(predicted - ys[i]) - 1.0));
  }
  return fit;
}

double evaluate_fit(const AsymptoticFit& fit, std::size_t N) {
  const double ln = std::log(static_cast<double>(N));
  return std::exp(fit.poly_exponent * ln +
                  fit.log_factor * std::log(ln / std::log(ln)) +
                  fit.log_constant);
}

}  // namespace wdm

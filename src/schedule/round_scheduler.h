// Multicast session scheduling: the electronic baseline of §1, quantified.
//
// The paper motivates WDM multicast with the scheduling problem electronic
// switches face: "each destination node can receive at most one message at
// a time[, so] to deal with multiple multicast connections with overlapped
// destinations, a complex scheduling algorithm is necessary". Given a batch
// of multicast *sessions* (source -> destination set) whose destinations
// overlap, an electronic (1-wavelength) switch must serialize them into
// rounds, each round a legal multicast assignment. A k-wavelength WDM
// switch packs up to k overlapping sessions per node into one time slot --
// under MAW freely (pure per-node capacity k), under MSW only if a common
// wavelength works for every endpoint of each session (per-slot wavelength
// coloring).
//
// Round minimization is graph coloring of the session conflict graph
// (sessions conflict iff they share the source or a destination), so we
// provide the standard greedy (largest-degree-first) heuristic, an exact
// branch-and-bound for small batches to validate it, and the two WDM slot
// packers. Expected shape (bench_wdm_vs_electronic): slots(MAW, k) <=
// slots(MSW, k) <= slots(electronic), with slots(MAW, k) ~ ceil(rounds/k).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "capacity/models.h"
#include "util/rng.h"

namespace wdm {

struct Session {
  std::size_t source = 0;
  std::vector<std::size_t> destinations;
};

/// Sessions conflict iff they share the source node or any destination node
/// (an endpoint can carry one message at a time per wavelength).
[[nodiscard]] bool sessions_conflict(const Session& a, const Session& b);

/// The conflict graph as adjacency lists (index = session position).
[[nodiscard]] std::vector<std::vector<std::size_t>> conflict_graph(
    const std::vector<Session>& sessions);

/// Greedy electronic rounds: color the conflict graph
/// largest-degree-first. Returns rounds of session indices; every round is
/// conflict-free.
[[nodiscard]] std::vector<std::vector<std::size_t>> schedule_rounds_greedy(
    const std::vector<Session>& sessions);

/// Exact minimum round count by branch-and-bound (small batches only;
/// `node_budget` caps the search). nullopt if the budget runs out.
[[nodiscard]] std::optional<std::size_t> minimum_rounds_exact(
    const std::vector<Session>& sessions, std::uint64_t node_budget = 2'000'000);

/// One WDM time slot: the sessions scheduled in it and, for MSW, the
/// wavelength each uses.
struct WdmSlot {
  std::vector<std::size_t> sessions;
  /// Parallel to `sessions`; meaningful for the MSW packer (MAW slots set
  /// kNoWavelengthLane).
  std::vector<std::uint32_t> lanes;
};

inline constexpr std::uint32_t kNoWavelengthLane = 0xFFFFFFFFu;

/// Pack sessions into WDM time slots for an N-node, k-wavelength switch
/// under `model`:
///   MAW : a session fits a slot iff its source and every destination have
///         spare capacity (< k sessions touching them in the slot);
///   MSW : additionally one common wavelength must be free at the source
///         and at every destination (lane recorded in the slot);
///   MSDW: destinations share a lane, source capacity is per-wavelength-
///         transmitter, so the fit rule equals MSW at the destinations but
///         the source only needs a free transmitter.
/// Sessions are packed first-fit in the given order.
[[nodiscard]] std::vector<WdmSlot> schedule_wdm_slots(
    const std::vector<Session>& sessions, std::size_t N, std::size_t k,
    MulticastModel model);

/// Validate a slot schedule against the §2.1 rules; nullopt = consistent,
/// otherwise a reason (used by tests and the bench's self-check).
[[nodiscard]] std::optional<std::string> check_wdm_schedule(
    const std::vector<Session>& sessions, std::size_t N, std::size_t k,
    MulticastModel model, const std::vector<WdmSlot>& slots);

/// Random session batch: `count` sessions over N nodes with fanout in
/// [min_fanout, max_fanout]; destination overlap arises naturally.
[[nodiscard]] std::vector<Session> random_sessions(Rng& rng, std::size_t N,
                                                   std::size_t count,
                                                   std::size_t min_fanout,
                                                   std::size_t max_fanout);

}  // namespace wdm

#include "schedule/round_scheduler.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

namespace wdm {

bool sessions_conflict(const Session& a, const Session& b) {
  if (a.source == b.source) return true;
  for (const std::size_t da : a.destinations) {
    for (const std::size_t db : b.destinations) {
      if (da == db) return true;
    }
  }
  return false;
}

std::vector<std::vector<std::size_t>> conflict_graph(
    const std::vector<Session>& sessions) {
  std::vector<std::vector<std::size_t>> adjacency(sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    for (std::size_t j = i + 1; j < sessions.size(); ++j) {
      if (sessions_conflict(sessions[i], sessions[j])) {
        adjacency[i].push_back(j);
        adjacency[j].push_back(i);
      }
    }
  }
  return adjacency;
}

std::vector<std::vector<std::size_t>> schedule_rounds_greedy(
    const std::vector<Session>& sessions) {
  const auto adjacency = conflict_graph(sessions);
  std::vector<std::size_t> order(sessions.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (adjacency[a].size() != adjacency[b].size()) {
      return adjacency[a].size() > adjacency[b].size();
    }
    return a < b;
  });

  std::vector<int> color(sessions.size(), -1);
  int colors_used = 0;
  for (const std::size_t s : order) {
    std::vector<bool> taken(static_cast<std::size_t>(colors_used) + 1, false);
    for (const std::size_t neighbor : adjacency[s]) {
      if (color[neighbor] >= 0 &&
          color[neighbor] <= colors_used) {
        taken[static_cast<std::size_t>(color[neighbor])] = true;
      }
    }
    int chosen = 0;
    while (taken[static_cast<std::size_t>(chosen)]) ++chosen;
    color[s] = chosen;
    colors_used = std::max(colors_used, chosen + 1);
  }

  std::vector<std::vector<std::size_t>> rounds(
      static_cast<std::size_t>(colors_used));
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    rounds[static_cast<std::size_t>(color[s])].push_back(s);
  }
  return rounds;
}

namespace {

// Branch-and-bound k-colorability test (sessions in degree order).
bool colorable_within(const std::vector<std::vector<std::size_t>>& adjacency,
                      const std::vector<std::size_t>& order, std::size_t limit,
                      std::uint64_t& budget) {
  std::vector<int> color(adjacency.size(), -1);
  // Recursive lambda over the order index.
  auto assign = [&](auto&& self, std::size_t position) -> bool {
    if (budget == 0) return false;
    --budget;
    if (position == order.size()) return true;
    const std::size_t s = order[position];
    // Symmetry breaking: only allow introducing one new color.
    int max_used = -1;
    for (std::size_t i = 0; i < position; ++i) {
      max_used = std::max(max_used, color[order[i]]);
    }
    const int ceiling =
        std::min(static_cast<int>(limit) - 1, max_used + 1);
    for (int c = 0; c <= ceiling; ++c) {
      bool clash = false;
      for (const std::size_t neighbor : adjacency[s]) {
        if (color[neighbor] == c) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      color[s] = c;
      if (self(self, position + 1)) return true;
      color[s] = -1;
    }
    return false;
  };
  return assign(assign, 0);
}

}  // namespace

std::optional<std::size_t> minimum_rounds_exact(const std::vector<Session>& sessions,
                                                std::uint64_t node_budget) {
  if (sessions.empty()) return 0;
  const auto adjacency = conflict_graph(sessions);
  std::vector<std::size_t> order(sessions.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return adjacency[a].size() > adjacency[b].size();
  });
  const std::size_t upper = schedule_rounds_greedy(sessions).size();
  for (std::size_t limit = 1; limit <= upper; ++limit) {
    std::uint64_t budget = node_budget;
    if (colorable_within(adjacency, order, limit, budget)) return limit;
    if (budget == 0) return std::nullopt;  // inconclusive: ran out of nodes
  }
  return upper;
}

namespace {

struct SlotState {
  // [node][lane] usage plus per-node totals.
  std::vector<std::vector<bool>> rx_used;
  std::vector<std::vector<bool>> tx_used;
  std::vector<std::size_t> rx_count;
  std::vector<std::size_t> tx_count;
  WdmSlot slot;

  SlotState(std::size_t N, std::size_t k)
      : rx_used(N, std::vector<bool>(k, false)),
        tx_used(N, std::vector<bool>(k, false)),
        rx_count(N, 0),
        tx_count(N, 0) {}
};

// Try to place `session` into the slot under `model`; on success record it.
bool try_place(SlotState& state, const std::vector<Session>& sessions,
               std::size_t index, std::size_t k, MulticastModel model) {
  const Session& session = sessions[index];
  switch (model) {
    case MulticastModel::kMAW: {
      if (state.tx_count[session.source] >= k) return false;
      for (const std::size_t d : session.destinations) {
        if (state.rx_count[d] >= k) return false;
      }
      ++state.tx_count[session.source];
      for (const std::size_t d : session.destinations) ++state.rx_count[d];
      state.slot.sessions.push_back(index);
      state.slot.lanes.push_back(kNoWavelengthLane);
      return true;
    }
    case MulticastModel::kMSW: {
      for (std::uint32_t lane = 0; lane < k; ++lane) {
        if (state.tx_used[session.source][lane]) continue;
        bool free = true;
        for (const std::size_t d : session.destinations) {
          if (state.rx_used[d][lane]) {
            free = false;
            break;
          }
        }
        if (!free) continue;
        state.tx_used[session.source][lane] = true;
        ++state.tx_count[session.source];
        for (const std::size_t d : session.destinations) {
          state.rx_used[d][lane] = true;
          ++state.rx_count[d];
        }
        state.slot.sessions.push_back(index);
        state.slot.lanes.push_back(lane);
        return true;
      }
      return false;
    }
    case MulticastModel::kMSDW: {
      if (state.tx_count[session.source] >= k) return false;
      for (std::uint32_t lane = 0; lane < k; ++lane) {
        bool free = true;
        for (const std::size_t d : session.destinations) {
          if (state.rx_used[d][lane]) {
            free = false;
            break;
          }
        }
        if (!free) continue;
        ++state.tx_count[session.source];
        for (const std::size_t d : session.destinations) {
          state.rx_used[d][lane] = true;
          ++state.rx_count[d];
        }
        state.slot.sessions.push_back(index);
        state.slot.lanes.push_back(lane);
        return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace

std::vector<WdmSlot> schedule_wdm_slots(const std::vector<Session>& sessions,
                                        std::size_t N, std::size_t k,
                                        MulticastModel model) {
  for (const Session& session : sessions) {
    if (session.source >= N || session.destinations.empty()) {
      throw std::invalid_argument("schedule_wdm_slots: bad session");
    }
    for (const std::size_t d : session.destinations) {
      if (d >= N) throw std::invalid_argument("schedule_wdm_slots: bad destination");
    }
  }
  std::vector<SlotState> states;
  for (std::size_t index = 0; index < sessions.size(); ++index) {
    bool placed = false;
    for (SlotState& state : states) {
      if (try_place(state, sessions, index, k, model)) {
        placed = true;
        break;
      }
    }
    if (!placed) {
      states.emplace_back(N, k);
      if (!try_place(states.back(), sessions, index, k, model)) {
        throw std::logic_error(
            "schedule_wdm_slots: session does not fit an empty slot "
            "(duplicate destinations within one session?)");
      }
    }
  }
  std::vector<WdmSlot> slots;
  slots.reserve(states.size());
  for (SlotState& state : states) slots.push_back(std::move(state.slot));
  return slots;
}

std::optional<std::string> check_wdm_schedule(const std::vector<Session>& sessions,
                                              std::size_t N, std::size_t k,
                                              MulticastModel model,
                                              const std::vector<WdmSlot>& slots) {
  std::vector<bool> scheduled(sessions.size(), false);
  for (std::size_t slot_index = 0; slot_index < slots.size(); ++slot_index) {
    const WdmSlot& slot = slots[slot_index];
    if (slot.sessions.size() != slot.lanes.size()) {
      return "slot " + std::to_string(slot_index) + ": sessions/lanes mismatch";
    }
    std::vector<std::vector<bool>> rx_used(N, std::vector<bool>(k, false));
    std::vector<std::vector<bool>> tx_used(N, std::vector<bool>(k, false));
    std::vector<std::size_t> rx_count(N, 0);
    std::vector<std::size_t> tx_count(N, 0);
    for (std::size_t position = 0; position < slot.sessions.size(); ++position) {
      const std::size_t index = slot.sessions[position];
      if (index >= sessions.size()) return "unknown session index";
      if (scheduled[index]) return "session scheduled twice";
      scheduled[index] = true;
      const Session& session = sessions[index];
      const std::uint32_t lane = slot.lanes[position];

      if (++tx_count[session.source] > k) return "source capacity exceeded";
      if (model == MulticastModel::kMSW) {
        if (lane >= k) return "MSW session without a lane";
        if (tx_used[session.source][lane]) return "source lane reused";
        tx_used[session.source][lane] = true;
      }
      for (const std::size_t d : session.destinations) {
        if (++rx_count[d] > k) return "destination capacity exceeded";
        if (model != MulticastModel::kMAW) {
          if (lane >= k) return "lane missing for lane-disciplined model";
          if (rx_used[d][lane]) return "destination lane reused";
          rx_used[d][lane] = true;
        }
      }
    }
  }
  for (std::size_t index = 0; index < sessions.size(); ++index) {
    if (!scheduled[index]) return "session " + std::to_string(index) + " missing";
  }
  return std::nullopt;
}

std::vector<Session> random_sessions(Rng& rng, std::size_t N, std::size_t count,
                                     std::size_t min_fanout,
                                     std::size_t max_fanout) {
  if (min_fanout == 0 || min_fanout > max_fanout || max_fanout > N) {
    throw std::invalid_argument("random_sessions: need 1 <= min <= max <= N");
  }
  std::vector<Session> sessions;
  sessions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Session session;
    session.source = rng.next_below(N);
    const std::size_t fanout =
        min_fanout + rng.next_below(max_fanout - min_fanout + 1);
    for (const std::size_t d : rng.sample_without_replacement(N, fanout)) {
      session.destinations.push_back(d);
    }
    sessions.push_back(std::move(session));
  }
  return sessions;
}

}  // namespace wdm

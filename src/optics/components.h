// Optical component taxonomy for the fabric simulator.
//
// These are the devices the paper builds crossbar fabrics from (§2.1, §2.3,
// Figs. 3-7):
//   * Splitter  - passive 1->F light splitter (copies a beam, ~10log10 F dB)
//   * Combiner  - passive F->1 combiner; at most ONE input may carry light
//                 at a time (unlike a mux), any wavelength
//   * SoaGate   - semiconductor optical amplifier gate: the crosspoint;
//                 on = pass, off = block. The paper's cost metric counts
//                 exactly these.
//   * Converter - all-optical wavelength converter, configurable output lane
//   * Mux/Demux - WDM (de)multiplexers joining/separating the k lanes of a
//                 fiber; a mux conflicts only if two beams share a lane
//   * Source    - one fixed-tuned transmitter (input node, Fig. 1)
//   * Sink      - one fixed-tuned receiver (output node, Fig. 1)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "optics/wavelength.h"

namespace wdm {

using ComponentId = std::uint32_t;
inline constexpr ComponentId kNoComponent = 0xFFFFFFFFu;

enum class ComponentKind : std::uint8_t {
  kSource,
  kSink,
  kSplitter,
  kCombiner,
  kSoaGate,
  kConverter,
  kMux,
  kDemux,
};

[[nodiscard]] const char* component_kind_name(ComponentKind kind);

/// Where a beam enters or leaves a component.
struct PortRef {
  ComponentId component = kNoComponent;
  std::uint32_t port = 0;

  friend bool operator==(const PortRef&, const PortRef&) = default;
};

struct Component {
  ComponentKind kind = ComponentKind::kSource;
  std::uint32_t fan_in = 0;   // number of input ports
  std::uint32_t fan_out = 0;  // number of output ports
  std::string label;          // for diagnostics ("gate[in 3 -> out 7]")

  // -- mutable device state -------------------------------------------------
  /// SoaGate only: whether the crosspoint passes light.
  bool gate_on = false;
  /// Converter only: output lane; nullopt = transparent (no conversion).
  std::optional<Wavelength> convert_to;

  [[nodiscard]] std::string describe(ComponentId id) const;
};

}  // namespace wdm

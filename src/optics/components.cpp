#include "optics/components.h"

#include <sstream>

namespace wdm {

const char* component_kind_name(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kSource: return "source";
    case ComponentKind::kSink: return "sink";
    case ComponentKind::kSplitter: return "splitter";
    case ComponentKind::kCombiner: return "combiner";
    case ComponentKind::kSoaGate: return "gate";
    case ComponentKind::kConverter: return "converter";
    case ComponentKind::kMux: return "mux";
    case ComponentKind::kDemux: return "demux";
  }
  return "?";
}

std::string Component::describe(ComponentId id) const {
  std::ostringstream os;
  os << component_kind_name(kind) << '#' << id;
  if (!label.empty()) os << '(' << label << ')';
  if (kind == ComponentKind::kSoaGate) os << (gate_on ? "[on]" : "[off]");
  if (kind == ComponentKind::kConverter && convert_to) {
    os << "[->" << wavelength_name(*convert_to) << ']';
  }
  return os.str();
}

}  // namespace wdm

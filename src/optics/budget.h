// Optical power-budget and crosstalk projection (§2.3).
//
// The paper uses crosspoint count as a proxy for "the crosstalk and power
// loss inside a WDM switch". This module makes the projection explicit:
// closed-form worst-case insertion loss along a connection's path through
// each fabric (splitting loss ~10 log10 F dominates), the number of SOA
// gate stages a beam crosses (each leaking neighbor gate is a first-order
// crosstalk contributor), and the worst-case count of those potential
// leak sources. Crossbar closed forms are cross-validated against the
// measured propagation results of a real gate-level fabric (see
// tests/budget_test.cpp), multistage forms against per-module composition.
#pragma once

#include <cstdint>
#include <string>

#include "capacity/models.h"
#include "multistage/clos_params.h"
#include "optics/signal.h"

namespace wdm {

struct PowerBudget {
  /// Worst-case end-to-end insertion loss, node transmitter to node
  /// receiver, in dB (positive number = attenuation).
  double worst_path_loss_db = 0.0;
  /// SOA gate stages crossed by a beam (1 for any crossbar, one per stage
  /// for multistage networks).
  std::uint32_t gate_stages = 0;
  /// Worst-case number of *other* gates that feed a combiner this beam
  /// traverses -- the first-order crosstalk aggressor count.
  std::uint64_t crosstalk_aggressors = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Closed-form budget of the N x N k-lane crossbar fabric (Figs. 4-7) under
/// `model`, matching the loss accounting of the Circuit simulator exactly.
[[nodiscard]] PowerBudget crossbar_power_budget(std::size_t N, std::size_t k,
                                                MulticastModel model,
                                                const LossModel& losses = {});

/// Closed-form budget of a three-stage network: one module traversal per
/// stage (each module is itself a splitter/gate/combiner crossbar with a
/// link demux/mux on either side), worst case over stages.
[[nodiscard]] PowerBudget multistage_power_budget(const ClosParams& params,
                                                  Construction construction,
                                                  MulticastModel network_model,
                                                  const LossModel& losses = {});

}  // namespace wdm

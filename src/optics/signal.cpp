#include "optics/signal.h"

#include <cmath>
#include <sstream>

namespace wdm {

std::string Signal::to_string() const {
  std::ostringstream os;
  os << "Signal{src=" << source_tag << ", " << wavelength_name(wavelength)
     << ", " << power_dbm << " dBm, gates=" << gates_crossed << "}";
  return os.str();
}

double LossModel::splitter_loss_db(std::uint32_t fanout) const {
  if (fanout <= 1) return excess_split_db;
  return 10.0 * std::log10(static_cast<double>(fanout)) + excess_split_db;
}

double LossModel::combiner_loss_db(std::uint32_t fan_in) const {
  if (fan_in <= 1) return excess_combine_db;
  return 10.0 * std::log10(static_cast<double>(fan_in)) + excess_combine_db;
}

}  // namespace wdm

#include "optics/circuit.h"

#include <algorithm>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace wdm {

std::string Violation::to_string() const {
  const char* name = "?";
  switch (type) {
    case Type::kCombinerConflict: name = "combiner-conflict"; break;
    case Type::kMuxCollision: name = "mux-collision"; break;
    case Type::kSinkConflict: name = "sink-conflict"; break;
    case Type::kSinkWrongWavelength: name = "sink-wrong-wavelength"; break;
    case Type::kDemuxStrayWavelength: name = "demux-stray-wavelength"; break;
  }
  std::ostringstream os;
  os << name << " at #" << component << ": " << detail;
  return os.str();
}

double PropagationResult::min_power_dbm() const {
  double minimum = std::numeric_limits<double>::infinity();
  for (const auto& [sink, signals] : received) {
    for (const auto& signal : signals) minimum = std::min(minimum, signal.power_dbm);
  }
  return minimum;
}

std::uint32_t PropagationResult::max_gates_crossed() const {
  std::uint32_t maximum = 0;
  for (const auto& [sink, signals] : received) {
    for (const auto& signal : signals) maximum = std::max(maximum, signal.gates_crossed);
  }
  return maximum;
}

Circuit::Circuit(LossModel losses) : losses_(losses) {}

namespace {
Component make_component(ComponentKind kind, std::uint32_t fan_in,
                         std::uint32_t fan_out, std::string label) {
  Component component;
  component.kind = kind;
  component.fan_in = fan_in;
  component.fan_out = fan_out;
  component.label = std::move(label);
  return component;
}
}  // namespace

ComponentId Circuit::add_component(Component component) {
  const auto id = static_cast<ComponentId>(components_.size());
  edges_out_.emplace_back(component.fan_out, PortRef{});
  in_wired_.emplace_back(component.fan_in, false);
  fixed_lane_.push_back(kNoWavelength);
  components_.push_back(std::move(component));
  return id;
}

ComponentId Circuit::add_source(Wavelength lane, std::string label) {
  const ComponentId id =
      add_component(make_component(ComponentKind::kSource, 0, 1, std::move(label)));
  fixed_lane_[id] = lane;
  sources_.push_back(id);
  return id;
}

ComponentId Circuit::add_sink(Wavelength lane, std::string label) {
  const ComponentId id =
      add_component(make_component(ComponentKind::kSink, 1, 0, std::move(label)));
  fixed_lane_[id] = lane;
  sinks_.push_back(id);
  return id;
}

ComponentId Circuit::add_splitter(std::uint32_t fanout, std::string label) {
  if (fanout == 0) throw std::invalid_argument("splitter fanout must be >= 1");
  return add_component(make_component(ComponentKind::kSplitter, 1, fanout, std::move(label)));
}

ComponentId Circuit::add_combiner(std::uint32_t fan_in, std::string label) {
  if (fan_in == 0) throw std::invalid_argument("combiner fan_in must be >= 1");
  return add_component(make_component(ComponentKind::kCombiner, fan_in, 1, std::move(label)));
}

ComponentId Circuit::add_gate(std::string label) {
  return add_component(make_component(ComponentKind::kSoaGate, 1, 1, std::move(label)));
}

ComponentId Circuit::add_converter(std::string label) {
  return add_component(make_component(ComponentKind::kConverter, 1, 1, std::move(label)));
}

ComponentId Circuit::add_mux(std::uint32_t lanes, std::string label) {
  if (lanes == 0) throw std::invalid_argument("mux lane count must be >= 1");
  return add_component(make_component(ComponentKind::kMux, lanes, 1, std::move(label)));
}

ComponentId Circuit::add_demux(std::uint32_t lanes, std::string label) {
  if (lanes == 0) throw std::invalid_argument("demux lane count must be >= 1");
  return add_component(make_component(ComponentKind::kDemux, 1, lanes, std::move(label)));
}

void Circuit::connect(PortRef from, PortRef to) {
  if (from.component >= components_.size() || to.component >= components_.size()) {
    throw std::out_of_range("Circuit::connect: unknown component");
  }
  const Component& src = components_[from.component];
  const Component& dst = components_[to.component];
  if (from.port >= src.fan_out) {
    throw std::out_of_range("Circuit::connect: source port out of range on " +
                            src.describe(from.component));
  }
  if (to.port >= dst.fan_in) {
    throw std::out_of_range("Circuit::connect: destination port out of range on " +
                            dst.describe(to.component));
  }
  if (edges_out_[from.component][from.port].component != kNoComponent) {
    throw std::logic_error("Circuit::connect: output port already wired on " +
                           src.describe(from.component));
  }
  if (in_wired_[to.component][to.port]) {
    throw std::logic_error("Circuit::connect: input port already wired on " +
                           dst.describe(to.component));
  }
  edges_out_[from.component][from.port] = to;
  in_wired_[to.component][to.port] = true;
}

void Circuit::set_gate(ComponentId gate, bool on) {
  Component& component = components_.at(gate);
  if (component.kind != ComponentKind::kSoaGate) {
    throw std::invalid_argument("Circuit::set_gate: not a gate: " +
                                component.describe(gate));
  }
  component.gate_on = on;
}

bool Circuit::gate_state(ComponentId gate) const {
  const Component& component = components_.at(gate);
  if (component.kind != ComponentKind::kSoaGate) {
    throw std::invalid_argument("Circuit::gate_state: not a gate");
  }
  return component.gate_on;
}

void Circuit::set_converter(ComponentId converter, std::optional<Wavelength> to) {
  Component& component = components_.at(converter);
  if (component.kind != ComponentKind::kConverter) {
    throw std::invalid_argument("Circuit::set_converter: not a converter: " +
                                component.describe(converter));
  }
  component.convert_to = to;
}

void Circuit::reset_state() {
  for (auto& component : components_) {
    component.gate_on = false;
    component.convert_to.reset();
  }
  injections_.clear();
}

void Circuit::inject(ComponentId source, std::int64_t tag, double power_dbm) {
  if (components_.at(source).kind != ComponentKind::kSource) {
    throw std::invalid_argument("Circuit::inject: not a source");
  }
  injections_[source] = {tag, power_dbm};
}

void Circuit::clear_injection(ComponentId source) { injections_.erase(source); }

void Circuit::clear_all_injections() { injections_.clear(); }

std::size_t Circuit::count_kind(ComponentKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(components_.begin(), components_.end(),
                    [kind](const Component& c) { return c.kind == kind; }));
}

const Component& Circuit::component(ComponentId id) const {
  return components_.at(id);
}

Wavelength Circuit::fixed_lane(ComponentId id) const { return fixed_lane_.at(id); }

std::vector<std::pair<PortRef, PortRef>> Circuit::edges() const {
  std::vector<std::pair<PortRef, PortRef>> result;
  for (std::size_t id = 0; id < components_.size(); ++id) {
    for (std::uint32_t port = 0; port < components_[id].fan_out; ++port) {
      const PortRef target = edges_out_[id][port];
      if (target.component != kNoComponent) {
        result.push_back({{static_cast<ComponentId>(id), port}, target});
      }
    }
  }
  return result;
}

std::vector<ComponentId> Circuit::topological_order() const {
  std::vector<std::uint32_t> pending(components_.size(), 0);
  for (std::size_t id = 0; id < components_.size(); ++id) {
    for (const PortRef& edge : edges_out_[id]) {
      if (edge.component != kNoComponent) ++pending[edge.component];
    }
  }
  std::queue<ComponentId> ready;
  for (std::size_t id = 0; id < components_.size(); ++id) {
    if (pending[id] == 0) ready.push(static_cast<ComponentId>(id));
  }
  std::vector<ComponentId> order;
  order.reserve(components_.size());
  while (!ready.empty()) {
    const ComponentId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (const PortRef& edge : edges_out_[id]) {
      if (edge.component != kNoComponent && --pending[edge.component] == 0) {
        ready.push(edge.component);
      }
    }
  }
  if (order.size() != components_.size()) {
    throw std::logic_error("Circuit: component graph contains a cycle");
  }
  return order;
}

PropagationResult Circuit::propagate() const {
  PropagationResult result;
  // in_signals[id][port] = beams arriving at that input port.
  std::vector<std::vector<std::vector<Signal>>> in_signals(components_.size());
  for (std::size_t id = 0; id < components_.size(); ++id) {
    in_signals[id].resize(components_[id].fan_in);
  }

  auto forward = [&](ComponentId from, std::uint32_t port, Signal signal) {
    const PortRef edge = edges_out_[from][port];
    if (edge.component == kNoComponent) return;  // dangling port absorbs light
    in_signals[edge.component][edge.port].push_back(std::move(signal));
  };

  for (const ComponentId id : topological_order()) {
    const Component& component = components_[id];
    switch (component.kind) {
      case ComponentKind::kSource: {
        const auto it = injections_.find(id);
        if (it == injections_.end()) break;
        Signal beam;
        beam.source_tag = it->second.first;
        beam.power_dbm = it->second.second;
        beam.wavelength = fixed_lane_[id];
        forward(id, 0, std::move(beam));
        break;
      }
      case ComponentKind::kSink: {
        auto& arrivals = in_signals[id][0];
        if (arrivals.empty()) break;
        if (arrivals.size() > 1) {
          result.violations.push_back(
              {Violation::Type::kSinkConflict, id,
               std::to_string(arrivals.size()) + " beams at " +
                   component.describe(id)});
        }
        for (const Signal& beam : arrivals) {
          if (beam.wavelength != fixed_lane_[id]) {
            result.violations.push_back(
                {Violation::Type::kSinkWrongWavelength, id,
                 "beam on " + wavelength_name(beam.wavelength) +
                     ", receiver tuned to " + wavelength_name(fixed_lane_[id])});
          }
        }
        result.received[id] = std::move(arrivals);
        break;
      }
      case ComponentKind::kSplitter: {
        for (const Signal& beam : in_signals[id][0]) {
          Signal copy = beam;
          copy.power_dbm -= losses_.splitter_loss_db(component.fan_out);
          ++copy.splitters_crossed;
          for (std::uint32_t port = 0; port < component.fan_out; ++port) {
            forward(id, port, copy);
          }
        }
        break;
      }
      case ComponentKind::kCombiner: {
        std::uint32_t lit_inputs = 0;
        for (std::uint32_t port = 0; port < component.fan_in; ++port) {
          if (!in_signals[id][port].empty()) ++lit_inputs;
        }
        if (lit_inputs > 1) {
          result.violations.push_back(
              {Violation::Type::kCombinerConflict, id,
               std::to_string(lit_inputs) + " lit inputs at " +
                   component.describe(id)});
        }
        for (std::uint32_t port = 0; port < component.fan_in; ++port) {
          for (const Signal& beam : in_signals[id][port]) {
            Signal passed = beam;
            passed.power_dbm -= losses_.combiner_loss_db(component.fan_in);
            ++passed.combiners_crossed;
            forward(id, 0, std::move(passed));
          }
        }
        break;
      }
      case ComponentKind::kSoaGate: {
        if (!component.gate_on) break;  // off: absorbs the beam
        for (const Signal& beam : in_signals[id][0]) {
          Signal passed = beam;
          passed.power_dbm -= losses_.gate_db;
          ++passed.gates_crossed;
          forward(id, 0, std::move(passed));
        }
        break;
      }
      case ComponentKind::kConverter: {
        for (const Signal& beam : in_signals[id][0]) {
          Signal converted = beam;
          converted.power_dbm -= losses_.converter_db;
          if (component.convert_to && *component.convert_to != beam.wavelength) {
            converted.wavelength = *component.convert_to;
            ++converted.conversions;
          }
          forward(id, 0, std::move(converted));
        }
        break;
      }
      case ComponentKind::kMux: {
        std::vector<Wavelength> seen;
        for (std::uint32_t port = 0; port < component.fan_in; ++port) {
          for (const Signal& beam : in_signals[id][port]) {
            if (std::find(seen.begin(), seen.end(), beam.wavelength) != seen.end()) {
              result.violations.push_back(
                  {Violation::Type::kMuxCollision, id,
                   "two beams on " + wavelength_name(beam.wavelength) + " at " +
                       component.describe(id)});
            }
            seen.push_back(beam.wavelength);
            Signal passed = beam;
            passed.power_dbm -= losses_.mux_db;
            forward(id, 0, std::move(passed));
          }
        }
        break;
      }
      case ComponentKind::kDemux: {
        for (const Signal& beam : in_signals[id][0]) {
          if (beam.wavelength >= component.fan_out) {
            result.violations.push_back(
                {Violation::Type::kDemuxStrayWavelength, id,
                 "beam on " + wavelength_name(beam.wavelength) + " but demux has " +
                     std::to_string(component.fan_out) + " lanes"});
            continue;
          }
          Signal passed = beam;
          passed.power_dbm -= losses_.demux_db;
          forward(id, beam.wavelength, std::move(passed));
        }
        break;
      }
    }
  }
  return result;
}

}  // namespace wdm

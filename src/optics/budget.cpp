#include "optics/budget.h"

#include <algorithm>
#include <sstream>

namespace wdm {

namespace {

// Loss of one a-in x b-out splitter/gate/combiner crossbar module traversal
// (the Fig. 5 structure generalized): split to b outputs, one gate, combine
// from a inputs. `wavelength_fabric` selects the Nk x Nk organization of
// Figs. 6-7 where splitters/combiners span a*k / b*k wavelengths.
double module_traversal_db(std::size_t a, std::size_t b, std::size_t k,
                           MulticastModel model, const LossModel& losses) {
  const bool wavelength_fabric = model != MulticastModel::kMSW;
  const auto split_fan =
      static_cast<std::uint32_t>(wavelength_fabric ? b * k : b);
  const auto combine_fan =
      static_cast<std::uint32_t>(wavelength_fabric ? a * k : a);
  double loss = losses.splitter_loss_db(split_fan) + losses.gate_db +
                losses.combiner_loss_db(combine_fan);
  if (model != MulticastModel::kMSW) loss += losses.converter_db;
  return loss;
}

}  // namespace

std::string PowerBudget::to_string() const {
  std::ostringstream os;
  os << "loss=" << worst_path_loss_db << "dB gates=" << gate_stages
     << " aggressors=" << crosstalk_aggressors;
  return os.str();
}

PowerBudget crossbar_power_budget(std::size_t N, std::size_t k,
                                  MulticastModel model, const LossModel& losses) {
  PowerBudget budget;
  budget.gate_stages = 1;
  // Port shell: node mux -> network demux in, network mux -> node demux out.
  const double shell = 2 * losses.mux_db + 2 * losses.demux_db;
  budget.worst_path_loss_db = shell + module_traversal_db(N, N, k, model, losses);
  // All other inputs of the combiner this beam exits through can leak.
  budget.crosstalk_aggressors =
      (model == MulticastModel::kMSW ? N : N * k) - 1;
  return budget;
}

PowerBudget multistage_power_budget(const ClosParams& params,
                                    Construction construction,
                                    MulticastModel network_model,
                                    const LossModel& losses) {
  params.validate();
  const MulticastModel inner = construction == Construction::kMswDominant
                                   ? MulticastModel::kMSW
                                   : MulticastModel::kMAW;
  const auto [n, r, m, k] = params;

  PowerBudget budget;
  budget.gate_stages = 3;
  // Node shell as in the crossbar, plus a demux/mux pair around each module
  // (the inter-stage links are WDM fibers).
  const double shell = 2 * losses.mux_db + 2 * losses.demux_db;
  const double inter_module = 2 * (losses.mux_db + losses.demux_db);
  budget.worst_path_loss_db = shell + inter_module +
                              module_traversal_db(n, m, k, inner, losses) +
                              module_traversal_db(r, r, k, inner, losses) +
                              module_traversal_db(m, n, k, network_model, losses);

  // Aggressors accumulate at each stage's exit combiner.
  const auto combiner_inputs = [&](std::size_t a, MulticastModel model) {
    return (model == MulticastModel::kMSW ? a : a * k) - 1;
  };
  budget.crosstalk_aggressors = combiner_inputs(n, inner) +
                                combiner_inputs(r, inner) +
                                combiner_inputs(m, network_model);
  return budget;
}

}  // namespace wdm

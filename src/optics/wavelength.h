// Wavelength identifiers.
//
// A WDM fiber carries k wavelengths lambda_1..lambda_k; internally they are
// 0-based lane indices. kNoWavelength marks "not assigned yet".
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace wdm {

using Wavelength = std::uint32_t;

inline constexpr Wavelength kNoWavelength = std::numeric_limits<Wavelength>::max();

/// Human-readable name, 1-based as in the paper: lane 0 -> "λ1".
inline std::string wavelength_name(Wavelength lane) {
  if (lane == kNoWavelength) return "λ?";
  return "λ" + std::to_string(lane + 1);
}

}  // namespace wdm

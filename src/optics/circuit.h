// Component graph + wavelength-aware light propagation.
//
// A Circuit is a DAG of optical components; edges connect one output port to
// one input port (a physical waveguide/fiber segment). Propagation pushes
// every injected source beam through the graph in topological order, applying
// each device's semantics (split, gate, convert, combine, mux, demux) and its
// insertion loss, and detects physical-layer violations:
//   * combiner conflict: two inputs of a passive combiner lit simultaneously
//   * mux collision: two beams on the same lane entering a mux
//   * sink conflict: a fixed-tuned receiver hit by more than one beam, or a
//     beam on the wrong lane
// The fabric module uses this to prove, signal-by-signal, that a routed
// multicast assignment is physically realizable -- the simulation stand-in
// for the hardware the paper assumes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "optics/components.h"
#include "optics/signal.h"

namespace wdm {

struct Violation {
  enum class Type {
    kCombinerConflict,
    kMuxCollision,
    kSinkConflict,
    kSinkWrongWavelength,
    kDemuxStrayWavelength,
  };
  Type type;
  ComponentId component;
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

struct PropagationResult {
  /// Signals that reached each sink (keyed by sink component id).
  std::map<ComponentId, std::vector<Signal>> received;
  std::vector<Violation> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
  /// Minimum power over all delivered signals (worst-case path loss).
  [[nodiscard]] double min_power_dbm() const;
  /// Maximum number of gates crossed by any delivered signal.
  [[nodiscard]] std::uint32_t max_gates_crossed() const;
};

class Circuit {
 public:
  explicit Circuit(LossModel losses = {});

  // -- construction ---------------------------------------------------------
  /// A fixed-tuned transmitter emitting on `lane`. `tag` identifies the
  /// stream in delivered signals.
  ComponentId add_source(Wavelength lane, std::string label = {});
  /// A fixed-tuned receiver expecting beams on `lane` only.
  ComponentId add_sink(Wavelength lane, std::string label = {});
  ComponentId add_splitter(std::uint32_t fanout, std::string label = {});
  ComponentId add_combiner(std::uint32_t fan_in, std::string label = {});
  ComponentId add_gate(std::string label = {});
  ComponentId add_converter(std::string label = {});
  ComponentId add_mux(std::uint32_t lanes, std::string label = {});
  ComponentId add_demux(std::uint32_t lanes, std::string label = {});

  /// Wire output port `from` to input port `to`. Each port may be wired at
  /// most once; kinds/port ranges are validated eagerly.
  void connect(PortRef from, PortRef to);

  // -- device state ---------------------------------------------------------
  void set_gate(ComponentId gate, bool on);
  [[nodiscard]] bool gate_state(ComponentId gate) const;
  /// Configure a converter's output lane (nullopt = transparent).
  void set_converter(ComponentId converter, std::optional<Wavelength> to);
  /// Turn every gate off and every converter transparent; sources unlit.
  void reset_state();

  // -- stimulus -------------------------------------------------------------
  /// Light up a source with stream identity `tag` at `power_dbm`.
  void inject(ComponentId source, std::int64_t tag, double power_dbm = 0.0);
  /// Extinguish one source / all sources.
  void clear_injection(ComponentId source);
  void clear_all_injections();

  // -- simulation -----------------------------------------------------------
  [[nodiscard]] PropagationResult propagate() const;

  // -- introspection --------------------------------------------------------
  [[nodiscard]] std::size_t component_count() const { return components_.size(); }
  [[nodiscard]] std::size_t count_kind(ComponentKind kind) const;
  [[nodiscard]] const Component& component(ComponentId id) const;
  /// Sinks in creation order (stable addressing for fabric layers).
  [[nodiscard]] const std::vector<ComponentId>& sinks() const { return sinks_; }
  [[nodiscard]] const std::vector<ComponentId>& sources() const { return sources_; }
  /// Expected receive lane of a sink / emit lane of a source.
  [[nodiscard]] Wavelength fixed_lane(ComponentId id) const;
  /// All wired connections as (from, to) port pairs, for export/analysis.
  [[nodiscard]] std::vector<std::pair<PortRef, PortRef>> edges() const;

 private:
  ComponentId add_component(Component component);
  [[nodiscard]] std::vector<ComponentId> topological_order() const;

  LossModel losses_;
  std::vector<Component> components_;
  /// Fixed lane of each source/sink (kNoWavelength otherwise).
  std::vector<Wavelength> fixed_lane_;
  /// edges_out_[id][port] = destination (or kNoComponent if dangling).
  std::vector<std::vector<PortRef>> edges_out_;
  /// Whether each input port is already wired (for validation only).
  std::vector<std::vector<bool>> in_wired_;
  std::vector<ComponentId> sources_;
  std::vector<ComponentId> sinks_;
  /// Active emissions: source id -> (tag, power).
  std::map<ComponentId, std::pair<std::int64_t, double>> injections_;
};

}  // namespace wdm

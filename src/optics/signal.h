// Optical signals propagated through a component circuit.
//
// A signal is a light beam carrying one logical stream: the `source_tag`
// identifies which transmitter (and hence which multicast connection)
// produced it. Power and crosspoint counters ride along so that fabric-level
// experiments can report worst-case insertion loss and a first-order
// crosstalk proxy (the number of SOA gates a beam crosses, §2.3 of the
// paper).
#pragma once

#include <cstdint>
#include <string>

#include "optics/wavelength.h"

namespace wdm {

struct Signal {
  /// Identity of the emitting transmitter; sinks use this to check they
  /// received the stream they expect.
  std::int64_t source_tag = -1;
  /// Current wavelength (converters change this in flight).
  Wavelength wavelength = kNoWavelength;
  /// Optical power in dBm.
  double power_dbm = 0.0;

  // -- path metrics ---------------------------------------------------------
  std::uint32_t gates_crossed = 0;
  std::uint32_t splitters_crossed = 0;
  std::uint32_t combiners_crossed = 0;
  std::uint32_t conversions = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Default device insertion losses (dB), loosely based on published SOA /
/// coupler figures; the absolute values only matter for relative
/// comparisons between fabrics.
struct LossModel {
  double gate_db = 1.0;        // SOA gate insertion loss (net of gain)
  double converter_db = 2.0;   // all-optical wavelength converter
  double mux_db = 1.5;         // WDM multiplexer
  double demux_db = 1.5;       // WDM demultiplexer
  double excess_split_db = 0.5;   // splitter excess loss on top of 10log10(F)
  double excess_combine_db = 0.5; // combiner excess loss on top of 10log10(F)

  [[nodiscard]] double splitter_loss_db(std::uint32_t fanout) const;
  [[nodiscard]] double combiner_loss_db(std::uint32_t fan_in) const;
};

}  // namespace wdm

// Repack-on-block: rearrangeable operation below the strict-sense bound.
//
// The paper buys zero blocking by provisioning the middle stage at the
// Theorem 1/2 bound -- hardware that sits idle almost always. The repack
// engine recovers most of it: run a smaller m and, when a request blocks,
// *migrate* a bounded set of existing sessions out of its way (the
// Slepian-Duguid rearrangement behind src/multistage/rearrange.h, executed
// against live traffic). Three pieces (protocol in DESIGN.md §3.12):
//
//   RepackPlanner  - maps a blocked request to the session occupying the
//                    lane that blocks it. Keeps a lane-owner index over the
//                    same flat (module, port, lane) layout as FaultModel's
//                    lane vectors, and mirrors the Router's lane discipline
//                    (MSW-dominant: source lane end to end; MAW-dominant:
//                    any link12 lane, destination lane into MSW output
//                    modules) so it chases exactly the lanes the search
//                    needed.
//   RepackExecutor - a break-before-make transaction over a Router: release
//                    victims, admit, re-route the victims, commit -- or roll
//                    back, reinstating every victim's original route.
//                    Rollback is generation-tagged: occupancy is bit-exact
//                    afterwards and every victim is revived under its
//                    ORIGINAL id (ThreeStageNetwork::reinstall re-arms the
//                    slot generation), so a rolled-back transaction is
//                    invisible to anyone holding session ids.
//   RepackEngine   - the admit loop: classic try_connect first (a disabled
//                    or idle engine never perturbs the classic path), then
//                    propose / break / retry under a move budget. When a
//                    displaced victim itself blocks, it displaces another
//                    session -- the alternating chains of Paull's algorithm
//                    emerge from the work list without recursion.
//
// restore_connections (src/faults/resilience.cpp) runs on the same executor
// in DropPolicy::kAllowDrops mode: fault restoration is repacking under
// failure, one migration core for both.
//
// Instruments: counters repack.attempts / .admits / .failed / .rollbacks /
// .sessions_moved, histogram repack.chain_length, timer repack.migrate_ns
// (see docs/BENCHMARKS.md).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "multistage/routing.h"

namespace wdm::repack {

/// How RepackExecutor::reroute_released treats a victim that no longer fits.
enum class DropPolicy {
  /// Any victim that cannot be re-routed rolls the whole transaction back
  /// (the repack-on-block admit path: all-or-nothing).
  kTransactional,
  /// Keep the victims that re-route, report the rest as dropped (fault
  /// restoration: the hardware is gone, partial recovery beats none).
  kAllowDrops,
};

struct RepackPolicy {
  bool enabled = true;
  /// Most sessions migrated per admit attempt (the chain/move budget).
  std::size_t max_moves = 8;
};

/// Where a reroute pass left each released victim.
struct MigrationOutcome {
  /// Re-routed successfully: (old id, new id), in release order.
  std::vector<std::pair<ConnectionId, ConnectionId>> restored;
  /// Could not be re-routed (kAllowDrops only); the request is returned so
  /// callers can retry after a repair.
  std::vector<std::pair<ConnectionId, MulticastRequest>> dropped;
  /// False iff a kTransactional pass failed (the transaction was rolled
  /// back and restored/dropped are meaningless).
  bool complete = true;
};

/// Break-before-make migration transaction over a Router. All occupancy
/// mutations go through the router (disconnect / try_connect / reinstall),
/// never the bare network, so any primed batch mask rows stay truthful.
/// Single-threaded like the router it drives; engine shards own one each.
class RepackExecutor {
 public:
  explicit RepackExecutor(Router& router) : router_(&router) {}

  /// Start a transaction. No-op bookkeeping reset; cheap.
  void begin();

  /// Break: tear the session down, remembering its request and route for
  /// rollback. False for stale ids (nothing released).
  bool release(ConnectionId id);

  /// Make: route `request` through the freed state. The admitted id is
  /// tracked so rollback can undo it.
  [[nodiscard]] std::optional<ConnectionId> try_admit(const MulticastRequest& request);

  /// Re-route every released victim, in release order (ascending release
  /// time -- for fault restoration that is ascending old id, matching the
  /// legacy pass). kTransactional: a single failure rolls back and returns
  /// outcome.complete = false. kAllowDrops: commits whatever re-routed.
  const MigrationOutcome& reroute_released(DropPolicy policy);

  /// Keep everything done since begin().
  void commit();

  /// Undo everything since begin(): admissions released in reverse admit
  /// order, then every victim's original route reinstated in reverse
  /// release order (their lanes are free again by then, so reinstallation
  /// cannot block). Occupancy is bit-exact afterwards, every victim keeps
  /// its pre-transaction id (Router::reinstall revives the generation), and
  /// each is spliced back at its pre-transaction ConnectionView position
  /// (release() captures the predecessor as an undo log), so callers'
  /// stored ids AND iteration order survive a rollback unchanged.
  void rollback();

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] std::size_t released_count() const { return victims_.size(); }
  /// Was `id` admitted during this transaction? (Planner exclusion: a
  /// session placed by the transaction must not be proposed as a victim,
  /// or the chain would livelock.)
  [[nodiscard]] bool did_admit(ConnectionId id) const;
  /// (old id, request, original route) of victim `index`, release order.
  [[nodiscard]] const MulticastRequest& victim_request(std::size_t index) const {
    return victims_[index].request;
  }
  [[nodiscard]] ConnectionId victim_id(std::size_t index) const {
    return victims_[index].old_id;
  }

 private:
  struct Victim {
    ConnectionId old_id = 0;
    ConnectionId prev_id = 0;  // ConnectionView predecessor at release (0 = head)
    MulticastRequest request;
    Route route;
  };

  Router* router_;
  std::vector<Victim> victims_;      // release order
  std::vector<ConnectionId> admitted_;  // admit order
  MigrationOutcome outcome_;
  bool active_ = false;
};

/// Proposes, for a blocked request, the live session whose migration most
/// directly unblocks it: scan middles in the router's ascending probe order
/// for the first blocking lane (a non-candidate link12 lane, or the first
/// unserved target's link23 lane) whose owner is live, healthy, and not a
/// session this transaction already placed.
class RepackPlanner {
 public:
  explicit RepackPlanner(Router& router);

  /// Rebuild the lane-owner index from the live connection table. O(active
  /// sessions x route size); called per proposal, off the classic hot path.
  void refresh();

  /// The victim to break for `request`, or nullopt when nothing actionable
  /// remains (every obstacle is already-placed, stale, or failed hardware).
  [[nodiscard]] std::optional<ConnectionId> propose(
      const MulticastRequest& request, const RepackExecutor& txn) const;

 private:
  static constexpr ConnectionId kNoOwner = ~ConnectionId{0};

  /// Owner of link12 lane (i -> j, lane), kNoOwner when free/unknown.
  [[nodiscard]] ConnectionId owner12(std::size_t i, std::size_t j,
                                     Wavelength lane) const {
    const ClosParams& params = network_->params();
    return owner12_[(i * params.m + j) * params.k + lane];
  }
  /// Owner of link23 lane (j -> p, lane), kNoOwner when free/unknown.
  [[nodiscard]] ConnectionId owner23(std::size_t j, std::size_t p,
                                     Wavelength lane) const {
    const ClosParams& params = network_->params();
    return owner23_[(j * params.r + p) * params.k + lane];
  }
  /// A proposable owner: indexed, still live, and not placed by `txn`.
  [[nodiscard]] bool viable(ConnectionId owner, const RepackExecutor& txn) const;

  Router* router_;
  ThreeStageNetwork* network_;
  // Flat lane-owner vectors, same layouts as FaultModel's lane vectors:
  // owner12_[(i*m + j)*k + lane], owner23_[(j*r + p)*k + lane].
  std::vector<ConnectionId> owner12_;
  std::vector<ConnectionId> owner23_;
  // Per-propose scratch: (output module, required link lane) demands of the
  // blocked request, mirroring Router::build_demands' lane discipline.
  mutable std::vector<std::pair<std::size_t, Wavelength>> targets_;
};

/// The admit loop gluing planner and executor together; owned by a
/// MultistageSwitch (enable_repack) or used standalone in tests/benches.
class RepackEngine {
 public:
  RepackEngine(Router& router, RepackPolicy policy)
      : router_(&router), policy_(policy), planner_(router), executor_(router) {}

  /// try_connect with repack-on-block. The classic attempt always runs
  /// first; only a kBlocked rejection with the policy enabled triggers
  /// planning. On a repack admit, last_moved() reports the migrated
  /// sessions (old id -> new id) until the next call. On failure the
  /// transaction is rolled back (occupancy untouched) and the router's
  /// last_error() explains the final obstacle.
  [[nodiscard]] std::optional<ConnectionId> connect(const MulticastRequest& request);

  [[nodiscard]] const RepackPolicy& policy() const { return policy_; }
  /// Sessions migrated by the most recent connect() (empty after a classic
  /// admit or a failure). Old ids in the pairs are stale by construction.
  [[nodiscard]] std::span<const std::pair<ConnectionId, ConnectionId>> last_moved() const {
    return moved_;
  }
  /// Cumulative sessions migrated by admitted repacks (monotone; feeds the
  /// engine health snapshot's repack_moves field).
  [[nodiscard]] std::uint64_t sessions_moved_total() const { return moved_total_; }
  /// Longest committed chain so far (sessions moved by one admit).
  [[nodiscard]] std::size_t max_chain_length() const { return max_chain_; }

  /// Test seam for the migration-atomicity hammer: invoked after every
  /// break (victim released, occupancy torn) and before the next make
  /// attempt; return true to simulate a mid-chain failure. The engine then
  /// rolls the transaction back and reports the request blocked.
  void set_failure_injection(std::function<bool(std::size_t moves_so_far)> hook) {
    failure_injection_ = std::move(hook);
  }

 private:
  /// One pending placement of the work list: the new request (no old id)
  /// or a released victim awaiting re-route.
  struct PendingPlace {
    MulticastRequest request;
    std::optional<ConnectionId> old_id;
  };

  Router* router_;
  RepackPolicy policy_;
  RepackPlanner planner_;
  RepackExecutor executor_;
  std::vector<PendingPlace> pending_;  // work list, head never popped
  std::vector<std::pair<ConnectionId, ConnectionId>> moved_;
  std::uint64_t moved_total_ = 0;
  std::size_t max_chain_ = 0;
  std::function<bool(std::size_t)> failure_injection_;
};

}  // namespace wdm::repack

#include "repack/repack.h"

#include <stdexcept>

#include "faults/fault_model.h"
#include "util/metrics.h"
#include "util/trace_span.h"

namespace wdm::repack {

namespace {

struct RepackMetrics {
  Counter& attempts = metrics().counter("repack.attempts");
  Counter& admits = metrics().counter("repack.admits");
  Counter& failed = metrics().counter("repack.failed");
  Counter& rollbacks = metrics().counter("repack.rollbacks");
  Counter& sessions_moved = metrics().counter("repack.sessions_moved");
  Histogram& chain_length = metrics().histogram("repack.chain_length");
  TimerStat& migrate = metrics().timer("repack.migrate_ns");

  static RepackMetrics& get() {
    static RepackMetrics instance;
    return instance;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// RepackExecutor
// ---------------------------------------------------------------------------

void RepackExecutor::begin() {
  if (active_) throw std::logic_error("RepackExecutor: transaction already open");
  victims_.clear();
  admitted_.clear();
  outcome_.restored.clear();
  outcome_.dropped.clear();
  outcome_.complete = true;
  active_ = true;
}

bool RepackExecutor::release(ConnectionId id) {
  const auto* entry = router_->network().find_connection(id);
  if (entry == nullptr) return false;
  // Copy request + route BEFORE the release: the slot entry survives the
  // release only until its slot is reused, and rollback needs the original
  // route long after this transaction has installed other connections.
  Victim victim;
  victim.old_id = id;
  victim.request = entry->first;
  victim.route = entry->second;
  // Undo-log capture: the session's ConnectionView predecessor (0 = head).
  // Rollback reinstalls victims newest-first splicing each one back after
  // this id, which restores the view's iteration order exactly -- any
  // predecessor this transaction releases later is itself reinstalled
  // earlier in the reverse undo, so the splice target is always live.
  victim.prev_id = router_->network().predecessor_of(id);
  router_->disconnect(id);
  victims_.push_back(std::move(victim));
  return true;
}

std::optional<ConnectionId> RepackExecutor::try_admit(const MulticastRequest& request) {
  const auto id = router_->try_connect(request);
  if (id) admitted_.push_back(*id);
  return id;
}

const MigrationOutcome& RepackExecutor::reroute_released(DropPolicy policy) {
  // Release order. For fault restoration (victims collected from the
  // insertion-ordered ConnectionView) this is ascending old id -- the exact
  // deterministic order the legacy restore pass re-routed in.
  for (const Victim& victim : victims_) {
    if (const auto new_id = try_admit(victim.request)) {
      outcome_.restored.emplace_back(victim.old_id, *new_id);
    } else if (policy == DropPolicy::kAllowDrops) {
      outcome_.dropped.emplace_back(victim.old_id, victim.request);
    } else {
      rollback();
      outcome_.complete = false;
      return outcome_;
    }
  }
  outcome_.complete = true;
  return outcome_;
}

void RepackExecutor::commit() {
  victims_.clear();
  admitted_.clear();
  active_ = false;
}

void RepackExecutor::rollback() {
  // Undo admissions newest-first, then reinstate victims newest-first --
  // under their ORIGINAL ids (Router::reinstall revives the generation) and
  // at their ORIGINAL ConnectionView positions (spliced back after the
  // predecessor captured at release time), so a rolled-back transaction is
  // invisible to anyone holding session ids or iterating the view. After
  // the admissions are gone, occupancy is the pre-transaction state minus
  // the victims' routes, so every reinstallation lands on free lanes (the
  // routes coexisted before the transaction) -- reinstall() validates that
  // claim and would throw on any executor bug.
  for (std::size_t i = admitted_.size(); i-- > 0;) {
    router_->disconnect(admitted_[i]);
  }
  for (std::size_t i = victims_.size(); i-- > 0;) {
    (void)router_->reinstall(victims_[i].old_id, victims_[i].request,
                             victims_[i].route, victims_[i].prev_id);
  }
  if (!victims_.empty() || !admitted_.empty()) {
    RepackMetrics::get().rollbacks.add();
  }
  outcome_.restored.clear();
  outcome_.dropped.clear();
  victims_.clear();
  admitted_.clear();
  active_ = false;
}

bool RepackExecutor::did_admit(ConnectionId id) const {
  for (const ConnectionId admitted : admitted_) {
    if (admitted == id) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// RepackPlanner
// ---------------------------------------------------------------------------

RepackPlanner::RepackPlanner(Router& router)
    : router_(&router), network_(&router.network()) {
  const ClosParams& params = network_->params();
  owner12_.assign(params.r * params.m * params.k, kNoOwner);
  owner23_.assign(params.m * params.r * params.k, kNoOwner);
}

void RepackPlanner::refresh() {
  const ClosParams& params = network_->params();
  owner12_.assign(owner12_.size(), kNoOwner);
  owner23_.assign(owner23_.size(), kNoOwner);
  for (const auto& [id, entry] : network_->connections()) {
    const auto& [request, route] = entry;
    const std::size_t in_module = network_->input_module_of(request.input.port);
    for (const RouteBranch& branch : route.branches) {
      owner12_[(in_module * params.m + branch.middle) * params.k +
               branch.link_lane] = id;
      for (const DeliveryLeg& leg : branch.legs) {
        owner23_[(branch.middle * params.r + leg.out_module) * params.k +
                 leg.link_lane] = id;
      }
    }
  }
}

bool RepackPlanner::viable(ConnectionId owner, const RepackExecutor& txn) const {
  // Live (releases make index entries stale; find_connection's generation
  // check filters them) and not a session this transaction already placed
  // (re-breaking one would livelock the chain).
  return owner != kNoOwner && !txn.did_admit(owner) &&
         network_->find_connection(owner) != nullptr;
}

std::optional<ConnectionId> RepackPlanner::propose(
    const MulticastRequest& request, const RepackExecutor& txn) const {
  const ClosParams& params = network_->params();
  const Construction construction = network_->construction();
  const MulticastModel output_model = network_->network_model();
  const bool msw = construction == Construction::kMswDominant;
  const Wavelength source_lane = request.input.lane;
  const std::size_t in_module = network_->input_module_of(request.input.port);
  const FaultModel* faults = network_->active_fault_model();

  // Per-output-module (module, required link lane) demands, mirroring
  // Router::build_demands' lane discipline. kNoWavelength = any lane.
  targets_.clear();
  for (const auto& out : request.outputs) {
    const std::size_t module = network_->output_module_of(out.port);
    Wavelength required = kNoWavelength;
    if (msw) {
      required = source_lane;
    } else if (output_model == MulticastModel::kMSW) {
      required = out.lane;
    }
    bool merged = false;
    for (auto& [existing, lane] : targets_) {
      if (existing != module) continue;
      if (lane != required) return std::nullopt;  // unsatisfiable demand
      merged = true;
      break;
    }
    if (!merged) targets_.emplace_back(module, required);
  }

  const SwitchModule& input = network_->input_module(in_module);
  for (std::size_t j = 0; j < params.m; ++j) {
    // A failed middle blocks forever; migrating its tenants cannot help.
    if (faults != nullptr && faults->middle_failed(j)) continue;

    bool candidate;
    if (msw) {
      candidate = input.out_lane_free(j, source_lane) &&
                  (faults == nullptr ||
                   faults->link12_usable(in_module, j, source_lane));
    } else {
      candidate = false;
      for (Wavelength lane = 0; lane < params.k && !candidate; ++lane) {
        candidate = input.out_lane_free(j, lane) &&
                    (faults == nullptr ||
                     faults->link12_usable(in_module, j, lane));
      }
    }
    if (!candidate) {
      // Blocked into the middle: free a link12 lane the request could use.
      if (msw) {
        if (faults == nullptr ||
            faults->link12_usable(in_module, j, source_lane)) {
          const ConnectionId owner = owner12(in_module, j, source_lane);
          if (viable(owner, txn)) return owner;
        }
      } else {
        for (Wavelength lane = 0; lane < params.k; ++lane) {
          if (faults != nullptr &&
              !faults->link12_usable(in_module, j, lane)) {
            continue;
          }
          const ConnectionId owner = owner12(in_module, j, lane);
          if (viable(owner, txn)) return owner;
        }
      }
      continue;
    }

    // Candidate middle: free the first target it fails to serve.
    const SwitchModule& middle = network_->middle_module(j);
    for (const auto& [p, lane] : targets_) {
      if (lane != kNoWavelength) {
        const bool healthy =
            faults == nullptr || faults->link23_usable(j, p, lane);
        if (middle.out_lane_free(p, lane) && healthy) continue;  // serves
        if (healthy) {
          const ConnectionId owner = owner23(j, p, lane);
          if (viable(owner, txn)) return owner;
        }
      } else {
        bool serves = false;
        for (Wavelength l = 0; l < params.k && !serves; ++l) {
          serves = middle.out_lane_free(p, l) &&
                   (faults == nullptr || faults->link23_usable(j, p, l));
        }
        if (serves) continue;
        for (Wavelength l = 0; l < params.k; ++l) {
          if (faults != nullptr && !faults->link23_usable(j, p, l)) continue;
          const ConnectionId owner = owner23(j, p, l);
          if (viable(owner, txn)) return owner;
        }
      }
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// RepackEngine
// ---------------------------------------------------------------------------

std::optional<ConnectionId> RepackEngine::connect(const MulticastRequest& request) {
  // Classic first: an idle engine adds one branch to the admit path and
  // nothing else (no planning, no timers, no allocations).
  if (const auto id = router_->try_connect(request)) {
    moved_.clear();
    return id;
  }
  if (!policy_.enabled || router_->last_error() != ConnectError::kBlocked) {
    moved_.clear();
    return std::nullopt;
  }

  RepackMetrics& counters = RepackMetrics::get();
  counters.attempts.add();
  ScopedTimer timer(counters.migrate);
  TraceSpan span("repack.migrate");

  executor_.begin();
  moved_.clear();
  pending_.clear();
  pending_.push_back(PendingPlace{request, std::nullopt});

  // Work list: place the head item; when it blocks, break the session the
  // planner blames and retry -- the released victim joins the tail, so a
  // victim that itself blocks extends the chain. Bounded by the move
  // budget; any dead end rolls the whole transaction back.
  std::size_t moves = 0;
  std::size_t head = 0;
  std::optional<ConnectionId> root_id;
  bool failed = false;
  while (head < pending_.size()) {
    if (const auto id = executor_.try_admit(pending_[head].request)) {
      if (pending_[head].old_id) {
        moved_.emplace_back(*pending_[head].old_id, *id);
      } else {
        root_id = *id;
      }
      ++head;
      continue;
    }
    if (moves >= policy_.max_moves) {
      failed = true;
      break;
    }
    planner_.refresh();
    const auto victim = planner_.propose(pending_[head].request, executor_);
    if (!victim) {
      failed = true;
      break;
    }
    pending_.push_back(PendingPlace{
        router_->network().find_connection(*victim)->first, *victim});
    executor_.release(*victim);  // break
    ++moves;
    // Test seam: a failure here leaves the victim torn down with its
    // replacement not yet made -- the worst possible interruption point.
    if (failure_injection_ && failure_injection_(moves)) {
      failed = true;
      break;
    }
    // Loop retries the head placement against the freed state (make).
  }

  if (failed || !root_id) {
    executor_.rollback();
    counters.failed.add();
    moved_.clear();
    return std::nullopt;
  }
  executor_.commit();
  counters.admits.add();
  counters.sessions_moved.add(moved_.size());
  counters.chain_length.record(moved_.size());
  moved_total_ += moved_.size();
  max_chain_ = std::max(max_chain_, moved_.size());
  span.arg("chain", static_cast<std::int64_t>(moved_.size()));
  return root_id;
}

}  // namespace wdm::repack

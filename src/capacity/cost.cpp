#include "capacity/cost.h"

#include <sstream>
#include <stdexcept>

#include "capacity/capacity.h"

namespace wdm {

std::string CrossbarCost::to_string() const {
  std::ostringstream os;
  os << "crosspoints=" << crosspoints << " converters=" << converters
     << " splitters=" << splitters << " combiners=" << combiners
     << " muxes=" << muxes << " demuxes=" << demuxes;
  return os.str();
}

CrossbarCost crossbar_cost(std::size_t N, std::size_t k, MulticastModel model) {
  if (N == 0 || k == 0) throw std::invalid_argument("crossbar_cost: N, k >= 1");
  const std::uint64_t n = N;
  const std::uint64_t lanes = k;
  const std::uint64_t nk = n * lanes;
  CrossbarCost cost;
  // Fig. 1's port model, both ends of both fibers: each input node muxes its
  // k transmitters onto the input fiber and the network demuxes it; the
  // network muxes each output fiber and the output node demuxes it to its k
  // receivers. Hence 2N muxes and 2N demuxes for every fabric variant.
  cost.muxes = 2 * n;
  cost.demuxes = 2 * n;
  switch (model) {
    case MulticastModel::kMSW:
      // k parallel 1-lane N x N splitter/combiner crossbars (Figs. 4, 5).
      cost.crosspoints = lanes * n * n;
      cost.converters = 0;
      cost.splitters = lanes * n;  // per plane: one 1->N splitter per input
      cost.combiners = lanes * n;  // per plane: one N->1 combiner per output
      break;
    case MulticastModel::kMSDW:
      // Nk x Nk crossbar; converter per *input* wavelength (Figs. 3a, 6).
      cost.crosspoints = nk * nk;
      cost.converters = nk;
      cost.splitters = nk;  // one 1->Nk splitter per input wavelength
      cost.combiners = nk;  // one Nk->1 combiner per output wavelength
      break;
    case MulticastModel::kMAW:
      // Nk x Nk crossbar; converter per *output* wavelength (Figs. 3b, 7).
      cost.crosspoints = nk * nk;
      cost.converters = nk;
      cost.splitters = nk;
      cost.combiners = nk;
      break;
  }
  return cost;
}

std::uint64_t electronic_equivalent_crosspoints(std::size_t N, std::size_t k) {
  const std::uint64_t nk = static_cast<std::uint64_t>(N) * k;
  return nk * nk;
}

double capacity_per_crosspoint(std::size_t N, std::size_t k,
                               MulticastModel model) {
  return log10_multicast_capacity(N, k, model, AssignmentKind::kAny) /
         static_cast<double>(crossbar_cost(N, k, model).crosspoints);
}

}  // namespace wdm

// Crossbar-based network cost (§2.3, Table 1).
//
// The paper measures hardware cost as the number of crosspoints (SOA gates)
// plus the number of wavelength converters:
//   MSW : k N^2 crosspoints, 0 converters (k parallel 1-lane crossbars)
//   MSDW: k^2 N^2 crosspoints, k N converters (input side, Fig. 3a)
//   MAW : k^2 N^2 crosspoints, k N converters (output side, Fig. 3b)
// We also tally the passive parts (splitters, combiners, mux/demux) so the
// gate-level fabric builders can be audited against closed forms.
#pragma once

#include <cstdint>
#include <string>

#include "capacity/models.h"

namespace wdm {

struct CrossbarCost {
  std::uint64_t crosspoints = 0;
  std::uint64_t converters = 0;
  std::uint64_t splitters = 0;
  std::uint64_t combiners = 0;
  std::uint64_t muxes = 0;
  std::uint64_t demuxes = 0;

  friend bool operator==(const CrossbarCost&, const CrossbarCost&) = default;
  [[nodiscard]] std::string to_string() const;
};

/// Closed-form §2.3 cost of the N x N k-wavelength crossbar fabric under
/// `model` (as constructed in Figs. 4-7).
[[nodiscard]] CrossbarCost crossbar_cost(std::size_t N, std::size_t k,
                                         MulticastModel model);

/// Crosspoints of the Nk x Nk electronic multicast crossbar, for the §2.2
/// comparison: (Nk)^2.
[[nodiscard]] std::uint64_t electronic_equivalent_crosspoints(std::size_t N,
                                                              std::size_t k);

/// §2.4's cost-performance trade-off as one number: log10 of the
/// any-multicast capacity bought per crosspoint of the crossbar fabric.
/// MSW always wins this metric (its capacity loses a constant factor per
/// exponent digit while its fabric saves a k factor), which is exactly why
/// the paper frames MSW-vs-MAW as a genuine trade-off -- and why MSDW,
/// which ties MAW's cost with less capacity, is dominated on every metric.
[[nodiscard]] double capacity_per_crosspoint(std::size_t N, std::size_t k,
                                             MulticastModel model);

}  // namespace wdm

// Multicast capacity of an N x N k-wavelength WDM network (Lemmas 1-3).
//
// The multicast capacity under a model is the number of distinct multicast
// assignments the network can realize:
//   Lemma 1 (MSW):  N^(Nk) full,  (N+1)^(Nk) any.
//   Lemma 2 (MAW):  [P(Nk,k)]^N full,
//                   [sum_{j=0..k} P(Nk, k-j) C(k,j)]^N any.
//   Lemma 3 (MSDW): Stirling-number sums; evaluated here through the
//                   generating polynomial f(z) = sum_j S(N,j) z^j (full) or
//                   g(z) = sum_l C(N,l) sum_j S(N-l,j) z^j (any), as
//                   capacity = sum_t P(Nk,t) * [z^t] (f or g)(z)^k,
//                   which collapses the paper's N^k-term sum to a
//                   polynomial power.
// Exact values use BigUInt; log10 variants (lgamma/log-sum-exp based) cover
// parameter ranges where exact evaluation is unnecessarily slow.
#pragma once

#include <cstddef>

#include "capacity/models.h"
#include "util/biguint.h"

namespace wdm {

enum class AssignmentKind { kFull, kAny };

[[nodiscard]] inline const char* assignment_kind_name(AssignmentKind kind) {
  return kind == AssignmentKind::kFull ? "full" : "any";
}

/// Exact multicast capacity (Lemmas 1-3). Requires N >= 1, k >= 1.
[[nodiscard]] BigUInt multicast_capacity(std::size_t N, std::size_t k,
                                         MulticastModel model, AssignmentKind kind);

/// log10 of the capacity, computed without big integers; matches the exact
/// value to ~1e-9 relative error. Suitable for N into the thousands.
[[nodiscard]] double log10_multicast_capacity(std::size_t N, std::size_t k,
                                              MulticastModel model,
                                              AssignmentKind kind);

/// Capacity of the Nk x Nk *electronic* multicast network the paper compares
/// against in §2.2 ((Nk)^(Nk) full, (Nk+1)^(Nk) any): the upper envelope no
/// WDM model reaches for k > 1.
[[nodiscard]] BigUInt electronic_equivalent_capacity(std::size_t N, std::size_t k,
                                                     AssignmentKind kind);

}  // namespace wdm

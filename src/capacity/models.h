// The three WDM multicast models of §2.1.
//
//   MSW  - Multicast with Same Wavelength: source and every destination of a
//          connection use the same lane. No converters needed.
//   MSDW - Multicast with Same Destination Wavelength: all destinations share
//          one lane; the source lane may differ (one converter per
//          connection, at the input side).
//   MAW  - Multicast with Any Wavelength: every endpoint may use any lane
//          (one converter per destination, at the output side).
// Strictness: every MSW-legal connection is MSDW-legal, and every MSDW-legal
// connection is MAW-legal (MSW < MSDW < MAW).
#pragma once

#include <array>
#include <string>

namespace wdm {

enum class MulticastModel : int { kMSW = 0, kMSDW = 1, kMAW = 2 };

inline constexpr std::array<MulticastModel, 3> kAllModels = {
    MulticastModel::kMSW, MulticastModel::kMSDW, MulticastModel::kMAW};

[[nodiscard]] inline const char* model_name(MulticastModel model) {
  switch (model) {
    case MulticastModel::kMSW: return "MSW";
    case MulticastModel::kMSDW: return "MSDW";
    case MulticastModel::kMAW: return "MAW";
  }
  return "?";
}

/// True iff every connection legal under `weaker` is legal under `stronger`.
[[nodiscard]] inline bool model_at_least(MulticastModel stronger,
                                         MulticastModel weaker) {
  return static_cast<int>(stronger) >= static_cast<int>(weaker);
}

/// Whether a fabric under this model needs wavelength converters.
[[nodiscard]] inline bool model_needs_converters(MulticastModel model) {
  return model != MulticastModel::kMSW;
}

}  // namespace wdm

#include "capacity/enumerate.h"

#include <cmath>
#include <stdexcept>

namespace wdm {

bool assignment_legal(const AssignmentMap& map, std::size_t N, std::size_t k,
                      MulticastModel model) {
  const std::size_t nk = N * k;
  if (map.size() != nk) {
    throw std::invalid_argument("assignment_legal: map size must be N*k");
  }
  // Gather the outputs of each source (the multicast connections).
  std::vector<std::vector<std::size_t>> groups(nk);
  for (std::size_t out = 0; out < nk; ++out) {
    const std::int32_t src = map[out];
    if (src == kUnconnected) continue;
    if (src < 0 || static_cast<std::size_t>(src) >= nk) return false;
    groups[static_cast<std::size_t>(src)].push_back(out);
  }

  for (std::size_t src = 0; src < nk; ++src) {
    const auto& outs = groups[src];
    if (outs.empty()) continue;
    const std::size_t src_lane = src % k;

    // At most one destination per output port within one connection.
    std::vector<bool> port_used(N, false);
    const std::size_t first_lane = outs.front() % k;
    for (const std::size_t out : outs) {
      const std::size_t port = out / k;
      const std::size_t lane = out % k;
      if (port_used[port]) return false;
      port_used[port] = true;
      switch (model) {
        case MulticastModel::kMSW:
          if (lane != src_lane) return false;
          break;
        case MulticastModel::kMSDW:
          if (lane != first_lane) return false;
          break;
        case MulticastModel::kMAW:
          break;
      }
    }
  }
  return true;
}

void for_each_assignment(std::size_t N, std::size_t k, MulticastModel model,
                         AssignmentKind kind,
                         const std::function<bool(const AssignmentMap&)>& visit,
                         std::uint64_t max_candidates) {
  const std::size_t nk = N * k;
  const std::uint64_t choices =
      static_cast<std::uint64_t>(nk) + (kind == AssignmentKind::kAny ? 1 : 0);
  // Candidate count = choices^(nk); reject absurd sizes up front.
  const double candidates = std::pow(static_cast<double>(choices),
                                     static_cast<double>(nk));
  if (candidates > static_cast<double>(max_candidates)) {
    throw std::invalid_argument("for_each_assignment: candidate space too large");
  }

  AssignmentMap map(nk, kind == AssignmentKind::kAny ? kUnconnected : 0);
  const std::int32_t first_choice = kind == AssignmentKind::kAny ? kUnconnected : 0;
  const auto last_choice = static_cast<std::int32_t>(nk - 1);

  for (;;) {
    if (assignment_legal(map, N, k, model)) {
      if (!visit(map)) return;
    }
    // Odometer increment.
    std::size_t position = 0;
    while (position < nk) {
      if (map[position] < last_choice) {
        ++map[position];
        break;
      }
      map[position] = first_choice;
      ++position;
    }
    if (position == nk) break;
  }
}

std::uint64_t count_assignments_bruteforce(std::size_t N, std::size_t k,
                                           MulticastModel model,
                                           AssignmentKind kind,
                                           std::uint64_t max_candidates) {
  std::uint64_t legal = 0;
  for_each_assignment(
      N, k, model, kind,
      [&legal](const AssignmentMap&) {
        ++legal;
        return true;
      },
      max_candidates);
  return legal;
}

std::vector<MulticastRequest> requests_from_assignment(const AssignmentMap& map,
                                                       std::size_t N,
                                                       std::size_t k) {
  const std::size_t nk = N * k;
  if (map.size() != nk) {
    throw std::invalid_argument("requests_from_assignment: map size must be N*k");
  }
  std::vector<MulticastRequest> requests(nk);
  for (std::size_t out = 0; out < nk; ++out) {
    const std::int32_t src = map[out];
    if (src == kUnconnected) continue;
    auto& request = requests.at(static_cast<std::size_t>(src));
    request.input = {static_cast<std::size_t>(src) / k,
                     static_cast<Wavelength>(static_cast<std::size_t>(src) % k)};
    request.outputs.push_back({out / k, static_cast<Wavelength>(out % k)});
  }
  std::erase_if(requests,
                [](const MulticastRequest& request) { return request.outputs.empty(); });
  return requests;
}

}  // namespace wdm

#include "capacity/capacity.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "combinatorics/combinatorics.h"
#include "combinatorics/polynomial.h"

namespace wdm {

namespace {

void check_parameters(std::size_t N, std::size_t k) {
  if (N == 0 || k == 0) {
    throw std::invalid_argument("multicast_capacity: N and k must be >= 1");
  }
}

// f(z) = sum_{j=1..N} S(N, j) z^j: ways the N same-lane output wavelengths
// form j multicast groups (Lemma 3, full case).
Polynomial msdw_full_generator(std::size_t N, const StirlingTable& table) {
  std::vector<BigUInt> coefficients(N + 1);
  for (std::size_t j = 1; j <= N; ++j) coefficients[j] = table.get(N, j);
  return Polynomial{std::move(coefficients)};
}

// g(z) = sum_{l=0..N} C(N, l) sum_{j} S(N-l, j) z^j: additionally choose l
// of the lane's N output wavelengths to stay idle (Lemma 3, any case).
// The l = N term contributes the constant 1 (S(0,0) z^0).
Polynomial msdw_any_generator(std::size_t N, const StirlingTable& table) {
  std::vector<BigUInt> coefficients(N + 1);
  for (std::size_t l = 0; l <= N; ++l) {
    const BigUInt choose_idle = binomial(N, l);
    const std::size_t active = N - l;
    for (std::size_t j = 1; j <= active; ++j) {
      coefficients[j] += choose_idle * table.get(active, j);
    }
    if (active == 0) coefficients[0] += choose_idle;  // S(0,0) = 1: all idle
  }
  return Polynomial{std::move(coefficients)};
}

BigUInt msdw_capacity(std::size_t N, std::size_t k, AssignmentKind kind) {
  const StirlingTable table(N);
  const Polynomial per_lane = (kind == AssignmentKind::kFull)
                                  ? msdw_full_generator(N, table)
                                  : msdw_any_generator(N, table);
  const Polynomial all_lanes = per_lane.pow(k);
  // capacity = sum_t P(Nk, t) * [z^t] all_lanes
  BigUInt total;
  const std::size_t nk = N * k;
  for (int t = 0; t <= all_lanes.degree(); ++t) {
    const BigUInt& ways_to_group = all_lanes.coefficient(static_cast<std::size_t>(t));
    if (ways_to_group.is_zero()) continue;
    total += falling_factorial(nk, static_cast<std::uint64_t>(t)) * ways_to_group;
  }
  return total;
}

BigUInt maw_capacity(std::size_t N, std::size_t k, AssignmentKind kind) {
  const std::size_t nk = N * k;
  if (kind == AssignmentKind::kFull) {
    return falling_factorial(nk, k).pow(N);
  }
  BigUInt per_port;
  for (std::size_t j = 0; j <= k; ++j) {
    per_port += falling_factorial(nk, k - j) * binomial(k, j);
  }
  return per_port.pow(N);
}

// ---------------------------------------------------------------------------
// log10 versions. MSDW needs a log-space polynomial (log-sum-exp addition).

class LogPolynomial {
 public:
  explicit LogPolynomial(std::vector<double> log_coefficients)
      : log_coefficients_(std::move(log_coefficients)) {}

  [[nodiscard]] std::size_t size() const { return log_coefficients_.size(); }
  [[nodiscard]] double log_coefficient(std::size_t power) const {
    return log_coefficients_[power];
  }

  [[nodiscard]] LogPolynomial multiply(const LogPolynomial& rhs) const {
    std::vector<double> out(size() + rhs.size() - 1,
                            -std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < size(); ++i) {
      if (std::isinf(log_coefficients_[i])) continue;
      for (std::size_t j = 0; j < rhs.size(); ++j) {
        if (std::isinf(rhs.log_coefficients_[j])) continue;
        out[i + j] = log_add(out[i + j], log_coefficients_[i] + rhs.log_coefficients_[j]);
      }
    }
    return LogPolynomial{std::move(out)};
  }

  [[nodiscard]] LogPolynomial pow(std::size_t exponent) const {
    LogPolynomial result{{0.0}};  // log10(1)
    LogPolynomial base = *this;
    while (exponent != 0) {
      if (exponent & 1) result = result.multiply(base);
      exponent >>= 1;
      if (exponent != 0) base = base.multiply(base);
    }
    return result;
  }

  /// log10(a + b) given log10 a and log10 b.
  static double log_add(double log_a, double log_b) {
    if (std::isinf(log_a)) return log_b;
    if (std::isinf(log_b)) return log_a;
    if (log_a < log_b) std::swap(log_a, log_b);
    return log_a + std::log10(1.0 + std::pow(10.0, log_b - log_a));
  }

 private:
  std::vector<double> log_coefficients_;
};

// log10 of Stirling S(n, j) for all j, by running the recurrence in
// log space (values overflow double for n in the hundreds).
std::vector<std::vector<double>> log10_stirling_rows(std::size_t n_max) {
  const double neg_inf = -std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> rows(n_max + 1);
  rows[0] = {0.0};
  for (std::size_t n = 1; n <= n_max; ++n) {
    rows[n].assign(n + 1, neg_inf);
    for (std::size_t j = 1; j <= n; ++j) {
      double value = (j <= n - 1)
                         ? std::log10(static_cast<double>(j)) + rows[n - 1][j]
                         : neg_inf;
      value = LogPolynomial::log_add(value, rows[n - 1][j - 1]);
      rows[n][j] = value;
    }
  }
  return rows;
}

double log10_msdw_capacity(std::size_t N, std::size_t k, AssignmentKind kind) {
  const auto stirling = log10_stirling_rows(N);
  const double neg_inf = -std::numeric_limits<double>::infinity();
  std::vector<double> per_lane(N + 1, neg_inf);
  if (kind == AssignmentKind::kFull) {
    for (std::size_t j = 1; j <= N; ++j) per_lane[j] = stirling[N][j];
  } else {
    for (std::size_t l = 0; l <= N; ++l) {
      const double log_choose =
          log10_binomial(static_cast<double>(N), static_cast<double>(l));
      const std::size_t active = N - l;
      if (active == 0) {
        per_lane[0] = LogPolynomial::log_add(per_lane[0], log_choose);
        continue;
      }
      for (std::size_t j = 1; j <= active; ++j) {
        per_lane[j] =
            LogPolynomial::log_add(per_lane[j], log_choose + stirling[active][j]);
      }
    }
  }
  const LogPolynomial all_lanes = LogPolynomial{std::move(per_lane)}.pow(k);
  const double nk = static_cast<double>(N * k);
  double total = neg_inf;
  for (std::size_t t = 0; t < all_lanes.size(); ++t) {
    const double coefficient = all_lanes.log_coefficient(t);
    if (std::isinf(coefficient)) continue;
    total = LogPolynomial::log_add(
        total, coefficient + log10_falling_factorial(nk, static_cast<double>(t)));
  }
  return total;
}

}  // namespace

BigUInt multicast_capacity(std::size_t N, std::size_t k, MulticastModel model,
                           AssignmentKind kind) {
  check_parameters(N, k);
  const std::uint64_t nk = static_cast<std::uint64_t>(N) * k;
  switch (model) {
    case MulticastModel::kMSW:
      return (kind == AssignmentKind::kFull) ? ipow(N, nk) : ipow(N + 1, nk);
    case MulticastModel::kMSDW:
      return msdw_capacity(N, k, kind);
    case MulticastModel::kMAW:
      return maw_capacity(N, k, kind);
  }
  throw std::logic_error("multicast_capacity: unknown model");
}

double log10_multicast_capacity(std::size_t N, std::size_t k, MulticastModel model,
                                AssignmentKind kind) {
  check_parameters(N, k);
  const double nk = static_cast<double>(N) * static_cast<double>(k);
  switch (model) {
    case MulticastModel::kMSW:
      return nk * std::log10(static_cast<double>(kind == AssignmentKind::kFull
                                                      ? N
                                                      : N + 1));
    case MulticastModel::kMSDW:
      return log10_msdw_capacity(N, k, kind);
    case MulticastModel::kMAW: {
      if (kind == AssignmentKind::kFull) {
        return static_cast<double>(N) *
               log10_falling_factorial(nk, static_cast<double>(k));
      }
      double per_port = -std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j <= k; ++j) {
        per_port = LogPolynomial::log_add(
            per_port,
            log10_falling_factorial(nk, static_cast<double>(k - j)) +
                log10_binomial(static_cast<double>(k), static_cast<double>(j)));
      }
      return static_cast<double>(N) * per_port;
    }
  }
  throw std::logic_error("log10_multicast_capacity: unknown model");
}

BigUInt electronic_equivalent_capacity(std::size_t N, std::size_t k,
                                       AssignmentKind kind) {
  check_parameters(N, k);
  const std::uint64_t nk = static_cast<std::uint64_t>(N) * k;
  return (kind == AssignmentKind::kFull) ? ipow(nk, nk) : ipow(nk + 1, nk);
}

}  // namespace wdm

// Brute-force multicast-assignment enumeration for small networks.
//
// This is the ground truth the capacity formulas (Lemmas 1-3) are validated
// against: it counts assignments straight from the *definitions* in §2.1 --
// each output wavelength picks an input wavelength (or none), connections
// are the groups of outputs sharing a source, and the model rules are
// checked per group. Exponential in Nk, so restricted to toy sizes; that is
// exactly its purpose.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "capacity/capacity.h"
#include "capacity/models.h"
#include "core/connection.h"

namespace wdm {

/// An assignment maps each output wavelength (index = port*k + lane) to an
/// input wavelength index in [0, Nk) or kUnconnected.
inline constexpr std::int32_t kUnconnected = -1;
using AssignmentMap = std::vector<std::int32_t>;

/// Check the §2.1 rules for `map` under `model`:
///  * the outputs sharing one source form a single multicast connection;
///  * within a connection, at most one output per output port;
///  * MSW: every endpoint lane equals the source lane;
///  * MSDW: all destination lanes equal (source lane free);
///  * MAW: no lane restriction.
[[nodiscard]] bool assignment_legal(const AssignmentMap& map, std::size_t N,
                                    std::size_t k, MulticastModel model);

/// Count legal assignments by exhaustive enumeration. kFull forbids
/// kUnconnected. Throws std::invalid_argument if the candidate space
/// exceeds `max_candidates` (guards against accidental explosion).
[[nodiscard]] std::uint64_t count_assignments_bruteforce(
    std::size_t N, std::size_t k, MulticastModel model, AssignmentKind kind,
    std::uint64_t max_candidates = 20'000'000);

/// Visit every legal assignment (the same enumeration as the counter, but
/// with a callback). The callback receives the assignment map; return false
/// from it to stop early.
void for_each_assignment(std::size_t N, std::size_t k, MulticastModel model,
                         AssignmentKind kind,
                         const std::function<bool(const AssignmentMap&)>& visit,
                         std::uint64_t max_candidates = 20'000'000);

/// Decompose an assignment map into its multicast connections: one request
/// per input wavelength with a non-empty destination group. The map is
/// assumed legal (assignment_legal) -- the §2.1 rules guarantee the result
/// is a valid set of simultaneous requests.
[[nodiscard]] std::vector<MulticastRequest> requests_from_assignment(
    const AssignmentMap& map, std::size_t N, std::size_t k);

}  // namespace wdm

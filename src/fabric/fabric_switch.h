// Controller for a gate-level crossbar fabric.
//
// FabricSwitch owns a CrossbarFabric and exposes connection-oriented
// semantics: set up / tear down multicast connections by driving the SOA
// gates and converters, enforcing the §2.1 usage rules (an input wavelength
// serves at most one connection; an output wavelength belongs to at most one
// connection; a connection touches at most one wavelength per output port)
// and the per-model lane rules. verify() then *physically* checks the state:
// it lights every active transmitter and propagates signals through the
// circuit, asserting each intended receiver sees exactly its stream -- the
// simulation equivalent of putting a power meter on every output.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/connection.h"
#include "fabric/crossbar_builder.h"

namespace wdm {

class FabricSwitch {
 public:
  using ConnectionId = wdm::ConnectionId;

  FabricSwitch(std::size_t N, std::size_t k, MulticastModel model,
               LossModel losses = {});

  [[nodiscard]] const CrossbarFabric& fabric() const { return fabric_; }
  [[nodiscard]] std::size_t port_count() const { return fabric_.port_count(); }
  [[nodiscard]] std::size_t lane_count() const { return fabric_.lane_count(); }
  [[nodiscard]] MulticastModel model() const { return fabric_.model(); }

  /// Model/geometry legality of the request itself (state-independent).
  /// nullopt = legal.
  [[nodiscard]] std::optional<ConnectError> check_request(
      const MulticastRequest& request) const;

  /// Full admissibility: request legality plus endpoint availability.
  [[nodiscard]] std::optional<ConnectError> check_admissible(
      const MulticastRequest& request) const;

  /// Install the connection, driving gates/converters and lighting the
  /// transmitter. Throws std::invalid_argument / std::runtime_error with the
  /// ConnectError name on failure.
  ConnectionId connect(const MulticastRequest& request);

  /// Non-throwing variant.
  [[nodiscard]] std::optional<ConnectionId> try_connect(const MulticastRequest& request);

  /// Tear down; throws std::out_of_range for unknown ids.
  void disconnect(ConnectionId id);

  [[nodiscard]] std::size_t active_connections() const { return connections_.size(); }
  [[nodiscard]] bool input_busy(const WavelengthEndpoint& endpoint) const;
  [[nodiscard]] bool output_busy(const WavelengthEndpoint& endpoint) const;

  struct VerifyReport {
    bool ok = true;
    std::vector<std::string> errors;
    /// Worst (lowest) delivered power over all receivers, dBm.
    double min_power_dbm = 0.0;
    /// Most SOA gates crossed by any delivered beam (crosstalk proxy).
    std::uint32_t max_gates_crossed = 0;

    [[nodiscard]] std::string to_string() const;
  };

  /// Propagate light through the circuit and check every active connection
  /// delivers exactly its stream to exactly its destinations.
  [[nodiscard]] VerifyReport verify() const;

 private:
  struct ActiveConnection {
    MulticastRequest request;
    std::vector<ComponentId> gates_on;
    std::vector<ComponentId> converters_set;
  };

  void install(ActiveConnection& connection);

  CrossbarFabric fabric_;
  std::map<ConnectionId, ActiveConnection> connections_;
  std::map<WavelengthEndpoint, ConnectionId> busy_inputs_;
  std::map<WavelengthEndpoint, ConnectionId> busy_outputs_;
  ConnectionId next_id_ = 1;
};

}  // namespace wdm

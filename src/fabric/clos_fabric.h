// Gate-level three-stage network: the whole Fig. 8 topology as one optical
// circuit, driven by the §3 routing strategy and verified photon-by-photon.
//
// ClosFabricSwitch glues the two halves of the reproduction together: a
// logical ThreeStageNetwork + Router decide *where* a connection goes (the
// theorems' world), and a physical circuit of 3 module stages spliced by
// k-lane fibers realizes it (SOA gates, converters, splitters, combiners).
// verify() lights every active transmitter and checks each destination
// receiver sees exactly its stream -- so the nonblocking routing results
// are demonstrated all the way down to non-conflicting light paths.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "fabric/module_builder.h"
#include "multistage/nonblocking.h"
#include "multistage/routing.h"

namespace wdm {

class ClosFabricSwitch {
 public:
  ClosFabricSwitch(ClosParams params, Construction construction,
                   MulticastModel network_model,
                   std::optional<RoutingPolicy> policy = std::nullopt,
                   LossModel losses = {});

  /// Theorem-sized factory mirroring MultistageSwitch::nonblocking.
  [[nodiscard]] static ClosFabricSwitch nonblocking(std::size_t n, std::size_t r,
                                                    std::size_t k,
                                                    Construction construction,
                                                    MulticastModel network_model);

  [[nodiscard]] std::size_t port_count() const { return network_.port_count(); }
  [[nodiscard]] std::size_t lane_count() const { return network_.lane_count(); }
  [[nodiscard]] const ThreeStageNetwork& network() const { return network_; }
  [[nodiscard]] const Circuit& circuit() const { return circuit_; }

  /// Route with the paper's strategy AND drive the physical gates.
  [[nodiscard]] std::optional<ConnectionId> try_connect(const MulticastRequest& request);

  /// Install over an explicit route (scripted scenarios); validated by the
  /// logical network, then driven physically. Throws like
  /// ThreeStageNetwork::install on an invalid route.
  ConnectionId install_route(const MulticastRequest& request, const Route& route);
  void disconnect(ConnectionId id);
  [[nodiscard]] ConnectError last_error() const { return router_.last_error(); }
  [[nodiscard]] std::size_t active_connections() const {
    return network_.active_connections();
  }

  struct VerifyReport {
    bool ok = true;
    std::vector<std::string> errors;
    double min_power_dbm = 0.0;
    std::uint32_t max_gates_crossed = 0;
  };
  /// Full optical propagation check of the current state.
  [[nodiscard]] VerifyReport verify() const;

  /// Gate + converter tally of the physical circuit; must equal
  /// multistage_cost for this geometry (the Table 2 audit, but counted from
  /// actual devices).
  [[nodiscard]] MultistageCost audit() const;

 private:
  struct DrivenHardware {
    std::vector<ComponentId> gates_on;
    std::vector<ComponentId> converters_set;
  };

  void drive(const MulticastRequest& request, const Route& route,
             DrivenHardware& hardware);
  /// Drive one module transit's gates/converters.
  void drive_transit(const ModuleCircuit& module, std::size_t in_port,
                     Wavelength in_lane,
                     const std::vector<std::pair<std::size_t, Wavelength>>& outs,
                     DrivenHardware& hardware);

  ThreeStageNetwork network_;
  Router router_;
  Circuit circuit_;
  std::vector<ModuleCircuit> input_modules_;
  std::vector<ModuleCircuit> middle_modules_;
  std::vector<ModuleCircuit> output_modules_;
  std::vector<ComponentId> sources_;  // [port * k + lane]
  std::vector<ComponentId> sinks_;
  std::map<ConnectionId, DrivenHardware> hardware_;
};

}  // namespace wdm

#include "fabric/fabric_switch.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace wdm {

FabricSwitch::FabricSwitch(std::size_t N, std::size_t k, MulticastModel model,
                           LossModel losses)
    : fabric_(N, k, model, losses) {}

std::optional<ConnectError> FabricSwitch::check_request(
    const MulticastRequest& request) const {
  return check_request_shape(request, port_count(), lane_count(), model());
}

std::optional<ConnectError> FabricSwitch::check_admissible(
    const MulticastRequest& request) const {
  if (const auto error = check_request(request)) return error;
  if (busy_inputs_.contains(request.input)) return ConnectError::kInputBusy;
  for (const auto& out : request.outputs) {
    if (busy_outputs_.contains(out)) return ConnectError::kOutputBusy;
  }
  return std::nullopt;
}

void FabricSwitch::install(ActiveConnection& connection) {
  Circuit& circuit = fabric_.circuit();
  const MulticastRequest& request = connection.request;
  switch (model()) {
    case MulticastModel::kMSW:
      for (const auto& out : request.outputs) {
        const ComponentId g =
            fabric_.gate(request.input.port, request.input.lane, out.port, out.lane);
        circuit.set_gate(g, true);
        connection.gates_on.push_back(g);
      }
      break;
    case MulticastModel::kMSDW: {
      // One converter ahead of the splitter retunes the whole connection to
      // the common destination lane (Fig. 3a).
      const Wavelength dest_lane = request.outputs.front().lane;
      const ComponentId converter =
          fabric_.input_converter(request.input.port, request.input.lane);
      circuit.set_converter(converter, dest_lane);
      connection.converters_set.push_back(converter);
      for (const auto& out : request.outputs) {
        const ComponentId g =
            fabric_.gate(request.input.port, request.input.lane, out.port, dest_lane);
        circuit.set_gate(g, true);
        connection.gates_on.push_back(g);
      }
      break;
    }
    case MulticastModel::kMAW:
      // Beams travel at the source lane; each destination's own converter
      // retunes after the combiner (Fig. 3b).
      for (const auto& out : request.outputs) {
        const ComponentId g =
            fabric_.gate(request.input.port, request.input.lane, out.port, out.lane);
        circuit.set_gate(g, true);
        connection.gates_on.push_back(g);
        const ComponentId converter = fabric_.output_converter(out.port, out.lane);
        circuit.set_converter(converter, out.lane);
        connection.converters_set.push_back(converter);
      }
      break;
  }
}

FabricSwitch::ConnectionId FabricSwitch::connect(const MulticastRequest& request) {
  if (const auto error = check_admissible(request)) {
    const std::string what = std::string("FabricSwitch::connect: ") +
                             connect_error_name(*error) + " for " +
                             request.to_string();
    if (*error == ConnectError::kInputBusy || *error == ConnectError::kOutputBusy) {
      throw std::runtime_error(what);
    }
    throw std::invalid_argument(what);
  }

  const ConnectionId id = next_id_++;
  ActiveConnection connection{request, {}, {}};
  install(connection);
  fabric_.circuit().inject(fabric_.source(request.input.port, request.input.lane),
                           static_cast<std::int64_t>(id));
  busy_inputs_[request.input] = id;
  for (const auto& out : request.outputs) busy_outputs_[out] = id;
  connections_.emplace(id, std::move(connection));
  return id;
}

std::optional<FabricSwitch::ConnectionId> FabricSwitch::try_connect(
    const MulticastRequest& request) {
  if (check_admissible(request)) return std::nullopt;
  return connect(request);
}

void FabricSwitch::disconnect(ConnectionId id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) {
    throw std::out_of_range("FabricSwitch::disconnect: unknown connection id");
  }
  Circuit& circuit = fabric_.circuit();
  const ActiveConnection& connection = it->second;
  for (const ComponentId gate : connection.gates_on) circuit.set_gate(gate, false);
  for (const ComponentId converter : connection.converters_set) {
    circuit.set_converter(converter, std::nullopt);
  }
  circuit.clear_injection(
      fabric_.source(connection.request.input.port, connection.request.input.lane));
  busy_inputs_.erase(connection.request.input);
  for (const auto& out : connection.request.outputs) busy_outputs_.erase(out);
  connections_.erase(it);
}

bool FabricSwitch::input_busy(const WavelengthEndpoint& endpoint) const {
  return busy_inputs_.contains(endpoint);
}

bool FabricSwitch::output_busy(const WavelengthEndpoint& endpoint) const {
  return busy_outputs_.contains(endpoint);
}

std::string FabricSwitch::VerifyReport::to_string() const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAIL") << " min_power=" << min_power_dbm
     << "dBm max_gates=" << max_gates_crossed;
  for (const auto& error : errors) os << "\n  " << error;
  return os.str();
}

FabricSwitch::VerifyReport FabricSwitch::verify() const {
  VerifyReport report;
  const PropagationResult result = fabric_.circuit().propagate();
  for (const auto& violation : result.violations) {
    report.ok = false;
    report.errors.push_back("physical violation: " + violation.to_string());
  }

  // Expected deliveries: sink id -> connection id.
  std::map<ComponentId, ConnectionId> expected;
  for (const auto& [id, connection] : connections_) {
    for (const auto& out : connection.request.outputs) {
      expected[fabric_.sink(out.port, out.lane)] = id;
    }
  }

  for (const auto& [sink, signals] : result.received) {
    const auto want = expected.find(sink);
    if (want == expected.end()) {
      report.ok = false;
      report.errors.push_back("unexpected light at " +
                              fabric_.circuit().component(sink).describe(sink));
      continue;
    }
    if (signals.size() != 1 ||
        signals.front().source_tag != static_cast<std::int64_t>(want->second)) {
      report.ok = false;
      report.errors.push_back("wrong stream at " +
                              fabric_.circuit().component(sink).describe(sink));
    }
  }
  for (const auto& [sink, id] : expected) {
    if (!result.received.contains(sink)) {
      report.ok = false;
      report.errors.push_back("no light delivered for connection " +
                              std::to_string(id) + " at " +
                              fabric_.circuit().component(sink).describe(sink));
    }
  }

  if (!result.received.empty()) {
    report.min_power_dbm = result.min_power_dbm();
    report.max_gates_crossed = result.max_gates_crossed();
  }
  return report;
}

}  // namespace wdm

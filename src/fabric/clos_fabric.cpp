#include "fabric/clos_fabric.h"

#include <stdexcept>
#include <string>

#include "multistage/builder.h"

namespace wdm {

ClosFabricSwitch::ClosFabricSwitch(ClosParams params, Construction construction,
                                   MulticastModel network_model,
                                   std::optional<RoutingPolicy> policy,
                                   LossModel losses)
    : network_(params, construction, network_model),
      router_(network_,
              policy.value_or(Router::recommended_policy(params, construction))),
      circuit_(losses) {
  const auto [n, r, m, k] = params;
  const MulticastModel inner = network_.inner_model();
  const auto lanes32 = static_cast<std::uint32_t>(k);

  // Modules first.
  input_modules_.reserve(r);
  output_modules_.reserve(r);
  middle_modules_.reserve(m);
  for (std::size_t i = 0; i < r; ++i) {
    input_modules_.push_back(
        build_module_circuit(circuit_, n, m, k, inner, "in" + std::to_string(i)));
    output_modules_.push_back(build_module_circuit(
        circuit_, m, n, k, network_model, "out" + std::to_string(i)));
  }
  for (std::size_t j = 0; j < m; ++j) {
    middle_modules_.push_back(
        build_module_circuit(circuit_, r, r, k, inner, "mid" + std::to_string(j)));
  }

  // Inter-stage fibers: input i's output fiber j -> middle j's input fiber i;
  // middle j's output fiber p -> output p's input fiber j.
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      circuit_.connect({input_modules_[i].out_mux[j], 0},
                       {middle_modules_[j].in_demux[i], 0});
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t p = 0; p < r; ++p) {
      circuit_.connect({middle_modules_[j].out_mux[p], 0},
                       {output_modules_[p].in_demux[j], 0});
    }
  }

  // Node shells: k transmitters -> node mux -> input module fiber, and
  // output module fiber -> node demux -> k receivers.
  const std::size_t N = params.port_count();
  sources_.resize(N * k);
  sinks_.resize(N * k);
  for (std::size_t port = 0; port < N; ++port) {
    const std::size_t module = port / n;
    const std::size_t local = port % n;
    const ComponentId node_mux =
        circuit_.add_mux(lanes32, "node-mux p" + std::to_string(port));
    circuit_.connect({node_mux, 0}, {input_modules_[module].in_demux[local], 0});
    const ComponentId node_demux =
        circuit_.add_demux(lanes32, "node-demux p" + std::to_string(port));
    circuit_.connect({output_modules_[module].out_mux[local], 0}, {node_demux, 0});
    for (Wavelength lane = 0; lane < k; ++lane) {
      const ComponentId tx =
          circuit_.add_source(lane, "tx p" + std::to_string(port));
      circuit_.connect({tx, 0}, {node_mux, lane});
      sources_[port * k + lane] = tx;
      const ComponentId rx = circuit_.add_sink(lane, "rx p" + std::to_string(port));
      circuit_.connect({node_demux, lane}, {rx, 0});
      sinks_[port * k + lane] = rx;
    }
  }
}

ClosFabricSwitch ClosFabricSwitch::nonblocking(std::size_t n, std::size_t r,
                                               std::size_t k,
                                               Construction construction,
                                               MulticastModel network_model) {
  return ClosFabricSwitch(nonblocking_params(n, r, k, construction), construction,
                          network_model);
}

void ClosFabricSwitch::drive_transit(
    const ModuleCircuit& module, std::size_t in_port, Wavelength in_lane,
    const std::vector<std::pair<std::size_t, Wavelength>>& outs,
    DrivenHardware& hardware) {
  switch (module.model) {
    case MulticastModel::kMSW:
      for (const auto& [out_port, out_lane] : outs) {
        const ComponentId g = module.gate(in_port, in_lane, out_port, out_lane);
        circuit_.set_gate(g, true);
        hardware.gates_on.push_back(g);
      }
      break;
    case MulticastModel::kMSDW: {
      // One shared converter retunes the whole transit to its common
      // outbound lane; the gate matrix then runs on the converted lane.
      const Wavelength out_lane = outs.front().second;
      const ComponentId converter = module.input_converter(in_port, in_lane);
      circuit_.set_converter(converter, out_lane);
      hardware.converters_set.push_back(converter);
      for (const auto& [out_port, lane] : outs) {
        const ComponentId g = module.gate(in_port, in_lane, out_port, lane);
        circuit_.set_gate(g, true);
        hardware.gates_on.push_back(g);
      }
      break;
    }
    case MulticastModel::kMAW:
      for (const auto& [out_port, out_lane] : outs) {
        const ComponentId g = module.gate(in_port, in_lane, out_port, out_lane);
        circuit_.set_gate(g, true);
        hardware.gates_on.push_back(g);
        const ComponentId converter = module.output_converter(out_port, out_lane);
        circuit_.set_converter(converter, out_lane);
        hardware.converters_set.push_back(converter);
      }
      break;
  }
}

void ClosFabricSwitch::drive(const MulticastRequest& request, const Route& route,
                             DrivenHardware& hardware) {
  const std::size_t in_module = network_.input_module_of(request.input.port);
  {
    std::vector<std::pair<std::size_t, Wavelength>> outs;
    for (const RouteBranch& branch : route.branches) {
      outs.emplace_back(branch.middle, branch.link_lane);
    }
    drive_transit(input_modules_[in_module],
                  network_.local_port(request.input.port), request.input.lane,
                  outs, hardware);
  }
  for (const RouteBranch& branch : route.branches) {
    std::vector<std::pair<std::size_t, Wavelength>> outs;
    for (const DeliveryLeg& leg : branch.legs) {
      outs.emplace_back(leg.out_module, leg.link_lane);
    }
    drive_transit(middle_modules_[branch.middle], in_module, branch.link_lane,
                  outs, hardware);
    for (const DeliveryLeg& leg : branch.legs) {
      std::vector<std::pair<std::size_t, Wavelength>> deliveries;
      for (const auto& dest : leg.destinations) {
        deliveries.emplace_back(network_.local_port(dest.port), dest.lane);
      }
      drive_transit(output_modules_[leg.out_module], branch.middle, leg.link_lane,
                    deliveries, hardware);
    }
  }
}

std::optional<ConnectionId> ClosFabricSwitch::try_connect(
    const MulticastRequest& request) {
  // Route through the logical network first (this also records the failure
  // reason); only a committed route drives physical hardware.
  const auto id = router_.try_connect(request);
  if (!id) return std::nullopt;

  const Route& route = network_.connections().at(*id).second;
  DrivenHardware hardware;
  drive(request, route, hardware);
  circuit_.inject(
      sources_[request.input.port * network_.lane_count() + request.input.lane],
      static_cast<std::int64_t>(*id));
  hardware_.emplace(*id, std::move(hardware));
  return id;
}

ConnectionId ClosFabricSwitch::install_route(const MulticastRequest& request,
                                             const Route& route) {
  const ConnectionId id = network_.install(request, route);
  DrivenHardware hardware;
  drive(request, route, hardware);
  circuit_.inject(
      sources_[request.input.port * network_.lane_count() + request.input.lane],
      static_cast<std::int64_t>(id));
  hardware_.emplace(id, std::move(hardware));
  return id;
}

void ClosFabricSwitch::disconnect(ConnectionId id) {
  const auto it = hardware_.find(id);
  if (it == hardware_.end()) {
    throw std::out_of_range("ClosFabricSwitch::disconnect: unknown connection");
  }
  const auto& [request, route] = network_.connections().at(id);
  (void)route;
  circuit_.clear_injection(
      sources_[request.input.port * network_.lane_count() + request.input.lane]);
  for (const ComponentId gate : it->second.gates_on) circuit_.set_gate(gate, false);
  for (const ComponentId converter : it->second.converters_set) {
    circuit_.set_converter(converter, std::nullopt);
  }
  hardware_.erase(it);
  network_.release(id);
}

ClosFabricSwitch::VerifyReport ClosFabricSwitch::verify() const {
  VerifyReport report;
  const PropagationResult result = circuit_.propagate();
  for (const auto& violation : result.violations) {
    report.ok = false;
    report.errors.push_back("physical violation: " + violation.to_string());
  }

  std::map<ComponentId, ConnectionId> expected;
  for (const auto& [id, entry] : network_.connections()) {
    for (const auto& out : entry.first.outputs) {
      expected[sinks_[out.port * network_.lane_count() + out.lane]] = id;
    }
  }
  for (const auto& [sink, signals] : result.received) {
    const auto want = expected.find(sink);
    if (want == expected.end()) {
      report.ok = false;
      report.errors.push_back("unexpected light at " +
                              circuit_.component(sink).describe(sink));
      continue;
    }
    if (signals.size() != 1 ||
        signals.front().source_tag != static_cast<std::int64_t>(want->second)) {
      report.ok = false;
      report.errors.push_back("wrong stream at " +
                              circuit_.component(sink).describe(sink));
    }
  }
  for (const auto& [sink, id] : expected) {
    if (!result.received.contains(sink)) {
      report.ok = false;
      report.errors.push_back("connection " + std::to_string(id) +
                              " delivered no light to " +
                              circuit_.component(sink).describe(sink));
    }
  }
  if (!result.received.empty()) {
    report.min_power_dbm = result.min_power_dbm();
    report.max_gates_crossed = result.max_gates_crossed();
  }
  return report;
}

MultistageCost ClosFabricSwitch::audit() const {
  MultistageCost cost;
  cost.crosspoints = circuit_.count_kind(ComponentKind::kSoaGate);
  cost.converters = circuit_.count_kind(ComponentKind::kConverter);
  return cost;
}

}  // namespace wdm

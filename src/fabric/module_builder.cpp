#include "fabric/module_builder.h"

#include <stdexcept>

namespace wdm {

ComponentId ModuleCircuit::gate(std::size_t in_port, Wavelength in_lane,
                                std::size_t out_port, Wavelength out_lane) const {
  if (in_port >= in_ports || out_port >= out_ports || in_lane >= lanes ||
      out_lane >= lanes) {
    throw std::out_of_range("ModuleCircuit::gate: coordinate out of range");
  }
  if (model == MulticastModel::kMSW) {
    if (in_lane != out_lane) {
      throw std::invalid_argument("ModuleCircuit::gate: MSW has no cross-lane gates");
    }
    return gates[(in_lane * in_ports + in_port) * out_ports + out_port];
  }
  const std::size_t bk = out_ports * lanes;
  return gates[(in_port * lanes + in_lane) * bk + (out_port * lanes + out_lane)];
}

ComponentId ModuleCircuit::input_converter(std::size_t port, Wavelength lane) const {
  if (model != MulticastModel::kMSDW) {
    throw std::logic_error("ModuleCircuit: only MSDW modules convert at input");
  }
  return input_converters.at(port * lanes + lane);
}

ComponentId ModuleCircuit::output_converter(std::size_t port, Wavelength lane) const {
  if (model != MulticastModel::kMAW) {
    throw std::logic_error("ModuleCircuit: only MAW modules convert at output");
  }
  return output_converters.at(port * lanes + lane);
}

ModuleCircuit build_module_circuit(Circuit& circuit, std::size_t a, std::size_t b,
                                   std::size_t k, MulticastModel model,
                                   const std::string& name) {
  if (a == 0 || b == 0 || k == 0) {
    throw std::invalid_argument("build_module_circuit: a, b, k >= 1");
  }
  ModuleCircuit module;
  module.model = model;
  module.in_ports = a;
  module.out_ports = b;
  module.lanes = k;

  const auto lanes32 = static_cast<std::uint32_t>(k);
  for (std::size_t i = 0; i < a; ++i) {
    module.in_demux.push_back(
        circuit.add_demux(lanes32, name + " in-demux " + std::to_string(i)));
  }
  for (std::size_t o = 0; o < b; ++o) {
    module.out_mux.push_back(
        circuit.add_mux(lanes32, name + " out-mux " + std::to_string(o)));
  }

  if (model == MulticastModel::kMSW) {
    // k parallel a x b planes.
    module.gates.assign(k * a * b, kNoComponent);
    const auto fan_out = static_cast<std::uint32_t>(b);
    const auto fan_in = static_cast<std::uint32_t>(a);
    for (Wavelength lane = 0; lane < k; ++lane) {
      std::vector<ComponentId> combiners(b);
      for (std::size_t o = 0; o < b; ++o) {
        combiners[o] = circuit.add_combiner(fan_in);
        circuit.connect({combiners[o], 0}, {module.out_mux[o], lane});
      }
      for (std::size_t i = 0; i < a; ++i) {
        const ComponentId splitter = circuit.add_splitter(fan_out);
        circuit.connect({module.in_demux[i], lane}, {splitter, 0});
        for (std::size_t o = 0; o < b; ++o) {
          const ComponentId g = circuit.add_gate();
          circuit.connect({splitter, static_cast<std::uint32_t>(o)}, {g, 0});
          circuit.connect({g, 0}, {combiners[o], static_cast<std::uint32_t>(i)});
          module.gates[(lane * a + i) * b + o] = g;
        }
      }
    }
    return module;
  }

  // Wavelength crossbar (ak) x (bk).
  const std::size_t ak = a * k;
  const std::size_t bk = b * k;
  module.gates.assign(ak * bk, kNoComponent);
  const bool converters_at_input = (model == MulticastModel::kMSDW);
  if (converters_at_input) {
    module.input_converters.resize(ak);
  } else {
    module.output_converters.resize(bk);
  }

  std::vector<ComponentId> combiners(bk);
  for (std::size_t o = 0; o < b; ++o) {
    for (Wavelength lane = 0; lane < k; ++lane) {
      const std::size_t index = o * k + lane;
      combiners[index] = circuit.add_combiner(static_cast<std::uint32_t>(ak));
      if (converters_at_input) {
        circuit.connect({combiners[index], 0}, {module.out_mux[o], lane});
      } else {
        const ComponentId converter = circuit.add_converter();
        circuit.connect({combiners[index], 0}, {converter, 0});
        circuit.connect({converter, 0}, {module.out_mux[o], lane});
        module.output_converters[index] = converter;
      }
    }
  }
  for (std::size_t i = 0; i < a; ++i) {
    for (Wavelength lane = 0; lane < k; ++lane) {
      const std::size_t index = i * k + lane;
      PortRef feed{module.in_demux[i], lane};
      if (converters_at_input) {
        const ComponentId converter = circuit.add_converter();
        circuit.connect(feed, {converter, 0});
        feed = {converter, 0};
        module.input_converters[index] = converter;
      }
      const ComponentId splitter =
          circuit.add_splitter(static_cast<std::uint32_t>(bk));
      circuit.connect(feed, {splitter, 0});
      for (std::size_t o = 0; o < bk; ++o) {
        const ComponentId g = circuit.add_gate();
        circuit.connect({splitter, static_cast<std::uint32_t>(o)}, {g, 0});
        circuit.connect({g, 0}, {combiners[o], static_cast<std::uint32_t>(index)});
        module.gates[index * bk + o] = g;
      }
    }
  }
  return module;
}

}  // namespace wdm

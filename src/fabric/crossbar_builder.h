// Gate-level crossbar fabric construction (paper Figs. 4-7).
//
// Builds the complete optical circuit for an N x N k-wavelength crossbar
// under each multicast model:
//   MSW  (Figs. 4-5): k parallel 1-lane N x N splitter/combiner crossbars,
//        one plane per wavelength; k N^2 SOA gates, no converters.
//   MSDW (Figs. 3a, 6): an Nk x Nk crossbar with one converter per *input*
//        wavelength, placed before the splitter; (Nk)^2 gates.
//   MAW  (Figs. 3b, 7): an Nk x Nk crossbar with one converter per *output*
//        wavelength, placed after the combiner; (Nk)^2 gates.
// Port model (Fig. 1): each input node muxes k fixed-tuned transmitters onto
// its fiber; the network demuxes it; on the way out the network muxes each
// output fiber and the node demuxes to k fixed-tuned receivers.
//
// The result carries dense index maps from (port, lane) coordinates to the
// circuit's component ids so a controller can address gates/converters in
// O(1).
#pragma once

#include <cstdint>
#include <vector>

#include "capacity/cost.h"
#include "capacity/models.h"
#include "optics/circuit.h"

namespace wdm {

class CrossbarFabric {
 public:
  /// Build the full circuit for the given geometry and model.
  CrossbarFabric(std::size_t N, std::size_t k, MulticastModel model,
                 LossModel losses = {});

  [[nodiscard]] std::size_t port_count() const { return n_; }
  [[nodiscard]] std::size_t lane_count() const { return k_; }
  [[nodiscard]] MulticastModel model() const { return model_; }

  [[nodiscard]] Circuit& circuit() { return circuit_; }
  [[nodiscard]] const Circuit& circuit() const { return circuit_; }

  // -- addressing -----------------------------------------------------------
  [[nodiscard]] ComponentId source(std::size_t port, Wavelength lane) const;
  [[nodiscard]] ComponentId sink(std::size_t port, Wavelength lane) const;

  /// The SOA gate from input wavelength (in_port, in_lane) to output
  /// wavelength (out_port, out_lane). Under MSW this exists only for
  /// in_lane == out_lane (throws otherwise).
  [[nodiscard]] ComponentId gate(std::size_t in_port, Wavelength in_lane,
                                 std::size_t out_port, Wavelength out_lane) const;

  /// MSDW only: the converter ahead of input wavelength (port, lane).
  [[nodiscard]] ComponentId input_converter(std::size_t port, Wavelength lane) const;
  /// MAW only: the converter behind output wavelength (port, lane).
  [[nodiscard]] ComponentId output_converter(std::size_t port, Wavelength lane) const;

  /// Component tallies of the built circuit, for auditing against
  /// crossbar_cost() (they must agree exactly).
  [[nodiscard]] CrossbarCost audit() const;

 private:
  void build_port_shell();  // sources, muxes, demuxes, sinks (all models)
  void build_msw();
  void build_wavelength_crossbar();  // shared by MSDW / MAW

  [[nodiscard]] std::size_t wl_index(std::size_t port, Wavelength lane) const {
    return port * k_ + lane;
  }

  std::size_t n_;
  std::size_t k_;
  MulticastModel model_;
  Circuit circuit_;

  std::vector<ComponentId> sources_;          // [wl_index]
  std::vector<ComponentId> sinks_;            // [wl_index]
  std::vector<ComponentId> in_demux_out_;     // network-side demux per input port
  std::vector<ComponentId> out_mux_;          // network-side mux per output port
  std::vector<ComponentId> gates_;            // see gate() for layout
  std::vector<ComponentId> input_converters_;  // MSDW: [wl_index]
  std::vector<ComponentId> output_converters_; // MAW: [wl_index]
};

}  // namespace wdm

// Gate-level construction of one switching module inside a larger circuit.
//
// A module is an a x b crossbar with k wavelengths per port, built exactly
// like the monolithic fabrics of Figs. 4-7 but with *fiber* boundaries: one
// demux per input fiber, one mux per output fiber, so modules can be
// spliced together into multistage networks (Fig. 8) by connecting an
// upstream module's output mux straight into a downstream module's input
// demux. Per model:
//   MSW : k parallel a x b planes, a*b*k gates, no converters;
//   MSDW: (ak) x (bk) gate matrix, one converter per input wavelength;
//   MAW : (ak) x (bk) gate matrix, one converter per output wavelength.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capacity/models.h"
#include "optics/circuit.h"

namespace wdm {

struct ModuleCircuit {
  MulticastModel model = MulticastModel::kMSW;
  std::size_t in_ports = 0;   // a
  std::size_t out_ports = 0;  // b
  std::size_t lanes = 0;      // k

  /// One demux per input fiber; feed light into {in_demux[i], 0}.
  std::vector<ComponentId> in_demux;
  /// One mux per output fiber; light leaves from {out_mux[o], 0}.
  std::vector<ComponentId> out_mux;

  /// The SOA gate from input wavelength (in_port, in_lane) to output
  /// wavelength (out_port, out_lane). MSW modules only have same-lane gates
  /// (throws std::invalid_argument otherwise).
  [[nodiscard]] ComponentId gate(std::size_t in_port, Wavelength in_lane,
                                 std::size_t out_port, Wavelength out_lane) const;

  /// MSDW only: converter ahead of input wavelength (port, lane).
  [[nodiscard]] ComponentId input_converter(std::size_t port, Wavelength lane) const;
  /// MAW only: converter behind output wavelength (port, lane).
  [[nodiscard]] ComponentId output_converter(std::size_t port, Wavelength lane) const;

  [[nodiscard]] std::size_t gate_count() const { return gates.size(); }
  [[nodiscard]] std::size_t converter_count() const {
    return input_converters.size() + output_converters.size();
  }

  // Raw storage (see gate() for the layout).
  std::vector<ComponentId> gates;
  std::vector<ComponentId> input_converters;
  std::vector<ComponentId> output_converters;
};

/// Build the module's components into `circuit` and return the addressing
/// structure. The module's fiber ports are left unwired for the caller to
/// splice.
[[nodiscard]] ModuleCircuit build_module_circuit(Circuit& circuit, std::size_t a,
                                                 std::size_t b, std::size_t k,
                                                 MulticastModel model,
                                                 const std::string& name);

}  // namespace wdm

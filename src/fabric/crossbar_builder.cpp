#include "fabric/crossbar_builder.h"

#include <stdexcept>
#include <string>

namespace wdm {

namespace {
std::string pl(std::size_t port, Wavelength lane) {
  return "p" + std::to_string(port) + wavelength_name(lane);
}
}  // namespace

CrossbarFabric::CrossbarFabric(std::size_t N, std::size_t k, MulticastModel model,
                               LossModel losses)
    : n_(N), k_(k), model_(model), circuit_(losses) {
  if (N == 0 || k == 0) {
    throw std::invalid_argument("CrossbarFabric: N and k must be >= 1");
  }
  build_port_shell();
  if (model == MulticastModel::kMSW) {
    build_msw();
  } else {
    build_wavelength_crossbar();
  }
}

void CrossbarFabric::build_port_shell() {
  const auto lanes = static_cast<std::uint32_t>(k_);
  sources_.resize(n_ * k_);
  sinks_.resize(n_ * k_);
  in_demux_out_.resize(n_);
  out_mux_.resize(n_);

  for (std::size_t port = 0; port < n_; ++port) {
    // Input node: k transmitters -> node mux -> fiber -> network demux.
    const ComponentId node_mux =
        circuit_.add_mux(lanes, "in-node-mux p" + std::to_string(port));
    const ComponentId net_demux =
        circuit_.add_demux(lanes, "in-net-demux p" + std::to_string(port));
    circuit_.connect({node_mux, 0}, {net_demux, 0});
    in_demux_out_[port] = net_demux;
    for (Wavelength lane = 0; lane < k_; ++lane) {
      const ComponentId tx = circuit_.add_source(lane, "tx " + pl(port, lane));
      circuit_.connect({tx, 0}, {node_mux, lane});
      sources_[wl_index(port, lane)] = tx;
    }

    // Output side: network mux -> fiber -> node demux -> k receivers.
    const ComponentId net_mux =
        circuit_.add_mux(lanes, "out-net-mux p" + std::to_string(port));
    const ComponentId node_demux =
        circuit_.add_demux(lanes, "out-node-demux p" + std::to_string(port));
    circuit_.connect({net_mux, 0}, {node_demux, 0});
    out_mux_[port] = net_mux;
    for (Wavelength lane = 0; lane < k_; ++lane) {
      const ComponentId rx = circuit_.add_sink(lane, "rx " + pl(port, lane));
      circuit_.connect({node_demux, lane}, {rx, 0});
      sinks_[wl_index(port, lane)] = rx;
    }
  }
}

void CrossbarFabric::build_msw() {
  // k parallel N x N single-lane crossbars (Fig. 4); each plane is the
  // splitter/gate/combiner crossbar of Fig. 5.
  gates_.assign(k_ * n_ * n_, kNoComponent);
  const auto fan = static_cast<std::uint32_t>(n_);
  for (Wavelength lane = 0; lane < k_; ++lane) {
    // Combiners first so gates can wire straight into them.
    std::vector<ComponentId> combiners(n_);
    for (std::size_t out = 0; out < n_; ++out) {
      combiners[out] = circuit_.add_combiner(fan, "comb " + pl(out, lane));
      circuit_.connect({combiners[out], 0}, {out_mux_[out], lane});
    }
    for (std::size_t in = 0; in < n_; ++in) {
      const ComponentId splitter = circuit_.add_splitter(fan, "split " + pl(in, lane));
      circuit_.connect({in_demux_out_[in], lane}, {splitter, 0});
      for (std::size_t out = 0; out < n_; ++out) {
        const ComponentId g = circuit_.add_gate(
            pl(in, lane) + "->" + pl(out, lane));
        circuit_.connect({splitter, static_cast<std::uint32_t>(out)}, {g, 0});
        circuit_.connect({g, 0}, {combiners[out], static_cast<std::uint32_t>(in)});
        gates_[(lane * n_ + in) * n_ + out] = g;
      }
    }
  }
}

void CrossbarFabric::build_wavelength_crossbar() {
  // Full Nk x Nk crossbar (Figs. 6-7). Converter placement is the only
  // difference between MSDW (input side) and MAW (output side).
  const std::size_t nk = n_ * k_;
  gates_.assign(nk * nk, kNoComponent);
  const auto fan = static_cast<std::uint32_t>(nk);
  const bool converters_at_input = (model_ == MulticastModel::kMSDW);
  if (converters_at_input) {
    input_converters_.resize(nk);
  } else {
    output_converters_.resize(nk);
  }

  // Output column: combiner (-> converter under MAW) -> network mux lane.
  std::vector<ComponentId> combiners(nk);
  for (std::size_t out = 0; out < n_; ++out) {
    for (Wavelength lane = 0; lane < k_; ++lane) {
      const std::size_t o = wl_index(out, lane);
      combiners[o] = circuit_.add_combiner(fan, "comb " + pl(out, lane));
      if (converters_at_input) {
        circuit_.connect({combiners[o], 0}, {out_mux_[out], lane});
      } else {
        const ComponentId converter =
            circuit_.add_converter("out-conv " + pl(out, lane));
        circuit_.connect({combiners[o], 0}, {converter, 0});
        circuit_.connect({converter, 0}, {out_mux_[out], lane});
        output_converters_[o] = converter;
      }
    }
  }

  for (std::size_t in = 0; in < n_; ++in) {
    for (Wavelength lane = 0; lane < k_; ++lane) {
      const std::size_t i = wl_index(in, lane);
      PortRef feed{in_demux_out_[in], lane};
      if (converters_at_input) {
        const ComponentId converter =
            circuit_.add_converter("in-conv " + pl(in, lane));
        circuit_.connect(feed, {converter, 0});
        feed = {converter, 0};
        input_converters_[i] = converter;
      }
      const ComponentId splitter = circuit_.add_splitter(fan, "split " + pl(in, lane));
      circuit_.connect(feed, {splitter, 0});
      for (std::size_t o = 0; o < nk; ++o) {
        const ComponentId g = circuit_.add_gate();
        circuit_.connect({splitter, static_cast<std::uint32_t>(o)}, {g, 0});
        circuit_.connect({g, 0}, {combiners[o], static_cast<std::uint32_t>(i)});
        gates_[i * nk + o] = g;
      }
    }
  }
}

ComponentId CrossbarFabric::source(std::size_t port, Wavelength lane) const {
  return sources_.at(wl_index(port, lane));
}

ComponentId CrossbarFabric::sink(std::size_t port, Wavelength lane) const {
  return sinks_.at(wl_index(port, lane));
}

ComponentId CrossbarFabric::gate(std::size_t in_port, Wavelength in_lane,
                                 std::size_t out_port, Wavelength out_lane) const {
  if (in_port >= n_ || out_port >= n_ || in_lane >= k_ || out_lane >= k_) {
    throw std::out_of_range("CrossbarFabric::gate: coordinate out of range");
  }
  if (model_ == MulticastModel::kMSW) {
    if (in_lane != out_lane) {
      throw std::invalid_argument(
          "CrossbarFabric::gate: MSW fabric has no cross-lane gates");
    }
    return gates_[(in_lane * n_ + in_port) * n_ + out_port];
  }
  const std::size_t nk = n_ * k_;
  return gates_[wl_index(in_port, in_lane) * nk + wl_index(out_port, out_lane)];
}

ComponentId CrossbarFabric::input_converter(std::size_t port, Wavelength lane) const {
  if (model_ != MulticastModel::kMSDW) {
    throw std::logic_error("input_converter: only MSDW fabrics convert at input");
  }
  return input_converters_.at(wl_index(port, lane));
}

ComponentId CrossbarFabric::output_converter(std::size_t port, Wavelength lane) const {
  if (model_ != MulticastModel::kMAW) {
    throw std::logic_error("output_converter: only MAW fabrics convert at output");
  }
  return output_converters_.at(wl_index(port, lane));
}

CrossbarCost CrossbarFabric::audit() const {
  CrossbarCost cost;
  cost.crosspoints = circuit_.count_kind(ComponentKind::kSoaGate);
  cost.converters = circuit_.count_kind(ComponentKind::kConverter);
  cost.splitters = circuit_.count_kind(ComponentKind::kSplitter);
  cost.combiners = circuit_.count_kind(ComponentKind::kCombiner);
  cost.muxes = circuit_.count_kind(ComponentKind::kMux);
  cost.demuxes = circuit_.count_kind(ComponentKind::kDemux);
  return cost;
}

}  // namespace wdm

// Connection restoration and degraded-capacity analysis.
//
// When hardware fails, two questions matter operationally:
//
//   1. What happens to the sessions that were riding the failed piece?
//      restore_connections() finds every active connection whose route
//      crosses a currently-failed component, tears them all down (freeing
//      whatever healthy capacity they held), and re-routes each through the
//      surviving fabric -- reporting restored vs. dropped. The pass is
//      deterministic (connections re-route in ascending id order).
//
//   2. How much nonblocking margin is left? A three-stage network with f
//      failed middle modules behaves exactly like a fresh network built
//      with m-f middles (the degradation-equivalence property, verified in
//      tests/faults_test.cpp), so the Theorem 1/2 bound applies verbatim at
//      the reduced size: degraded_capacity() reports the effective m, the
//      bound, and the remaining failure budget (`faults_to_bound`) before
//      the fabric drops below its proven-nonblocking provisioning.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "faults/fault_model.h"
#include "multistage/builder.h"
#include "multistage/nonblocking.h"

namespace wdm {

/// Outcome of one restoration pass.
struct RestorationReport {
  /// Connections whose route crossed a failed component.
  std::size_t affected = 0;
  /// Re-routed successfully: (old id, new id), ascending old id.
  std::vector<std::pair<ConnectionId, ConnectionId>> restored;
  /// Could not be re-routed; the request is returned so callers can retry
  /// later (e.g. after a repair).
  std::vector<std::pair<ConnectionId, MulticastRequest>> dropped;

  [[nodiscard]] std::string to_string() const;
};

/// Does this route cross any currently-failed component? `request` supplies
/// the input endpoint (the route itself does not store its input module).
[[nodiscard]] bool route_uses_faults(const ThreeStageNetwork& network,
                                     const MulticastRequest& request,
                                     const Route& route, const FaultModel& faults);

/// Re-route every active connection stranded by the network's attached
/// fault model. No-op (empty report) when no fault model is attached or no
/// fault is active. Instrumented: counters faults.sessions_affected /
/// .sessions_restored / .sessions_dropped, timer faults.restore_connections
/// (the restoration latency), span "faults.restore".
RestorationReport restore_connections(MultistageSwitch& sw);

/// Theorem 1/2 margin of a fabric running with `failed_middles` middle
/// modules down.
struct DegradedCapacity {
  std::size_t provisioned_m = 0;   // middles built
  std::size_t failed_middles = 0;  // f
  std::size_t effective_m = 0;     // m - f (0 if f >= m)
  NonblockingBound bound;          // Theorem 1/2 for this geometry
  /// effective_m - bound.m: >= 0 means still provably nonblocking.
  std::ptrdiff_t margin = 0;
  bool nonblocking = false;
  /// Additional middle failures tolerable before margin goes negative.
  std::size_t faults_to_bound = 0;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] DegradedCapacity degraded_capacity(const ClosParams& params,
                                                 Construction construction,
                                                 std::size_t failed_middles);

/// Convenience: read f from a live fault model.
[[nodiscard]] DegradedCapacity degraded_capacity(const ThreeStageNetwork& network,
                                                 const FaultModel& faults);

}  // namespace wdm

#include "faults/fault_process.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace wdm {

std::string FaultEvent::to_string() const {
  std::ostringstream os;
  os << (fail ? "fail " : "repair ") << component.to_string() << " @t=" << time;
  return os.str();
}

namespace {

double exponential(Rng& rng, double mean) {
  double u = rng.next_double();
  if (u <= 0.0) u = 1e-12;
  return -mean * std::log(u);
}

/// One component's alternating up/down renewal process over [0, duration).
void emit_component(std::vector<FaultEvent>& events, const FaultComponent& component,
                    Rng rng, double mtbf, double mttr, double duration) {
  double t = 0.0;
  while (true) {
    t += exponential(rng, mtbf);
    if (t >= duration) return;
    events.push_back({t, component, true});
    t += exponential(rng, mttr);
    if (t >= duration) return;  // stays down past the horizon
    events.push_back({t, component, false});
  }
}

}  // namespace

std::vector<FaultEvent> generate_fault_timeline(const ClosParams& params,
                                                const FaultProcessConfig& config,
                                                double duration) {
  if (config.mtbf <= 0.0 || config.mttr <= 0.0) {
    throw std::invalid_argument("generate_fault_timeline: mtbf and mttr must be > 0");
  }
  if (duration <= 0.0) {
    throw std::invalid_argument("generate_fault_timeline: duration must be > 0");
  }
  const std::size_t m = params.m;
  const std::size_t r = params.r;
  const std::size_t k = params.k;
  const Rng master(config.seed);

  // Fixed linear layout of the full component space, so a component's stream
  // does not depend on which classes are enabled:
  //   [0, m)                       middle modules
  //   [m, m + rm)                  stage 1-2 links
  //   [m + rm, m + 2rm)            stage 2-3 links
  //   [m + 2rm, m + 2rm + rmk)     stage 1-2 link lanes
  //   [m + 2rm + rmk, ... + rmk)   stage 2-3 link lanes
  const std::size_t links_base = m;
  const std::size_t lanes_base = m + 2 * r * m;

  std::vector<FaultEvent> events;
  if (config.middles) {
    for (std::size_t j = 0; j < m; ++j) {
      emit_component(events, {FaultComponentKind::kMiddleModule, j, 0, 0},
                     master.split(j), config.mtbf, config.mttr, duration);
    }
  }
  if (config.links) {
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        emit_component(events, {FaultComponentKind::kLink12, i, j, 0},
                       master.split(links_base + i * m + j), config.mtbf,
                       config.mttr, duration);
      }
    }
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t p = 0; p < r; ++p) {
        emit_component(events, {FaultComponentKind::kLink23, j, p, 0},
                       master.split(links_base + r * m + j * r + p), config.mtbf,
                       config.mttr, duration);
      }
    }
  }
  if (config.lanes) {
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        for (Wavelength lane = 0; lane < k; ++lane) {
          emit_component(
              events,
              {FaultComponentKind::kLink12Lane, i, j, lane},
              master.split(lanes_base + (i * m + j) * k + lane), config.mtbf,
              config.mttr, duration);
        }
      }
    }
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t p = 0; p < r; ++p) {
        for (Wavelength lane = 0; lane < k; ++lane) {
          emit_component(
              events,
              {FaultComponentKind::kLink23Lane, j, p, lane},
              master.split(lanes_base + r * m * k + (j * r + p) * k + lane),
              config.mtbf, config.mttr, duration);
        }
      }
    }
  }

  std::sort(events.begin(), events.end(),
            [](const FaultEvent& lhs, const FaultEvent& rhs) {
              if (lhs.time != rhs.time) return lhs.time < rhs.time;
              if (lhs.component != rhs.component) return lhs.component < rhs.component;
              return lhs.fail && !rhs.fail;  // fail before repair (never same component)
            });
  return events;
}

void apply_fault_event(FaultModel& model, const FaultEvent& event) {
  if (event.fail) {
    model.fail(event.component);
  } else {
    model.repair(event.component);
  }
}

}  // namespace wdm

// Component-failure state for a three-stage WDM multicast network.
//
// A production fabric degrades piece by piece: an SOA-gate middle module
// loses power, an inter-stage fiber is cut, a single wavelength of a link
// fails (dirty connector, drifted laser), a shared converter slot burns out.
// FaultModel records exactly that, at the granularity the paper's cost model
// (§2.3) and limited-spread routing (§3.2) already expose:
//
//   * middle modules            -- the m r x r SOA crossbars of Fig. 8,
//   * inter-stage links         -- the one fiber between each stage-adjacent
//                                  module pair (all k lanes at once),
//   * per-lane link wavelengths -- one lane of one link,
//   * converter-pool slots      -- slots of a shared converter bank
//                                  (ConverterPoolSwitch integration).
//
// The model is pure state: fail()/repair() toggle components, the usable()
// queries combine them (a lane is usable iff its lane, its link, and -- for
// stage-adjacent queries -- the middle module are all healthy). Attach a
// FaultModel to a ThreeStageNetwork and the Router treats failed resources
// as occupied; detached (or attached but empty), routing behavior and cost
// are bit-identical to a fault-free build -- the any() fast path guards
// every hot-path check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "multistage/clos_params.h"
#include "optics/wavelength.h"

namespace wdm {

enum class FaultComponentKind : std::uint8_t {
  kMiddleModule,   // a = middle module index
  kLink12,         // a = input module, b = middle module (whole k-lane fiber)
  kLink23,         // a = middle module, b = output module
  kLink12Lane,     // a, b as kLink12, plus the failed lane
  kLink23Lane,     // a, b as kLink23, plus the failed lane
  kConverterSlot,  // a = slot index in a shared converter bank
};

[[nodiscard]] const char* fault_component_kind_name(FaultComponentKind kind);

/// One failable piece of hardware, addressed by kind + indices.
struct FaultComponent {
  FaultComponentKind kind = FaultComponentKind::kMiddleModule;
  std::size_t a = 0;
  std::size_t b = 0;
  Wavelength lane = 0;

  friend auto operator<=>(const FaultComponent&, const FaultComponent&) = default;
  [[nodiscard]] std::string to_string() const;
};

class FaultModel {
 public:
  /// Component space of a three-stage geometry, plus `converter_slots`
  /// failable slots of a shared converter bank (0 = no bank modeled).
  explicit FaultModel(const ClosParams& params, std::size_t converter_slots = 0);

  [[nodiscard]] const ClosParams& params() const { return params_; }
  [[nodiscard]] std::size_t converter_slot_count() const {
    return converter_slot_failed_.size();
  }

  /// Mark a component failed / repaired. Idempotent (failing a failed
  /// component is a no-op); throws std::out_of_range on bad indices.
  void fail(const FaultComponent& component);
  void repair(const FaultComponent& component);
  [[nodiscard]] bool failed(const FaultComponent& component) const;

  // -- convenience single-component accessors -------------------------------
  void fail_middle(std::size_t j) { fail({FaultComponentKind::kMiddleModule, j, 0, 0}); }
  void repair_middle(std::size_t j) { repair({FaultComponentKind::kMiddleModule, j, 0, 0}); }
  [[nodiscard]] bool middle_failed(std::size_t j) const;

  // -- aggregate queries ----------------------------------------------------
  /// Any failure currently active? This is the routing fast path: when it
  /// returns false the network behaves (and costs) exactly as if no fault
  /// model were attached.
  [[nodiscard]] bool any() const { return active_faults_ != 0; }
  [[nodiscard]] std::size_t active_faults() const { return active_faults_; }
  [[nodiscard]] std::size_t failed_middle_count() const { return failed_middles_; }
  [[nodiscard]] std::size_t failed_converter_slots() const {
    return failed_converter_slot_count_;
  }
  /// Indices of currently-failed middle modules, ascending.
  [[nodiscard]] std::vector<std::size_t> failed_middles() const;

  // -- usability queries (what routing consumes) ----------------------------
  /// Can lane `lane` of the input-module-i -> middle-module-j link carry a
  /// signal? False if the middle module, the whole link, or the lane failed.
  [[nodiscard]] bool link12_usable(std::size_t i, std::size_t j,
                                   Wavelength lane) const;
  /// Same for the middle-module-j -> output-module-p link.
  [[nodiscard]] bool link23_usable(std::size_t j, std::size_t p,
                                   Wavelength lane) const;

  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] std::vector<bool>::reference slot(const FaultComponent& component);
  [[nodiscard]] bool slot_value(const FaultComponent& component) const;

  ClosParams params_;
  std::vector<bool> middle_failed_;          // [m]
  std::vector<bool> link12_failed_;          // [r*m], index i*m + j
  std::vector<bool> link23_failed_;          // [m*r], index j*r + p
  std::vector<bool> link12_lane_failed_;     // [r*m*k], index (i*m + j)*k + lane
  std::vector<bool> link23_lane_failed_;     // [m*r*k], index (j*r + p)*k + lane
  std::vector<bool> converter_slot_failed_;  // [converter_slots]
  std::size_t active_faults_ = 0;
  std::size_t failed_middles_ = 0;
  std::size_t failed_converter_slot_count_ = 0;
};

}  // namespace wdm

// Availability-vs-load simulation: Erlang traffic over a failing fabric.
//
// Classic teletraffic treats blocking as the quality metric of a healthy
// switch; a production fabric must also report *availability* -- what
// capacity survives component failures, and what happens to the sessions
// riding hardware that dies. run_availability_sim merges the two event
// streams: Poisson arrivals / exponential departures (exactly
// run_erlang_sim's traffic) interleaved with a seeded MTBF/MTTR
// failure/repair timeline (fault_process.h). On every failure the
// restoration pass (resilience.h) re-routes stranded sessions through the
// surviving fabric; sessions that cannot be re-routed are dropped and their
// departures cancelled.
//
// Outputs: the Erlang-side tallies, dropped/restored session counts, the
// time-weighted capacity availability (mean fraction of healthy middle
// modules), and the worst Theorem-1/2 margin ever observed. Restoration
// latency flows through util/metrics (timer faults.restore_connections) and
// trace_span ("faults.restore"), so `run_benches` artifacts carry the
// distribution. Deterministic under (traffic seed, fault seed).
#pragma once

#include <string>

#include "faults/fault_process.h"
#include "faults/resilience.h"
#include "sim/traffic_models.h"

namespace wdm {

struct AvailabilityConfig {
  ErlangConfig traffic;        // arrivals, holding, horizon, fanout, skew
  FaultProcessConfig faults;   // MTBF/MTTR process over the components
};

struct AvailabilityStats {
  ErlangStats traffic;                // arrivals/admitted/blocked/abandoned
  std::size_t failure_events = 0;
  std::size_t repair_events = 0;
  std::size_t restore_passes = 0;
  std::size_t sessions_affected = 0;  // live sessions hit by some failure
  std::size_t sessions_restored = 0;  // re-routed through surviving fabric
  std::size_t sessions_dropped = 0;   // affected - restored
  /// Integral over time of (healthy middles / m).
  double time_weighted_capacity = 0.0;
  /// Worst Theorem-1/2 margin seen (middles above the bound; negative =
  /// the fabric dipped below its proven-nonblocking provisioning).
  std::ptrdiff_t min_theorem_margin = 0;
  double duration = 0.0;

  /// Mean fraction of middle-stage capacity that was healthy (1.0 = never
  /// degraded; 0-duration runs report 1.0).
  [[nodiscard]] double capacity_availability() const {
    return duration == 0.0 ? 1.0 : time_weighted_capacity / duration;
  }
  /// Fraction of admitted sessions never dropped by a failure (1.0 when
  /// nothing was admitted).
  [[nodiscard]] double session_survival() const {
    return traffic.admitted == 0
               ? 1.0
               : 1.0 - static_cast<double>(sessions_dropped) /
                           static_cast<double>(traffic.admitted);
  }
  [[nodiscard]] std::string to_string() const;
};

/// Drive `sw` with Erlang traffic while injecting the fault timeline into
/// `faults` (attached to the switch's network for the duration of the run,
/// then restored to its previous attachment). `faults` must match the
/// switch's geometry and is left in its end-of-run state.
[[nodiscard]] AvailabilityStats run_availability_sim(MultistageSwitch& sw,
                                                     FaultModel& faults,
                                                     const AvailabilityConfig& config);

}  // namespace wdm

#include "faults/availability.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/metrics.h"
#include "util/trace_span.h"

namespace wdm {

std::string AvailabilityStats::to_string() const {
  std::ostringstream os;
  os << "availability=" << capacity_availability()
     << " survival=" << session_survival() << " P(block)="
     << traffic.blocking_probability() << " failures=" << failure_events
     << " repairs=" << repair_events << " dropped=" << sessions_dropped
     << " restored=" << sessions_restored << " min_margin="
     << min_theorem_margin;
  return os.str();
}

namespace {

double exponential(Rng& rng, double mean) {
  double u = rng.next_double();
  if (u <= 0.0) u = 1e-12;
  return -mean * std::log(u);
}

struct AvailabilityMetrics {
  Counter& failures = metrics().counter("faults.failures_injected");
  Counter& repairs = metrics().counter("faults.repairs_applied");
  Histogram& restored_per_event =
      metrics().histogram("faults.restored_per_event");

  static AvailabilityMetrics& get() {
    static AvailabilityMetrics instance;
    return instance;
  }
};

}  // namespace

AvailabilityStats run_availability_sim(MultistageSwitch& sw, FaultModel& faults,
                                       const AvailabilityConfig& config) {
  const ErlangConfig& traffic = config.traffic;
  if (traffic.arrival_rate <= 0 || traffic.mean_holding <= 0 ||
      traffic.duration <= 0) {
    throw std::invalid_argument(
        "run_availability_sim: rates and duration must be > 0");
  }
  ThreeStageNetwork& network = sw.network();
  const FaultModel* previous = network.fault_model();
  network.attach_fault_model(&faults);

  Rng rng(traffic.seed);
  const ZipfSampler popularity(sw.port_count(),
                               std::max(0.0, traffic.zipf_exponent));
  const ZipfSampler* skew = traffic.zipf_exponent > 0.0 ? &popularity : nullptr;
  const std::vector<FaultEvent> timeline =
      generate_fault_timeline(network.params(), config.faults, traffic.duration);
  AvailabilityMetrics& counters = AvailabilityMetrics::get();

  AvailabilityStats stats;
  stats.duration = traffic.duration;
  stats.traffic.duration = traffic.duration;
  stats.min_theorem_margin = degraded_capacity(network, faults).margin;
  const double m = static_cast<double>(network.params().m);

  std::multimap<double, ConnectionId> departures;
  double now = 0.0;
  double next_arrival = exponential(rng, 1.0 / traffic.arrival_rate);
  std::size_t live = 0;
  std::size_t fault_index = 0;

  auto advance_to = [&](double t) {
    const double healthy =
        (m - static_cast<double>(faults.failed_middle_count())) / m;
    stats.time_weighted_capacity += healthy * (t - now);
    stats.traffic.time_weighted_sessions += static_cast<double>(live) * (t - now);
    now = t;
  };

  while (true) {
    const double next_departure =
        departures.empty() ? std::numeric_limits<double>::infinity()
                           : departures.begin()->first;
    const double next_fault = fault_index < timeline.size()
                                  ? timeline[fault_index].time
                                  : std::numeric_limits<double>::infinity();
    const double next_event =
        std::min({next_arrival, next_departure, next_fault});
    if (next_event > traffic.duration) {
      advance_to(traffic.duration);
      break;
    }
    advance_to(next_event);

    if (next_fault <= next_arrival && next_fault <= next_departure) {
      const FaultEvent& event = timeline[fault_index++];
      TraceSpan span("faults.inject");
      span.arg("fail", event.fail ? 1 : 0);
      apply_fault_event(faults, event);
      if (!event.fail) {
        ++stats.repair_events;
        counters.repairs.add();
        continue;
      }
      ++stats.failure_events;
      counters.failures.add();
      const RestorationReport report = restore_connections(sw);
      ++stats.restore_passes;
      stats.sessions_affected += report.affected;
      stats.sessions_restored += report.restored.size();
      stats.sessions_dropped += report.dropped.size();
      counters.restored_per_event.record(report.restored.size());
      if (!report.restored.empty() || !report.dropped.empty()) {
        // Rewrite the departure calendar: restored sessions keep their
        // departure times under their new ids, dropped sessions leave.
        std::map<ConnectionId, ConnectionId> remap(report.restored.begin(),
                                                   report.restored.end());
        std::set<ConnectionId> gone;
        for (const auto& [id, request] : report.dropped) gone.insert(id);
        std::multimap<double, ConnectionId> rebuilt;
        for (const auto& [when, id] : departures) {
          if (gone.contains(id)) continue;
          const auto hit = remap.find(id);
          rebuilt.emplace(when, hit == remap.end() ? id : hit->second);
        }
        live -= std::min(live, gone.size());
        departures = std::move(rebuilt);
      }
      stats.min_theorem_margin = std::min(
          stats.min_theorem_margin, degraded_capacity(network, faults).margin);
      continue;
    }

    if (next_arrival <= next_departure) {
      next_arrival = now + exponential(rng, 1.0 / traffic.arrival_rate);
      const auto request =
          skewed_admissible_request(rng, network, traffic.fanout, skew);
      if (!request) {
        ++stats.traffic.abandoned;
        continue;
      }
      ++stats.traffic.arrivals;
      if (const auto id = sw.try_connect(*request)) {
        ++stats.traffic.admitted;
        ++live;
        departures.emplace(now + exponential(rng, traffic.mean_holding), *id);
      } else {
        ++stats.traffic.blocked;
      }
    } else {
      sw.disconnect(departures.begin()->second);
      departures.erase(departures.begin());
      --live;
    }
  }

  network.attach_fault_model(previous);
  return stats;
}

}  // namespace wdm

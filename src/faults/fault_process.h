// Seeded MTBF/MTTR failure/repair processes over a network's components.
//
// Each enabled component class runs an independent alternating renewal
// process: exponential up-times with mean `mtbf` followed by exponential
// repair times with mean `mttr` (the classic availability model; steady
// state availability = mtbf / (mtbf + mttr) per component). Streams derive
// from Rng::split(component index in the *full* component space), so the
// timeline of any one component is bit-identical no matter which classes
// are enabled, how long the horizon is, or how events interleave --
// the same determinism contract as the sweep trials.
//
// The generator emits the merged, time-sorted event list for a finite
// horizon; run_availability_sim interleaves it with Erlang traffic, and
// tests replay it directly onto a FaultModel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_model.h"

namespace wdm {

struct FaultProcessConfig {
  double mtbf = 200.0;  // mean up-time per component
  double mttr = 10.0;   // mean repair time per component
  std::uint64_t seed = 0xFA177;
  // Component classes that participate in the process.
  bool middles = true;
  bool links = false;  // whole inter-stage fibers (both stage gaps)
  bool lanes = false;  // single link wavelengths (both stage gaps)
};

struct FaultEvent {
  double time = 0.0;
  FaultComponent component;
  bool fail = true;  // false = repair

  [[nodiscard]] std::string to_string() const;
};

/// Merged failure/repair timeline for `duration` time units of the enabled
/// component classes of `params`. Sorted by time (ties broken by component,
/// fail before repair) and deterministic under (config, params, duration).
[[nodiscard]] std::vector<FaultEvent> generate_fault_timeline(
    const ClosParams& params, const FaultProcessConfig& config, double duration);

/// Apply one event to the model (fail() or repair() dispatch).
void apply_fault_event(FaultModel& model, const FaultEvent& event);

}  // namespace wdm

#include "faults/resilience.h"

#include <sstream>

#include "repack/repack.h"
#include "util/metrics.h"
#include "util/trace_span.h"

namespace wdm {

std::string RestorationReport::to_string() const {
  std::ostringstream os;
  os << "Restoration[affected=" << affected << " restored=" << restored.size()
     << " dropped=" << dropped.size() << ']';
  return os.str();
}

bool route_uses_faults(const ThreeStageNetwork& network,
                       const MulticastRequest& request, const Route& route,
                       const FaultModel& faults) {
  if (!faults.any()) return false;
  const std::size_t in_module = network.input_module_of(request.input.port);
  for (const RouteBranch& branch : route.branches) {
    if (faults.middle_failed(branch.middle)) return true;
    if (!faults.link12_usable(in_module, branch.middle, branch.link_lane)) {
      return true;
    }
    for (const DeliveryLeg& leg : branch.legs) {
      if (!faults.link23_usable(branch.middle, leg.out_module, leg.link_lane)) {
        return true;
      }
    }
  }
  return false;
}

namespace {

struct RestoreMetrics {
  Counter& passes = metrics().counter("faults.restore_passes");
  Counter& affected = metrics().counter("faults.sessions_affected");
  Counter& restored = metrics().counter("faults.sessions_restored");
  Counter& dropped = metrics().counter("faults.sessions_dropped");
  TimerStat& restore = metrics().timer("faults.restore_connections");
  Histogram& affected_per_pass =
      metrics().histogram("faults.affected_per_restore");

  static RestoreMetrics& get() {
    static RestoreMetrics instance;
    return instance;
  }
};

}  // namespace

RestorationReport restore_connections(MultistageSwitch& sw) {
  RestorationReport report;
  ThreeStageNetwork& network = sw.network();
  const FaultModel* faults = network.active_fault_model();
  if (faults == nullptr) return report;

  RestoreMetrics& counters = RestoreMetrics::get();
  counters.passes.add();
  ScopedTimer timer(counters.restore);
  TraceSpan span("faults.restore");

  // Collect first: releasing while iterating would invalidate the map walk,
  // and tearing everything down before re-routing lets stranded connections
  // reuse each other's healthy capacity.
  std::vector<ConnectionId> stranded;
  for (const auto& [id, entry] : network.connections()) {
    const auto& [request, route] = entry;
    if (route_uses_faults(network, request, route, *faults)) {
      stranded.push_back(id);
    }
  }
  report.affected = stranded.size();
  counters.affected.add(stranded.size());
  counters.affected_per_pass.record(stranded.size());

  // Restoration is repacking under failure: the repack executor's
  // break-before-make core (release all, then re-route in release order)
  // reproduces the legacy pass op for op -- stranded was collected in
  // insertion order, i.e. ascending id, so the re-route order and therefore
  // the RestorationReport are identical (pinned by tests/repack_test.cpp).
  // kAllowDrops because the failed hardware may leave no route: keep every
  // success, return the rest for retry after a repair.
  repack::RepackExecutor executor(sw.router());
  executor.begin();
  for (const ConnectionId id : stranded) executor.release(id);
  const repack::MigrationOutcome& outcome =
      executor.reroute_released(repack::DropPolicy::kAllowDrops);
  report.restored = outcome.restored;
  report.dropped = outcome.dropped;
  executor.commit();

  counters.restored.add(report.restored.size());
  counters.dropped.add(report.dropped.size());
  span.arg("affected", static_cast<std::int64_t>(report.affected));
  span.arg("restored", static_cast<std::int64_t>(report.restored.size()));
  return report;
}

std::string DegradedCapacity::to_string() const {
  std::ostringstream os;
  os << "DegradedCapacity[m=" << provisioned_m << " failed=" << failed_middles
     << " effective=" << effective_m << " bound=" << bound.m
     << " margin=" << margin << (nonblocking ? " nonblocking" : " BELOW BOUND")
     << " budget=" << faults_to_bound << ']';
  return os.str();
}

DegradedCapacity degraded_capacity(const ClosParams& params,
                                   Construction construction,
                                   std::size_t failed_middles) {
  DegradedCapacity result;
  result.provisioned_m = params.m;
  result.failed_middles = failed_middles;
  result.effective_m =
      failed_middles >= params.m ? 0 : params.m - failed_middles;
  result.bound = construction == Construction::kMswDominant
                     ? theorem1_min_m(params.n, params.r)
                     : theorem2_min_m(params.n, params.r, params.k);
  result.margin = static_cast<std::ptrdiff_t>(result.effective_m) -
                  static_cast<std::ptrdiff_t>(result.bound.m);
  result.nonblocking = result.margin >= 0;
  result.faults_to_bound =
      result.margin > 0 ? static_cast<std::size_t>(result.margin) : 0;
  return result;
}

DegradedCapacity degraded_capacity(const ThreeStageNetwork& network,
                                   const FaultModel& faults) {
  return degraded_capacity(network.params(), network.construction(),
                           faults.failed_middle_count());
}

}  // namespace wdm

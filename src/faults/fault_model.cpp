#include "faults/fault_model.h"

#include <sstream>
#include <stdexcept>

namespace wdm {

const char* fault_component_kind_name(FaultComponentKind kind) {
  switch (kind) {
    case FaultComponentKind::kMiddleModule: return "middle-module";
    case FaultComponentKind::kLink12: return "link12";
    case FaultComponentKind::kLink23: return "link23";
    case FaultComponentKind::kLink12Lane: return "link12-lane";
    case FaultComponentKind::kLink23Lane: return "link23-lane";
    case FaultComponentKind::kConverterSlot: return "converter-slot";
  }
  return "?";
}

std::string FaultComponent::to_string() const {
  std::ostringstream os;
  os << fault_component_kind_name(kind);
  switch (kind) {
    case FaultComponentKind::kMiddleModule:
    case FaultComponentKind::kConverterSlot:
      os << ' ' << a;
      break;
    case FaultComponentKind::kLink12:
    case FaultComponentKind::kLink23:
      os << ' ' << a << "->" << b;
      break;
    case FaultComponentKind::kLink12Lane:
    case FaultComponentKind::kLink23Lane:
      os << ' ' << a << "->" << b << '@' << wavelength_name(lane);
      break;
  }
  return os.str();
}

FaultModel::FaultModel(const ClosParams& params, std::size_t converter_slots)
    : params_(params) {
  params_.validate();
  middle_failed_.assign(params_.m, false);
  link12_failed_.assign(params_.r * params_.m, false);
  link23_failed_.assign(params_.m * params_.r, false);
  link12_lane_failed_.assign(params_.r * params_.m * params_.k, false);
  link23_lane_failed_.assign(params_.m * params_.r * params_.k, false);
  converter_slot_failed_.assign(converter_slots, false);
}

std::vector<bool>::reference FaultModel::slot(const FaultComponent& component) {
  const std::size_t m = params_.m;
  const std::size_t r = params_.r;
  const std::size_t k = params_.k;
  switch (component.kind) {
    case FaultComponentKind::kMiddleModule:
      return middle_failed_.at(component.a);
    case FaultComponentKind::kLink12:
      if (component.a >= r || component.b >= m) break;
      return link12_failed_.at(component.a * m + component.b);
    case FaultComponentKind::kLink23:
      if (component.a >= m || component.b >= r) break;
      return link23_failed_.at(component.a * r + component.b);
    case FaultComponentKind::kLink12Lane:
      if (component.a >= r || component.b >= m || component.lane >= k) break;
      return link12_lane_failed_.at((component.a * m + component.b) * k +
                                    component.lane);
    case FaultComponentKind::kLink23Lane:
      if (component.a >= m || component.b >= r || component.lane >= k) break;
      return link23_lane_failed_.at((component.a * r + component.b) * k +
                                    component.lane);
    case FaultComponentKind::kConverterSlot:
      return converter_slot_failed_.at(component.a);
  }
  throw std::out_of_range("FaultModel: component out of range: " +
                          component.to_string());
}

bool FaultModel::slot_value(const FaultComponent& component) const {
  return const_cast<FaultModel*>(this)->slot(component);
}

void FaultModel::fail(const FaultComponent& component) {
  auto bit = slot(component);
  if (bit) return;  // already failed
  bit = true;
  ++active_faults_;
  if (component.kind == FaultComponentKind::kMiddleModule) ++failed_middles_;
  if (component.kind == FaultComponentKind::kConverterSlot) {
    ++failed_converter_slot_count_;
  }
}

void FaultModel::repair(const FaultComponent& component) {
  auto bit = slot(component);
  if (!bit) return;  // already healthy
  bit = false;
  --active_faults_;
  if (component.kind == FaultComponentKind::kMiddleModule) --failed_middles_;
  if (component.kind == FaultComponentKind::kConverterSlot) {
    --failed_converter_slot_count_;
  }
}

bool FaultModel::failed(const FaultComponent& component) const {
  return slot_value(component);
}

bool FaultModel::middle_failed(std::size_t j) const {
  return middle_failed_.at(j);
}

std::vector<std::size_t> FaultModel::failed_middles() const {
  std::vector<std::size_t> failed;
  failed.reserve(failed_middles_);
  for (std::size_t j = 0; j < middle_failed_.size(); ++j) {
    if (middle_failed_[j]) failed.push_back(j);
  }
  return failed;
}

bool FaultModel::link12_usable(std::size_t i, std::size_t j,
                               Wavelength lane) const {
  const std::size_t m = params_.m;
  const std::size_t k = params_.k;
  return !middle_failed_[j] && !link12_failed_[i * m + j] &&
         !link12_lane_failed_[(i * m + j) * k + lane];
}

bool FaultModel::link23_usable(std::size_t j, std::size_t p,
                               Wavelength lane) const {
  const std::size_t r = params_.r;
  const std::size_t k = params_.k;
  return !middle_failed_[j] && !link23_failed_[j * r + p] &&
         !link23_lane_failed_[(j * r + p) * k + lane];
}

std::string FaultModel::to_string() const {
  std::ostringstream os;
  os << "FaultModel[" << active_faults_ << " active";
  if (failed_middles_ != 0) os << ", " << failed_middles_ << " middles down";
  if (failed_converter_slot_count_ != 0) {
    os << ", " << failed_converter_slot_count_ << " converter slots down";
  }
  os << ']';
  return os.str();
}

}  // namespace wdm

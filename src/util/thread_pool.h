// Minimal fixed-size thread pool with a parallel_for helper.
//
// The simulation sweeps (blocking probability vs m over many seeds) are
// embarrassingly parallel; this pool runs them across hardware threads while
// keeping results deterministic: work items are indexed and each derives its
// RNG from (master seed, index), so scheduling order cannot change results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wdm {

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means read WDM_THREADS or use
  /// hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// True when the calling thread is one of *this* pool's workers (i.e. the
  /// call site is executing inside a task submitted to this pool).
  [[nodiscard]] bool in_worker_thread() const;

  /// Enqueue an arbitrary task.
  std::future<void> submit(std::function<void()> task);

  /// Run body(i) for i in [0, count), blocking until all complete.
  /// Exceptions from the body are rethrown (first one wins); every index is
  /// still attempted.
  ///
  /// Safe to call from inside a task running on this pool: a nested call
  /// runs the whole loop inline on the calling thread instead of enqueueing
  /// helpers. Blocking on helper futures from a worker slot would deadlock a
  /// fully-occupied pool (every worker waiting for queue service that only a
  /// worker could provide -- guaranteed with one thread).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide default pool (lazily constructed).
ThreadPool& default_pool();

}  // namespace wdm

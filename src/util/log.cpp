#include "util/log.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace wdm {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kWarn};
std::once_flag g_env_once;
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void init_from_env() {
  const char* env = std::getenv("WDM_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) g_threshold = LogLevel::kDebug;
  else if (std::strcmp(env, "info") == 0) g_threshold = LogLevel::kInfo;
  else if (std::strcmp(env, "warn") == 0) g_threshold = LogLevel::kWarn;
  else if (std::strcmp(env, "error") == 0) g_threshold = LogLevel::kError;
}

}  // namespace

LogLevel log_threshold() {
  std::call_once(g_env_once, init_from_env);
  return g_threshold.load(std::memory_order_relaxed);
}

void set_log_threshold(LogLevel level) {
  std::call_once(g_env_once, init_from_env);
  g_threshold.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_io_mutex);
  std::cerr << "[wdm:" << level_name(level) << "] " << message << '\n';
}

}  // namespace wdm

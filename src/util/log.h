// Leveled logging to stderr.
//
// Kept deliberately small: the library is a computational artifact, not a
// service, so logging exists for tracing simulator decisions (debug) and
// surfacing misconfiguration (warn/error). Level comes from WDM_LOG
// (debug|info|warn|error) and defaults to warn so tests and benches stay
// quiet.
#pragma once

#include <sstream>
#include <string>

namespace wdm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

LogLevel log_threshold();
void set_log_threshold(LogLevel level);
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace wdm

#define WDM_LOG(level)                                  \
  if (::wdm::LogLevel::level < ::wdm::log_threshold()) { \
  } else                                                 \
    ::wdm::detail::LogLine(::wdm::LogLevel::level)

#define WDM_DEBUG WDM_LOG(kDebug)
#define WDM_INFO WDM_LOG(kInfo)
#define WDM_WARN WDM_LOG(kWarn)
#define WDM_ERROR WDM_LOG(kError)

// Console table / CSV rendering.
//
// Every bench binary reproduces a paper table or figure as rows of text;
// this keeps them uniform: aligned ASCII output for humans plus optional
// CSV for downstream plotting.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace wdm {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: convert each argument with to_cell().
  template <typename... Args>
  void add(const Args&... args) {
    add_row({to_cell(args)...});
  }

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

  /// Render with column alignment and a header rule.
  [[nodiscard]] std::string to_text() const;
  /// Render as RFC-4180-ish CSV (cells containing comma/quote get quoted).
  [[nodiscard]] std::string to_csv() const;

  void print(std::ostream& os) const;

  static std::string to_cell(const std::string& value) { return value; }
  static std::string to_cell(const char* value) { return value; }
  static std::string to_cell(bool value) { return value ? "yes" : "no"; }
  static std::string to_cell(double value);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_cell(T value) {
    return std::to_string(value);
  }
  template <typename T>
    requires requires(const T& t) { t.to_string(); }
  static std::string to_cell(const T& value) {
    return value.to_string();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner (used by bench binaries between reproduced
/// tables/figures).
void print_banner(std::ostream& os, const std::string& title);

}  // namespace wdm

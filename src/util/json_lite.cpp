#include "util/json_lite.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace wdm {

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("JsonValue: not a string");
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  if (type_ != Type::kArray) throw std::runtime_error("JsonValue: not an array");
  return *array_;
}

const JsonObject& JsonValue::as_object() const {
  if (type_ != Type::kObject) throw std::runtime_error("JsonValue: not an object");
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw std::runtime_error("JsonValue: missing key \"" + key + "\"");
  }
  return *value;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << "JSON parse error at byte " << pos_ << ": " << what;
    throw std::invalid_argument(os.str());
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t length = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, length, literal) != 0) return false;
    pos_ += length;
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.insert_or_assign(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(object));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(array));
    }
  }

  /// Four hex digits of a \uXXXX escape (the "\u" already consumed).
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          const unsigned code = parse_hex4();
          if (code >= 0xDC00 && code <= 0xDFFF) {
            out += '?';  // lone low surrogate: not a valid code point
            break;
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: only valid immediately followed by a \uDC00..
            // \uDFFF escape, which combines into one supplementary-plane
            // code point (RFC 8259 §7).
            if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              const std::size_t rewind = pos_;
              pos_ += 2;
              const unsigned low = parse_hex4();
              if (low >= 0xDC00 && low <= 0xDFFF) {
                append_utf8(out,
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00));
              } else {
                // Lone high surrogate; the following escape stands alone.
                out += '?';
                pos_ = rewind;
              }
            } else {
              out += '?';  // lone high surrogate at end or before other text
            }
            break;
          }
          append_utf8(out, code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("malformed number");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("malformed fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("malformed exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return JsonValue(std::strtod(text_.c_str() + start, nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace wdm

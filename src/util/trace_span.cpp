#include "util/trace_span.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <string_view>
#include <vector>

#include "core/export.h"  // json_escape
#include "util/metrics.h"

namespace wdm {

namespace {

std::atomic<bool> g_tracing{[] {
  const char* env = std::getenv("WDM_TRACE");
  return env != nullptr && std::string_view(env) == "1";
}()};

/// One buffered event: a completed span ("X") or a counter sample ("C").
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;  // meaningful for spans only
  const char* arg_keys[TraceSpan::kMaxArgs] = {};
  std::int64_t arg_values[TraceSpan::kMaxArgs] = {};
  std::uint8_t arg_count = 0;
  bool is_counter = false;
};

/// Per-thread ring of completed events. The owning thread writes; the flush
/// thread reads; the (uncontended on the hot path) mutex arbitrates. Held by
/// shared_ptr from both the registry and the thread_local handle, so events
/// survive their thread's exit and are still flushed.
struct ThreadRing {
  std::mutex mutex;
  std::vector<TraceEvent> events;  // grows to kTraceRingCapacity, then wraps
  std::size_t oldest = 0;          // overwrite cursor once full
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;

  void push(const TraceEvent& event) {
    std::lock_guard lock(mutex);
    if (events.size() < kTraceRingCapacity) {
      events.push_back(event);
    } else {
      events[oldest] = event;
      oldest = (oldest + 1) % kTraceRingCapacity;
      ++dropped;
    }
  }
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::uint32_t next_tid = 1;

  static TraceRegistry& get() {
    // Leaked intentionally (same contract as the metrics registry): spans
    // may complete during static destruction of other translation units.
    static TraceRegistry* registry = new TraceRegistry;
    return *registry;
  }
};

ThreadRing& thread_ring() {
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto created = std::make_shared<ThreadRing>();
    TraceRegistry& registry = TraceRegistry::get();
    std::lock_guard lock(registry.mutex);
    created->tid = registry.next_tid++;
    created->events.reserve(1024);  // grow on demand toward the cap
    registry.rings.push_back(created);
    return created;
  }();
  return *ring;
}

/// Nanoseconds since the process's trace epoch (first observability touch).
std::uint64_t now_ns() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

/// Chrome trace timestamps are microseconds; keep sub-µs precision as a
/// 3-decimal fraction.
void append_us(std::ostringstream& os, std::uint64_t ns) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buffer;
}

}  // namespace

bool tracing_enabled() { return g_tracing.load(std::memory_order_acquire); }

void set_tracing_enabled(bool enabled) {
  if (enabled) now_ns();  // pin the epoch before the first span
  g_tracing.store(enabled, std::memory_order_release);
}

namespace detail {
bool tracing_armed_relaxed() {
  return g_tracing.load(std::memory_order_relaxed) &&
         metrics_enabled_relaxed();
}

std::uint64_t trace_now_ns() { return now_ns(); }

void trace_counter_slow(const char* name, std::int64_t value) {
  TraceEvent event;
  event.name = name;
  event.start_ns = now_ns();
  event.is_counter = true;
  event.arg_keys[0] = "value";
  event.arg_values[0] = value;
  event.arg_count = 1;
  thread_ring().push(event);
}
}  // namespace detail

void TraceSpan::record() {
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.dur_ns = now_ns() - start_ns_;
  for (std::size_t i = 0; i < arg_count_; ++i) {
    event.arg_keys[i] = arg_keys_[i];
    event.arg_values[i] = arg_values_[i];
  }
  event.arg_count = arg_count_;
  thread_ring().push(event);
}

std::string trace_to_chrome_json() {
  TraceRegistry& registry = TraceRegistry::get();
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard lock(registry.mutex);
    rings = registry.rings;
  }
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t dropped_total = 0;
  for (const auto& ring : rings) {
    std::lock_guard lock(ring->mutex);
    dropped_total += ring->dropped;
    // Name the track so Perfetto shows stable labels instead of bare tids.
    if (!ring->events.empty()) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
         << ring->tid << ",\"args\":{\"name\":\"wdm-thread-" << ring->tid
         << "\"}}";
      // Per-ring drop accounting as a metadata event, so a viewer (or a
      // json_lite consumer) can see WHICH thread's window lost events, not
      // just the otherData total.
      os << ",{\"name\":\"trace_ring_drops\",\"ph\":\"M\",\"pid\":1,\"tid\":"
         << ring->tid << ",\"args\":{\"dropped\":" << ring->dropped
         << ",\"buffered\":" << ring->events.size() << "}}";
    }
    const std::size_t size = ring->events.size();
    const bool wrapped = size == kTraceRingCapacity && ring->oldest != 0;
    for (std::size_t i = 0; i < size; ++i) {
      const TraceEvent& event =
          ring->events[wrapped ? (ring->oldest + i) % size : i];
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << json_escape(event.name) << "\",\"ph\":\""
         << (event.is_counter ? 'C' : 'X') << "\",\"pid\":1,\"tid\":"
         << ring->tid << ",\"ts\":";
      append_us(os, event.start_ns);
      if (!event.is_counter) {
        os << ",\"dur\":";
        append_us(os, event.dur_ns);
      }
      if (event.arg_count > 0) {
        os << ",\"args\":{";
        for (std::size_t a = 0; a < event.arg_count; ++a) {
          if (a != 0) os << ",";
          os << "\"" << json_escape(event.arg_keys[a])
             << "\":" << event.arg_values[a];
        }
        os << "}";
      }
      os << "}";
    }
  }
  os << "],\"displayTimeUnit\":\"ns\",\"otherData\":{\"tool\":\"wdmcast\","
     << "\"dropped_events\":" << dropped_total << "}}";
  return os.str();
}

void reset_trace() {
  TraceRegistry& registry = TraceRegistry::get();
  std::lock_guard lock(registry.mutex);
  for (const auto& ring : registry.rings) {
    std::lock_guard ring_lock(ring->mutex);
    ring->events.clear();
    ring->oldest = 0;
    ring->dropped = 0;
  }
}

std::size_t trace_event_count() {
  TraceRegistry& registry = TraceRegistry::get();
  std::lock_guard lock(registry.mutex);
  std::size_t total = 0;
  for (const auto& ring : registry.rings) {
    std::lock_guard ring_lock(ring->mutex);
    total += ring->events.size();
  }
  return total;
}

std::uint64_t trace_dropped_count() {
  TraceRegistry& registry = TraceRegistry::get();
  std::lock_guard lock(registry.mutex);
  std::uint64_t total = 0;
  for (const auto& ring : registry.rings) {
    std::lock_guard ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

}  // namespace wdm

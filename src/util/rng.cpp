#include "util/rng.h"

#include <stdexcept>

namespace wdm {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 cannot produce
  // four zero outputs in a row, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound must be > 0");
  // Lemire-style rejection: retry while in the biased zone.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 high-quality mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::split(std::uint64_t index) const {
  // Mix the parent seed with the child index through splitmix64.
  std::uint64_t mix = seed_ ^ (0xA02BDBF7BB3C0A7ull * (index + 1));
  return Rng{splitmix64(mix)};
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t population,
                                                         std::size_t count) {
  if (count > population) {
    throw std::invalid_argument("Rng::sample_without_replacement: count > population");
  }
  std::vector<std::size_t> pool(population);
  for (std::size_t i = 0; i < population; ++i) pool[i] = i;
  // Partial Fisher-Yates: the first `count` slots become the sample.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(next_below(population - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

}  // namespace wdm

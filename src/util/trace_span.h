// Event tracing: thread-local span ring buffers -> Chrome trace-event JSON.
//
// Where util/metrics aggregates (counters, percentiles), this layer keeps
// the *timeline*: begin/end spans around route attempts, middle-stage probe
// loops, sweep trials, and thread-pool tasks, each optionally annotated with
// small integer arguments ("candidates":13). Flushing produces Chrome
// trace-event JSON (the `{"traceEvents":[...]}` format) that loads directly
// in Perfetto (https://ui.perfetto.dev) or chrome://tracing — run
// `run_benches --trace=out.json` and drop the file into the UI to see where
// a blocking sweep actually spends its time, thread by thread.
//
// Design:
//   * Off by default. Every instrumentation point costs one relaxed atomic
//     load until set_tracing_enabled(true) (or WDM_TRACE=1 at startup); the
//     metrics kill switch (WDM_METRICS=0 / set_metrics_enabled(false)) also
//     disarms tracing, so one switch silences all observability.
//   * Thread-local ring buffers. Each recording thread owns a fixed-size
//     ring (kRingCapacity completed events); when it wraps, the *oldest*
//     events are overwritten and counted as dropped — a long run keeps its
//     most recent window, which is the window you debug.
//   * Names must be string literals (or otherwise outlive the flush): the
//     ring stores the pointer, never a copy, to keep recording allocation-
//     free on the hot path.
//
// Spans nest naturally (they are emitted as Chrome "X" complete events with
// begin timestamp + duration; the viewer reconstructs the stack). Counter
// tracks ("C" events) plot a value over time, e.g. thread-pool queue depth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace wdm {

/// Global tracing switch. Off by default; WDM_TRACE=1 in the environment
/// enables at startup. Recording also requires metrics_enabled().
[[nodiscard]] bool tracing_enabled();
void set_tracing_enabled(bool enabled);

namespace detail {
/// True when span recording is armed (tracing AND metrics enabled); one
/// relaxed load pair, the only per-event cost while tracing is off.
[[nodiscard]] bool tracing_armed_relaxed();
/// Nanoseconds since the process's trace epoch (first observability touch).
[[nodiscard]] std::uint64_t trace_now_ns();
/// Buffer a counter sample; callers must already have checked arming.
void trace_counter_slow(const char* name, std::int64_t value);
}  // namespace detail

/// Completed events each ring holds before overwriting the oldest.
inline constexpr std::size_t kTraceRingCapacity = 1u << 16;

/// RAII begin/end span. The event is recorded at destruction (Chrome "X"
/// complete event: begin timestamp + duration). `name` must be a string
/// literal. Up to kMaxArgs integer annotations attach via arg().
///
/// Construction, arg(), and destruction are inline early-out no-ops while
/// tracing is disarmed: one relaxed load at construction, then a branch on
/// the cached flag -- no clock reads, no formatting, no out-of-line calls on
/// the `--trace`-off hot path.
class TraceSpan {
 public:
  static constexpr std::size_t kMaxArgs = 2;

  explicit TraceSpan(const char* name)
      : name_(name), armed_(detail::tracing_armed_relaxed()) {
    if (armed_) start_ns_ = detail::trace_now_ns();
  }
  ~TraceSpan() {
    if (armed_) record();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a counter annotation ("candidates":13). `key` must be a string
  /// literal. Beyond kMaxArgs, silently ignored. No-op when disarmed.
  void arg(const char* key, std::int64_t value) {
    if (!armed_ || arg_count_ >= kMaxArgs) return;
    arg_keys_[arg_count_] = key;
    arg_values_[arg_count_] = value;
    ++arg_count_;
  }

 private:
  /// Buffer the completed span (the armed slow path).
  void record();

  const char* name_;
  std::uint64_t start_ns_ = 0;
  const char* arg_keys_[kMaxArgs] = {};
  std::int64_t arg_values_[kMaxArgs] = {};
  std::uint8_t arg_count_ = 0;
  bool armed_;
};

/// Record a counter-track sample ("C" event): `name` plots as a value-over-
/// time track in the viewer. `name` must be a string literal. Inline
/// early-out no-op while tracing is disarmed.
inline void trace_counter(const char* name, std::int64_t value) {
  if (!detail::tracing_armed_relaxed()) return;
  detail::trace_counter_slow(name, value);
}

/// Serialize every thread's buffered events as Chrome trace-event JSON
/// (object form: {"traceEvents":[...],"otherData":{...}}), oldest first per
/// thread. Parses with util/json_lite; loads in Perfetto/chrome://tracing.
[[nodiscard]] std::string trace_to_chrome_json();

/// Drop all buffered events (every thread's ring) and the dropped tally.
void reset_trace();

/// Currently buffered events across all threads (post-overwrite), and the
/// count lost to ring wrap since the last reset_trace().
[[nodiscard]] std::size_t trace_event_count();
[[nodiscard]] std::uint64_t trace_dropped_count();

}  // namespace wdm

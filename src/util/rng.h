// Deterministic, splittable pseudo-random number generation.
//
// The blocking simulations sweep many (network, load) points, optionally in
// parallel; every point must be reproducible from a single master seed no
// matter how tasks are scheduled. Rng is xoshiro256**, seeded through
// splitmix64 so that similar seeds still produce decorrelated streams, and
// Rng::split(i) derives an independent child stream for task i.
#pragma once

#include <cstdint>
#include <vector>

namespace wdm {

class Rng {
 public:
  /// Seed the generator. Any 64-bit value is acceptable (including 0).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p.
  bool next_bool(double p = 0.5);

  /// Derive a statistically independent child generator for subtask `index`.
  [[nodiscard]] Rng split(std::uint64_t index) const;

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Sample `count` distinct values from [0, population) in uniform order.
  std::vector<std::size_t> sample_without_replacement(std::size_t population,
                                                      std::size_t count);

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;  // retained so split() can derive children
};

}  // namespace wdm

// Tiny command-line flag parser for the example and bench binaries.
//
// Supports --name=value, --name value, and boolean --name. Unknown flags are
// an error so typos do not silently fall back to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace wdm {

class CliParser {
 public:
  CliParser(int argc, const char* const* argv);

  /// Register a flag so it appears in help and is not "unknown".
  void describe(const std::string& name, const std::string& help);

  [[nodiscard]] std::optional<std::string> get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// True if --help was passed.
  [[nodiscard]] bool wants_help() const { return help_requested_; }
  /// Render the registered flag descriptions.
  [[nodiscard]] std::string help_text(const std::string& program_summary) const;

  /// Throws std::invalid_argument if any parsed flag was never describe()d.
  void validate() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> descriptions_;
  bool help_requested_ = false;
};

}  // namespace wdm

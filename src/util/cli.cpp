#include "util/cli.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace wdm {

CliParser::CliParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

void CliParser::describe(const std::string& name, const std::string& help) {
  descriptions_.emplace_back(name, help);
}

std::optional<std::string> CliParser::get_string(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::int64_t CliParser::get_int(const std::string& name, std::int64_t fallback) const {
  const auto value = get_string(name);
  if (!value) return fallback;
  return std::stoll(*value);
}

double CliParser::get_double(const std::string& name, double fallback) const {
  const auto value = get_string(name);
  if (!value) return fallback;
  return std::stod(*value);
}

bool CliParser::get_bool(const std::string& name) const {
  const auto value = get_string(name);
  return value && *value != "false" && *value != "0";
}

std::string CliParser::help_text(const std::string& program_summary) const {
  std::ostringstream os;
  os << program_summary << "\n\nFlags:\n";
  for (const auto& [name, help] : descriptions_) {
    os << "  --" << name << "\n      " << help << "\n";
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

void CliParser::validate() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    const bool known = std::any_of(
        descriptions_.begin(), descriptions_.end(),
        [&name](const auto& description) { return description.first == name; });
    if (!known) throw std::invalid_argument("unknown flag: --" + name);
  }
}

}  // namespace wdm

// Arbitrary-precision unsigned integer arithmetic.
//
// The multicast capacities in Lemmas 1-3 of the paper (e.g. N^(Nk),
// [P(Nk,k)]^N) overflow 64-bit integers for all but toy parameters, so the
// capacity module computes them exactly with this type. The implementation
// stores little-endian 32-bit limbs and provides schoolbook + Karatsuba
// multiplication, Knuth algorithm-D division, exponentiation, and decimal
// conversion. Values are always normalized: no high-order zero limbs, and
// zero is represented by an empty limb vector.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace wdm {

class BigUInt {
 public:
  /// Zero.
  BigUInt() = default;

  /// Value-initialize from a built-in unsigned integer.
  BigUInt(std::uint64_t value);  // NOLINT(google-explicit-constructor)

  /// Parse a base-10 string of digits. Throws std::invalid_argument on any
  /// non-digit character or an empty string.
  static BigUInt from_string(std::string_view decimal);

  /// True iff the value is zero.
  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }

  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;

  /// Number of decimal digits (1 for zero).
  [[nodiscard]] std::size_t digits10() const;

  /// Exact value as uint64_t; throws std::overflow_error if it does not fit.
  [[nodiscard]] std::uint64_t to_uint64() const;

  /// True iff the value fits in uint64_t.
  [[nodiscard]] bool fits_uint64() const { return limbs_.size() <= 2; }

  /// Closest double (may be +inf for huge values).
  [[nodiscard]] double to_double() const;

  /// log10 of the value, accurate to ~1e-12 relative error even for values
  /// far beyond double range. Returns -inf for zero.
  [[nodiscard]] double log10() const;

  /// Base-10 representation.
  [[nodiscard]] std::string to_string() const;

  /// Scientific-notation rendering "d.ddde+NN" with the given number of
  /// significand digits; exact digits if the value is short enough.
  [[nodiscard]] std::string to_sci(int significand_digits = 4) const;

  // -- arithmetic -----------------------------------------------------------
  BigUInt& operator+=(const BigUInt& rhs);
  BigUInt& operator-=(const BigUInt& rhs);  // throws std::underflow_error
  BigUInt& operator*=(const BigUInt& rhs);
  BigUInt& operator/=(const BigUInt& rhs);  // throws std::domain_error on /0
  BigUInt& operator%=(const BigUInt& rhs);

  friend BigUInt operator+(BigUInt lhs, const BigUInt& rhs) { return lhs += rhs; }
  friend BigUInt operator-(BigUInt lhs, const BigUInt& rhs) { return lhs -= rhs; }
  friend BigUInt operator*(const BigUInt& lhs, const BigUInt& rhs);
  friend BigUInt operator/(BigUInt lhs, const BigUInt& rhs) { return lhs /= rhs; }
  friend BigUInt operator%(BigUInt lhs, const BigUInt& rhs) { return lhs %= rhs; }

  /// Quotient and remainder in one pass (Knuth algorithm D).
  /// Throws std::domain_error if divisor is zero.
  [[nodiscard]] std::pair<BigUInt, BigUInt> divmod(const BigUInt& divisor) const;

  /// this**exponent (0**0 == 1 by convention, matching the empty product).
  [[nodiscard]] BigUInt pow(std::uint64_t exponent) const;

  /// Shift left/right by whole bits.
  BigUInt& operator<<=(std::size_t bits);
  BigUInt& operator>>=(std::size_t bits);
  friend BigUInt operator<<(BigUInt lhs, std::size_t bits) { return lhs <<= bits; }
  friend BigUInt operator>>(BigUInt lhs, std::size_t bits) { return lhs >>= bits; }

  // -- comparison -----------------------------------------------------------
  friend bool operator==(const BigUInt& lhs, const BigUInt& rhs) = default;
  friend std::strong_ordering operator<=>(const BigUInt& lhs, const BigUInt& rhs);

  friend std::ostream& operator<<(std::ostream& os, const BigUInt& value);

 private:
  using Limb = std::uint32_t;
  using WideLimb = std::uint64_t;
  static constexpr int kLimbBits = 32;
  /// Below this limb count, schoolbook multiplication beats Karatsuba.
  static constexpr std::size_t kKaratsubaThreshold = 32;

  void normalize();
  [[nodiscard]] BigUInt slice(std::size_t first, std::size_t count) const;
  BigUInt& shift_left_limbs(std::size_t count);
  static BigUInt mul_schoolbook(const BigUInt& lhs, const BigUInt& rhs);
  static BigUInt mul_karatsuba(const BigUInt& lhs, const BigUInt& rhs);

  /// Divide in place by a single limb, returning the remainder.
  Limb div_small(Limb divisor);

  std::vector<Limb> limbs_;  // little-endian, normalized
};

}  // namespace wdm

#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace wdm {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width does not match header width");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_cell(double value) {
  std::ostringstream os;
  if (value == 0.0) {
    os << "0";
  } else if (std::abs(value) >= 1e7 || std::abs(value) < 1e-4) {
    os.precision(4);
    os << std::scientific << value;
  } else {
    os.precision(6);
    os << value;
  }
  return os.str();
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c] << std::string(widths[c] - cells[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_text(); }

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(title.size() + 4, '=') << '\n'
     << "= " << title << " =\n"
     << std::string(title.size() + 4, '=') << '\n';
}

}  // namespace wdm

// Minimal dependency-free JSON reader (RFC 8259 subset).
//
// The library has always *emitted* JSON (core/export, metrics snapshots);
// this is the matching reader, added so generated artifacts can be validated
// without external dependencies: the bench runner re-parses the
// BENCH_results.json it wrote (the bench-smoke ctest), and metrics tests
// round-trip snapshots. It is a strict recursive-descent parser into a small
// value tree -- not a streaming API, not tuned for huge documents.
//
// \uXXXX escapes (including surrogate pairs) decode to UTF-8; a malformed
// lone surrogate decodes to '?'. Numbers are held as double (exact for the
// uint53 range our emitters produce).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace wdm {

class JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  explicit JsonValue(bool value) : type_(Type::kBool), bool_(value) {}
  explicit JsonValue(double value) : type_(Type::kNumber), number_(value) {}
  explicit JsonValue(std::string value)
      : type_(Type::kString), string_(std::move(value)) {}
  explicit JsonValue(JsonArray value)
      : type_(Type::kArray), array_(std::make_shared<JsonArray>(std::move(value))) {}
  explicit JsonValue(JsonObject value)
      : type_(Type::kObject),
        object_(std::make_shared<JsonObject>(std::move(value))) {}

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// Object member lookup; throws std::runtime_error when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parse a complete JSON document (single value plus whitespace). Throws
/// std::invalid_argument with a byte offset on malformed input, including
/// trailing garbage.
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace wdm

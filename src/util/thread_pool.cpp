#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>

namespace wdm {

namespace {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("WDM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = resolve_thread_count(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged{std::move(task)};
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto chunk_worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  // The calling thread participates too, so a 1-thread pool still makes
  // progress even when called from within a pool task.
  std::vector<std::future<void>> futures;
  const std::size_t helpers = std::min(workers_.size(), count);
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futures.push_back(submit(chunk_worker));
  chunk_worker();
  for (auto& future : futures) future.wait();

  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace wdm

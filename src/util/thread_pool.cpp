#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>

#include "util/metrics.h"
#include "util/trace_span.h"

namespace wdm {

namespace {

/// Pool instruments: queue depth high-water mark, task throughput, and the
/// submit->dequeue wait plus run time per task (see docs/BENCHMARKS.md).
struct PoolInstruments {
  Counter& tasks = metrics().counter("thread_pool.tasks");
  Gauge& queue_depth = metrics().gauge("thread_pool.queue_depth");
  TimerStat& task_wait = metrics().timer("thread_pool.task_wait");
  TimerStat& task_run = metrics().timer("thread_pool.task_run");

  static PoolInstruments& get() {
    static PoolInstruments instance;
    return instance;
  }
};

/// The pool whose worker_loop the calling thread is running, if any. Keyed
/// by pool identity so nesting across *distinct* pools still parallelizes
/// (only a same-pool nested parallel_for must run inline).
thread_local const ThreadPool* tl_worker_pool = nullptr;

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("WDM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = resolve_thread_count(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::in_worker_thread() const { return tl_worker_pool == this; }

void ThreadPool::worker_loop() {
  tl_worker_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      PoolInstruments::get().queue_depth.set(
          static_cast<std::int64_t>(tasks_.size()));
    }
    task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  PoolInstruments& instruments = PoolInstruments::get();
  instruments.tasks.add();
  std::packaged_task<void()> packaged;
  if (metrics_enabled()) {
    // Wrap to measure queue wait (submit -> dequeue) and run time.
    packaged = std::packaged_task<void()>(
        [body = std::move(task), enqueued = std::chrono::steady_clock::now(),
         &instruments] {
          const auto started = std::chrono::steady_clock::now();
          const std::uint64_t wait_ns = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(started -
                                                                   enqueued)
                  .count());
          instruments.task_wait.record_ns(wait_ns);
          ScopedTimer run_timer(instruments.task_run);
          TraceSpan span("thread_pool.task");
          span.arg("wait_ns", static_cast<std::int64_t>(wait_ns));
          body();
        });
  } else {
    packaged = std::packaged_task<void()>(std::move(task));
  }
  auto future = packaged.get_future();
  std::size_t depth;
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
    depth = tasks_.size();
    instruments.queue_depth.set(static_cast<std::int64_t>(depth));
  }
  trace_counter("thread_pool.queue_depth", static_cast<std::int64_t>(depth));
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto chunk_worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  // Nested call from one of this pool's own workers: run everything inline.
  // The caller occupies a worker slot, so blocking on helper futures could
  // wait forever on queue service only an occupied worker could provide
  // (certain deadlock on a 1-thread pool, where the enqueued helpers are
  // behind the very task doing the waiting).
  if (in_worker_thread()) {
    chunk_worker();
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  // The calling thread participates too, so every index completes even if
  // the workers are all busy with unrelated tasks.
  std::vector<std::future<void>> futures;
  const std::size_t helpers = std::min(workers_.size(), count);
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futures.push_back(submit(chunk_worker));
  chunk_worker();
  for (auto& future : futures) future.wait();

  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace wdm

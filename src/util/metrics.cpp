#include "util/metrics.h"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "core/export.h"  // json_escape: the dependency-free JSON emitter

namespace wdm {

namespace {

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("WDM_METRICS");
  return env == nullptr || std::string_view(env) != "0";
}()};

}  // namespace

bool metrics_enabled() { return g_enabled.load(std::memory_order_acquire); }

void set_metrics_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_release);
}

namespace detail {
bool metrics_enabled_relaxed() {
  return g_enabled.load(std::memory_order_relaxed);
}
}  // namespace detail

std::uint64_t Histogram::bucket_value(std::size_t index) {
  const std::size_t group = index >> kSubBits;
  const std::uint64_t sub = index & ((1u << kSubBits) - 1);
  if (group == 0) return sub;  // exact buckets for 0..7
  const std::uint32_t shift = static_cast<std::uint32_t>(group - 1);
  const std::uint64_t lo =
      (std::uint64_t{1} << (group + kSubBits - 1)) + (sub << shift);
  // Midpoint of the bucket (width 2^(group-1)); group 1 is still exact.
  return lo + ((std::uint64_t{1} << shift) >> 1);
}

std::uint64_t Histogram::value_at_quantile(double q) const {
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  // One coherent pass: quantiles computed from a single relaxed snapshot.
  std::uint64_t counts[kBucketCount];
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  const std::uint64_t observed_max = max();
  // Rank of the q-quantile, 1-based; q=0 -> first recorded value's bucket.
  std::uint64_t target =
      static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5);
  if (target == 0) target = 1;
  if (target > total) target = total;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += counts[i];
    if (cumulative >= target) {
      const std::uint64_t representative = bucket_value(i);
      return representative < observed_max ? representative : observed_max;
    }
  }
  return observed_max;
}

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  // unique_ptr values keep instrument addresses stable across rehash-free
  // map growth *and* make the stability contract explicit.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  std::map<std::string, std::unique_ptr<TimerStat>, std::less<>> timers;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry::~MetricsRegistry() { delete impl_; }

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(impl_->mutex);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(impl_->mutex);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    it = impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(impl_->mutex);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    it = impl_->histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

TimerStat& MetricsRegistry::timer(std::string_view name) {
  std::lock_guard lock(impl_->mutex);
  auto it = impl_->timers.find(name);
  if (it == impl_->timers.end()) {
    it = impl_->timers.emplace(std::string(name), std::make_unique<TimerStat>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(impl_->mutex);
  for (auto& [name, counter] : impl_->counters) counter->reset();
  for (auto& [name, gauge] : impl_->gauges) gauge->reset();
  for (auto& [name, histogram] : impl_->histograms) histogram->reset();
  for (auto& [name, timer] : impl_->timers) timer->reset();
}

std::string MetricsRegistry::snapshot_json(bool include_zero) const {
  std::lock_guard lock(impl_->mutex);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : impl_->counters) {
    const std::uint64_t value = counter->value();
    if (value == 0 && !include_zero) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : impl_->gauges) {
    const std::int64_t value = gauge->value();
    const std::int64_t max = gauge->max();
    if (value == 0 && max == 0 && !include_zero) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{\"value\":" << value
       << ",\"max\":" << max << "}";
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : impl_->histograms) {
    const std::uint64_t count = histogram->count();
    if (count == 0 && !include_zero) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{\"count\":" << count
       << ",\"p50\":" << histogram->value_at_quantile(0.50)
       << ",\"p90\":" << histogram->value_at_quantile(0.90)
       << ",\"p99\":" << histogram->value_at_quantile(0.99)
       << ",\"max\":" << histogram->max() << "}";
  }
  os << "},\"timers\":{";
  first = true;
  for (const auto& [name, timer] : impl_->timers) {
    const std::uint64_t count = timer->count();
    if (count == 0 && !include_zero) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{\"count\":" << count
       << ",\"total_ns\":" << timer->total_ns()
       << ",\"max_ns\":" << timer->max_ns()
       << ",\"p50_ns\":" << timer->percentile_ns(0.50)
       << ",\"p90_ns\":" << timer->percentile_ns(0.90)
       << ",\"p99_ns\":" << timer->percentile_ns(0.99) << "}";
  }
  os << "}}";
  return os.str();
}

MetricsRegistry& metrics() {
  // Leaked intentionally: instruments may be touched from static destructors
  // of other translation units; never reclaim the registry.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

}  // namespace wdm

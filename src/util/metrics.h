// Process-wide named counters, gauges, histograms, and wall-clock timers.
//
// The observability substrate for the router and the simulators: hot paths
// bump counters ("how many middle-stage probes did that sweep really do?"),
// gauges track high-water marks (thread-pool queue depth), histograms hold
// log-bucketed value distributions (percentiles, not just means), and scoped
// timers accumulate wall time per labelled region -- each timer also feeds
// an embedded histogram so every labelled latency gets p50/p90/p99, the tail
// numbers averages hide. The unified bench runner
// (`run_benches`) resets the registry around each benchmark and embeds the
// snapshot in BENCH_results.json, so every number here becomes a perf
// trajectory across PRs.
//
// Design constraints, in order:
//   1. Near-zero overhead. Instruments are resolved once (call sites cache a
//      reference, typically via a function-local static) and then cost one
//      relaxed atomic load (the enabled check) plus one relaxed fetch_add.
//      When disabled via set_metrics_enabled(false), only the load remains.
//   2. Thread-safe. Registration takes a mutex; updates are lock-free
//      atomics, safe under ThreadPool::parallel_for. Instruments are
//      node-stable: a reference obtained once stays valid for process life.
//   3. Dependency-free snapshots. snapshot_json() emits RFC 8259 JSON with
//      keys sorted, so output is diffable and parses with util/json_lite.
//
// Metrics are cumulative since process start (or the last reset()). Name
// instruments "area.event" (e.g. "routing.route_attempts"); the dot groups
// related instruments in sorted snapshots.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace wdm {

/// Global kill switch. Enabled by default; WDM_METRICS=0 in the environment
/// disables at startup. Toggling affects subsequent updates only.
[[nodiscard]] bool metrics_enabled();
void set_metrics_enabled(bool enabled);

namespace detail {
/// Relaxed load of the enabled flag (the only per-update global touch).
[[nodiscard]] bool metrics_enabled_relaxed();
}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    if (detail::metrics_enabled_relaxed()) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level with a high-water mark (e.g. queue depth).
class Gauge {
 public:
  void set(std::int64_t value) {
    if (!detail::metrics_enabled_relaxed()) return;
    value_.store(value, std::memory_order_relaxed);
    update_max(value);
  }
  void add(std::int64_t delta) {
    if (!detail::metrics_enabled_relaxed()) return;
    const std::int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    update_max(now);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_max(std::int64_t candidate) {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Lock-free log-bucketed value distribution (HDR-histogram style).
///
/// Values map to buckets with 2^kSubBits sub-buckets per power of two, so
/// every recorded value lands in a bucket whose width is at most 1/8 of its
/// magnitude: quantile reconstruction carries <= ~6.25% relative error while
/// the whole range [0, 2^64) fits in 496 relaxed-atomic counters (~4 KB).
/// record() is a relaxed fetch_add on one bucket -- safe and exact (counts
/// never lost) under ThreadPool::parallel_for.
///
/// Quantile reads walk a relaxed snapshot of the buckets; concurrent
/// recording can skew an in-flight read slightly but p50 <= p90 <= p99 <=
/// max() always holds for any single snapshot's outputs.
class Histogram {
 public:
  static constexpr std::uint32_t kSubBits = 3;  // 8 sub-buckets per octave
  static constexpr std::size_t kBucketCount =
      ((64 - kSubBits) << kSubBits) + (1u << kSubBits);  // 496

  void record(std::uint64_t value) {
    if (!detail::metrics_enabled_relaxed()) return;
    record_unchecked(value);
  }

  /// record() minus the enabled check, for callers that already tested it
  /// (TimerStat feeds its embedded histogram this way).
  void record_unchecked(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& bucket : buckets_) {
      total += bucket.load(std::memory_order_relaxed);
    }
    return total;
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }

  /// Smallest representative value v such that >= q of recorded values are
  /// <= v's bucket (q in [0, 1]). 0 when empty. Clamped to max() so
  /// value_at_quantile(1.0) == max() exactly.
  [[nodiscard]] std::uint64_t value_at_quantile(double q) const;

  void reset() {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  /// Exposed for tests: the bucket a value lands in, and that bucket's
  /// representative (midpoint) value.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) {
    if (value < (1u << kSubBits)) return static_cast<std::size_t>(value);
    const std::uint32_t msb =
        63u - static_cast<std::uint32_t>(std::countl_zero(value));
    const std::size_t sub = static_cast<std::size_t>(
        (value >> (msb - kSubBits)) & ((1u << kSubBits) - 1));
    return ((static_cast<std::size_t>(msb - kSubBits) + 1) << kSubBits) | sub;
  }
  [[nodiscard]] static std::uint64_t bucket_value(std::size_t index);

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> max_{0};
};

/// Accumulated wall time over a labelled region: call count, total and max
/// nanoseconds, plus a log-bucketed latency distribution for percentiles
/// (p50/p90/p99 in snapshots). Fed by ScopedTimer or record_ns() directly.
class TimerStat {
 public:
  void record_ns(std::uint64_t elapsed_ns) {
    if (!detail::metrics_enabled_relaxed()) return;
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(elapsed_ns, std::memory_order_relaxed);
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (elapsed_ns > seen &&
           !max_ns_.compare_exchange_weak(seen, elapsed_ns,
                                          std::memory_order_relaxed)) {
    }
    histogram_.record_unchecked(elapsed_ns);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_ns() const {
    return max_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double total_ms() const {
    return static_cast<double>(total_ns()) / 1e6;
  }
  /// The latency distribution behind the percentiles.
  [[nodiscard]] const Histogram& histogram() const { return histogram_; }
  [[nodiscard]] std::uint64_t percentile_ns(double q) const {
    return histogram_.value_at_quantile(q);
  }
  void reset() {
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
    histogram_.reset();
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
  Histogram histogram_;
};

/// RAII wall-clock measurement into a TimerStat. The clock is only read when
/// metrics are enabled at construction (a disabled timer is two branches).
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat& stat)
      : stat_(&stat), armed_(detail::metrics_enabled_relaxed()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (armed_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      stat_->record_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerStat* stat_;
  bool armed_;
  std::chrono::steady_clock::time_point start_{};
};

/// Registry of named instruments. Lookup registers on first use and returns
/// a reference that stays valid for the registry's lifetime, so call sites
/// cache it:
///
///   static Counter& attempts = metrics().counter("routing.route_attempts");
///   attempts.add();
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] TimerStat& timer(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Zero every registered instrument (names stay registered, references
  /// stay valid). The bench runner calls this between benchmarks.
  void reset();

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...},
  /// "timers":{...}} with names sorted. Timers carry p50_ns/p90_ns/p99_ns
  /// from their embedded histogram. Zero-valued instruments are skipped
  /// unless include_zero.
  [[nodiscard]] std::string snapshot_json(bool include_zero = false) const;

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-wide registry (lazily constructed, never destroyed before
/// exit-time instrument users).
[[nodiscard]] MetricsRegistry& metrics();

}  // namespace wdm

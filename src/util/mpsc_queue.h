// Bounded multi-producer queue: the per-shard submission spine of the
// single-writer engine (DESIGN.md §3.13).
//
// The sharded engine's executor replaces lock-per-op with op shipping: any
// thread may *submit* an operation to a shard, but exactly one worker at a
// time *executes* a shard's operations, so the shard body itself runs with
// no mutex at all. This header is the queue that carries the ops: Dmitry
// Vyukov's bounded MPMC ring, used here with many producers and one consumer
// at a time (consumption is serialized by shard ownership, not by the
// queue).
//
// Protocol: every cell carries an atomic sequence number. A cell is ready
// for the producer whose ticket equals its sequence, and ready for the
// consumer when the sequence is ticket+1; each side publishes the cell back
// to the other by storing sequence = ticket + 1 (producer) or ticket +
// capacity (consumer) with release ordering. Producers claim tickets with a
// CAS on `tail_`; the consumer owns `head_` outright (single consumer), so
// pops are CAS-free. Full and empty are detected from the sequence lag
// without any shared counter.
//
// Why bounded: the queue doubles as the engine's backpressure. A full shard
// queue makes submitters wait (ShardExecutor::submit spins/yields), which is
// exactly the admission-control behavior a saturated shard should have --
// unbounded queues would just move the overload into memory. Capacity is
// rounded up to a power of two so the ring index is a mask, not a modulo.
//
// Determinism note: per shard the queue is FIFO across producers only in
// ticket order, which is whatever interleaving the producers' CASes took.
// The engine's bit-identical-stats contract therefore never depends on
// cross-producer order; ops carry counts into shard-resident streams (see
// churn_driver.h), or are independent sessions whose outcome order is
// reconciled through completion tickets.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

namespace wdm {

template <typename T>
class BoundedMpscQueue {
 public:
  /// `capacity` is rounded up to a power of two, minimum 2.
  explicit BoundedMpscQueue(std::size_t capacity)
      : mask_(round_up(capacity) - 1),
        cells_(std::make_unique<Cell[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Multi-producer push; false when the ring is full (backpressure -- the
  /// caller decides whether to spin, yield, or shed).
  bool try_push(T value) {
    std::size_t ticket = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[ticket & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const std::intptr_t lag = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(ticket);
      if (lag == 0) {
        // The cell is free for this ticket; claim the ticket.
        if (tail_.compare_exchange_weak(ticket, ticket + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.sequence.store(ticket + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `ticket`; retry with the newer one.
      } else if (lag < 0) {
        return false;  // the consumer has not freed this cell: full
      } else {
        ticket = tail_.load(std::memory_order_relaxed);  // raced; refetch
      }
    }
  }

  /// Single-consumer pop; false when empty. Callers must serialize pops
  /// externally (the executor's shard-ownership flag does this).
  bool try_pop(T& out) {
    const std::size_t ticket = head_;
    Cell& cell = cells_[ticket & mask_];
    const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(ticket + 1) < 0) {
      return false;  // producer has not published this cell yet: empty
    }
    out = std::move(cell.value);
    cell.sequence.store(ticket + mask_ + 1, std::memory_order_release);
    head_ = ticket + 1;
    return true;
  }

  /// Racy size estimate (submission-side instrumentation only; the engine's
  /// queue-depth histogram samples this, nothing correctness-bearing does).
  [[nodiscard]] std::size_t approx_size() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_approx_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  /// Consumer-side bookkeeping for approx_size (relaxed mirror of the
  /// consumer-private head cursor; called by the consumer after pops).
  void sync_approx_head() {
    head_approx_.store(head_, std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  static std::size_t round_up(std::size_t capacity) {
    if (capacity < 2) capacity = 2;
    return std::bit_ceil(capacity);
  }

  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  /// Producer cursor (tickets). Padded away from the consumer cursor so
  /// submitters and the draining worker do not false-share.
  alignas(64) std::atomic<std::size_t> tail_{0};
  /// Consumer cursor: plain memory, single consumer by contract.
  alignas(64) std::size_t head_ = 0;
  std::atomic<std::size_t> head_approx_{0};
};

}  // namespace wdm

#include "util/biguint.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace wdm {

namespace {
constexpr std::uint64_t kLimbBase = 1ULL << 32;
}  // namespace

BigUInt::BigUInt(std::uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<Limb>(value & 0xFFFFFFFFu));
    if (value >> 32) limbs_.push_back(static_cast<Limb>(value >> 32));
  }
}

BigUInt BigUInt::from_string(std::string_view decimal) {
  if (decimal.empty()) throw std::invalid_argument("BigUInt: empty string");
  BigUInt result;
  for (char c : decimal) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("BigUInt: non-digit character in input");
    }
    // result = result * 10 + digit, fused into one limb pass.
    WideLimb carry = static_cast<WideLimb>(c - '0');
    for (Limb& limb : result.limbs_) {
      WideLimb acc = static_cast<WideLimb>(limb) * 10 + carry;
      limb = static_cast<Limb>(acc & 0xFFFFFFFFu);
      carry = acc >> 32;
    }
    if (carry != 0) result.limbs_.push_back(static_cast<Limb>(carry));
  }
  return result;
}

void BigUInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

std::size_t BigUInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const std::size_t full = (limbs_.size() - 1) * kLimbBits;
  return full + static_cast<std::size_t>(32 - __builtin_clz(limbs_.back()));
}

std::uint64_t BigUInt::to_uint64() const {
  if (limbs_.size() > 2) throw std::overflow_error("BigUInt: value exceeds uint64_t");
  std::uint64_t value = 0;
  if (limbs_.size() > 1) value = static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) value |= limbs_[0];
  return value;
}

double BigUInt::to_double() const {
  double value = 0.0;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    value = value * static_cast<double>(kLimbBase) + static_cast<double>(*it);
  }
  return value;
}

double BigUInt::log10() const {
  if (limbs_.empty()) return -std::numeric_limits<double>::infinity();
  // Use the top (up to) three limbs for the mantissa; the rest only shift
  // the exponent. 96 mantissa bits keep ~1e-12 relative accuracy in log10.
  const std::size_t n = limbs_.size();
  double mantissa = 0.0;
  const std::size_t top = std::min<std::size_t>(n, 3);
  for (std::size_t i = 0; i < top; ++i) {
    mantissa = mantissa * static_cast<double>(kLimbBase) +
               static_cast<double>(limbs_[n - 1 - i]);
  }
  const double shifted_limbs = static_cast<double>(n - top);
  return std::log10(mantissa) +
         shifted_limbs * kLimbBits * std::log10(2.0);
}

std::size_t BigUInt::digits10() const {
  if (limbs_.empty()) return 1;
  // log10() can land exactly on an integer for values one below a power of
  // ten (double rounding), so verify the estimate with exact comparisons.
  auto estimate = static_cast<std::size_t>(std::floor(log10())) + 1;
  while (estimate > 1 && *this < BigUInt{10}.pow(estimate - 1)) --estimate;
  while (*this >= BigUInt{10}.pow(estimate)) ++estimate;
  return estimate;
}

BigUInt& BigUInt::operator+=(const BigUInt& rhs) {
  if (limbs_.size() < rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size(), 0);
  WideLimb carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    WideLimb acc = static_cast<WideLimb>(limbs_[i]) + carry;
    if (i < rhs.limbs_.size()) acc += rhs.limbs_[i];
    limbs_[i] = static_cast<Limb>(acc & 0xFFFFFFFFu);
    carry = acc >> 32;
    if (carry == 0 && i >= rhs.limbs_.size()) break;
  }
  if (carry != 0) limbs_.push_back(static_cast<Limb>(carry));
  return *this;
}

BigUInt& BigUInt::operator-=(const BigUInt& rhs) {
  if (*this < rhs) throw std::underflow_error("BigUInt: negative subtraction result");
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t acc = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < rhs.limbs_.size()) acc -= rhs.limbs_[i];
    if (acc < 0) {
      acc += static_cast<std::int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    limbs_[i] = static_cast<Limb>(acc);
    if (borrow == 0 && i >= rhs.limbs_.size()) break;
  }
  normalize();
  return *this;
}

BigUInt BigUInt::mul_schoolbook(const BigUInt& lhs, const BigUInt& rhs) {
  if (lhs.limbs_.empty() || rhs.limbs_.empty()) return {};
  BigUInt result;
  result.limbs_.assign(lhs.limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < lhs.limbs_.size(); ++i) {
    WideLimb carry = 0;
    const WideLimb a = lhs.limbs_[i];
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      WideLimb acc = a * rhs.limbs_[j] + result.limbs_[i + j] + carry;
      result.limbs_[i + j] = static_cast<Limb>(acc & 0xFFFFFFFFu);
      carry = acc >> 32;
    }
    result.limbs_[i + rhs.limbs_.size()] = static_cast<Limb>(carry);
  }
  result.normalize();
  return result;
}

BigUInt BigUInt::slice(std::size_t first, std::size_t count) const {
  BigUInt result;
  if (first >= limbs_.size()) return result;
  const std::size_t end = std::min(limbs_.size(), first + count);
  result.limbs_.assign(limbs_.begin() + static_cast<std::ptrdiff_t>(first),
                       limbs_.begin() + static_cast<std::ptrdiff_t>(end));
  result.normalize();
  return result;
}

BigUInt& BigUInt::shift_left_limbs(std::size_t count) {
  if (!limbs_.empty() && count > 0) {
    limbs_.insert(limbs_.begin(), count, 0);
  }
  return *this;
}

BigUInt BigUInt::mul_karatsuba(const BigUInt& lhs, const BigUInt& rhs) {
  const std::size_t n = std::max(lhs.limbs_.size(), rhs.limbs_.size());
  if (n < kKaratsubaThreshold) return mul_schoolbook(lhs, rhs);
  const std::size_t half = n / 2;
  // lhs = a1*B^half + a0, rhs = b1*B^half + b0
  BigUInt a0 = lhs.slice(0, half);
  BigUInt a1 = lhs.slice(half, lhs.limbs_.size());
  BigUInt b0 = rhs.slice(0, half);
  BigUInt b1 = rhs.slice(half, rhs.limbs_.size());

  BigUInt z0 = mul_karatsuba(a0, b0);
  BigUInt z2 = mul_karatsuba(a1, b1);
  BigUInt z1 = mul_karatsuba(a0 + a1, b0 + b1);
  z1 -= z0;
  z1 -= z2;

  z2.shift_left_limbs(2 * half);
  z1.shift_left_limbs(half);
  z2 += z1;
  z2 += z0;
  return z2;
}

BigUInt operator*(const BigUInt& lhs, const BigUInt& rhs) {
  return BigUInt::mul_karatsuba(lhs, rhs);
}

BigUInt& BigUInt::operator*=(const BigUInt& rhs) {
  *this = *this * rhs;
  return *this;
}

BigUInt::Limb BigUInt::div_small(Limb divisor) {
  WideLimb remainder = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    WideLimb acc = (remainder << 32) | limbs_[i];
    limbs_[i] = static_cast<Limb>(acc / divisor);
    remainder = acc % divisor;
  }
  normalize();
  return static_cast<Limb>(remainder);
}

std::pair<BigUInt, BigUInt> BigUInt::divmod(const BigUInt& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigUInt: division by zero");
  if (*this < divisor) return {BigUInt{}, *this};
  if (divisor.limbs_.size() == 1) {
    BigUInt quotient = *this;
    Limb r = quotient.div_small(divisor.limbs_[0]);
    return {std::move(quotient), BigUInt{r}};
  }

  // Knuth TAOCP vol. 2, algorithm D. Normalize so the top divisor limb has
  // its high bit set, guaranteeing the quotient-digit estimate is off by at
  // most 2.
  const int shift = __builtin_clz(divisor.limbs_.back());
  BigUInt u = *this << static_cast<std::size_t>(shift);
  const BigUInt v = divisor << static_cast<std::size_t>(shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);  // room for the virtual high limb u[m+n]

  BigUInt quotient;
  quotient.limbs_.assign(m + 1, 0);
  const WideLimb v_top = v.limbs_[n - 1];
  const WideLimb v_second = v.limbs_[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat from the top two dividend limbs.
    WideLimb numerator =
        (static_cast<WideLimb>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    WideLimb q_hat = numerator / v_top;
    WideLimb r_hat = numerator % v_top;
    while (q_hat >= kLimbBase ||
           q_hat * v_second > ((r_hat << 32) | u.limbs_[j + n - 2])) {
      --q_hat;
      r_hat += v_top;
      if (r_hat >= kLimbBase) break;
    }

    // u[j..j+n] -= q_hat * v
    std::int64_t borrow = 0;
    WideLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      WideLimb product = q_hat * v.limbs_[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u.limbs_[i + j]) -
                          static_cast<std::int64_t>(product & 0xFFFFFFFFu) - borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u.limbs_[i + j] = static_cast<Limb>(diff);
    }
    std::int64_t top_diff = static_cast<std::int64_t>(u.limbs_[j + n]) -
                            static_cast<std::int64_t>(carry) - borrow;
    if (top_diff < 0) {
      // q_hat was one too large: add v back once.
      top_diff += static_cast<std::int64_t>(kLimbBase);
      --q_hat;
      WideLimb add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        WideLimb acc = static_cast<WideLimb>(u.limbs_[i + j]) + v.limbs_[i] + add_carry;
        u.limbs_[i + j] = static_cast<Limb>(acc & 0xFFFFFFFFu);
        add_carry = acc >> 32;
      }
      top_diff += static_cast<std::int64_t>(add_carry);
      top_diff &= 0xFFFFFFFF;
    }
    u.limbs_[j + n] = static_cast<Limb>(top_diff);
    quotient.limbs_[j] = static_cast<Limb>(q_hat);
  }

  quotient.normalize();
  u.limbs_.resize(n);
  u.normalize();
  u >>= static_cast<std::size_t>(shift);
  return {std::move(quotient), std::move(u)};
}

BigUInt& BigUInt::operator/=(const BigUInt& rhs) {
  *this = divmod(rhs).first;
  return *this;
}

BigUInt& BigUInt::operator%=(const BigUInt& rhs) {
  *this = divmod(rhs).second;
  return *this;
}

BigUInt BigUInt::pow(std::uint64_t exponent) const {
  BigUInt result{1};
  BigUInt base = *this;
  while (exponent != 0) {
    if (exponent & 1) result *= base;
    exponent >>= 1;
    if (exponent != 0) base *= base;
  }
  return result;
}

BigUInt& BigUInt::operator<<=(std::size_t bits) {
  if (limbs_.empty() || bits == 0) return *this;
  const std::size_t limb_shift = bits / kLimbBits;
  const int bit_shift = static_cast<int>(bits % kLimbBits);
  if (bit_shift != 0) {
    Limb carry = 0;
    for (Limb& limb : limbs_) {
      const Limb next_carry = limb >> (kLimbBits - bit_shift);
      limb = (limb << bit_shift) | carry;
      carry = next_carry;
    }
    if (carry != 0) limbs_.push_back(carry);
  }
  shift_left_limbs(limb_shift);
  return *this;
}

BigUInt& BigUInt::operator>>=(std::size_t bits) {
  if (limbs_.empty() || bits == 0) return *this;
  const std::size_t limb_shift = bits / kLimbBits;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  limbs_.erase(limbs_.begin(), limbs_.begin() + static_cast<std::ptrdiff_t>(limb_shift));
  const int bit_shift = static_cast<int>(bits % kLimbBits);
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      limbs_[i] >>= bit_shift;
      if (i + 1 < limbs_.size()) {
        limbs_[i] |= limbs_[i + 1] << (kLimbBits - bit_shift);
      }
    }
  }
  normalize();
  return *this;
}

std::strong_ordering operator<=>(const BigUInt& lhs, const BigUInt& rhs) {
  if (lhs.limbs_.size() != rhs.limbs_.size()) {
    return lhs.limbs_.size() <=> rhs.limbs_.size();
  }
  for (std::size_t i = lhs.limbs_.size(); i-- > 0;) {
    if (lhs.limbs_[i] != rhs.limbs_[i]) return lhs.limbs_[i] <=> rhs.limbs_[i];
  }
  return std::strong_ordering::equal;
}

std::string BigUInt::to_string() const {
  if (limbs_.empty()) return "0";
  // Peel off 9 decimal digits at a time.
  BigUInt value = *this;
  std::string out;
  while (!value.is_zero()) {
    const Limb chunk = value.div_small(1'000'000'000u);
    if (value.is_zero()) {
      out.insert(0, std::to_string(chunk));
    } else {
      std::string digits = std::to_string(chunk);
      out.insert(0, std::string(9 - digits.size(), '0') + digits);
    }
  }
  return out;
}

std::string BigUInt::to_sci(int significand_digits) const {
  const std::string digits = to_string();
  if (digits.size() <= static_cast<std::size_t>(significand_digits) + 2) {
    return digits;
  }
  std::string out;
  out += digits[0];
  out += '.';
  out.append(digits, 1, static_cast<std::size_t>(significand_digits) - 1);
  out += "e+";
  out += std::to_string(digits.size() - 1);
  return out;
}

std::ostream& operator<<(std::ostream& os, const BigUInt& value) {
  return os << value.to_string();
}

}  // namespace wdm

// Connection-level vocabulary shared by every switching implementation.
//
// A multicast connection (§2.1) originates at one input wavelength
// (port, lane) and terminates at a set of output wavelengths, at most one
// per output port. The same request/validation types drive both the
// gate-level crossbar fabrics and the three-stage networks so that tests can
// replay identical workloads against either.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "capacity/models.h"
#include "optics/wavelength.h"

namespace wdm {

struct WavelengthEndpoint {
  std::size_t port = 0;
  Wavelength lane = 0;

  friend auto operator<=>(const WavelengthEndpoint&, const WavelengthEndpoint&) = default;
  [[nodiscard]] std::string to_string() const;
};

struct MulticastRequest {
  WavelengthEndpoint input;
  std::vector<WavelengthEndpoint> outputs;

  /// Number of destinations.
  [[nodiscard]] std::size_t fanout() const { return outputs.size(); }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const MulticastRequest&, const MulticastRequest&) = default;
};

/// Why a request is rejected (statically or against current state).
enum class ConnectError {
  kBadGeometry,        // port/lane out of range, empty or duplicate outputs
  kTwoLanesSamePort,   // violates the one-wavelength-per-output-port rule
  kModelForbidsLanes,  // lane pattern illegal under the network's model
  kInputBusy,
  kOutputBusy,
  kBlocked,            // admissible, but no route exists right now
};

[[nodiscard]] const char* connect_error_name(ConnectError error);

/// State-independent validation of a request against an N-port k-lane
/// network under `model` (§2.1 rules + the model's lane discipline).
/// nullopt = legal.
[[nodiscard]] std::optional<ConnectError> check_request_shape(
    const MulticastRequest& request, std::size_t N, std::size_t k,
    MulticastModel model);

using ConnectionId = std::uint64_t;

}  // namespace wdm

// Rendering design explorations for humans.
//
// Turns DesignOption lists and capacity queries into the same tabular shape
// the paper's Tables 1-2 use, so example programs and the quickstart can
// print something directly comparable to the publication.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/switch_design.h"
#include "util/table.h"

namespace wdm {

/// One row per design option: implementation, crosspoints, converters, and
/// the geometry when multistage.
[[nodiscard]] Table design_table(const std::vector<DesignOption>& options);

/// The paper's Table 1 for concrete (N, k): per model, capacity (full/any),
/// crosspoints, converters. Uses exact big integers up to `exact_limit`
/// digits, falling back to log10 for larger parameters.
[[nodiscard]] Table model_comparison_table(std::size_t N, std::size_t k,
                                           std::size_t exact_digit_limit = 40);

/// Render a full design report (models compared + recommended design) to a
/// stream; the quickstart example's main output.
void print_design_report(std::ostream& os, std::size_t N, std::size_t k);

}  // namespace wdm

#include "core/report.h"

#include <cmath>
#include <ostream>
#include <sstream>

namespace wdm {

namespace {

std::string capacity_cell(std::size_t N, std::size_t k, MulticastModel model,
                          AssignmentKind kind, std::size_t exact_digit_limit) {
  const double digits = log10_multicast_capacity(N, k, model, kind);
  if (digits <= static_cast<double>(exact_digit_limit)) {
    return multicast_capacity(N, k, model, kind).to_sci(4);
  }
  std::ostringstream os;
  os.precision(4);
  os << "10^" << digits;
  return os.str();
}

}  // namespace

Table design_table(const std::vector<DesignOption>& options) {
  Table table({"design", "model", "crosspoints", "converters", "geometry", "x"});
  for (const DesignOption& option : options) {
    table.add(option.name, model_name(option.model), option.crosspoints,
              option.converters,
              option.is_multistage ? option.clos.to_string() : std::string("-"),
              option.is_multistage ? std::to_string(option.routing_spread)
                                   : std::string("-"));
  }
  return table;
}

Table model_comparison_table(std::size_t N, std::size_t k,
                             std::size_t exact_digit_limit) {
  Table table({"model", "capacity (full)", "capacity (any)", "crosspoints",
               "converters"});
  for (const MulticastModel model : kAllModels) {
    const CrossbarCost cost = crossbar_cost(N, k, model);
    table.add(model_name(model),
              capacity_cell(N, k, model, AssignmentKind::kFull, exact_digit_limit),
              capacity_cell(N, k, model, AssignmentKind::kAny, exact_digit_limit),
              cost.crosspoints, cost.converters);
  }
  return table;
}

void print_design_report(std::ostream& os, std::size_t N, std::size_t k) {
  print_banner(os, "WDM multicast switch design report: N=" + std::to_string(N) +
                       ", k=" + std::to_string(k));
  os << "\nMulticast models (paper Table 1, crossbar realization):\n";
  model_comparison_table(N, k).print(os);

  for (const MulticastModel model : kAllModels) {
    os << "\nNonblocking implementations under " << model_name(model) << ":\n";
    design_table(enumerate_designs(N, k, model)).print(os);
    const DesignOption best = recommend_design(N, k, model);
    os << "recommended: " << best.to_string() << "\n";
  }
}

}  // namespace wdm

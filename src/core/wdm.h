// Umbrella header for the wdmcast library.
//
// Reproduction of: Yang, Wang, Qiao, "Nonblocking WDM Multicast Switching
// Networks" (ICPP 2000 / IEEE TPDS). Include this to get the whole public
// API; individual headers remain includable for finer-grained builds.
#pragma once

#include "analysis/asymptotics.h" // measured Table 2 exponents
#include "capacity/capacity.h"    // Lemmas 1-3: multicast capacity
#include "capacity/cost.h"        // §2.3: crossbar crosspoints/converters
#include "capacity/enumerate.h"   // brute-force validation of the lemmas
#include "capacity/models.h"      // MSW / MSDW / MAW
#include "combinatorics/combinatorics.h"
#include "combinatorics/multiset.h"  // §3.3 destination multisets
#include "core/connection.h"      // requests and endpoints
#include "core/export.h"          // DOT / JSON export
#include "core/report.h"          // tabular design reports
#include "core/switch_design.h"   // design enumeration / recommendation
#include "fabric/clos_fabric.h"       // gate-level three-stage networks
#include "fabric/crossbar_builder.h"  // Figs. 4-7 gate-level fabrics
#include "fabric/fabric_switch.h"     // crossbar controller + verification
#include "fabric/module_builder.h"    // gate-level switching modules
#include "multistage/builder.h"       // assembled three-stage switches
#include "multistage/network.h"       // §3 network state
#include "multistage/nonblocking.h"   // Theorems 1-2, §3.4 costs
#include "multistage/rearrange.h"     // Slepian-Duguid / Paull baseline
#include "multistage/recursive.h"     // 5/7-stage recursive designs
#include "multistage/routing.h"       // limited-spread routing strategy
#include "optics/budget.h"            // §2.3 power/crosstalk projection
#include "optics/circuit.h"           // optical component graph simulator
#include "sim/blocking_sim.h"         // dynamic blocking simulation
#include "sim/converter_pool.h"       // shared wavelength-converter banks
#include "sim/load_analysis.h"        // load curves, provisioning
#include "sim/nested.h"               // live recursion validation
#include "schedule/round_scheduler.h" // §1 electronic-baseline scheduling
#include "sim/request.h"              // workload generators, Fig. 10 scenario
#include "sim/sweep.h"                // parallel m-sweeps
#include "sim/trace.h"                // record / replay connection traces
#include "sim/traffic_models.h"       // Erlang/Zipf continuous-time traffic
#include "sim/witness.h"              // blocking-witness search

#include "core/connection.h"

#include <sstream>

namespace wdm {

std::string WavelengthEndpoint::to_string() const {
  return "(p" + std::to_string(port) + "," + wavelength_name(lane) + ")";
}

std::string MulticastRequest::to_string() const {
  std::ostringstream os;
  os << input.to_string() << " -> {";
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    if (i != 0) os << ", ";
    os << outputs[i].to_string();
  }
  os << '}';
  return os.str();
}

const char* connect_error_name(ConnectError error) {
  switch (error) {
    case ConnectError::kBadGeometry: return "bad-geometry";
    case ConnectError::kTwoLanesSamePort: return "two-lanes-same-port";
    case ConnectError::kModelForbidsLanes: return "model-forbids-lanes";
    case ConnectError::kInputBusy: return "input-busy";
    case ConnectError::kOutputBusy: return "output-busy";
    case ConnectError::kBlocked: return "blocked";
  }
  return "?";
}

std::optional<ConnectError> check_request_shape(const MulticastRequest& request,
                                                std::size_t N, std::size_t k,
                                                MulticastModel model) {
  if (request.outputs.empty()) return ConnectError::kBadGeometry;
  if (request.input.port >= N || request.input.lane >= k) {
    return ConnectError::kBadGeometry;
  }
  for (std::size_t i = 0; i < request.outputs.size(); ++i) {
    const WavelengthEndpoint& out = request.outputs[i];
    if (out.port >= N || out.lane >= k) return ConnectError::kBadGeometry;
    // Pairwise scan instead of std::set bookkeeping: fanout is at most N and
    // typically small, and this keeps admission allocation-free. All earlier
    // outputs have distinct ports (a repeat would have returned already), so
    // at most one of them can share this port; an identical endpoint is a
    // duplicate destination, a lane mismatch violates §2.1 (no two
    // wavelengths of the same output port in one connection).
    for (std::size_t j = 0; j < i; ++j) {
      if (request.outputs[j].port != out.port) continue;
      return request.outputs[j].lane == out.lane ? ConnectError::kBadGeometry
                                                 : ConnectError::kTwoLanesSamePort;
    }
  }
  switch (model) {
    case MulticastModel::kMSW:
      for (const auto& out : request.outputs) {
        if (out.lane != request.input.lane) return ConnectError::kModelForbidsLanes;
      }
      break;
    case MulticastModel::kMSDW: {
      const Wavelength lane = request.outputs.front().lane;
      for (const auto& out : request.outputs) {
        if (out.lane != lane) return ConnectError::kModelForbidsLanes;
      }
      break;
    }
    case MulticastModel::kMAW:
      break;
  }
  return std::nullopt;
}

}  // namespace wdm

#include "core/export.h"

#include <sstream>

namespace wdm {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string circuit_to_dot(const Circuit& circuit, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph circuit {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  std::vector<bool> emit(circuit.component_count(), true);
  for (ComponentId id = 0; id < circuit.component_count(); ++id) {
    const Component& component = circuit.component(id);
    if (options.active_gates_only &&
        component.kind == ComponentKind::kSoaGate && !component.gate_on) {
      emit[id] = false;
      continue;
    }
    os << "  c" << id << " [label=\"" << json_escape(component.describe(id));
    switch (component.kind) {
      case ComponentKind::kSoaGate:
        os << "\", color=" << (component.gate_on ? "green" : "gray");
        break;
      case ComponentKind::kConverter:
        os << "\", color=purple";
        break;
      case ComponentKind::kSource:
        os << "\", color=blue";
        break;
      case ComponentKind::kSink:
        os << "\", color=red";
        break;
      default:
        os << "\"";
        break;
    }
    os << "];\n";
  }
  for (const auto& [from, to] : circuit.edges()) {
    if (!emit[from.component] || !emit[to.component]) continue;
    os << "  c" << from.component << " -> c" << to.component
       << " [taillabel=\"" << from.port << "\", headlabel=\"" << to.port
       << "\", fontsize=8];\n";
  }
  os << "}\n";
  return os.str();
}

namespace {

void endpoint_json(std::ostringstream& os, const WavelengthEndpoint& endpoint) {
  os << "{\"port\":" << endpoint.port << ",\"lane\":" << endpoint.lane << "}";
}

void route_json(std::ostringstream& os, const Route& route) {
  os << "[";
  for (std::size_t b = 0; b < route.branches.size(); ++b) {
    if (b != 0) os << ",";
    const RouteBranch& branch = route.branches[b];
    os << "{\"middle\":" << branch.middle << ",\"lane\":" << branch.link_lane
       << ",\"legs\":[";
    for (std::size_t l = 0; l < branch.legs.size(); ++l) {
      if (l != 0) os << ",";
      const DeliveryLeg& leg = branch.legs[l];
      os << "{\"outModule\":" << leg.out_module << ",\"lane\":" << leg.link_lane
         << ",\"destinations\":[";
      for (std::size_t d = 0; d < leg.destinations.size(); ++d) {
        if (d != 0) os << ",";
        endpoint_json(os, leg.destinations[d]);
      }
      os << "]}";
    }
    os << "]}";
  }
  os << "]";
}

}  // namespace

std::string network_state_to_json(const ThreeStageNetwork& network) {
  const ClosParams& params = network.params();
  std::ostringstream os;
  os << "{\"geometry\":{\"n\":" << params.n << ",\"r\":" << params.r
     << ",\"m\":" << params.m << ",\"k\":" << params.k
     << ",\"ports\":" << params.port_count() << "},";
  os << "\"construction\":\"" << construction_name(network.construction())
     << "\",\"model\":\"" << model_name(network.network_model()) << "\",";

  os << "\"connections\":[";
  bool first = true;
  for (const auto& [id, entry] : network.connections()) {
    if (!first) os << ",";
    first = false;
    const auto& [request, route] = entry;
    os << "{\"id\":" << id << ",\"input\":";
    endpoint_json(os, request.input);
    os << ",\"outputs\":[";
    for (std::size_t i = 0; i < request.outputs.size(); ++i) {
      if (i != 0) os << ",";
      endpoint_json(os, request.outputs[i]);
    }
    os << "],\"route\":";
    route_json(os, route);
    os << "}";
  }
  os << "],";

  os << "\"middleDestinationMultisets\":[";
  for (std::size_t j = 0; j < params.m; ++j) {
    if (j != 0) os << ",";
    os << "\"" << json_escape(network.middle_destination_multiset(j).to_string())
       << "\"";
  }
  os << "]}";
  return os.str();
}

std::string design_options_to_json(const std::vector<DesignOption>& options) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < options.size(); ++i) {
    if (i != 0) os << ",";
    const DesignOption& option = options[i];
    os << "{\"name\":\"" << json_escape(option.name) << "\",\"model\":\""
       << model_name(option.model) << "\",\"crosspoints\":" << option.crosspoints
       << ",\"converters\":" << option.converters
       << ",\"log10CapacityAny\":" << option.log10_capacity_any;
    if (option.is_multistage) {
      os << ",\"clos\":{\"n\":" << option.clos.n << ",\"r\":" << option.clos.r
         << ",\"m\":" << option.clos.m << ",\"k\":" << option.clos.k
         << "},\"construction\":\"" << construction_name(option.construction)
         << "\",\"spread\":" << option.routing_spread;
    }
    os << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace wdm

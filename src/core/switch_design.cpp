#include "core/switch_design.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace wdm {

std::string DesignOption::to_string() const {
  std::ostringstream os;
  os << name << " [" << model_name(model) << "]: crosspoints=" << crosspoints
     << " converters=" << converters;
  if (is_multistage) {
    os << ' ' << clos.to_string() << " x=" << routing_spread;
  }
  return os.str();
}

std::pair<std::size_t, std::size_t> balanced_factorization(std::size_t N) {
  if (N < 4) {
    throw std::invalid_argument("balanced_factorization: N >= 4 required");
  }
  for (std::size_t n = static_cast<std::size_t>(std::sqrt(static_cast<double>(N)));
       n >= 2; --n) {
    if (N % n == 0) return {n, N / n};
  }
  throw std::invalid_argument("balanced_factorization: N is prime");
}

std::vector<DesignOption> enumerate_designs(std::size_t N, std::size_t k,
                                            MulticastModel model) {
  if (N == 0 || k == 0) throw std::invalid_argument("enumerate_designs: N, k >= 1");
  std::vector<DesignOption> options;
  const double capacity =
      log10_multicast_capacity(N, k, model, AssignmentKind::kAny);

  {
    DesignOption crossbar;
    crossbar.name = "crossbar";
    crossbar.model = model;
    const CrossbarCost cost = crossbar_cost(N, k, model);
    crossbar.crosspoints = cost.crosspoints;
    crossbar.converters = cost.converters;
    crossbar.log10_capacity_any = capacity;
    options.push_back(std::move(crossbar));
  }

  std::pair<std::size_t, std::size_t> factors;
  try {
    factors = balanced_factorization(N);
  } catch (const std::invalid_argument&) {
    return options;  // no multistage decomposition for tiny/prime N
  }
  const auto [n, r] = factors;

  for (const Construction construction :
       {Construction::kMswDominant, Construction::kMawDominant}) {
    DesignOption option;
    option.name = std::string("3-stage ") + construction_name(construction);
    option.model = model;
    option.is_multistage = true;
    option.construction = construction;
    option.clos = nonblocking_params(n, r, k, construction);
    const NonblockingBound bound = construction == Construction::kMswDominant
                                       ? theorem1_min_m(n, r)
                                       : theorem2_min_m(n, r, k);
    option.routing_spread = bound.x;
    const MultistageCost cost = multistage_cost(option.clos, construction, model);
    option.crosspoints = cost.crosspoints;
    option.converters = cost.converters;
    option.log10_capacity_any = capacity;
    options.push_back(std::move(option));
  }
  return options;
}

DesignOption recommend_design(std::size_t N, std::size_t k, MulticastModel model) {
  std::vector<DesignOption> options = enumerate_designs(N, k, model);
  return *std::min_element(options.begin(), options.end(),
                           [](const DesignOption& a, const DesignOption& b) {
                             if (a.crosspoints != b.crosspoints) {
                               return a.crosspoints < b.crosspoints;
                             }
                             return a.converters < b.converters;
                           });
}

MultistageSwitch build_switch(const DesignOption& option, MulticastModel model) {
  if (!option.is_multistage) {
    throw std::invalid_argument(
        "build_switch: option is a crossbar; construct a FabricSwitch instead");
  }
  return MultistageSwitch(option.clos, option.construction, model,
                          RoutingPolicy{option.routing_spread});
}

}  // namespace wdm

// Export utilities: Graphviz DOT for optical circuits, JSON for network
// state and design explorations.
//
// These are the integration points a downstream user needs to inspect what
// the library built -- render a Fig. 5/6/7 fabric with `dot -Tsvg`, feed a
// network snapshot to a dashboard, or archive a design sweep. The JSON
// emitter is deliberately dependency-free (RFC 8259 string escaping, keys
// in fixed order so output is diffable).
#pragma once

#include <string>
#include <vector>

#include "core/switch_design.h"
#include "multistage/network.h"
#include "optics/circuit.h"

namespace wdm {

/// Graphviz digraph of the component graph. Components are nodes labelled
/// kind#id (plus label when set); gates show their on/off state, converters
/// their target lane. Options keep huge fabrics renderable.
struct DotOptions {
  /// Skip components with no wired ports (none exist in practice).
  bool cluster_by_label_prefix = false;  // cluster "in0 ..."-style prefixes
  /// Only emit gates that are switched on (plus all non-gate components).
  bool active_gates_only = false;
};

[[nodiscard]] std::string circuit_to_dot(const Circuit& circuit,
                                         const DotOptions& options = {});

/// JSON snapshot of a three-stage network: geometry, construction, per-
/// connection requests and routes, and per-middle destination multisets.
[[nodiscard]] std::string network_state_to_json(const ThreeStageNetwork& network);

/// JSON array of design options (as produced by enumerate_designs).
[[nodiscard]] std::string design_options_to_json(
    const std::vector<DesignOption>& options);

/// Minimal JSON string escaping (RFC 8259).
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace wdm

// High-level design exploration: the paper's Tables 1-2 as an API.
//
// Given (N, k, multicast model), enumerate the nonblocking implementations
// the paper analyzes -- the crossbar fabric (§2.3) and the three-stage
// networks under both constructions with the middle stage sized by
// Theorem 1 / 2 -- with their exact crosspoint and converter counts and the
// (log10) multicast capacity. recommend_design() then applies the paper's
// §3.4 conclusion: pick the cheapest design, preferring MSW-dominant
// multistage once it undercuts the crossbar.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "capacity/capacity.h"
#include "capacity/cost.h"
#include "multistage/builder.h"
#include "multistage/nonblocking.h"

namespace wdm {

struct DesignOption {
  std::string name;
  MulticastModel model;
  bool is_multistage = false;
  /// Only meaningful when is_multistage.
  Construction construction = Construction::kMswDominant;
  ClosParams clos;                  // multistage geometry (m from the theorem)
  std::size_t routing_spread = 1;   // x of the routing strategy
  std::uint64_t crosspoints = 0;
  std::uint64_t converters = 0;
  /// log10 of the any-multicast capacity (same for every nonblocking
  /// implementation of one model; repeated here for report convenience).
  double log10_capacity_any = 0.0;

  [[nodiscard]] std::string to_string() const;
};

/// Factor N into n*r with n <= r and the ratio as balanced as possible.
/// Throws std::invalid_argument for N < 4 or prime N (no useful multistage
/// decomposition exists).
[[nodiscard]] std::pair<std::size_t, std::size_t> balanced_factorization(std::size_t N);

/// All nonblocking implementations of an N x N k-lane network under `model`:
/// the crossbar plus (when N factors) both multistage constructions.
[[nodiscard]] std::vector<DesignOption> enumerate_designs(std::size_t N, std::size_t k,
                                                          MulticastModel model);

/// The cheapest design by crosspoints (converters break ties) -- the paper's
/// §3.4 recommendation falls out of this automatically.
[[nodiscard]] DesignOption recommend_design(std::size_t N, std::size_t k,
                                            MulticastModel model);

/// Instantiate a routable switch for a multistage design option.
[[nodiscard]] MultistageSwitch build_switch(const DesignOption& option,
                                            MulticastModel model);

}  // namespace wdm

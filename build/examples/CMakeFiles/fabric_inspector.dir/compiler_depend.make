# Empty compiler generated dependencies file for fabric_inspector.
# This may be replaced when dependencies are built.

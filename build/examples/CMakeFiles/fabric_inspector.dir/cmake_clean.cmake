file(REMOVE_RECURSE
  "CMakeFiles/fabric_inspector.dir/fabric_inspector.cpp.o"
  "CMakeFiles/fabric_inspector.dir/fabric_inspector.cpp.o.d"
  "fabric_inspector"
  "fabric_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

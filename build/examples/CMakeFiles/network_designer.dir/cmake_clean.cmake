file(REMOVE_RECURSE
  "CMakeFiles/network_designer.dir/network_designer.cpp.o"
  "CMakeFiles/network_designer.dir/network_designer.cpp.o.d"
  "network_designer"
  "network_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

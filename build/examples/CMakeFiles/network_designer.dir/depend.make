# Empty dependencies file for network_designer.
# This may be replaced when dependencies are built.

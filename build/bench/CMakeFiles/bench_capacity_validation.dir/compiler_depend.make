# Empty compiler generated dependencies file for bench_capacity_validation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_capacity_validation.dir/bench_capacity_validation.cpp.o"
  "CMakeFiles/bench_capacity_validation.dir/bench_capacity_validation.cpp.o.d"
  "bench_capacity_validation"
  "bench_capacity_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_capacity_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_asymptotics.dir/bench_asymptotics.cpp.o"
  "CMakeFiles/bench_asymptotics.dir/bench_asymptotics.cpp.o.d"
  "bench_asymptotics"
  "bench_asymptotics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asymptotics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

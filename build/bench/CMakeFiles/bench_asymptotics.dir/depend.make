# Empty dependencies file for bench_asymptotics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_converters.dir/bench_fig3_converters.cpp.o"
  "CMakeFiles/bench_fig3_converters.dir/bench_fig3_converters.cpp.o.d"
  "bench_fig3_converters"
  "bench_fig3_converters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_converters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

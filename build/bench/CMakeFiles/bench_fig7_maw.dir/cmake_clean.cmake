file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_maw.dir/bench_fig7_maw.cpp.o"
  "CMakeFiles/bench_fig7_maw.dir/bench_fig7_maw.cpp.o.d"
  "bench_fig7_maw"
  "bench_fig7_maw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_maw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

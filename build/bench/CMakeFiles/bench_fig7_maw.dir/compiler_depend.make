# Empty compiler generated dependencies file for bench_fig7_maw.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_gate_level_clos.dir/bench_gate_level_clos.cpp.o"
  "CMakeFiles/bench_gate_level_clos.dir/bench_gate_level_clos.cpp.o.d"
  "bench_gate_level_clos"
  "bench_gate_level_clos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gate_level_clos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_gate_level_clos.
# This may be replaced when dependencies are built.

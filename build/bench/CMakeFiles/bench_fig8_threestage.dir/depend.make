# Empty dependencies file for bench_fig8_threestage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_threestage.dir/bench_fig8_threestage.cpp.o"
  "CMakeFiles/bench_fig8_threestage.dir/bench_fig8_threestage.cpp.o.d"
  "bench_fig8_threestage"
  "bench_fig8_threestage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_threestage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_theorems_m.dir/bench_theorems_m.cpp.o"
  "CMakeFiles/bench_theorems_m.dir/bench_theorems_m.cpp.o.d"
  "bench_theorems_m"
  "bench_theorems_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorems_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_theorems_m.
# This may be replaced when dependencies are built.

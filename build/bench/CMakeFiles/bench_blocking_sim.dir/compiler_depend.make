# Empty compiler generated dependencies file for bench_blocking_sim.
# This may be replaced when dependencies are built.

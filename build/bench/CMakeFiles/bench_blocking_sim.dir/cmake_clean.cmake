file(REMOVE_RECURSE
  "CMakeFiles/bench_blocking_sim.dir/bench_blocking_sim.cpp.o"
  "CMakeFiles/bench_blocking_sim.dir/bench_blocking_sim.cpp.o.d"
  "bench_blocking_sim"
  "bench_blocking_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocking_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

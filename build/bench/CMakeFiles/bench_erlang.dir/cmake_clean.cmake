file(REMOVE_RECURSE
  "CMakeFiles/bench_erlang.dir/bench_erlang.cpp.o"
  "CMakeFiles/bench_erlang.dir/bench_erlang.cpp.o.d"
  "bench_erlang"
  "bench_erlang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_erlang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

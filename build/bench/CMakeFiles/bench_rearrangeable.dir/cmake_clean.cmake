file(REMOVE_RECURSE
  "CMakeFiles/bench_rearrangeable.dir/bench_rearrangeable.cpp.o"
  "CMakeFiles/bench_rearrangeable.dir/bench_rearrangeable.cpp.o.d"
  "bench_rearrangeable"
  "bench_rearrangeable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rearrangeable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_rearrangeable.
# This may be replaced when dependencies are built.

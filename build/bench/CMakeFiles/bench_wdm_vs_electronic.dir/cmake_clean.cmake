file(REMOVE_RECURSE
  "CMakeFiles/bench_wdm_vs_electronic.dir/bench_wdm_vs_electronic.cpp.o"
  "CMakeFiles/bench_wdm_vs_electronic.dir/bench_wdm_vs_electronic.cpp.o.d"
  "bench_wdm_vs_electronic"
  "bench_wdm_vs_electronic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wdm_vs_electronic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_wdm_vs_electronic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_msdw.dir/bench_fig6_msdw.cpp.o"
  "CMakeFiles/bench_fig6_msdw.dir/bench_fig6_msdw.cpp.o.d"
  "bench_fig6_msdw"
  "bench_fig6_msdw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_msdw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6_msdw.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig4_msw_planes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_msw_planes.dir/bench_fig4_msw_planes.cpp.o"
  "CMakeFiles/bench_fig4_msw_planes.dir/bench_fig4_msw_planes.cpp.o.d"
  "bench_fig4_msw_planes"
  "bench_fig4_msw_planes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_msw_planes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_multistage_capacity.dir/bench_multistage_capacity.cpp.o"
  "CMakeFiles/bench_multistage_capacity.dir/bench_multistage_capacity.cpp.o.d"
  "bench_multistage_capacity"
  "bench_multistage_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multistage_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

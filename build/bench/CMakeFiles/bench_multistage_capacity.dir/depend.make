# Empty dependencies file for bench_multistage_capacity.
# This may be replaced when dependencies are built.

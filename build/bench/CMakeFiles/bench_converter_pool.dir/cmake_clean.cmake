file(REMOVE_RECURSE
  "CMakeFiles/bench_converter_pool.dir/bench_converter_pool.cpp.o"
  "CMakeFiles/bench_converter_pool.dir/bench_converter_pool.cpp.o.d"
  "bench_converter_pool"
  "bench_converter_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_converter_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_converter_pool.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig10_blocking_scenario.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_blocking_scenario.dir/bench_fig10_blocking_scenario.cpp.o"
  "CMakeFiles/bench_fig10_blocking_scenario.dir/bench_fig10_blocking_scenario.cpp.o.d"
  "bench_fig10_blocking_scenario"
  "bench_fig10_blocking_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_blocking_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig5_crossbar1w.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_crossbar1w.dir/bench_fig5_crossbar1w.cpp.o"
  "CMakeFiles/bench_fig5_crossbar1w.dir/bench_fig5_crossbar1w.cpp.o.d"
  "bench_fig5_crossbar1w"
  "bench_fig5_crossbar1w.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_crossbar1w.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_converter_placement.dir/bench_converter_placement.cpp.o"
  "CMakeFiles/bench_converter_placement.dir/bench_converter_placement.cpp.o.d"
  "bench_converter_placement"
  "bench_converter_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_converter_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_converter_placement.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_constructions.dir/bench_fig9_constructions.cpp.o"
  "CMakeFiles/bench_fig9_constructions.dir/bench_fig9_constructions.cpp.o.d"
  "bench_fig9_constructions"
  "bench_fig9_constructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_constructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/asymptotics.cpp" "src/CMakeFiles/wdmcast.dir/analysis/asymptotics.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/analysis/asymptotics.cpp.o.d"
  "/root/repo/src/capacity/capacity.cpp" "src/CMakeFiles/wdmcast.dir/capacity/capacity.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/capacity/capacity.cpp.o.d"
  "/root/repo/src/capacity/cost.cpp" "src/CMakeFiles/wdmcast.dir/capacity/cost.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/capacity/cost.cpp.o.d"
  "/root/repo/src/capacity/enumerate.cpp" "src/CMakeFiles/wdmcast.dir/capacity/enumerate.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/capacity/enumerate.cpp.o.d"
  "/root/repo/src/combinatorics/combinatorics.cpp" "src/CMakeFiles/wdmcast.dir/combinatorics/combinatorics.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/combinatorics/combinatorics.cpp.o.d"
  "/root/repo/src/combinatorics/multiset.cpp" "src/CMakeFiles/wdmcast.dir/combinatorics/multiset.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/combinatorics/multiset.cpp.o.d"
  "/root/repo/src/combinatorics/polynomial.cpp" "src/CMakeFiles/wdmcast.dir/combinatorics/polynomial.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/combinatorics/polynomial.cpp.o.d"
  "/root/repo/src/core/connection.cpp" "src/CMakeFiles/wdmcast.dir/core/connection.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/core/connection.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/CMakeFiles/wdmcast.dir/core/export.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/core/export.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/wdmcast.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/core/report.cpp.o.d"
  "/root/repo/src/core/switch_design.cpp" "src/CMakeFiles/wdmcast.dir/core/switch_design.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/core/switch_design.cpp.o.d"
  "/root/repo/src/fabric/clos_fabric.cpp" "src/CMakeFiles/wdmcast.dir/fabric/clos_fabric.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/fabric/clos_fabric.cpp.o.d"
  "/root/repo/src/fabric/crossbar_builder.cpp" "src/CMakeFiles/wdmcast.dir/fabric/crossbar_builder.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/fabric/crossbar_builder.cpp.o.d"
  "/root/repo/src/fabric/fabric_switch.cpp" "src/CMakeFiles/wdmcast.dir/fabric/fabric_switch.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/fabric/fabric_switch.cpp.o.d"
  "/root/repo/src/fabric/module_builder.cpp" "src/CMakeFiles/wdmcast.dir/fabric/module_builder.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/fabric/module_builder.cpp.o.d"
  "/root/repo/src/multistage/builder.cpp" "src/CMakeFiles/wdmcast.dir/multistage/builder.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/multistage/builder.cpp.o.d"
  "/root/repo/src/multistage/clos_params.cpp" "src/CMakeFiles/wdmcast.dir/multistage/clos_params.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/multistage/clos_params.cpp.o.d"
  "/root/repo/src/multistage/module.cpp" "src/CMakeFiles/wdmcast.dir/multistage/module.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/multistage/module.cpp.o.d"
  "/root/repo/src/multistage/network.cpp" "src/CMakeFiles/wdmcast.dir/multistage/network.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/multistage/network.cpp.o.d"
  "/root/repo/src/multistage/nonblocking.cpp" "src/CMakeFiles/wdmcast.dir/multistage/nonblocking.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/multistage/nonblocking.cpp.o.d"
  "/root/repo/src/multistage/rearrange.cpp" "src/CMakeFiles/wdmcast.dir/multistage/rearrange.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/multistage/rearrange.cpp.o.d"
  "/root/repo/src/multistage/recursive.cpp" "src/CMakeFiles/wdmcast.dir/multistage/recursive.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/multistage/recursive.cpp.o.d"
  "/root/repo/src/multistage/routing.cpp" "src/CMakeFiles/wdmcast.dir/multistage/routing.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/multistage/routing.cpp.o.d"
  "/root/repo/src/optics/budget.cpp" "src/CMakeFiles/wdmcast.dir/optics/budget.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/optics/budget.cpp.o.d"
  "/root/repo/src/optics/circuit.cpp" "src/CMakeFiles/wdmcast.dir/optics/circuit.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/optics/circuit.cpp.o.d"
  "/root/repo/src/optics/components.cpp" "src/CMakeFiles/wdmcast.dir/optics/components.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/optics/components.cpp.o.d"
  "/root/repo/src/optics/signal.cpp" "src/CMakeFiles/wdmcast.dir/optics/signal.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/optics/signal.cpp.o.d"
  "/root/repo/src/schedule/round_scheduler.cpp" "src/CMakeFiles/wdmcast.dir/schedule/round_scheduler.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/schedule/round_scheduler.cpp.o.d"
  "/root/repo/src/sim/blocking_sim.cpp" "src/CMakeFiles/wdmcast.dir/sim/blocking_sim.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/sim/blocking_sim.cpp.o.d"
  "/root/repo/src/sim/converter_pool.cpp" "src/CMakeFiles/wdmcast.dir/sim/converter_pool.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/sim/converter_pool.cpp.o.d"
  "/root/repo/src/sim/load_analysis.cpp" "src/CMakeFiles/wdmcast.dir/sim/load_analysis.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/sim/load_analysis.cpp.o.d"
  "/root/repo/src/sim/nested.cpp" "src/CMakeFiles/wdmcast.dir/sim/nested.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/sim/nested.cpp.o.d"
  "/root/repo/src/sim/request.cpp" "src/CMakeFiles/wdmcast.dir/sim/request.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/sim/request.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/CMakeFiles/wdmcast.dir/sim/sweep.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/sim/sweep.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/wdmcast.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/traffic_models.cpp" "src/CMakeFiles/wdmcast.dir/sim/traffic_models.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/sim/traffic_models.cpp.o.d"
  "/root/repo/src/sim/witness.cpp" "src/CMakeFiles/wdmcast.dir/sim/witness.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/sim/witness.cpp.o.d"
  "/root/repo/src/util/biguint.cpp" "src/CMakeFiles/wdmcast.dir/util/biguint.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/util/biguint.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/wdmcast.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/wdmcast.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/wdmcast.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/wdmcast.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/wdmcast.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/wdmcast.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for wdmcast.
# This may be replaced when dependencies are built.

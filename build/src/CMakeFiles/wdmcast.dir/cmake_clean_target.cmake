file(REMOVE_RECURSE
  "libwdmcast.a"
)

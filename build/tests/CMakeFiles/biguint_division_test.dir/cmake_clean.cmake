file(REMOVE_RECURSE
  "CMakeFiles/biguint_division_test.dir/biguint_division_test.cpp.o"
  "CMakeFiles/biguint_division_test.dir/biguint_division_test.cpp.o.d"
  "biguint_division_test"
  "biguint_division_test.pdb"
  "biguint_division_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biguint_division_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

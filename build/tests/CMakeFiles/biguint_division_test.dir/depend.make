# Empty dependencies file for biguint_division_test.
# This may be replaced when dependencies are built.

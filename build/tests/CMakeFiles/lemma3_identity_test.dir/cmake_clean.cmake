file(REMOVE_RECURSE
  "CMakeFiles/lemma3_identity_test.dir/lemma3_identity_test.cpp.o"
  "CMakeFiles/lemma3_identity_test.dir/lemma3_identity_test.cpp.o.d"
  "lemma3_identity_test"
  "lemma3_identity_test.pdb"
  "lemma3_identity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma3_identity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

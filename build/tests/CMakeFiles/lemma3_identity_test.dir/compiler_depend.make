# Empty compiler generated dependencies file for lemma3_identity_test.
# This may be replaced when dependencies are built.

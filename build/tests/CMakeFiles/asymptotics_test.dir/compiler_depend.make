# Empty compiler generated dependencies file for asymptotics_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/asymptotics_test.dir/asymptotics_test.cpp.o"
  "CMakeFiles/asymptotics_test.dir/asymptotics_test.cpp.o.d"
  "asymptotics_test"
  "asymptotics_test.pdb"
  "asymptotics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asymptotics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

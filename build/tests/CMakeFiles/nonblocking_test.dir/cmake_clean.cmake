file(REMOVE_RECURSE
  "CMakeFiles/nonblocking_test.dir/nonblocking_test.cpp.o"
  "CMakeFiles/nonblocking_test.dir/nonblocking_test.cpp.o.d"
  "nonblocking_test"
  "nonblocking_test.pdb"
  "nonblocking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonblocking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/clos_fabric_test.dir/clos_fabric_test.cpp.o"
  "CMakeFiles/clos_fabric_test.dir/clos_fabric_test.cpp.o.d"
  "clos_fabric_test"
  "clos_fabric_test.pdb"
  "clos_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clos_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rearrange_test.dir/rearrange_test.cpp.o"
  "CMakeFiles/rearrange_test.dir/rearrange_test.cpp.o.d"
  "rearrange_test"
  "rearrange_test.pdb"
  "rearrange_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rearrange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

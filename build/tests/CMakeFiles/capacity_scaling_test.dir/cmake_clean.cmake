file(REMOVE_RECURSE
  "CMakeFiles/capacity_scaling_test.dir/capacity_scaling_test.cpp.o"
  "CMakeFiles/capacity_scaling_test.dir/capacity_scaling_test.cpp.o.d"
  "capacity_scaling_test"
  "capacity_scaling_test.pdb"
  "capacity_scaling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_scaling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/converter_pool_test.dir/converter_pool_test.cpp.o"
  "CMakeFiles/converter_pool_test.dir/converter_pool_test.cpp.o.d"
  "converter_pool_test"
  "converter_pool_test.pdb"
  "converter_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converter_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

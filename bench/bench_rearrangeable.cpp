// The middle-stage cost ladder underneath Table 2, demonstrated by routing:
//   m = n        rearrangeable unicast (Slepian-Duguid, Paull's algorithm)
//   m = 2n-1     strict-sense unicast (Clos), no call ever moves
//   m = Theorem1 strict-sense multicast (the paper's contribution)
// For each rung: exhaustive/random permutation routing with rearrangement
// counts, and the first-fit failure rate below the Clos bound.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "multistage/nonblocking.h"
#include "multistage/rearrange.h"
#include "util/rng.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Middle-stage ladder: rearrangeable -> Clos -> Theorem 1");

  bool ok = true;

  std::cout << "\nLadder for square geometries (k-independent; unicast rungs "
               "are per wavelength plane):\n";
  Table ladder({"n=r", "rearrangeable m", "Clos m=2n-1", "Theorem 1 m", "T1 x"});
  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    const NonblockingBound bound = theorem1_min_m(n, n);
    ladder.add(n, n, 2 * n - 1, bound.m, bound.x);
    ok = ok && n <= 2 * n - 1 && 2 * n - 1 <= bound.m;
  }
  ladder.print(std::cout);

  // Exhaustive at n=2, r=3 (720 permutations): everything routes at m=n with
  // Paull; first-fit needs more.
  {
    const std::size_t n = 2, r = 3, N = 6;
    std::vector<std::size_t> perm(N);
    std::iota(perm.begin(), perm.end(), 0);
    std::size_t routed = 0, first_fit_failures = 0, moves = 0, total = 0;
    do {
      ++total;
      const auto paull = route_permutation(n, r, n, perm);
      if (paull) {
        ++routed;
        moves += paull->rearranged_calls;
      }
      if (!route_permutation_first_fit(n, r, n, perm)) ++first_fit_failures;
    } while (std::next_permutation(perm.begin(), perm.end()));
    ok = ok && routed == total;
    std::cout << "\nexhaustive n=2, r=3, m=n=2: " << routed << "/" << total
              << " permutations routed with rearrangement (" << moves
              << " total moves); first-fit failed on " << first_fit_failures
              << "\n";
  }

  // Random larger geometry: rearrangement effort vs m.
  {
    const std::size_t n = 8, r = 8, N = 64;
    Rng rng(99);
    std::cout << "\nn=r=8, 50 random permutations per m:\n";
    Table table({"m", "Paull routed", "avg moves/permutation",
                 "first-fit failures"});
    for (const std::size_t m : {8u, 11u, 15u, 34u}) {  // n, mid, 2n-1, Theorem 1
      std::size_t routed = 0, moves = 0, ff_failures = 0;
      for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::size_t> perm(N);
        std::iota(perm.begin(), perm.end(), 0);
        rng.shuffle(perm);
        const auto paull = route_permutation(n, r, m, perm);
        if (paull) {
          ++routed;
          moves += paull->rearranged_calls;
        }
        if (!route_permutation_first_fit(n, r, m, perm)) ++ff_failures;
      }
      table.add(m, routed, static_cast<double>(moves) / 50.0, ff_failures);
      ok = ok && routed == 50;
      if (m >= 2 * n - 1) ok = ok && ff_failures == 0;  // Clos' theorem
    }
    table.print(std::cout);
  }

  std::cout << "\nRearrangeable baseline " << (ok ? "REPRODUCED" : "FAILED")
            << ": Slepian-Duguid routes everything at m=n (moving calls), "
               "Clos' 2n-1 removes the moves, Theorem 1 extends the guarantee "
               "to multicast.\n";
  return ok ? 0 : 1;
}

// Reproduces Fig. 10: a multicast connection that blocks at a middle-stage
// MSW module because of its restricted wavelength assignment, while the
// MAW-dominant construction routes the identical request in the identical
// network state by moving to a free wavelength in the first two stages.
#include <iostream>

#include "multistage/routing.h"
#include "sim/request.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Fig. 10: blocking at an MSW middle stage, avoided by MAW");

  const Fig10Scenario scenario = fig10_scenario();
  std::cout << "\ngeometry: " << scenario.params.to_string() << ", network model "
            << model_name(scenario.network_model) << "\nprior connections:\n";
  for (const auto& prior : scenario.prior) {
    std::cout << "  " << prior.request.to_string() << " via "
              << prior.route.to_string() << "\n";
  }
  std::cout << "challenge: " << scenario.challenge.to_string() << "\n\n";

  bool ok = true;
  Table table({"construction", "challenge outcome", "route"});
  for (const Construction construction :
       {Construction::kMswDominant, Construction::kMawDominant}) {
    ThreeStageNetwork network(scenario.params, construction,
                              scenario.network_model);
    install_scripted(network, scenario.prior);
    Router router(network, RoutingPolicy{2});
    const auto route = router.find_route(scenario.challenge);
    table.add(construction_name(construction),
              route ? "ROUTED" : "BLOCKED",
              route ? route->to_string() : std::string("-"));
    if (construction == Construction::kMswDominant) {
      ok = ok && !route.has_value();
    } else {
      ok = ok && route.has_value();
      if (route) {
        network.install(scenario.challenge, *route);
        network.self_check();
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nWhy: under MSW-dominant the connection must stay on λ1; prior "
               "connection A holds λ1 on link in0->mid0 and prior B holds λ1 on "
               "link mid1->out1, so no middle set covers both destinations on "
               "λ1. MAW modules convert λ1->λ2 inside stage 1 and reach both.\n";

  std::cout << "\nFig. 10 " << (ok ? "REPRODUCED" : "FAILED") << ".\n";
  return ok ? 0 : 1;
}

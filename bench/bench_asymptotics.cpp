// Measuring Table 2's exponents. The free three-parameter fit is nearly
// collinear on real (discretely-optimized) cost curves, so each design is
// tested against two constrained hypotheses instead:
//   H0: cost ~ N^a                      (log-factor weight pinned to 0)
//   H1: cost ~ N^a * logN/loglogN       (weight pinned to 1)
// The better-fitting hypothesis and its recovered exponent must match the
// paper's row: crossbar = pure N^2; theorem-sized three-stage = N^1.5 with
// the log correction.
#include <cmath>
#include <iostream>

#include "analysis/asymptotics.h"
#include "capacity/cost.h"
#include "multistage/nonblocking.h"
#include "multistage/recursive.h"
#include "util/table.h"

using namespace wdm;

namespace {

struct Hypotheses {
  AsymptoticFit pure;      // b = 0
  AsymptoticFit log_form;  // b = 1
};

Hypotheses test_design(const std::vector<std::size_t>& ladder,
                       const std::function<double(std::size_t)>& cost) {
  return {fit_with_fixed_log_factor(ladder, cost, 0.0),
          fit_with_fixed_log_factor(ladder, cost, 1.0)};
}

}  // namespace

int main() {
  print_banner(std::cout, "Measured asymptotics of the Table 2 cost rows");

  const std::vector<std::size_t> ladder = {16,    64,    256,    1024,
                                           4096,  16384, 65536,  262144,
                                           1048576};
  bool ok = true;
  Table table({"design", "H0: N^a (err)", "H1: N^a logN/loglogN (err)",
               "winner", "paper row"});

  const auto crossbar_cost_fn = [](std::size_t N) {
    return static_cast<double>(crossbar_cost(N, 2, MulticastModel::kMAW).crosspoints);
  };
  const Hypotheses crossbar = test_design(ladder, crossbar_cost_fn);
  const bool crossbar_pure_wins =
      crossbar.pure.max_relative_error < crossbar.log_form.max_relative_error;
  table.add("crossbar",
            "a=" + std::to_string(crossbar.pure.poly_exponent) + " (" +
                std::to_string(crossbar.pure.max_relative_error) + ")",
            "a=" + std::to_string(crossbar.log_form.poly_exponent) + " (" +
                std::to_string(crossbar.log_form.max_relative_error) + ")",
            crossbar_pure_wins ? "H0" : "H1", "k^2 N^2");
  ok = ok && crossbar_pure_wins &&
       std::abs(crossbar.pure.poly_exponent - 2.0) < 0.01;

  const auto multistage_cost_fn = [](std::size_t N) {
    return static_cast<double>(
        balanced_multistage_cost(N, 2, Construction::kMswDominant,
                                 MulticastModel::kMSW)
            .crosspoints);
  };
  const Hypotheses multistage = test_design(ladder, multistage_cost_fn);
  const bool multistage_log_wins =
      multistage.log_form.max_relative_error < multistage.pure.max_relative_error;
  table.add("3-stage (Theorem 1)",
            "a=" + std::to_string(multistage.pure.poly_exponent) + " (" +
                std::to_string(multistage.pure.max_relative_error) + ")",
            "a=" + std::to_string(multistage.log_form.poly_exponent) + " (" +
                std::to_string(multistage.log_form.max_relative_error) + ")",
            multistage_log_wins ? "H1" : "H0", "k N^1.5 logN/loglogN");
  ok = ok && multistage_log_wins &&
       std::abs(multistage.log_form.poly_exponent - 1.5) < 0.08;

  const auto converters_fn = [](std::size_t N) {
    return static_cast<double>(
        balanced_multistage_cost(N, 2, Construction::kMswDominant,
                                 MulticastModel::kMAW)
            .converters);
  };
  const Hypotheses converters = test_design(ladder, converters_fn);
  table.add("3-stage MAW converters",
            "a=" + std::to_string(converters.pure.poly_exponent) + " (" +
                std::to_string(converters.pure.max_relative_error) + ")",
            "a=" + std::to_string(converters.log_form.poly_exponent) + " (" +
                std::to_string(converters.log_form.max_relative_error) + ")",
            converters.pure.max_relative_error <
                    converters.log_form.max_relative_error
                ? "H0"
                : "H1",
            "k N (exact)");
  ok = ok && std::abs(converters.pure.poly_exponent - 1.0) < 0.001 &&
       converters.pure.max_relative_error < 1e-9;

  table.print(std::cout);

  // Deeper recursion must reduce the measured growth further.
  const auto five_stage_fn = [](std::size_t N) {
    return static_cast<double>(
        recursive_design(N, 2, MulticastModel::kMSW,
                         std::min<std::size_t>(2, max_recursion_depth(N)))
            .crosspoints);
  };
  const double three_slope =
      fit_with_fixed_log_factor(ladder, multistage_cost_fn, 1.0).poly_exponent;
  const double five_slope =
      fit_with_fixed_log_factor(ladder, five_stage_fn, 1.0).poly_exponent;
  std::cout << "\nrecursion depth vs measured exponent (log form): 3-stage a="
            << three_slope << ", 5-stage a=" << five_slope << "\n";
  ok = ok && five_slope < three_slope;

  std::cout << "\nMeasured asymptotics " << (ok ? "REPRODUCED" : "FAILED")
            << ": the log-corrected N^1.5 hypothesis beats the pure power for "
               "the three-stage design, pure N^2 wins for the crossbar, and "
               "recursion lowers the exponent further.\n";
  return ok ? 0 : 1;
}

// Reproduces paper Table 1: multicast capacity (full / any), crosspoints and
// wavelength converters for an N x N k-wavelength crossbar under MSW, MSDW,
// and MAW. The paper states the symbolic formulas; we print them evaluated
// for a range of (N, k) plus the symbolic row itself, and check the claimed
// relations (capacity ordering, MSDW/MAW cost equality) on every row.
#include <iostream>

#include "capacity/capacity.h"
#include "capacity/cost.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Paper Table 1: WDM multicast networks under different models");

  std::cout << "\nSymbolic rows (as printed in the paper):\n";
  Table symbolic({"model", "capacity (full)", "capacity (any)", "#crosspoints",
                  "#converters"});
  symbolic.add("MSW", "N^(Nk)", "(N+1)^(Nk)", "k N^2", "0");
  symbolic.add("MSDW", "sum P(Nk,sum j_i) prod S(N,j_i)",
               "sum P(Nk,sum j_i) prod C(N,l_i) S(N-l_i,j_i)", "k^2 N^2", "k N");
  symbolic.add("MAW", "[P(Nk,k)]^N", "[sum_j P(Nk,k-j) C(k,j)]^N", "k^2 N^2",
               "k N");
  symbolic.print(std::cout);

  bool all_relations_hold = true;
  for (const auto& [N, k] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 2}, {4, 2}, {4, 4}, {8, 2}, {8, 4}, {16, 4}}) {
    std::cout << "\nEvaluated for N=" << N << ", k=" << k << ":\n";
    Table table({"model", "capacity (full)", "capacity (any)", "#crosspoints",
                 "#converters"});
    for (const MulticastModel model : kAllModels) {
      const CrossbarCost cost = crossbar_cost(N, k, model);
      table.add(model_name(model),
                multicast_capacity(N, k, model, AssignmentKind::kFull).to_sci(4),
                multicast_capacity(N, k, model, AssignmentKind::kAny).to_sci(4),
                cost.crosspoints, cost.converters);
    }
    table.print(std::cout);

    // Shape checks the paper claims (§2.2, §2.4).
    const BigUInt msw = multicast_capacity(N, k, MulticastModel::kMSW,
                                           AssignmentKind::kAny);
    const BigUInt msdw = multicast_capacity(N, k, MulticastModel::kMSDW,
                                            AssignmentKind::kAny);
    const BigUInt maw = multicast_capacity(N, k, MulticastModel::kMAW,
                                           AssignmentKind::kAny);
    const bool ordering = msw < msdw && msdw < maw;
    const bool cost_equal =
        crossbar_cost(N, k, MulticastModel::kMSDW) ==
        crossbar_cost(N, k, MulticastModel::kMAW);
    all_relations_hold = all_relations_hold && ordering && cost_equal;
    std::cout << "capacity ordering MSW < MSDW < MAW: "
              << (ordering ? "holds" : "VIOLATED")
              << "; MSDW/MAW cost identical: "
              << (cost_equal ? "holds" : "VIOLATED") << "\n";
  }

  std::cout << "\n§2.4 trade-off in one number (log10 capacity digits bought "
               "per crosspoint, any-assignments):\n";
  Table efficiency({"N", "k", "MSW", "MSDW", "MAW", "MSW/MAW ratio"});
  for (const auto& [N, k] : std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 2}, {8, 4}, {16, 8}}) {
    const double msw = capacity_per_crosspoint(N, k, MulticastModel::kMSW);
    const double msdw = capacity_per_crosspoint(N, k, MulticastModel::kMSDW);
    const double maw = capacity_per_crosspoint(N, k, MulticastModel::kMAW);
    efficiency.add(N, k, msw, msdw, maw, msw / maw);
    all_relations_hold = all_relations_hold && msw > maw && maw > msdw;
  }
  efficiency.print(std::cout);

  std::cout << "\nTable 1 relations " << (all_relations_hold ? "REPRODUCED" : "FAILED")
            << ": MSDW dominated by MAW at equal cost (paper's conclusion in "
               "§2.4); MSW wins capacity-per-gate, MAW wins raw capacity -- "
               "the genuine trade-off.\n";
  return all_relations_hold ? 0 : 1;
}

// Empirical validation of the nonblocking theorems: blocking probability vs
// middle-stage size m, for both constructions, with random dynamic load plus
// the structured saturation adversary. The paper proves sufficiency
// analytically; this bench shows (a) zero observed blocking at m >= bound
// and (b) blocking appearing once m drops below it.
#include <iostream>

#include "sim/sweep.h"
#include "util/table.h"

using namespace wdm;

namespace {

bool run_sweep(const char* title, SweepConfig config) {
  print_banner(std::cout, title);
  const NonblockingBound bound =
      config.construction == Construction::kMswDominant
          ? theorem1_min_m(config.n, config.r)
          : theorem2_min_m(config.n, config.r, config.k);
  std::cout << "geometry n=" << config.n << " r=" << config.r << " k=" << config.k
            << "; theorem bound m=" << bound.m << " (x=" << bound.x << ")\n\n";

  const auto points = sweep_middle_count(config);
  Table table({"m", "attempts", "blocked", "P(block)", "adversary blocks",
               "at/above bound"});
  bool zero_at_bound = true;
  bool blocking_below = false;
  for (const SweepPoint& point : points) {
    const bool at_bound = point.m >= point.theorem_bound_m;
    table.add(point.m, point.stats.attempts, point.stats.blocked,
              point.stats.blocking_probability(), point.attack_blocked, at_bound);
    if (at_bound && (point.stats.blocked > 0 || point.attack_blocked > 0)) {
      zero_at_bound = false;
    }
    if (!at_bound && (point.stats.blocked > 0 || point.attack_blocked > 0)) {
      blocking_below = true;
    }
  }
  table.print(std::cout);
  std::cout << "zero blocking at/above bound: " << (zero_at_bound ? "yes" : "NO")
            << "; blocking observed below bound: "
            << (blocking_below ? "yes" : "no") << "\n";
  // Zero-at-bound is the falsifiable claim; blocking-below is expected for
  // these small geometries but not guaranteed for every seed.
  return zero_at_bound;
}

}  // namespace

int main() {
  bool ok = true;

  {
    SweepConfig config;
    config.n = 2;
    config.r = 2;
    config.k = 2;
    config.construction = Construction::kMswDominant;
    config.network_model = MulticastModel::kMSW;
    config.trials = 4;
    config.sim.steps = 1500;
    config.sim.arrival_fraction = 0.75;
    ok = run_sweep("Blocking vs m: MSW-dominant, MSW model (Theorem 1)", config) && ok;
  }
  {
    SweepConfig config;
    config.n = 3;
    config.r = 3;
    config.k = 2;
    config.construction = Construction::kMswDominant;
    config.network_model = MulticastModel::kMAW;
    config.trials = 3;
    config.sim.steps = 1200;
    config.sim.arrival_fraction = 0.75;
    config.sim.fanout = {1, 3};
    ok = run_sweep("Blocking vs m: MSW-dominant, MAW model (Theorem 1)", config) && ok;
  }
  {
    SweepConfig config;
    config.n = 2;
    config.r = 2;
    config.k = 2;
    config.construction = Construction::kMawDominant;
    config.network_model = MulticastModel::kMSW;
    config.trials = 4;
    config.sim.steps = 1500;
    config.sim.arrival_fraction = 0.75;
    ok = run_sweep("Blocking vs m: MAW-dominant, MSW model (Theorem 2)", config) && ok;
  }

  std::cout << "\nTheorem validation by simulation "
            << (ok ? "REPRODUCED" : "FAILED")
            << " (no block ever observed at the proven bound).\n";
  return ok ? 0 : 1;
}

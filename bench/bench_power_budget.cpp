// §2.3's projection made quantitative: worst-case insertion loss and
// first-order crosstalk exposure of every nonblocking design. Crossbar
// closed forms are validated against the gate-level simulator (measured
// power of a routed beam must match to double precision); multistage values
// come from per-stage composition.
#include <iostream>

#include "fabric/fabric_switch.h"
#include "multistage/nonblocking.h"
#include "optics/budget.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Power loss & crosstalk projection (§2.3)");

  bool ok = true;

  std::cout << "\nClosed form vs gate-level measurement (crossbars, unicast "
               "worst path, 0 dBm transmitter):\n";
  Table validation({"N", "k", "model", "closed-form loss dB", "measured dB",
                    "match"});
  for (const auto& [N, k] : std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 2}, {8, 2}, {4, 4}}) {
    for (const MulticastModel model : kAllModels) {
      FabricSwitch sw(N, k, model);
      sw.connect(model == MulticastModel::kMSW
                     ? MulticastRequest{{0, 0}, {{1, 0}}}
                     : MulticastRequest{{0, 1}, {{1, 0}}});
      const auto report = sw.verify();
      const PowerBudget budget = crossbar_power_budget(N, k, model);
      const bool match =
          report.ok &&
          std::abs(report.min_power_dbm + budget.worst_path_loss_db) < 1e-9;
      ok = ok && match;
      validation.add(N, k, model_name(model), budget.worst_path_loss_db,
                     -report.min_power_dbm, match);
    }
  }
  validation.print(std::cout);

  std::cout << "\nDesign comparison at N=1024, k=2 (crossbar vs theorem-sized "
               "three-stage):\n";
  Table comparison({"design", "model", "loss dB", "gate stages",
                    "crosstalk aggressors", "crosspoints"});
  const std::size_t N = 1024, k = 2;
  const ClosParams params{32, 32, theorem1_min_m(32, 32).m, k};
  for (const MulticastModel model : kAllModels) {
    const PowerBudget cb = crossbar_power_budget(N, k, model);
    comparison.add("crossbar", model_name(model), cb.worst_path_loss_db,
                   cb.gate_stages, cb.crosstalk_aggressors,
                   crossbar_cost(N, k, model).crosspoints);
    const PowerBudget ms =
        multistage_power_budget(params, Construction::kMswDominant, model);
    comparison.add("3-stage", model_name(model), ms.worst_path_loss_db,
                   ms.gate_stages, ms.crosstalk_aggressors,
                   multistage_cost(params, Construction::kMswDominant, model)
                       .crosspoints);
    // The trade the numbers must show: multistage wins crosspoints and
    // crosstalk exposure, loses insertion loss (3 gate stages + m-way split).
    ok = ok && ms.crosstalk_aggressors < cb.crosstalk_aggressors &&
         ms.worst_path_loss_db > cb.worst_path_loss_db;
  }
  comparison.print(std::cout);

  std::cout << "\nPower/crosstalk projection " << (ok ? "REPRODUCED" : "FAILED")
            << ": closed forms equal gate-level measurements; multistage "
               "trades insertion loss for crosstalk and crosspoints.\n";
  return ok ? 0 : 1;
}

// Routing-strategy ablation: the two knobs DESIGN.md calls out.
//   1. Spread x: run the same undersized network with x = 1..4 and show
//      blocking falls as the strategy may fan over more middles (and why
//      the theorems then charge (n-1)x unavailable middles).
//   2. Search: exhaustive (complete Lemma-4 cover search) vs greedy
//      most-coverage-first -- greedy can block where exhaustive routes.
#include <iostream>

#include "sim/blocking_sim.h"
#include "util/table.h"

using namespace wdm;

namespace {

SimStats run_with_policy(const ClosParams& params, const RoutingPolicy& policy,
                         std::uint64_t seed) {
  MultistageSwitch sw(params, Construction::kMswDominant, MulticastModel::kMSW,
                      policy);
  SimConfig config;
  config.steps = 2500;
  config.arrival_fraction = 0.85;
  config.fanout = {2, 3};  // moderate fanout maximizes concurrency pressure
  config.seed = seed;
  return run_dynamic_sim(sw, config);
}

}  // namespace

int main() {
  print_banner(std::cout, "Routing ablations: spread x and cover-search strategy");

  bool ok = true;

  // Undersized on purpose: k = 1 and m = 3, far below the Theorem-1 bound
  // (9 for n = r = 3) with fanout 2-3: the regime where blocking is richest.
  const ClosParams params{3, 3, 3, 1};
  std::cout << "\ngeometry " << params.to_string()
            << " (deliberately below the bound: blocking expected)\n\n";

  std::cout << "Spread ablation (exhaustive search):\n";
  Table spread_table({"x", "attempts", "blocked", "P(block)"});
  double previous = 1.0;
  for (std::size_t x = 1; x <= 4; ++x) {
    SimStats total;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      total += run_with_policy(params, RoutingPolicy{x}, seed);
    }
    spread_table.add(x, total.attempts, total.blocked,
                     total.blocking_probability());
    // Larger spread never hurts feasibility of an individual request.
    ok = ok && (total.blocking_probability() <= previous + 0.02);
    previous = total.blocking_probability();
  }
  spread_table.print(std::cout);

  std::cout << "\nSearch ablation (x = 2):\n";
  Table search_table({"search", "attempts", "blocked", "P(block)"});
  SimStats exhaustive_total, greedy_total;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    exhaustive_total +=
        run_with_policy(params, RoutingPolicy{2, RouteSearch::kExhaustive}, seed);
    greedy_total +=
        run_with_policy(params, RoutingPolicy{2, RouteSearch::kGreedy}, seed);
  }
  search_table.add("exhaustive", exhaustive_total.attempts,
                   exhaustive_total.blocked,
                   exhaustive_total.blocking_probability());
  search_table.add("greedy", greedy_total.attempts, greedy_total.blocked,
                   greedy_total.blocking_probability());
  search_table.print(std::cout);
  // Greedy is at best equal; typically worse under multicast-heavy load.
  ok = ok && greedy_total.blocking_probability() >=
                 exhaustive_total.blocking_probability() - 1e-9;

  std::cout << "\nLane-policy ablation (MAW-dominant, MSW model, theorem-sized "
               "m): conversions per connection\n";
  Table lane_table({"lane policy", "admitted", "blocked",
                    "mean conversions/connection"});
  double first_fit_conversions = 0.0;
  for (const LanePolicy lanes : {LanePolicy::kFirstFit, LanePolicy::kPreferSource}) {
    SimStats total;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      MultistageSwitch sw(ClosParams{2, 2, 4, 2}, Construction::kMawDominant,
                          MulticastModel::kMSW,
                          RoutingPolicy{1, RouteSearch::kExhaustive, lanes});
      SimConfig config;
      config.steps = 2000;
      config.arrival_fraction = 0.75;
      config.seed = seed;
      total += run_dynamic_sim(sw, config);
    }
    lane_table.add(lanes == LanePolicy::kFirstFit ? "first-fit" : "prefer-source",
                   total.admitted, total.blocked, total.mean_conversions());
    ok = ok && total.blocked == 0;  // both safe at the bound
    if (lanes == LanePolicy::kFirstFit) {
      first_fit_conversions = total.mean_conversions();
    } else {
      ok = ok && total.mean_conversions() <= first_fit_conversions;
    }
  }
  lane_table.print(std::cout);

  std::cout << "\nRouting ablation " << (ok ? "REPRODUCED" : "FAILED")
            << ": blocking falls with spread; the complete cover search "
               "dominates greedy; prefer-source cuts conversions ~6x at no "
               "routability cost.\n";
  return ok ? 0 : 1;
}

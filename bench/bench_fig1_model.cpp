// Reproduces Fig. 1's network model: an N x N k-wavelength WDM network where
// every input node drives k fixed-tuned transmitters through a mux onto its
// fiber and every output node demuxes its fiber into k fixed-tuned
// receivers. Audits the built port shell and demonstrates the WDM-specific
// feature the paper highlights: one node participating in k connections
// simultaneously.
#include <iostream>

#include "fabric/fabric_switch.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Fig. 1: the N x N k-wavelength WDM network model");

  bool ok = true;
  Table table({"N", "k", "transmitters", "receivers", "muxes", "demuxes",
               "expected tx/rx", "expected mux/demux"});
  for (const auto& [N, k] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 2}, {3, 2}, {4, 4}, {8, 3}}) {
    const CrossbarFabric fabric(N, k, MulticastModel::kMSW);
    const Circuit& circuit = fabric.circuit();
    const std::size_t tx = circuit.count_kind(ComponentKind::kSource);
    const std::size_t rx = circuit.count_kind(ComponentKind::kSink);
    const std::size_t mux = circuit.count_kind(ComponentKind::kMux);
    const std::size_t demux = circuit.count_kind(ComponentKind::kDemux);
    table.add(N, k, tx, rx, mux, demux, N * k, 2 * N);
    ok = ok && tx == N * k && rx == N * k && mux == 2 * N && demux == 2 * N;
  }
  table.print(std::cout);

  // The paper's point about Fig. 1: a node can take part in up to k
  // connections at once (unlike an electronic port). Demonstrate with k
  // concurrent connections sharing one input port and one output port.
  const std::size_t N = 4, k = 3;
  FabricSwitch sw(N, k, MulticastModel::kMSW);
  for (Wavelength lane = 0; lane < k; ++lane) {
    sw.connect({{0, lane}, {{2, lane}}});
  }
  const auto report = sw.verify();
  ok = ok && report.ok && sw.active_connections() == k;
  std::cout << "\nport 0 -> port 2 on all " << k
            << " lanes simultaneously: " << (report.ok ? "verified" : "FAILED")
            << " (" << report.to_string() << ")\n";

  std::cout << "\nFig. 1 model " << (ok ? "REPRODUCED" : "FAILED") << ".\n";
  return ok ? 0 : 1;
}

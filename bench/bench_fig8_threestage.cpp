// Reproduces Fig. 8: the three-stage switching network geometry -- r input
// modules (n x m), m middle modules (r x r), r output modules (m x n), one
// k-lane link between every consecutive pair. Prints the module/link
// inventory for several geometries and verifies the wiring invariants on a
// live network.
#include <iostream>

#include "multistage/builder.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Fig. 8: three-stage network geometry");

  bool ok = true;
  Table table({"n", "r", "m", "k", "N", "input mods", "middle mods",
               "output mods", "stage1-2 links", "stage2-3 links",
               "wavelength channels/link"});
  for (const auto& [n, r, m, k] :
       std::vector<std::array<std::size_t, 4>>{{2, 2, 3, 1},
                                               {4, 4, 16, 2},
                                               {3, 5, 8, 4}}) {
    const ClosParams params{n, r, m, k};
    const ThreeStageNetwork network(params, Construction::kMswDominant,
                                    MulticastModel::kMSW);
    table.add(n, r, m, k, params.port_count(), r, m, r, r * m, m * r, k);

    // Wiring invariants: module shapes match Fig. 8 exactly.
    for (std::size_t i = 0; i < r; ++i) {
      ok = ok && network.input_module(i).in_ports() == n &&
           network.input_module(i).out_ports() == m &&
           network.output_module(i).in_ports() == m &&
           network.output_module(i).out_ports() == n;
    }
    for (std::size_t j = 0; j < m; ++j) {
      ok = ok && network.middle_module(j).in_ports() == r &&
           network.middle_module(j).out_ports() == r;
    }
  }
  table.print(std::cout);

  // Exercise the geometry end to end: a connection from the last port of the
  // last input module to destinations spanning the first and last output
  // modules.
  MultistageSwitch sw(ClosParams{3, 4, 6, 2}, Construction::kMswDominant,
                      MulticastModel::kMSW, RoutingPolicy{2});
  const auto id = sw.try_connect({{11, 1}, {{0, 1}, {10, 1}}});
  ok = ok && id.has_value();
  if (id) {
    const Route& route = sw.network().connections().at(*id).second;
    std::cout << "\ncorner-to-corner multicast routed: " << route.to_string()
              << "\n";
    sw.network().self_check();
  }

  std::cout << "\nFig. 8 " << (ok ? "REPRODUCED" : "FAILED") << ".\n";
  return ok ? 0 : 1;
}

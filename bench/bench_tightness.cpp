// How tight are Theorems 1-2? The paper (citing the electronic lower-bound
// technique) states matching necessary values exist. This bench searches
// constructively for blocking witnesses below each bound and reports the
// largest m at which one was found. A small gap = empirically tight; toy
// geometries keep a structural gap because the adversary runs out of output
// wavelengths before it can exclude every middle module.
#include <iostream>

#include "sim/witness.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Tightness probe: blocking witnesses below the bounds");

  WitnessSearchConfig config;
  config.churn_steps = 1200;
  config.restarts = 4;
  config.probes_per_step = 2;

  bool ok = true;
  Table table({"construction", "n", "r", "k", "bound m", "largest blocking m",
               "gap"});
  struct Case {
    std::size_t n, r, k;
    Construction construction;
  };
  for (const Case& c : {Case{2, 2, 1, Construction::kMswDominant},
                        Case{2, 2, 2, Construction::kMswDominant},
                        Case{2, 3, 2, Construction::kMswDominant},
                        Case{3, 3, 1, Construction::kMswDominant},
                        Case{3, 3, 2, Construction::kMswDominant},
                        Case{2, 2, 2, Construction::kMawDominant},
                        Case{3, 3, 2, Construction::kMawDominant}}) {
    const TightnessReport report = probe_tightness(
        c.n, c.r, c.k, c.construction, MulticastModel::kMSW, config);
    table.add(construction_name(c.construction), c.n, c.r, c.k,
              report.theorem_bound_m, report.largest_blocking_m, report.gap());
    // Falsifiable claims: a witness must exist somewhere below the bound,
    // and never at/above it (probe_tightness never scans there; the sweep
    // and test suites cover that side).
    ok = ok && report.largest_blocking_m > 0 &&
         report.largest_blocking_m < report.theorem_bound_m;
  }
  table.print(std::cout);

  std::cout << "\nA replayable witness example (n=r=k=2, m=2, MSW-dominant), "
               "shrunk to its 1-minimal blocking core:\n";
  const ClosParams tiny{2, 2, 2, 2};
  const auto witness =
      find_blocking_witness(tiny, Construction::kMswDominant,
                            MulticastModel::kMSW, RoutingPolicy{1}, config);
  if (witness) {
    const BlockingWitness core = shrink_witness(
        *witness, tiny, Construction::kMswDominant, MulticastModel::kMSW,
        RoutingPolicy{1});
    std::cout << "found with " << witness->state.size()
              << " connections; minimal core has " << core.state.size() << ":\n";
    for (const auto& [request, route] : core.state) {
      std::cout << "  " << request.to_string() << " via " << route.to_string()
                << "\n";
    }
    std::cout << "  blocks: " << core.blocked_request.to_string() << "\n";
    ok = ok && core.state.size() <= witness->state.size();
  }
  ok = ok && witness.has_value();

  std::cout << "\nTightness probe " << (ok ? "REPRODUCED" : "FAILED")
            << ": constructive blocking strictly below every bound, none at it.\n";
  return ok ? 0 : 1;
}

// Reproduces Fig. 7: the paper's example MAW network at N = 3, k = 2 -- the
// same 6 x 6 gate matrix as Fig. 6 but with the 6 converters moved to the
// output side, enabling per-destination wavelengths. Audits the inventory
// and replays a scene impossible under MSDW.
#include <iostream>

#include "fabric/fabric_switch.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Fig. 7: MAW crossbar example (N=3, k=2)");

  const std::size_t N = 3, k = 2;
  const CrossbarFabric fabric(N, k, MulticastModel::kMAW);
  const CrossbarCost audit = fabric.audit();

  Table inventory({"component", "built", "paper figure"});
  inventory.add("SOA gates (crosspoints)", audit.crosspoints, "k^2 N^2 = 36");
  inventory.add("wavelength converters", audit.converters, "Nk = 6 (output side)");
  inventory.add("splitters (1 -> Nk)", audit.splitters, "Nk = 6");
  inventory.add("combiners (Nk -> 1)", audit.combiners, "Nk = 6");
  inventory.print(std::cout);
  bool ok = audit.crosspoints == 36 && audit.converters == 6 &&
            audit.splitters == 6 && audit.combiners == 6;

  // Per-destination wavelengths: one source multicast delivering to λ1 at
  // one port and λ2 at another -- MSDW must reject this shape, MAW realizes
  // it.
  const MulticastRequest mixed{{0, 0}, {{1, 0}, {2, 1}}};
  {
    FabricSwitch msdw(N, k, MulticastModel::kMSDW);
    ok = ok && msdw.check_request(mixed) == ConnectError::kModelForbidsLanes;
  }
  FabricSwitch sw(N, k, MulticastModel::kMAW);
  sw.connect(mixed);
  // Saturate further: every output wavelength of port 1 receives a different
  // stream.
  sw.connect({{1, 1}, {{1, 1}, {0, 0}}});
  sw.connect({{2, 0}, {{0, 1}, {2, 0}}});
  const auto report = sw.verify();
  ok = ok && report.ok && sw.active_connections() == 3;
  std::cout << "\nmixed-lane multicast " << mixed.to_string()
            << " rejected by MSDW, realized by MAW; full 3-connection scene: "
            << (report.ok ? "verified" : "FAILED") << "\n"
            << report.to_string() << "\n";

  std::cout << "\nFig. 7 " << (ok ? "REPRODUCED" : "FAILED") << ".\n";
  return ok ? 0 : 1;
}

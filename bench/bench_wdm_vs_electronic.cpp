// §1's motivation, quantified: how much faster does a WDM multicast switch
// clear a batch of overlapping multicast sessions than the electronic
// baseline that must serialize them into conflict-free rounds?
//
// Electronic switch = 1 wavelength: rounds from conflict-graph coloring
// (greedy, validated against exact on small batches). WDM switch = k
// wavelengths: first-fit slot packing under each model. Expected shape:
// slots fall ~1/k under MAW, MSW pays for its lane discipline, and the
// model ordering MAW <= MSDW <= MSW holds everywhere.
#include <iostream>

#include "schedule/round_scheduler.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout,
               "WDM vs electronic multicast scheduling (the §1 motivation)");

  bool ok = true;
  Rng rng(31337);

  // Small-batch sanity: greedy rounds vs exact chromatic number.
  {
    std::size_t greedy_total = 0, exact_total = 0, cases = 0;
    for (int trial = 0; trial < 10; ++trial) {
      const auto sessions = random_sessions(rng, 8, 10, 1, 3);
      const auto exact = minimum_rounds_exact(sessions);
      if (!exact) continue;
      greedy_total += schedule_rounds_greedy(sessions).size();
      exact_total += *exact;
      ++cases;
    }
    std::cout << "\ngreedy-vs-exact rounds on " << cases
              << " small batches: greedy " << greedy_total << ", optimal "
              << exact_total << " ("
              << (exact_total == 0
                      ? 1.0
                      : static_cast<double>(greedy_total) /
                            static_cast<double>(exact_total))
              << "x)\n";
    ok = ok && greedy_total >= exact_total;
  }

  const std::size_t N = 16;
  std::cout << "\nSlots to clear a batch of 120 sessions on " << N
            << " nodes (mean fanout ~4, heavy destination overlap):\n";
  Table table({"k", "electronic rounds", "MSW slots", "MSDW slots", "MAW slots",
               "MAW speedup"});
  const auto sessions = random_sessions(rng, N, 120, 2, 6);
  const std::size_t electronic = schedule_rounds_greedy(sessions).size();
  std::size_t previous_maw = SIZE_MAX;
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    std::size_t counts[3] = {};
    for (const MulticastModel model : kAllModels) {
      const auto slots = schedule_wdm_slots(sessions, N, k, model);
      if (check_wdm_schedule(sessions, N, k, model, slots)) {
        std::cout << "INVALID SCHEDULE for " << model_name(model) << "\n";
        ok = false;
      }
      counts[static_cast<int>(model)] = slots.size();
    }
    const std::size_t msw = counts[0];
    const std::size_t msdw = counts[1];
    const std::size_t maw = counts[2];
    table.add(k, electronic, msw, msdw, maw,
              static_cast<double>(electronic) / static_cast<double>(maw));
    // First-fit is not monotone under constraint relaxation (a placement the
    // stronger model allows can change all later decisions), so the model
    // ordering is asserted with one slot of first-fit slack.
    ok = ok && maw <= msdw + 1 && msdw <= msw + 1 && maw <= previous_maw;
    previous_maw = maw;
    if (k == 1) ok = ok && maw == msw && msdw == msw;  // models collapse at k=1
  }
  table.print(std::cout);

  // The headline ratio: at k = 8, MAW should clear the batch close to 8x
  // faster than the electronic baseline (within first-fit slack).
  const std::size_t maw8 =
      schedule_wdm_slots(sessions, N, 8, MulticastModel::kMAW).size();
  const double speedup = static_cast<double>(electronic) / static_cast<double>(maw8);
  ok = ok && speedup > 4.0;
  std::cout << "\nk=8 MAW speedup over electronic: " << speedup
            << "x (ideal 8x, first-fit and hotspot slack expected)\n";

  std::cout << "\n§1 motivation " << (ok ? "REPRODUCED" : "FAILED")
            << ": WDM clears overlapped multicasts ~k-fold faster; wavelength "
               "freedom (MAW) packs best, lane-locked MSW worst.\n";
  return ok ? 0 : 1;
}

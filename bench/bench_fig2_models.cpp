// Reproduces Fig. 2: the three multicast models by example. One multicast
// connection (fanout 3) is realized on a gate-level fabric under each model
// with exactly the wavelength pattern the figure shows, then verified by
// optical propagation. Also demonstrates the strictness hierarchy: the MSW
// pattern is accepted by all three fabrics, the MAW pattern only by MAW.
#include <iostream>

#include "fabric/fabric_switch.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Fig. 2: multicast under the MSW, MSDW, and MAW models");

  const std::size_t N = 4, k = 2;
  bool ok = true;

  struct Example {
    MulticastModel model;
    MulticastRequest request;
    const char* description;
  };
  const std::vector<Example> examples = {
      {MulticastModel::kMSW,
       {{0, 0}, {{1, 0}, {2, 0}, {3, 0}}},
       "source λ1 -> all destinations λ1 (same wavelength)"},
      {MulticastModel::kMSDW,
       {{0, 1}, {{1, 0}, {2, 0}, {3, 0}}},
       "source λ2 -> all destinations λ1 (same destination wavelength)"},
      {MulticastModel::kMAW,
       {{0, 1}, {{1, 0}, {2, 1}, {3, 0}}},
       "source λ2 -> destinations λ1, λ2, λ1 (any wavelength)"},
  };

  Table table({"model", "connection", "verified", "gates crossed", "min power dBm"});
  for (const Example& example : examples) {
    FabricSwitch sw(N, k, example.model);
    sw.connect(example.request);
    const auto report = sw.verify();
    ok = ok && report.ok;
    table.add(model_name(example.model), example.request.to_string(), report.ok,
              report.max_gates_crossed, report.min_power_dbm);
    std::cout << model_name(example.model) << ": " << example.description << "\n";
  }
  std::cout << "\n";
  table.print(std::cout);

  // Strictness hierarchy: MSW ⊂ MSDW ⊂ MAW.
  std::cout << "\nModel strictness (which fabric accepts which example):\n";
  Table strictness({"request shape", "MSW fabric", "MSDW fabric", "MAW fabric"});
  for (const Example& example : examples) {
    std::vector<std::string> row{std::string("from Fig. 2 ") +
                                 model_name(example.model)};
    for (const MulticastModel fabric_model : kAllModels) {
      FabricSwitch sw(N, k, fabric_model);
      const bool accepted = !sw.check_request(example.request).has_value();
      row.push_back(accepted ? "accepts" : "rejects");
      // The pattern must be accepted iff the fabric model is at least as
      // strong as the pattern's model.
      ok = ok && (accepted == model_at_least(fabric_model, example.model));
    }
    strictness.add_row(row);
  }
  strictness.print(std::cout);

  std::cout << "\nFig. 2 " << (ok ? "REPRODUCED" : "FAILED")
            << ": all three wavelength-assignment patterns realized and the "
               "MSW < MSDW < MAW hierarchy enforced.\n";
  return ok ? 0 : 1;
}

// How many wavelength converters does a MAW switch really need? The paper
// prices full MAW at kN dedicated converters and calls converters the
// expensive device; replacing them with a shared bank of C converters keeps
// the crossbar nonblocking in space and blocks only on bank exhaustion.
// This bench sweeps C from 0 to kN under identical random dynamic load and
// reports the converter-blocking curve plus the observed peak demand -- the
// data a designer needs to trade converters for a small blocking risk.
#include <iostream>

#include "sim/converter_pool.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Shared converter bank: blocking vs pool size (MAW)");

  bool ok = true;
  for (const auto& [N, k] :
       std::vector<std::pair<std::size_t, std::size_t>>{{8, 2}, {8, 4}}) {
    const std::size_t full = N * k;
    std::vector<std::size_t> ladder;
    for (std::size_t c = 0; c <= full; c += std::max<std::size_t>(1, full / 8)) {
      ladder.push_back(c);
    }
    if (ladder.back() != full) ladder.push_back(full);

    const auto points = sweep_converter_pool(N, k, ladder, 6000, 11);
    std::cout << "\nN=" << N << ", k=" << k << " (paper budget kN=" << full
              << " dedicated converters):\n";
    Table table({"pool C", "C/kN", "attempts", "converter blocks", "P(block)",
                 "peak in use"});
    double previous = 1.0;
    std::size_t one_percent_pool = full;
    for (const PoolSweepPoint& point : points) {
      table.add(point.pool_size,
                static_cast<double>(point.pool_size) / static_cast<double>(full),
                point.attempts, point.blocked_on_converters,
                point.converter_blocking_probability(), point.peak_in_use);
      ok = ok &&
           point.converter_blocking_probability() <= previous + 1e-12;
      previous = point.converter_blocking_probability();
      if (point.converter_blocking_probability() <= 0.01) {
        one_percent_pool = std::min(one_percent_pool, point.pool_size);
      }
    }
    table.print(std::cout);
    std::cout << "smallest sampled pool with P(block) <= 1%: "
              << one_percent_pool << " of " << full << " ("
              << 100.0 * static_cast<double>(one_percent_pool) /
                     static_cast<double>(full)
              << "% of the dedicated budget)\n";
    ok = ok && points.back().blocked_on_converters == 0 &&
         points.front().converter_blocking_probability() > 0.0 &&
         one_percent_pool * 5 <= full * 4;  // <= 80% of the kN budget
  }

  std::cout << "\nConverter-pool analysis " << (ok ? "REPRODUCED" : "FAILED")
            << ": blocking falls monotonically with C; a 1% blocking "
               "tolerance already cuts the converter budget to ~3/4 of the "
               "paper's dedicated kN even under saturating load -- the "
               "cost-performance dial §2.4 points at.\n";
  return ok ? 0 : 1;
}

// Reproduces Fig. 5: the N x N single-wavelength multicast crossbar built
// from one 1->N splitter per input, an N x N SOA gate matrix, and one N->1
// combiner per output. Audits the component inventory, routes a worst-case
// broadcast assignment, and reports the optical power budget (splitting loss
// grows as 10 log10 N, the practical limit the paper's cost discussion
// alludes to).
#include <iostream>

#include "fabric/fabric_switch.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Fig. 5: N x N 1-wavelength splitter/combiner crossbar");

  bool ok = true;
  Table inventory({"N", "gates", "splitters", "combiners", "expected gates"});
  for (const std::size_t N : {2u, 4u, 8u, 16u}) {
    const CrossbarFabric fabric(N, 1, MulticastModel::kMSW);
    const CrossbarCost audit = fabric.audit();
    inventory.add(N, audit.crosspoints, audit.splitters, audit.combiners, N * N);
    ok = ok && audit.crosspoints == N * N && audit.splitters == N &&
         audit.combiners == N;
  }
  inventory.print(std::cout);

  std::cout << "\nBroadcast stress (one source to all N outputs) and power budget:\n";
  Table power({"N", "verified", "gates crossed", "delivered power dBm"});
  double previous_power = 1e9;
  for (const std::size_t N : {2u, 4u, 8u, 16u}) {
    FabricSwitch sw(N, 1, MulticastModel::kMSW);
    MulticastRequest broadcast{{0, 0}, {}};
    for (std::size_t port = 0; port < N; ++port) broadcast.outputs.push_back({port, 0});
    sw.connect(broadcast);
    const auto report = sw.verify();
    power.add(N, report.ok, report.max_gates_crossed, report.min_power_dbm);
    ok = ok && report.ok && report.max_gates_crossed == 1;
    // Splitting loss must grow with N.
    ok = ok && report.min_power_dbm < previous_power;
    previous_power = report.min_power_dbm;
  }
  power.print(std::cout);

  // Full-assignment capability: any permutation plus fanout mixes.
  const std::size_t N = 8;
  FabricSwitch sw(N, 1, MulticastModel::kMSW);
  sw.connect({{0, 0}, {{0, 0}, {1, 0}, {2, 0}, {3, 0}}});  // fanout 4
  sw.connect({{1, 0}, {{4, 0}, {5, 0}}});                  // fanout 2
  sw.connect({{2, 0}, {{6, 0}}});                          // unicast
  sw.connect({{3, 0}, {{7, 0}}});
  const auto report = sw.verify();
  ok = ok && report.ok;
  std::cout << "\nmixed-fanout full assignment on N=8: "
            << (report.ok ? "verified" : "FAILED") << "\n";

  std::cout << "\nFig. 5 " << (ok ? "REPRODUCED" : "FAILED")
            << ": each beam crosses exactly one gate; loss grows ~10log10(N).\n";
  return ok ? 0 : 1;
}

// Availability vs offered load on a failing fabric.
//
// The theorems size the middle stage for worst-case traffic on *healthy*
// hardware; this bench asks what a production operator actually sees when
// SOA modules fail and get repaired while Erlang traffic flows. A
// theorem-sized MSW-dominant fabric runs under increasing offered load with
// a seeded MTBF/MTTR middle-module failure process; every failure triggers
// the restoration pass. Expectations:
//   * capacity availability tracks mtbf/(mtbf+mttr) per middle, independent
//     of load;
//   * while the degraded fabric stays at or above the Theorem-1 bound
//     (min margin >= 0), restoration succeeds and nothing is dropped --
//     the degraded m-f network is exactly a fresh m-f network;
//   * bookkeeping is conserved: affected = restored + dropped.
#include <iostream>

#include "faults/availability.h"
#include "util/table.h"

using namespace wdm;

namespace {

/// A resilient design point: the Theorem-1 m plus `spare` extra middle
/// modules of failure budget.
MultistageSwitch resilient_switch(std::size_t spare) {
  const std::size_t n = 4, r = 4, k = 2;
  const NonblockingBound bound = theorem1_min_m(n, r);
  const ClosParams params{n, r, bound.m + spare, k};
  return MultistageSwitch(params, Construction::kMswDominant,
                          MulticastModel::kMSW, RoutingPolicy{bound.x});
}

AvailabilityStats run_point(double erlangs, double mtbf, double mttr,
                            std::uint64_t seed) {
  auto sw = resilient_switch(2);
  FaultModel faults(sw.network().params());
  AvailabilityConfig config;
  config.traffic.arrival_rate = erlangs;
  config.traffic.mean_holding = 1.0;
  config.traffic.duration = 400.0;
  config.traffic.fanout = {1, 4};
  config.traffic.seed = seed;
  config.faults.mtbf = mtbf;
  config.faults.mttr = mttr;
  config.faults.seed = seed ^ 0xFA17;
  config.faults.middles = true;
  return run_availability_sim(sw, faults, config);
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Availability vs offered load under middle-module failures");

  const auto probe = resilient_switch(2);
  const ClosParams params = probe.network().params();
  const NonblockingBound bound = theorem1_min_m(params.n, params.r);
  std::cout << "\nFabric: " << params.to_string() << " (Theorem-1 bound m="
            << bound.m << ", failure budget " << params.m - bound.m
            << " middles)\nFailure process: per-middle exponential MTBF/MTTR."
            << "\n\n";

  bool ok = true;
  Table table({"offered E", "mtbf", "mttr", "avail", "survival", "P(block)",
               "failures", "dropped", "restored", "min margin"});
  for (const double erlangs : {2.0, 6.0, 12.0}) {
    for (const auto& [mtbf, mttr] :
         {std::pair{300.0, 20.0}, std::pair{120.0, 40.0}}) {
      const AvailabilityStats stats = run_point(erlangs, mtbf, mttr, 0xBEEF);
      table.add(erlangs, mtbf, mttr, stats.capacity_availability(),
                stats.session_survival(), stats.traffic.blocking_probability(),
                stats.failure_events, stats.sessions_dropped,
                stats.sessions_restored, stats.min_theorem_margin);
      ok = ok && stats.sessions_affected ==
                     stats.sessions_restored + stats.sessions_dropped;
      ok = ok && stats.capacity_availability() > 0.0 &&
           stats.capacity_availability() <= 1.0;
      // While the fabric never dipped below the Theorem-1 bound, every
      // affected session must have been restored.
      if (stats.min_theorem_margin >= 0) ok = ok && stats.sessions_dropped == 0;
    }
  }
  table.print(std::cout);

  std::cout << "\nAvailability analysis " << (ok ? "PASSED" : "FAILED")
            << ": restoration holds sessions across failures while the "
               "degraded fabric stays at or above the theorem bound.\n";
  return ok ? 0 : 1;
}

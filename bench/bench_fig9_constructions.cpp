// Reproduces Fig. 9: the MSW-dominant vs MAW-dominant construction methods.
// Shows which model each stage adopts under both constructions (for all
// three network models), with the §3.4 cost consequences side by side.
#include <iostream>

#include "multistage/builder.h"
#include "multistage/nonblocking.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Fig. 9: MSW-dominant and MAW-dominant constructions");

  bool ok = true;
  Table stages({"construction", "network model", "input stage", "middle stage",
                "output stage"});
  for (const Construction construction :
       {Construction::kMswDominant, Construction::kMawDominant}) {
    for (const MulticastModel model : kAllModels) {
      const ThreeStageNetwork network(ClosParams{2, 2, 2, 2}, construction, model);
      stages.add(construction_name(construction), model_name(model),
                 model_name(network.input_module(0).model()),
                 model_name(network.middle_module(0).model()),
                 model_name(network.output_module(0).model()));
      const MulticastModel expected_inner =
          construction == Construction::kMswDominant ? MulticastModel::kMSW
                                                     : MulticastModel::kMAW;
      ok = ok && network.input_module(0).model() == expected_inner &&
           network.middle_module(0).model() == expected_inner &&
           network.output_module(0).model() == model;
    }
  }
  stages.print(std::cout);

  std::cout << "\nCost of the two constructions at the same nonblocking design "
               "point (n=r=8, k=2, m from the matching theorem):\n";
  Table cost({"construction", "network model", "m", "x", "crosspoints",
              "converters"});
  for (const Construction construction :
       {Construction::kMswDominant, Construction::kMawDominant}) {
    const NonblockingBound bound = construction == Construction::kMswDominant
                                       ? theorem1_min_m(8, 8)
                                       : theorem2_min_m(8, 8, 2);
    for (const MulticastModel model : kAllModels) {
      const ClosParams params{8, 8, bound.m, 2};
      const MultistageCost c = multistage_cost(params, construction, model);
      cost.add(construction_name(construction), model_name(model), bound.m,
               bound.x, c.crosspoints, c.converters);
    }
  }
  cost.print(std::cout);

  // §3.4's conclusion, checked numerically: for every network model the
  // MSW-dominant construction needs fewer crosspoints (even after giving the
  // MAW-dominant its slightly larger m requirement).
  for (const MulticastModel model : kAllModels) {
    const MultistageCost msw_dom = multistage_cost(
        ClosParams{8, 8, theorem1_min_m(8, 8).m, 2}, Construction::kMswDominant,
        model);
    const MultistageCost maw_dom = multistage_cost(
        ClosParams{8, 8, theorem2_min_m(8, 8, 2).m, 2},
        Construction::kMawDominant, model);
    ok = ok && msw_dom.crosspoints < maw_dom.crosspoints;
  }

  std::cout << "\nFig. 9 " << (ok ? "REPRODUCED" : "FAILED")
            << ": stages 1-2 carry the dominant model; the output stage sets "
               "the network model; MSW-dominant is the cheaper construction.\n";
  return ok ? 0 : 1;
}

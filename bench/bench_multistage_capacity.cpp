// §3.1's equivalence claim, checked constructively: "an N x N k-wavelength
// nonblocking multistage WDM network under a given model will have the same
// multicast capacity as a crossbar-based network under the same model."
// We enumerate (exhaustively where feasible, by uniform sampling otherwise)
// the legal multicast assignments of the crossbar definition and realize
// every one of them, connection by connection in random order, on a
// theorem-sized three-stage network. Realized count == capacity formula
// proves the multistage network loses no assignments.
#include <iostream>

#include "capacity/enumerate.h"
#include "multistage/builder.h"
#include "util/rng.h"
#include "util/table.h"

using namespace wdm;

namespace {

// Realize one assignment on a fresh theorem-sized network; true iff every
// connection routed.
bool realize(const AssignmentMap& map, std::size_t n, std::size_t r, std::size_t k,
             MulticastModel model, Rng& rng) {
  MultistageSwitch sw =
      MultistageSwitch::nonblocking(n, r, k, Construction::kMswDominant, model);
  std::vector<MulticastRequest> requests =
      requests_from_assignment(map, n * r, k);
  rng.shuffle(requests);
  for (const MulticastRequest& request : requests) {
    if (!sw.try_connect(request)) return false;
  }
  return true;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Multistage capacity == crossbar capacity (§3.1), constructively");

  bool ok = true;
  Rng rng(404);
  Table table({"model", "N", "k", "assignments (formula)", "checked", "realized",
               "method"});

  // Exhaustive: every MSW any-assignment of the 4-port network, k = 1 and 2.
  for (const std::size_t k : {1u, 2u}) {
    const std::size_t n = 2, r = 2;
    std::uint64_t checked = 0, realized = 0;
    for_each_assignment(
        n * r, k, MulticastModel::kMSW, AssignmentKind::kAny,
        [&](const AssignmentMap& map) {
          ++checked;
          if (realize(map, n, r, k, MulticastModel::kMSW, rng)) ++realized;
          return true;
        },
        /*max_candidates=*/50'000'000);  // k=2 scans 9^8 = 43M raw maps
    const BigUInt formula = multicast_capacity(n * r, k, MulticastModel::kMSW,
                                               AssignmentKind::kAny);
    ok = ok && realized == checked && BigUInt{checked} == formula;
    table.add("MSW", n * r, k, formula.to_string(), checked, realized,
              "exhaustive");
  }

  // Sampled: MSDW and MAW at N=4, k=2 (9.3M / 28.4M legal assignments).
  for (const MulticastModel model :
       {MulticastModel::kMSDW, MulticastModel::kMAW}) {
    const std::size_t n = 2, r = 2, k = 2, nk = n * r * k;
    std::uint64_t checked = 0, realized = 0;
    const std::uint64_t target = 4000;
    while (checked < target) {
      // Uniform random map; keep it when legal.
      AssignmentMap map(nk);
      for (auto& cell : map) {
        const auto choice = rng.next_below(nk + 1);
        cell = choice == nk ? kUnconnected : static_cast<std::int32_t>(choice);
      }
      if (!assignment_legal(map, n * r, k, model)) continue;
      ++checked;
      if (realize(map, n, r, k, model, rng)) ++realized;
    }
    ok = ok && realized == checked;
    table.add(model_name(model), n * r, k,
              multicast_capacity(n * r, k, model, AssignmentKind::kAny).to_string(),
              checked, realized, "uniform sample");
  }

  table.print(std::cout);

  std::cout << "\nMultistage capacity equivalence "
            << (ok ? "REPRODUCED" : "FAILED")
            << ": every legal assignment (exhaustive for MSW, sampled for "
               "MSDW/MAW) realized on the Theorem-1-sized three-stage network "
               "in random arrival order.\n";
  return ok ? 0 : 1;
}

// Validates Lemmas 1-3 against exhaustive enumeration (the ground truth for
// the multicast-capacity formulas) and prints the k=1 reduction check the
// paper performs after Lemma 3.
#include <iostream>

#include "capacity/capacity.h"
#include "capacity/enumerate.h"
#include "combinatorics/combinatorics.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Lemmas 1-3: capacity formulas vs exhaustive enumeration");

  bool all_match = true;
  Table table({"N", "k", "model", "kind", "formula", "brute force", "match"});
  for (const auto& [N, k] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {2, 1}, {3, 1}, {4, 1}, {1, 2}, {2, 2}, {3, 2}, {2, 3}, {1, 3}}) {
    for (const MulticastModel model : kAllModels) {
      for (const auto kind : {AssignmentKind::kFull, AssignmentKind::kAny}) {
        const BigUInt formula = multicast_capacity(N, k, model, kind);
        const std::uint64_t enumerated =
            count_assignments_bruteforce(N, k, model, kind);
        const bool match = formula == BigUInt{enumerated};
        all_match = all_match && match;
        table.add(N, k, model_name(model), assignment_kind_name(kind),
                  formula.to_string(), enumerated, match);
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nPaper's k=1 sanity check (all models must collapse to the "
               "electronic N^N / (N+1)^N):\n";
  Table reduction({"N", "N^N", "(N+1)^N", "MSW", "MSDW", "MAW"});
  for (std::size_t N = 1; N <= 6; ++N) {
    const BigUInt full = ipow(N, N);
    const BigUInt any = ipow(N + 1, N);
    bool collapse = true;
    for (const MulticastModel model : kAllModels) {
      collapse = collapse &&
                 multicast_capacity(N, 1, model, AssignmentKind::kFull) == full &&
                 multicast_capacity(N, 1, model, AssignmentKind::kAny) == any;
    }
    all_match = all_match && collapse;
    reduction.add(N, full.to_string(), any.to_string(), collapse, collapse,
                  collapse);
  }
  reduction.print(std::cout);

  std::cout << "\nLemmas 1-3 " << (all_match ? "REPRODUCED" : "FAILED")
            << " (every formula equals its brute-force count).\n";
  return all_match ? 0 : 1;
}

// Reproduces the nonblocking conditions of §3 (Theorems 1 and 2): minimal
// sufficient middle-stage size m and the optimizing spread x over a sweep of
// (n, r, k), plus the §3.4 closed form m ~ 3(n-1) log r / log log r and the
// per-x ablation showing why limited spread helps.
#include <iostream>

#include "multistage/nonblocking.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Theorems 1-2: nonblocking middle-stage bounds");

  std::cout << "\nTheorem 1 (MSW-dominant): m > min_x (n-1)(x + r^(1/x))\n";
  std::cout << "Theorem 2 (MAW-dominant): m > min_x floor((nk-1)x/k) + (n-1) r^(1/x)\n\n";

  bool shape_holds = true;
  Table table({"n", "r", "k", "T1 m", "T1 x", "T2 m", "T2 x", "T2-T1",
               "closed-form m"});
  for (const auto& [n, r] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 2}, {4, 4}, {8, 8}, {16, 16}, {32, 32}, {8, 64}, {64, 8}}) {
    for (const std::size_t k : {1u, 2u, 8u}) {
      const NonblockingBound t1 = theorem1_min_m(n, r);
      const NonblockingBound t2 = theorem2_min_m(n, r, k);
      table.add(n, r, k, t1.m, t1.x, t2.m, t2.x,
                static_cast<std::int64_t>(t2.m) - static_cast<std::int64_t>(t1.m),
                closed_form_m(n, r));
      // Paper §3.4: Theorem 2's m is "slightly larger"; never smaller, and
      // equal at k = 1.
      shape_holds = shape_holds && t2.m >= t1.m && (k != 1 || t2.m == t1.m);
    }
  }
  table.print(std::cout);

  std::cout << "\nAblation: the x-dependence of the Theorem 1 bound for n=r=16 "
               "(why the limited-spread strategy with x>1 wins):\n";
  Table ablation({"x", "(n-1)(x + r^(1/x))", "sufficient m"});
  for (std::size_t x = 1; x <= 15; ++x) {
    const double rhs = theorem1_rhs(16, 16, x);
    ablation.add(x, rhs, static_cast<std::uint64_t>(rhs) + 1);
  }
  ablation.print(std::cout);
  const NonblockingBound best = theorem1_min_m(16, 16);
  std::cout << "optimum: x=" << best.x << " -> m=" << best.m
            << "  (closed form suggests x=" << closed_form_x(16) << ")\n";

  std::cout << "\nTheorem relations " << (shape_holds ? "REPRODUCED" : "FAILED")
            << ": T2 >= T1 with equality at k=1 (§3.4's comparison).\n";
  return shape_holds ? 0 : 1;
}

// §3.4 consequence: where does the three-stage network overtake the crossbar?
// Sweeps k and model, reporting the smallest (perfect-square) N where the
// MSW-dominant multistage design needs fewer crosspoints, and how the
// crossover moves with k.
#include <iostream>

#include "capacity/cost.h"
#include "multistage/nonblocking.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout,
               "Crossbar vs multistage crossover (consequence of Table 2)");

  Table table({"k", "model", "crossover N", "CB crosspoints there",
               "MS crosspoints there"});
  bool found_all = true;
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    for (const MulticastModel model : kAllModels) {
      const std::size_t crossover = multistage_crossover_N(k, model, 1u << 18);
      found_all = found_all && crossover > 0;
      if (crossover == 0) {
        table.add(k, model_name(model), "none found", "-", "-");
        continue;
      }
      table.add(k, model_name(model), crossover,
                crossbar_cost(crossover, k, model).crosspoints,
                balanced_multistage_cost(crossover, k,
                                         Construction::kMswDominant, model)
                    .crosspoints);
    }
  }
  table.print(std::cout);

  std::cout << "\nConstruction comparison at the same geometry (§3.4: MSW-dominant "
               "is the better choice):\n";
  Table comparison({"N", "k", "model", "MSW-dom crosspoints", "MAW-dom crosspoints",
                    "MSW-dom converters", "MAW-dom converters"});
  bool msw_dominant_wins = true;
  for (const std::size_t root : {8u, 16u}) {
    const std::size_t N = root * root;
    for (const MulticastModel model : kAllModels) {
      const auto msw_dom =
          balanced_multistage_cost(N, 2, Construction::kMswDominant, model);
      const auto maw_dom =
          balanced_multistage_cost(N, 2, Construction::kMawDominant, model);
      comparison.add(N, 2, model_name(model), msw_dom.crosspoints,
                     maw_dom.crosspoints, msw_dom.converters, maw_dom.converters);
      msw_dominant_wins =
          msw_dominant_wins && msw_dom.crosspoints < maw_dom.crosspoints;
    }
  }
  comparison.print(std::cout);

  const bool ok = found_all && msw_dominant_wins;
  std::cout << "\nCrossover analysis " << (ok ? "REPRODUCED" : "FAILED")
            << ": multistage wins beyond moderate N for every (k, model); "
               "MSW-dominant always undercuts MAW-dominant.\n";
  return ok ? 0 : 1;
}

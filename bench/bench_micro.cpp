// Library micro-benchmarks (google-benchmark): the performance-sensitive
// paths a user of the library actually exercises -- capacity evaluation,
// fabric construction, optical propagation, routing, and the multiset
// algebra. Not a paper table; included so performance regressions are
// visible alongside the reproduction benches.
#include <benchmark/benchmark.h>

#include <numeric>

#include "capacity/capacity.h"
#include "fabric/fabric_switch.h"
#include "multistage/builder.h"
#include "multistage/rearrange.h"
#include "schedule/round_scheduler.h"
#include "sim/blocking_sim.h"
#include "sim/traffic_models.h"
#include "util/rng.h"

namespace {

using namespace wdm;

void BM_BigUIntPow(benchmark::State& state) {
  const auto exponent = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigUInt{7}.pow(exponent));
  }
}
BENCHMARK(BM_BigUIntPow)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CapacityExactMSDW(benchmark::State& state) {
  const auto N = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        multicast_capacity(N, 4, MulticastModel::kMSDW, AssignmentKind::kAny));
  }
}
BENCHMARK(BM_CapacityExactMSDW)->Arg(8)->Arg(16)->Arg(32);

void BM_CapacityLog10MSDW(benchmark::State& state) {
  const auto N = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        log10_multicast_capacity(N, 4, MulticastModel::kMSDW, AssignmentKind::kAny));
  }
}
BENCHMARK(BM_CapacityLog10MSDW)->Arg(32)->Arg(128)->Arg(512);

void BM_FabricConstruction(benchmark::State& state) {
  const auto N = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    CrossbarFabric fabric(N, 2, MulticastModel::kMAW);
    benchmark::DoNotOptimize(fabric.audit());
  }
  state.SetComplexityN(static_cast<std::int64_t>(N));
}
BENCHMARK(BM_FabricConstruction)->Arg(4)->Arg(8)->Arg(16)->Complexity();

void BM_OpticalPropagation(benchmark::State& state) {
  const auto N = static_cast<std::size_t>(state.range(0));
  FabricSwitch sw(N, 2, MulticastModel::kMAW);
  Rng rng(1);
  for (std::size_t port = 0; port < N; ++port) {
    sw.connect({{port, 0},
                {{(port + 1) % N, static_cast<Wavelength>(rng.next_below(2))}}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.verify());
  }
}
BENCHMARK(BM_OpticalPropagation)->Arg(4)->Arg(8)->Arg(16);

void BM_RouteMulticast(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  MultistageSwitch sw =
      MultistageSwitch::nonblocking(4, r, 2, Construction::kMswDominant,
                                    MulticastModel::kMSW);
  MulticastRequest request{{0, 0}, {}};
  for (std::size_t p = 0; p < r; ++p) request.outputs.push_back({p * 4, 0});
  for (auto _ : state) {
    const auto id = sw.try_connect(request);
    benchmark::DoNotOptimize(id);
    if (id) sw.disconnect(*id);
  }
}
BENCHMARK(BM_RouteMulticast)->Arg(4)->Arg(8)->Arg(16);

void BM_DynamicSimStep(benchmark::State& state) {
  MultistageSwitch sw = MultistageSwitch::nonblocking(
      3, 3, 2, Construction::kMswDominant, MulticastModel::kMSW);
  SimConfig config;
  config.steps = 100;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    config.seed = ++seed;
    benchmark::DoNotOptimize(run_dynamic_sim(sw, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_DynamicSimStep);

void BM_MultisetIntersect(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  DestinationMultiset a(universe, 4);
  DestinationMultiset b(universe, 4);
  Rng rng(2);
  for (std::size_t i = 0; i < universe * 2; ++i) {
    const std::size_t p = rng.next_below(universe);
    if (a.can_serve(p)) a.add(p);
    const std::size_t q = rng.next_below(universe);
    if (b.can_serve(q)) b.add(q);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersect(b));
  }
}
BENCHMARK(BM_MultisetIntersect)->Arg(16)->Arg(256);

void BM_PaullPermutation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t r = n;
  Rng rng(5);
  std::vector<std::size_t> perm(n * r);
  std::iota(perm.begin(), perm.end(), 0);
  for (auto _ : state) {
    state.PauseTiming();
    rng.shuffle(perm);
    state.ResumeTiming();
    benchmark::DoNotOptimize(route_permutation(n, r, n, perm));
  }
}
BENCHMARK(BM_PaullPermutation)->Arg(4)->Arg(8)->Arg(16);

void BM_WdmSlotPacking(benchmark::State& state) {
  const auto sessions_count = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const auto sessions = random_sessions(rng, 16, sessions_count, 2, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule_wdm_slots(sessions, 16, 4, MulticastModel::kMAW));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sessions_count));
}
BENCHMARK(BM_WdmSlotPacking)->Arg(50)->Arg(200);

void BM_ErlangSim(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    MultistageSwitch sw = MultistageSwitch::nonblocking(
        2, 2, 2, Construction::kMswDominant, MulticastModel::kMSW);
    ErlangConfig config;
    config.arrival_rate = 4.0;
    config.duration = 50.0;
    config.seed = ++seed;
    benchmark::DoNotOptimize(run_erlang_sim(sw, config));
  }
}
BENCHMARK(BM_ErlangSim);

}  // namespace

BENCHMARK_MAIN();

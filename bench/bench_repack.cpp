// Repack-on-block below the Theorem 1 bound: blocking vs cost vs hardware.
//
// Theorem 1 sizes the middle stage so no request EVER blocks -- worst case
// over all request sequences. A rearrangeable fabric (DESIGN.md §3.12) makes
// the opposite trade: provision fewer middle modules and, when a request
// blocks, migrate a bounded set of standing sessions out of its way. This
// bench quantifies that trade on the paper's 4x4x2 MSW-dominant design
// point, two ways:
//
//   * Random churn sweep: for every m from the floor (m = n) up to the
//     Theorem 1 bound, the same seeded arrival/departure churn runs twice --
//     classic routing and repack-on-block -- reporting blocking probability,
//     sessions migrated per admitted request, and the longest migration
//     chain. Hardware saved is bound_m - m middle modules.
//
//   * Structured adversary: saturation_attack builds the theorem's
//     worst-case occupancy shape and issues a full-spread challenge. Where
//     the classic router blocks the challenge, the bench re-issues it
//     through connect_with_repack and reports how many adversarial blocks a
//     bounded repack budget recovers.
//
// The companion run_benches case (routing_repack) pins one point of this
// sweep in BENCH_results.json; this binary prints the whole curve.
#include <cstddef>
#include <iostream>

#include "multistage/builder.h"
#include "multistage/nonblocking.h"
#include "repack/repack.h"
#include "sim/blocking_sim.h"
#include "util/rng.h"
#include "util/table.h"

using namespace wdm;

namespace {

constexpr std::size_t kN = 4, kR = 4, kK = 2;
constexpr std::size_t kSteps = 20000;
constexpr std::size_t kAttackRounds = 20;

SimConfig churn_config() {
  SimConfig config;
  config.steps = kSteps;
  config.arrival_fraction = 0.8;
  config.fanout = {1, 4};
  config.self_check_every = 4096;
  return config;
}

/// The saturation adversary's challenge: input wavelength (port 0, λ1) to
/// the first port of every output module (same shape saturation_attack
/// issues internally).
MulticastRequest attack_challenge() {
  MulticastRequest challenge;
  challenge.input = {0, 0};
  for (std::size_t p = 0; p < kR; ++p) {
    challenge.outputs.push_back({p * kN, 0});
  }
  return challenge;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Repack-on-block below the Theorem 1 bound (4x4x2, MSW)");

  const NonblockingBound bound = theorem1_min_m(kN, kR);
  std::cout << "\nTheorem 1 bound: m* = " << bound.m << " (x = " << bound.x
            << "). Sweeping m = " << kN << ".." << bound.m << " under "
            << kSteps << "-step seeded churn, classic vs repack.\n\n";

  Table sweep({"m", "saved", "classic blocked", "P(block)", "repack blocked",
               "repacked admits", "moves", "moves/100 admits", "max chain"});
  for (std::size_t m = kN; m <= bound.m; ++m) {
    const ClosParams params{kN, kR, m, kK};
    MultistageSwitch classic(params, Construction::kMswDominant,
                             MulticastModel::kMSW);
    const SimStats before = run_dynamic_sim(classic, churn_config());

    MultistageSwitch sw(params, Construction::kMswDominant,
                        MulticastModel::kMSW);
    SimConfig repack_config = churn_config();
    repack_config.repack = true;
    const SimStats after = run_dynamic_sim(sw, repack_config);

    const std::size_t moves_per_100 =
        after.admitted == 0 ? 0 : after.repack_moves * 100 / after.admitted;
    sweep.add(m, bound.m - m, before.blocked, before.blocking_probability(),
              after.blocked, after.repacked_admits, after.repack_moves,
              moves_per_100, sw.repack_engine()->max_chain_length());
  }
  std::cout << sweep.to_text() << "\n";

  std::cout << "Structured adversary: saturation_attack rounds per m; where "
               "the classic\nrouter blocks the challenge, repack retries it "
               "by migrating sessions.\n\n";
  Table attack({"m", "rounds", "classic blocked", "repack recovered",
                "still blocked", "moves"});
  for (std::size_t m = kN + 2; m <= bound.m; ++m) {
    const ClosParams params{kN, kR, m, kK};
    std::size_t blocked = 0, recovered = 0, moves = 0;
    for (std::size_t round = 0; round < kAttackRounds; ++round) {
      MultistageSwitch sw(params, Construction::kMswDominant,
                          MulticastModel::kMSW);
      sw.enable_repack(repack::RepackPolicy{});
      Rng rng(0xA77ACC + round);
      const AttackResult result = saturation_attack(sw, rng);
      if (!result.challenge_blocked) continue;
      ++blocked;
      // The blocked challenge installed nothing; re-issue it with a repack
      // budget against the exact adversarial occupancy that defeated the
      // classic router.
      if (sw.connect_with_repack(attack_challenge())) {
        ++recovered;
        moves += sw.repack_engine()->last_moved().size();
      }
    }
    attack.add(m, kAttackRounds, blocked, recovered, blocked - recovered,
               moves);
  }
  std::cout << attack.to_text()
            << "\nReading: every recovered row is a request the strictly-"
               "nonblocking design\nwould need " << bound.m
            << " middle modules to admit without touching standing "
               "sessions.\n";
  return 0;
}

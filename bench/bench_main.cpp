// Unified benchmark runner: the machine-readable perf trajectory.
//
// The per-figure bench binaries print human-readable reproductions; this
// runner executes a curated set of *performance-bearing* workloads (router
// search, dynamic blocking sims, parallel sweeps, the saturation adversary,
// the shared-converter bank, trace replay), resets the metrics registry
// around each one, and writes BENCH_results.json with a stable schema:
//
//   { "schema": "wdmcast-bench/2", "git": "<describe>", "generated_utc": ...,
//     "threads": N, "tiny": bool, "benchmarks": [
//       { "name", "params": {...}, "ok", "wall_ms",
//         "metrics": { "counters": {...}, "gauges": {...},
//                      "histograms": {...}, "timers": {...} } } ] }
//
// Schema /2 adds the "histograms" section and p50_ns/p90_ns/p99_ns on every
// timer, so the trajectory carries tails, not just totals. `bench_compare`
// diffs two artifacts under tools/bench_thresholds.json; docs/BENCHMARKS.md
// documents every field. After writing, the runner re-parses the file with
// util/json_lite and checks the required keys -- the bench-smoke ctest runs
// exactly this with --tiny.
//
// Flags: --tiny (smoke-sized parameters), --out=<path>, --filter=<substr>,
//        --list, --include-zero (emit zero-valued instruments too),
//        --trace=<path> (span timeline as Chrome trace-event JSON, for
//        Perfetto / chrome://tracing),
//        --telemetry=<path> (engine_churn's wdm-telemetry/1 timeline as JSON
//        lines; see docs/BENCHMARKS.md).
//
// Environment: WDM_FLIGHT_DUMP=<path> writes the engine benches' flight
// recorder rings there (the post-mortem artifact CI uploads).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <functional>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/export.h"
#include "engine/churn_driver.h"
#include "engine/sharded_engine.h"
#include "faults/availability.h"
#include "multistage/builder.h"
#include "multistage/network.h"
#include "obs/telemetry.h"
#include "sim/blocking_sim.h"
#include "sim/converter_pool.h"
#include "sim/sweep.h"
#include "sim/trace.h"
#include "util/cli.h"
#include "util/json_lite.h"
#include "util/metrics.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/trace_span.h"

using namespace wdm;

namespace {

struct BenchResult {
  std::string params_json = "{}";  // JSON object literal
  bool ok = true;
};

/// engine_churn's telemetry timeline, captured for --telemetry=<path>. The
/// runner writes it after the loop; empty when the bench was filtered out.
std::vector<std::string> g_telemetry_lines;

/// Dump every shard's flight recorder to WDM_FLIGHT_DUMP if set (append:
/// both engine benches contribute to one artifact).
void maybe_dump_flight(const engine::ShardedEngine& engine, const char* bench) {
  const char* path = std::getenv("WDM_FLIGHT_DUMP");
  if (path == nullptr || *path == '\0') return;
  std::ofstream os(path, std::ios::app);
  if (!os) {
    std::cerr << "cannot append flight dump to " << path << "\n";
    return;
  }
  os << "=== " << bench << " ===\n";
  engine.dump_flight_recorders(os);
}

struct BenchCase {
  std::string name;
  std::string summary;
  std::function<BenchResult(bool tiny)> run;
};

std::string params_of(std::initializer_list<std::pair<const char*, std::size_t>>
                          numbers,
                      std::initializer_list<std::pair<const char*, const char*>>
                          strings = {}) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [key, value] : numbers) {
    if (!first) os << ",";
    first = false;
    os << "\"" << key << "\":" << value;
  }
  for (const auto& [key, value] : strings) {
    if (!first) os << ",";
    first = false;
    os << "\"" << key << "\":\"" << json_escape(value) << "\"";
  }
  os << "}";
  return os.str();
}

// ---- curated workloads ----------------------------------------------------

BenchResult bench_routing_msw(bool tiny) {
  auto sw = MultistageSwitch::nonblocking(4, 4, 2, Construction::kMswDominant,
                                          MulticastModel::kMSW);
  SimConfig config;
  config.steps = tiny ? 500 : 20000;
  config.self_check_every = tiny ? 128 : 4096;
  const SimStats stats = run_dynamic_sim(sw, config);
  BenchResult result;
  result.params_json = params_of({{"n", 4},
                                  {"r", 4},
                                  {"k", 2},
                                  {"m", sw.network().params().m},
                                  {"steps", config.steps}},
                                 {{"construction", "msw-dominant"}});
  result.ok = stats.blocked == 0;  // at the Theorem 1 bound: never blocks
  return result;
}

BenchResult bench_routing_maw(bool tiny) {
  auto sw = MultistageSwitch::nonblocking(4, 4, 2, Construction::kMawDominant,
                                          MulticastModel::kMAW);
  SimConfig config;
  config.steps = tiny ? 500 : 20000;
  config.self_check_every = tiny ? 128 : 4096;
  const SimStats stats = run_dynamic_sim(sw, config);
  BenchResult result;
  result.params_json = params_of({{"n", 4},
                                  {"r", 4},
                                  {"k", 2},
                                  {"m", sw.network().params().m},
                                  {"steps", config.steps}},
                                 {{"construction", "maw-dominant"}});
  result.ok = stats.blocked == 0;  // at the Theorem 2 bound: never blocks
  return result;
}

BenchResult bench_routing_hotpath(bool tiny) {
  // Scale-up churn case: large enough (m middle modules, k lanes, 128 ports)
  // that per-connection container overhead in the connect/disconnect path is
  // visible, unlike the 4x4x2 design points above.
  auto sw = MultistageSwitch::nonblocking(8, 16, 8, Construction::kMswDominant,
                                          MulticastModel::kMSW);
  SimConfig config;
  config.steps = tiny ? 500 : 50000;
  config.self_check_every = tiny ? 256 : 16384;
  config.fanout = {1, 8};
  const SimStats stats = run_dynamic_sim(sw, config);
  BenchResult result;
  result.params_json = params_of({{"n", 8},
                                  {"r", 16},
                                  {"k", 8},
                                  {"m", sw.network().params().m},
                                  {"steps", config.steps}},
                                 {{"construction", "msw-dominant"}});
  result.ok = stats.blocked == 0;  // at the Theorem 1 bound: never blocks
  return result;
}

BenchResult bench_routing_batched(bool tiny) {
  // The batched request pipeline (DESIGN.md §3.10) on the hotpath geometry:
  // the same dynamic churn pushed through connect_batch at batch sizes 1, 8,
  // 128, and 32. Contract enforced here, not just documented: SimStats is
  // bit-identical at every batch size (the batch path is pure amortization),
  // and the amortized per-request p50 at batch 32 is at least 2x faster than
  // batch 1. Sub-runs reset the metrics registry, so the emitted snapshot is
  // the final batch-32 run -- the headline configuration, carrying the
  // routing.batch_size / routing.batch_amortized_ns instruments.
  const std::size_t batches[] = {1, 8, 128, 32};
  std::size_t p50[129] = {};
  SimStats reference;
  bool stats_identical = true;
  bool never_blocked = true;
  bool have_reference = false;
  // Each sub-run takes ~25ms, long enough for a scheduler or VM noise burst
  // to inflate one batch size's percentile and skew the ratio. Repeat the
  // whole grid and keep each size's minimum p50 (the least-interfered
  // observation); the SimStats identity check still covers every run.
  const int reps = tiny ? 1 : 3;
  for (int rep = 0; rep < reps; ++rep) {
    for (const std::size_t batch : batches) {
      metrics().reset();
      auto sw = MultistageSwitch::nonblocking(
          8, 16, 8, Construction::kMswDominant, MulticastModel::kMSW);
      SimConfig config;
      config.steps = tiny ? 500 : 30000;
      config.self_check_every = tiny ? 256 : 16384;
      config.fanout = {1, 8};
      config.connect_batch = batch;
      const SimStats stats = run_dynamic_sim(sw, config);
      const std::size_t run_p50 =
          metrics().timer("sim.connect").percentile_ns(0.5);
      if (p50[batch] == 0 || run_p50 < p50[batch]) p50[batch] = run_p50;
      never_blocked = never_blocked && stats.blocked == 0;
      if (!have_reference) {
        reference = stats;
        have_reference = true;
      } else {
        stats_identical = stats_identical && stats == reference;
      }
    }
  }
  BenchResult result;
  const std::size_t speedup_x100 =
      p50[32] == 0 ? 0 : p50[1] * 100 / p50[32];
  result.params_json = params_of({{"n", 8},
                                  {"r", 16},
                                  {"k", 8},
                                  {"steps", tiny ? 500 : 30000},
                                  {"p50_batch1_ns", p50[1]},
                                  {"p50_batch8_ns", p50[8]},
                                  {"p50_batch32_ns", p50[32]},
                                  {"p50_batch128_ns", p50[128]},
                                  {"speedup_x100", speedup_x100}},
                                 {{"construction", "msw-dominant"}});
  // Tiny runs have too few samples for a stable percentile ratio; the
  // full-size run enforces the documented >= 2x amortization win.
  result.ok = stats_identical && never_blocked &&
              (tiny || speedup_x100 >= 200);
  return result;
}

BenchResult bench_routing_repack(bool tiny) {
  // Rearrangeable mode below the bound (DESIGN.md §3.12): provision m at 75%
  // of the Theorem 1 requirement, then run the same churn twice -- classic
  // routing, which must block down there, and repack-on-block, which should
  // drive blocking to ~zero by migrating a bounded number of standing
  // sessions per admit. The emitted metrics snapshot is the repack run
  // (repack.* counters, repack.chain_length, repack.migrate_ns).
  // m = 6 is less than half the Theorem 1 requirement (13 for n = r = 4,
  // x = 2); random churn at this load blocks reliably there, while at
  // m >= 7 only the structured adversary (bench_repack) still finds blocks.
  const NonblockingBound bound = theorem1_min_m(4, 4);
  const std::size_t m = 6;
  const ClosParams params{4, 4, m, 2};
  SimConfig config;
  config.steps = tiny ? 500 : 20000;
  config.arrival_fraction = 0.8;
  config.fanout = {1, 4};
  config.self_check_every = tiny ? 128 : 4096;

  metrics().reset();
  MultistageSwitch classic(params, Construction::kMswDominant,
                           MulticastModel::kMSW);
  const SimStats before = run_dynamic_sim(classic, config);

  metrics().reset();
  MultistageSwitch sw(params, Construction::kMswDominant,
                      MulticastModel::kMSW);
  SimConfig repack_config = config;
  repack_config.repack = true;
  const SimStats after = run_dynamic_sim(sw, repack_config);

  // Repack cost per admitted request, in hundredths of a migrated session.
  const std::size_t moves_per_admit_x100 =
      after.admitted == 0 ? 0 : after.repack_moves * 100 / after.admitted;
  BenchResult result;
  result.params_json =
      params_of({{"n", 4},
                 {"r", 4},
                 {"k", 2},
                 {"m", m},
                 {"bound_m", bound.m},
                 {"middles_saved", bound.m - m},
                 {"steps", config.steps},
                 {"classic_blocked", before.blocked},
                 {"repack_blocked", after.blocked},
                 {"repacked_admits", after.repacked_admits},
                 {"repack_moves", after.repack_moves},
                 {"moves_per_admit_x100", moves_per_admit_x100}},
                {{"construction", "msw-dominant"}});
  // Below the bound the classic router must block; repack must recover at
  // least 90% of those blocks at an average cost under one migration per
  // admitted request. Tiny runs see too few blocks to score the ratio.
  result.ok = tiny || (before.blocked > 0 && after.blocked * 10 <= before.blocked &&
                       after.repack_moves <= after.admitted);
  return result;
}

BenchResult bench_blocking_sweep(bool tiny) {
  SweepConfig config;
  config.n = tiny ? 2 : 4;
  config.r = tiny ? 2 : 4;
  config.k = 2;
  config.trials = tiny ? 2 : 4;
  config.sim.steps = tiny ? 200 : 1500;
  const std::vector<SweepPoint> points = sweep_middle_count(config);
  BenchResult result;
  result.params_json = params_of({{"n", config.n},
                                  {"r", config.r},
                                  {"k", config.k},
                                  {"trials", config.trials},
                                  {"steps", config.sim.steps},
                                  {"points", points.size()}});
  for (const SweepPoint& point : points) {
    if (point.m >= point.theorem_bound_m &&
        (point.stats.blocked != 0 || point.attack_blocked != 0)) {
      result.ok = false;  // a block at/above the bound would falsify Thm 1
    }
  }
  return result;
}

BenchResult bench_saturation_attack(bool tiny) {
  const std::size_t rounds = tiny ? 3 : 20;
  bool any_blocked = false;
  for (std::size_t round = 0; round < rounds; ++round) {
    auto sw = MultistageSwitch::nonblocking(4, 4, 2, Construction::kMswDominant,
                                            MulticastModel::kMSW);
    Rng rng(0xA77A + round);
    any_blocked |= saturation_attack(sw, rng).challenge_blocked;
  }
  BenchResult result;
  result.params_json =
      params_of({{"n", 4}, {"r", 4}, {"k", 2}, {"rounds", rounds}});
  result.ok = !any_blocked;
  return result;
}

BenchResult bench_converter_pool(bool tiny) {
  const std::size_t N = tiny ? 8 : 16;
  const std::size_t k = tiny ? 2 : 4;
  const std::size_t steps = tiny ? 400 : 4000;
  std::vector<std::size_t> pools;
  for (std::size_t pool = 0; pool <= N * k; pool += std::max<std::size_t>(1, N * k / 4)) {
    pools.push_back(pool);
  }
  if (pools.back() != N * k) pools.push_back(N * k);
  const auto points = sweep_converter_pool(N, k, pools, steps, 0x5EED);
  BenchResult result;
  result.params_json = params_of(
      {{"N", N}, {"k", k}, {"steps", steps}, {"pool_sizes", pools.size()}});
  // A full bank (C = kN, the paper's dedicated-converter MAW) can never run
  // dry, so the last ladder point must show zero converter blocks.
  result.ok = points.back().blocked_on_converters == 0;
  return result;
}

BenchResult bench_routing_ablation(bool tiny) {
  const ClosParams params =
      nonblocking_params(4, 4, 2, Construction::kMswDominant);
  const RoutingPolicy recommended = Router::recommended_policy(
      {params.n, params.r, params.m, params.k}, Construction::kMswDominant);
  SimConfig config;
  config.steps = tiny ? 300 : 8000;

  MultistageSwitch exhaustive(params, Construction::kMswDominant,
                              MulticastModel::kMSW,
                              RoutingPolicy{recommended.max_spread,
                                            RouteSearch::kExhaustive});
  const SimStats exhaustive_stats = run_dynamic_sim(exhaustive, config);

  MultistageSwitch greedy(params, Construction::kMswDominant,
                          MulticastModel::kMSW,
                          RoutingPolicy{recommended.max_spread,
                                        RouteSearch::kGreedy});
  const SimStats greedy_stats = run_dynamic_sim(greedy, config);

  BenchResult result;
  result.params_json = params_of({{"n", params.n},
                                  {"r", params.r},
                                  {"m", params.m},
                                  {"k", params.k},
                                  {"spread", recommended.max_spread},
                                  {"steps", config.steps}});
  // The greedy cover can block where the complete search cannot; never the
  // other way around on the same workload.
  result.ok = exhaustive_stats.blocked <= greedy_stats.blocked;
  return result;
}

BenchResult bench_trace_replay(bool tiny) {
  const ClosParams params = nonblocking_params(4, 4, 2, Construction::kMswDominant);
  SimConfig config;
  config.steps = tiny ? 200 : 5000;
  const std::vector<TraceEvent> events = record_random_workload(
      params, Construction::kMswDominant, MulticastModel::kMSW, config);
  MultistageSwitch sw(params, Construction::kMswDominant, MulticastModel::kMSW);
  const ReplayResult replay = replay_trace(sw, events);
  BenchResult result;
  result.params_json = params_of({{"n", params.n},
                                  {"r", params.r},
                                  {"m", params.m},
                                  {"k", params.k},
                                  {"events", events.size()}});
  // Same geometry + same offered load => the replay admits everything the
  // recording admitted (nonblocking m), with no orphaned disconnects.
  result.ok = replay.blocked == 0 && replay.unmatched_disconnects == 0;
  return result;
}

BenchResult bench_availability(bool tiny) {
  // Theorem-1 m plus two spare middles of failure budget (faults_to_bound=2):
  // single failures leave the fabric provably nonblocking.
  const NonblockingBound bound = theorem1_min_m(4, 4);
  MultistageSwitch sw({4, 4, bound.m + 2, 2}, Construction::kMswDominant,
                      MulticastModel::kMSW, RoutingPolicy{bound.x});
  FaultModel faults(sw.network().params());
  AvailabilityConfig config;
  config.traffic.arrival_rate = 6.0;
  config.traffic.mean_holding = 1.0;
  config.traffic.duration = tiny ? 60.0 : 1200.0;
  config.traffic.fanout = {1, 4};
  config.traffic.seed = 0xFA11;
  config.faults.mtbf = tiny ? 30.0 : 150.0;
  config.faults.mttr = tiny ? 8.0 : 25.0;
  config.faults.seed = 0xFA17;
  const AvailabilityStats stats = run_availability_sim(sw, faults, config);
  BenchResult result;
  result.params_json = params_of(
      {{"n", 4},
       {"r", 4},
       {"k", 2},
       {"m", sw.network().params().m},
       {"duration", static_cast<std::size_t>(config.traffic.duration)},
       {"failures", stats.failure_events}});
  // Bookkeeping must conserve sessions, and while the degraded fabric never
  // dipped below the Theorem-1 bound every affected session restores.
  result.ok = stats.sessions_affected ==
                  stats.sessions_restored + stats.sessions_dropped &&
              stats.capacity_availability() > 0.0 &&
              stats.capacity_availability() <= 1.0;
  if (stats.min_theorem_margin >= 0) {
    result.ok = result.ok && stats.sessions_dropped == 0;
  }
  return result;
}

BenchResult bench_engine_churn(bool tiny) {
  // The tentpole contract, enforced on every artifact: multithreaded churn
  // over the sharded engine reproduces the single-threaded replay
  // bit-identically, and every stale-id probe is rejected.
  engine::EngineConfig config;
  config.params = {4, 4, 5, 2};
  config.shards = tiny ? 3 : 8;
  engine::ChurnConfig churn;
  churn.ops_per_shard = tiny ? 400 : 8000;
  churn.batch = 64;
  churn.workers = 4;
  churn.self_check_every = tiny ? 200 : 4096;

  engine::ShardedEngine engine(config);
  engine::ChurnDriver driver(engine, churn);
  ThreadPool pool(churn.workers);
  obs::TelemetryConfig telemetry;
  telemetry.interval = std::chrono::milliseconds(tiny ? 1 : 5);
  obs::TelemetrySampler sampler(engine, telemetry);
  sampler.start();
  const engine::ChurnStats threaded = driver.run(pool);
  sampler.stop();  // closing sample observes the quiesced engine

  engine::ShardedEngine replay_engine(config);
  engine::ChurnDriver replay(replay_engine, churn);
  const engine::ChurnStats serial = replay.run_serial();

  maybe_dump_flight(engine, "engine_churn");

  // The telemetry contract: the timeline's final sample must agree exactly
  // with the run's deterministic ChurnStats (the engine-side tallies and the
  // driver-side stats are independent bookkeeping of the same ops).
  g_telemetry_lines = sampler.lines();
  bool telemetry_ok = !g_telemetry_lines.empty();
  if (telemetry_ok) {
    try {
      const JsonValue last = parse_json(g_telemetry_lines.back());
      const JsonValue& totals = last.at("totals");
      telemetry_ok =
          last.at("schema").as_string() == obs::kTelemetrySchema &&
          last.at("sample").as_number() ==
              static_cast<double>(g_telemetry_lines.size() - 1) &&
          totals.at("connects").as_number() ==
              static_cast<double>(threaded.total.sim.admitted) &&
          totals.at("disconnects").as_number() ==
              static_cast<double>(threaded.total.sim.departures) &&
          totals.at("grows").as_number() ==
              static_cast<double>(threaded.total.grows) &&
          totals.at("sessions").as_number() ==
              static_cast<double>(threaded.leftover_sessions);
    } catch (const std::exception& error) {
      std::cerr << "engine_churn telemetry: " << error.what() << "\n";
      telemetry_ok = false;
    }
  }

  BenchResult result;
  result.params_json = params_of({{"n", 4},
                                  {"r", 4},
                                  {"k", 2},
                                  {"shards", config.shards},
                                  {"ops_per_shard", churn.ops_per_shard},
                                  {"workers", churn.workers},
                                  {"batch", churn.batch},
                                  {"telemetry_samples",
                                   g_telemetry_lines.size()}});
  result.ok = threaded == serial && threaded.total.stale_accepted == 0 &&
              threaded.leftover_sessions == engine.active_sessions() &&
              threaded.total.grows > 0 && telemetry_ok;
  return result;
}

BenchResult bench_obs_snapshot(bool tiny) {
  // Pins the observability overhead: a dedicated reader thread hammers
  // lock-free health_snapshot() (timed as obs.snapshot_read, p99-gated in
  // tools/bench_thresholds.json) while full-rate churn publishes at every
  // commit point, and the churn side itself stays pinned by the engine.*
  // 1.01-ratio counter gates. Every snapshot read mid-churn must be
  // internally consistent -- the seqlock's whole claim.
  engine::EngineConfig config;
  config.params = {4, 4, 5, 2};
  config.shards = tiny ? 2 : 4;
  engine::ChurnConfig churn;
  churn.ops_per_shard = tiny ? 300 : 6000;
  churn.batch = 64;
  churn.workers = 2;

  engine::ShardedEngine engine(config);
  engine::ChurnDriver driver(engine, churn);
  TimerStat& read_timer = metrics().timer("obs.snapshot_read");

  std::atomic<bool> done{false};
  std::uint64_t reads = 0;
  std::uint64_t inconsistent = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      for (std::size_t s = 0; s < engine.shard_count(); ++s) {
        ScopedTimer timer(read_timer);
        if (!engine.health_snapshot(s).consistent()) ++inconsistent;
        ++reads;
      }
    }
  });
  ThreadPool pool(churn.workers);
  const engine::ChurnStats stats = driver.run(pool);
  done.store(true, std::memory_order_relaxed);
  reader.join();

  maybe_dump_flight(engine, "obs_snapshot");

  BenchResult result;
  result.params_json = params_of({{"n", 4},
                                  {"r", 4},
                                  {"k", 2},
                                  {"shards", config.shards},
                                  {"ops_per_shard", churn.ops_per_shard},
                                  {"snapshot_reads", reads}});
  result.ok = inconsistent == 0 && reads > 0 &&
              stats.total.stale_accepted == 0;
  return result;
}

BenchResult bench_engine_queued(bool tiny) {
  // The single-writer submission path (DESIGN.md §3.13): the same churn as
  // engine_churn, but every op ships through a bounded per-shard MPSC queue
  // and executes on the ShardExecutor's workers instead of under the shard
  // mutex. The determinism contract is unchanged -- the queued run must
  // reproduce the serial replay bit-identically -- and the run must light up
  // the engine.queue_depth / engine.op_wait_ns instruments that the
  // thresholds file gates.
  engine::EngineConfig config;
  config.params = {4, 4, 5, 2};
  config.shards = tiny ? 3 : 8;
  engine::ChurnConfig churn;
  churn.ops_per_shard = tiny ? 400 : 8000;
  churn.batch = 64;
  churn.workers = 4;
  churn.queued = true;
  churn.queue_depth = tiny ? 64 : 512;
  churn.self_check_every = tiny ? 200 : 4096;

  engine::ShardedEngine engine(config);
  engine::ChurnDriver driver(engine, churn);
  ThreadPool pool(1);  // queued mode submits from the calling thread
  const engine::ChurnStats queued = driver.run(pool);

  engine::ShardedEngine replay_engine(config);
  engine::ChurnDriver replay(replay_engine, churn);
  const engine::ChurnStats serial = replay.run_serial();

  maybe_dump_flight(engine, "engine_queued");

  bool instruments_ok = true;
  if (metrics_enabled()) {
    instruments_ok =
        metrics().histogram("engine.queue_depth").count() > 0 &&
        metrics().timer("engine.op_wait_ns").count() > 0;
  }

  BenchResult result;
  result.params_json = params_of({{"n", 4},
                                  {"r", 4},
                                  {"k", 2},
                                  {"shards", config.shards},
                                  {"ops_per_shard", churn.ops_per_shard},
                                  {"workers", churn.workers},
                                  {"queue_depth", churn.queue_depth}});
  result.ok = queued == serial && queued.total.stale_accepted == 0 &&
              queued.leftover_sessions == engine.active_sessions() &&
              engine.active_sessions() == engine.active_sessions_locked() &&
              queued.total.grows > 0 && instruments_ok;
  return result;
}

BenchResult bench_engine_soak(bool tiny) {
  // Miniature of bench/bench_soak.cpp, sized for the artifact: fill the
  // engine with unicast sessions to a fixed occupancy target, keep
  // lock-free find_session probes hot (timed as engine.find_session_ns)
  // while queued churn saturates the shard queues, then drain the fill and
  // check the session accounting end to end. The standalone bench_soak
  // binary runs the same shape at 1M+ sessions with an RSS budget.
  engine::EngineConfig config;
  config.params = tiny ? ClosParams{4, 8, 6, 8} : ClosParams{16, 16, 24, 64};
  config.shards = tiny ? 2 : 4;
  const std::size_t ports = config.params.port_count();
  const std::size_t lanes = config.params.k;
  const std::size_t target =
      (ports * lanes * 3) / 4;  // fill 75% of the endpoint space

  engine::ShardedEngine engine(config);
  std::vector<engine::SessionId> filled;
  filled.reserve(target);
  std::size_t blocked = 0;
  for (std::size_t lane = 0; lane < lanes && filled.size() < target; ++lane) {
    for (std::size_t port = 0; port < ports && filled.size() < target;
         ++port) {
      // Per-lane shifted permutation: every output endpoint is used at most
      // once, so the fill is limited by routing, not by endpoint clashes.
      const MulticastRequest request{
          {port, static_cast<Wavelength>(lane)},
          {{(port + 1 + lane) % ports, static_cast<Wavelength>(lane)}}};
      if (const auto session = engine.connect(request)) {
        filled.push_back(*session);
      } else {
        ++blocked;
      }
    }
  }
  const bool fill_ok = filled.size() >= target &&
                       engine.active_sessions() == filled.size();

  // Saturated churn with a concurrent lock-free reader: the probe thread
  // hammers find_session over the filled ids while the queued driver keeps
  // every shard queue busy. The p99 of engine.find_session_ns is the
  // "reads do not degrade under write saturation" number.
  engine::ChurnConfig churn;
  churn.ops_per_shard = tiny ? 300 : 3000;
  churn.batch = 32;
  churn.workers = tiny ? 2 : 4;
  churn.queued = true;
  churn.queue_depth = 128;
  engine::ChurnDriver driver(engine, churn);
  TimerStat& probe_timer = metrics().timer("engine.find_session_ns");
  std::atomic<bool> done{false};
  std::uint64_t probes = 0;
  std::uint64_t misdecoded = 0;
  std::thread prober([&] {
    std::size_t at = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const engine::SessionId id = filled[at % filled.size()];
      at += 7919;  // co-prime stride: sweep the table, not one hot line
      ScopedTimer timer(probe_timer);
      const auto probe = engine.find_session(id);
      ++probes;
      if (probe && probe->slot != ThreeStageNetwork::slot_of_id(id.connection)) {
        ++misdecoded;
      }
    }
  });
  ThreadPool pool(1);
  const engine::ChurnStats stats = driver.run(pool);
  done.store(true, std::memory_order_relaxed);
  prober.join();

  maybe_dump_flight(engine, "engine_soak");

  // Drain the fill; the churn's own leftovers are the only survivors.
  std::size_t drained = 0;
  for (const engine::SessionId id : filled) drained += engine.disconnect(id) ? 1 : 0;
  const bool drain_ok = drained == filled.size() &&
                        engine.active_sessions() == stats.leftover_sessions &&
                        engine.active_sessions() ==
                            engine.active_sessions_locked();
  engine.self_check();

  BenchResult result;
  result.params_json = params_of({{"n", config.params.n},
                                  {"r", config.params.r},
                                  {"k", config.params.k},
                                  {"shards", config.shards},
                                  {"fill_sessions", filled.size()},
                                  {"fill_blocked", blocked},
                                  {"ops_per_shard", churn.ops_per_shard},
                                  {"probes", probes}});
  result.ok = fill_ok && drain_ok && probes > 0 && misdecoded == 0 &&
              stats.total.stale_accepted == 0;
  return result;
}

const std::vector<BenchCase>& bench_cases() {
  static const std::vector<BenchCase> cases = {
      {"routing_msw_dominant",
       "dynamic churn on the Theorem 1 design point (MSW-dominant)",
       bench_routing_msw},
      {"routing_maw_dominant",
       "dynamic churn on the Theorem 2 design point (MAW-dominant)",
       bench_routing_maw},
      {"routing_hotpath",
       "scale-up churn (n=8, r=16, k=8) stressing the connect/disconnect path",
       bench_routing_hotpath},
      {"routing_batched",
       "batched pipeline on the hotpath geometry: bit-identical stats, >= 2x "
       "amortized p50 at batch 32",
       bench_routing_batched},
      {"routing_repack",
       "repack-on-block churn at half the Theorem 1 middle stage",
       bench_routing_repack},
      {"blocking_sweep", "parallel m-sweep around the Theorem 1 bound",
       bench_blocking_sweep},
      {"saturation_attack", "structured worst-case adversary rounds",
       bench_saturation_attack},
      {"converter_pool", "shared converter bank provisioning ladder",
       bench_converter_pool},
      {"routing_ablation", "exhaustive vs greedy cover search, same workload",
       bench_routing_ablation},
      {"trace_replay", "record a churn workload, replay it bit-identically",
       bench_trace_replay},
      {"availability", "Erlang traffic with MTBF/MTTR failures + restoration",
       bench_availability},
      {"engine_churn",
       "sharded concurrent churn, verified bit-identical to a serial replay",
       bench_engine_churn},
      {"obs_snapshot",
       "lock-free health snapshot reads hammered against full-rate churn",
       bench_obs_snapshot},
      {"engine_queued",
       "single-writer queued submission, bit-identical to the serial replay",
       bench_engine_queued},
      {"engine_soak",
       "bulk session fill + saturated queued churn with lock-free probes",
       bench_engine_soak},
  };
  return cases;
}

// ---- emission -------------------------------------------------------------

std::string git_describe() {
  FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  std::string out;
  char buffer[256];
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr) out += buffer;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out.empty() ? "unknown" : out;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

/// Re-parse the emitted file and check the schema contract the docs promise.
/// `full_set` adds the coverage check that only holds when nothing was
/// filtered out: the artifact must carry latency percentiles for the router
/// search, sim connect, and thread-pool task run somewhere.
bool validate_results_file(const std::string& path, std::size_t expected_entries,
                           bool full_set) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "validate: cannot open " << path << "\n";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue root;
  try {
    root = parse_json(buffer.str());
  } catch (const std::exception& error) {
    std::cerr << "validate: " << error.what() << "\n";
    return false;
  }
  try {
    if (root.at("schema").as_string() != "wdmcast-bench/2") {
      std::cerr << "validate: unexpected schema id\n";
      return false;
    }
    (void)root.at("git").as_string();
    (void)root.at("generated_utc").as_string();
    (void)root.at("threads").as_number();
    const JsonArray& benchmarks = root.at("benchmarks").as_array();
    if (benchmarks.size() < expected_entries) {
      std::cerr << "validate: expected >= " << expected_entries
                << " benchmark entries, found " << benchmarks.size() << "\n";
      return false;
    }
    std::set<std::string> timers_seen;
    for (const JsonValue& entry : benchmarks) {
      (void)entry.at("name").as_string();
      (void)entry.at("ok").as_bool();
      (void)entry.at("wall_ms").as_number();
      (void)entry.at("params").as_object();
      const JsonObject& counters =
          entry.at("metrics").at("counters").as_object();
      bool has_hot_path_counter = false;
      for (const auto& [name, value] : counters) {
        (void)value;
        if (name.starts_with("routing.") || name.starts_with("sim.") ||
            name.starts_with("sweep.") || name.starts_with("converter_pool.") ||
            name.starts_with("faults.")) {
          has_hot_path_counter = true;
          break;
        }
      }
      if (!has_hot_path_counter) {
        std::cerr << "validate: entry \"" << entry.at("name").as_string()
                  << "\" carries no routing/sim counter\n";
        return false;
      }
      // Schema /2: every emitted timer carries the percentile triple, and
      // the histograms section exists (possibly empty).
      (void)entry.at("metrics").at("histograms").as_object();
      for (const auto& [name, timer] : entry.at("metrics").at("timers").as_object()) {
        const double p50 = timer.at("p50_ns").as_number();
        const double p90 = timer.at("p90_ns").as_number();
        const double p99 = timer.at("p99_ns").as_number();
        const double max = timer.at("max_ns").as_number();
        if (!(p50 <= p90 && p90 <= p99 && p99 <= max)) {
          std::cerr << "validate: timer \"" << name
                    << "\" percentiles not monotone\n";
          return false;
        }
        timers_seen.insert(name);
      }
    }
    if (full_set) {
      for (const char* required :
           {"routing.find_route", "sim.connect", "thread_pool.task_run"}) {
        if (!timers_seen.contains(required)) {
          std::cerr << "validate: artifact carries no \"" << required
                    << "\" latency distribution\n";
          return false;
        }
      }
    }
  } catch (const std::exception& error) {
    std::cerr << "validate: " << error.what() << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.describe("tiny", "smoke-sized parameters (the bench-smoke ctest)");
  cli.describe("out", "output path (default BENCH_results.json)");
  cli.describe("filter", "only run benchmarks whose name contains this");
  cli.describe("list", "list benchmark names and exit (honors --filter)");
  cli.describe("include-zero", "emit zero-valued instruments too");
  cli.describe("trace",
               "write the span timeline as Chrome trace-event JSON here "
               "(open in Perfetto / chrome://tracing)");
  cli.describe("telemetry",
               "write engine_churn's wdm-telemetry/1 timeline here as JSON "
               "lines (one sample per line)");
  if (cli.wants_help()) {
    std::cout << cli.help_text(
        "run_benches: unified benchmark runner -> BENCH_results.json");
    return 0;
  }
  try {
    cli.validate();
  } catch (const std::exception& error) {
    std::cerr << "run_benches: " << error.what() << " (see --help)\n";
    return 2;
  }

  const bool tiny = cli.get_bool("tiny");
  const bool include_zero = cli.get_bool("include-zero");
  const std::string out_path =
      cli.get_string("out").value_or("BENCH_results.json");
  const std::string filter = cli.get_string("filter").value_or("");
  const std::string trace_path = cli.get_string("trace").value_or("");
  const std::string telemetry_path = cli.get_string("telemetry").value_or("");

  if (cli.get_bool("list")) {
    for (const BenchCase& bench : bench_cases()) {
      if (!filter.empty() && bench.name.find(filter) == std::string::npos) {
        continue;
      }
      std::cout << bench.name << "  -  " << bench.summary << "\n";
    }
    return 0;
  }

  // The runner exists to collect telemetry: override WDM_METRICS=0.
  set_metrics_enabled(true);
  if (!trace_path.empty()) {
    set_tracing_enabled(true);
    reset_trace();
  }

  print_banner(std::cout, tiny ? "run_benches (tiny smoke parameters)"
                               : "run_benches");

  std::ostringstream body;
  Table table({"benchmark", "wall ms", "ok"});
  std::size_t entries = 0;
  bool all_ok = true;
  for (const BenchCase& bench : bench_cases()) {
    if (!filter.empty() && bench.name.find(filter) == std::string::npos) {
      continue;
    }
    metrics().reset();
    const auto start = std::chrono::steady_clock::now();
    const BenchResult result = bench.run(tiny);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    const std::string snapshot = metrics().snapshot_json(include_zero);

    if (entries != 0) body << ",\n";
    body << "    {\"name\":\"" << json_escape(bench.name) << "\",\"params\":"
         << result.params_json << ",\"ok\":" << (result.ok ? "true" : "false")
         << ",\"wall_ms\":" << wall_ms << ",\"metrics\":" << snapshot << "}";
    ++entries;
    all_ok = all_ok && result.ok;
    table.add(bench.name, wall_ms, result.ok ? "yes" : "NO");
  }
  table.print(std::cout);

  if (entries == 0) {
    std::cerr << "no benchmark matches --filter=" << filter << "\n";
    return 1;
  }

  std::ostringstream document;
  document << "{\n  \"schema\":\"wdmcast-bench/2\",\n  \"git\":\""
           << json_escape(git_describe()) << "\",\n  \"generated_utc\":\""
           << utc_timestamp() << "\",\n  \"threads\":"
           << default_pool().thread_count() << ",\n  \"tiny\":"
           << (tiny ? "true" : "false") << ",\n  \"benchmarks\":[\n"
           << body.str() << "\n  ]\n}\n";
  {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << document.str();
  }
  std::cout << "\nwrote " << out_path << " (" << entries << " benchmarks)\n";

  bool trace_ok = true;
  if (!trace_path.empty()) {
    const std::string trace_json = trace_to_chrome_json();
    std::ofstream trace_out(trace_path);
    if (!trace_out) {
      std::cerr << "cannot write " << trace_path << "\n";
      trace_ok = false;
    } else {
      trace_out << trace_json;
      // Same contract as the results file: what we wrote must parse.
      try {
        const JsonValue trace_root = parse_json(trace_json);
        const std::size_t events = trace_root.at("traceEvents").as_array().size();
        if (events == 0) {
          std::cerr << "trace: no events recorded\n";
          trace_ok = false;
        } else {
          std::cout << "wrote " << trace_path << " (" << events
                    << " trace events, " << trace_dropped_count()
                    << " dropped; open in https://ui.perfetto.dev)\n";
        }
      } catch (const std::exception& error) {
        std::cerr << "trace validation: " << error.what() << "\n";
        trace_ok = false;
      }
    }
  }

  bool telemetry_file_ok = true;
  if (!telemetry_path.empty()) {
    if (g_telemetry_lines.empty()) {
      std::cerr << "telemetry: no samples (engine_churn filtered out?)\n";
      telemetry_file_ok = false;
    } else {
      std::ofstream telemetry_out(telemetry_path);
      if (!telemetry_out) {
        std::cerr << "cannot write " << telemetry_path << "\n";
        telemetry_file_ok = false;
      } else {
        for (const std::string& line : g_telemetry_lines) {
          telemetry_out << line << '\n';
        }
        std::cout << "wrote " << telemetry_path << " ("
                  << g_telemetry_lines.size() << " samples)\n";
      }
    }
  }

  const bool valid = validate_results_file(out_path, entries, filter.empty());
  std::cout << "schema validation: " << (valid ? "ok" : "FAILED") << "\n";
  if (!all_ok) std::cout << "NOTE: at least one benchmark reported ok=false\n";
  return (valid && all_ok && trace_ok && telemetry_file_ok) ? 0 : 1;
}

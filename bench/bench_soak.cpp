// Million-session soak for the sharded engine (DESIGN.md §3.13).
//
// Four acts, each with its own gate:
//
//   1. Bulk fill: connect unicast sessions (per-lane shifted permutations,
//      so no two sessions contend for an endpoint) until the target count
//      is live. Default geometry n=128, r=128, m=136, k=64 gives 1,048,576
//      input endpoints; the default target fills 1,000,000 of them. The
//      RSS delta across the fill, divided by the session count, must stay
//      under --budget-bytes (read from /proc/self/statm, so the gate is
//      Linux-only and reports "n/a" elsewhere).
//   2. Saturated churn: with the million sessions still standing, the
//      queued ChurnDriver pushes sustained connect/disconnect/grow
//      traffic through the single-writer executor while a reader thread
//      hammers lock-free find_session over the filled ids. The probe's
//      p99 under saturation is compared against an idle baseline measured
//      before the churn -- the lock-free read path must not degrade while
//      every shard queue is busy.
//   3. Scaling sweep: each worker count in --sweep gets a FRESH engine
//      pre-filled to half the target (identical state per row -- reusing
//      one engine would let each row inherit the previous row's leftovers
//      and the columns would stop being comparable). Rows must reproduce
//      row 1's ChurnStats bit-identically; the throughput column is the
//      scaling curve committed to docs/BENCHMARKS.md.
//   4. Drain: every filled session disconnects cleanly, the lock-free
//      session count agrees with the locked recount, and self_check passes.
//
// Scaling and latency gates are enforced only when the host has >= 8
// hardware threads (like bench_churn: on a 1-core container the sweep is
// flat by design and only the correctness columns carry signal).
//
// WDM_TELEMETRY=<path> attaches a TelemetrySampler to the saturated run.
//
// The engine_soak_smoke ctest runs this binary at ~100k sessions; the
// acceptance soak is the default invocation (raise --churn-ops for
// minutes of sustained churn).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/churn_driver.h"
#include "engine/sharded_engine.h"
#include "multistage/network.h"
#include "obs/telemetry.h"
#include "util/cli.h"
#include "util/metrics.h"
#include "util/table.h"

using namespace wdm;
using namespace wdm::engine;

namespace {

/// Resident set size in bytes, or 0 when /proc/self/statm is unavailable.
std::size_t rss_bytes() {
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long total = 0;
  unsigned long resident = 0;
  const int fields = std::fscanf(statm, "%lu %lu", &total, &resident);
  std::fclose(statm);
  if (fields != 2) return 0;
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
}

std::vector<std::size_t> parse_sweep(const std::string& text) {
  std::vector<std::size_t> workers;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) workers.push_back(std::stoul(item));
  }
  return workers;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Connect `count` unicast sessions: per-lane shifted permutations over the
/// whole port space, so every endpoint is used at most once and the fill is
/// limited only by routing. Appends the minted ids to `out`.
std::size_t fill_sessions(ShardedEngine& engine, std::size_t lanes,
                          std::size_t count, std::vector<SessionId>& out) {
  const std::size_t ports = engine.port_count();
  std::size_t blocked = 0;
  const std::size_t want = out.size() + count;
  for (std::size_t lane = 0; lane < lanes && out.size() < want; ++lane) {
    for (std::size_t port = 0; port < ports && out.size() < want; ++port) {
      const MulticastRequest request{
          {port, static_cast<Wavelength>(lane)},
          {{(port + 1 + lane) % ports, static_cast<Wavelength>(lane)}}};
      if (const auto session = engine.connect(request)) {
        out.push_back(*session);
      } else {
        ++blocked;
      }
    }
  }
  return blocked;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(argc, argv);
  cli.describe("sessions", "concurrent sessions to fill (default 1000000)");
  cli.describe("shards", "engine shards (default 16)");
  cli.describe("n", "ports per input module (default 128)");
  cli.describe("r", "input/output modules (default 128)");
  cli.describe("m", "middle modules (default 136)");
  cli.describe("k", "wavelengths per fiber (default 64, the per-port cap)");
  cli.describe("churn-ops", "churn ops per shard per run (default 10000)");
  cli.describe("sweep", "comma list of executor worker counts (default 1,2,4,8,16)");
  cli.describe("budget-bytes", "max RSS bytes per filled session (default 4096)");
  if (cli.wants_help()) {
    std::cout << cli.help_text("Million-session soak on the sharded engine");
    return 0;
  }
  try {
    cli.validate();
  } catch (const std::exception& error) {
    std::cerr << "bench_soak: " << error.what() << " (see --help)\n";
    return 2;
  }

  const auto target = static_cast<std::size_t>(cli.get_int("sessions", 1000000));
  const auto budget = static_cast<std::size_t>(cli.get_int("budget-bytes", 4096));
  const auto churn_ops = static_cast<std::size_t>(cli.get_int("churn-ops", 10000));
  const std::vector<std::size_t> sweep =
      parse_sweep(cli.get_string("sweep").value_or("1,2,4,8,16"));

  EngineConfig config;
  config.params = {static_cast<std::size_t>(cli.get_int("n", 128)),
                   static_cast<std::size_t>(cli.get_int("r", 128)),
                   static_cast<std::size_t>(cli.get_int("m", 136)),
                   static_cast<std::size_t>(cli.get_int("k", 64))};
  config.shards = static_cast<std::size_t>(cli.get_int("shards", 16));
  const std::size_t endpoints = config.params.port_count() * config.params.k;
  if (endpoints < target) {
    std::cerr << "geometry has " << endpoints
              << " input endpoints; cannot hold " << target << " sessions\n";
    return 1;
  }

  print_banner(std::cout, "Sharded engine soak: fill, budget, saturate, drain");
  std::cout << "\nEngine: " << config.shards << " shards x "
            << config.params.to_string() << " (" << endpoints
            << " input endpoints)\nTarget: " << target
            << " concurrent sessions, budget " << budget
            << " RSS bytes/session.\n\n";

  bool ok = true;
  const std::size_t cores = std::thread::hardware_concurrency();
  const bool enforce_parallel_gates = cores >= 8;
  if (!enforce_parallel_gates) {
    std::cout << "note: " << cores << " hardware thread(s) -- scaling and "
              << "latency gates are report-only on this host.\n\n";
  }

  ChurnConfig churn;
  churn.ops_per_shard = churn_ops;
  churn.batch = 64;
  churn.queued = true;
  churn.queue_depth = 1024;

  // ---- Act 1: bulk fill under an RSS budget ----------------------------
  const std::size_t rss_before = rss_bytes();
  ShardedEngine engine(config);
  const std::size_t rss_engine = rss_bytes();

  std::vector<SessionId> filled;
  filled.reserve(target);
  const auto fill_start = std::chrono::steady_clock::now();
  const std::size_t fill_blocked =
      fill_sessions(engine, config.params.k, target, filled);
  const double fill_seconds = seconds_since(fill_start);
  const std::size_t rss_filled = rss_bytes();

  const bool fill_ok = filled.size() >= target &&
                       engine.active_sessions() == filled.size();
  ok = ok && fill_ok;
  std::cout << "fill: " << filled.size() << " sessions in " << fill_seconds
            << " s (" << static_cast<std::size_t>(
                             static_cast<double>(filled.size()) / fill_seconds)
            << " connects/s, " << fill_blocked << " blocked)"
            << (fill_ok ? "" : "  FAIL") << "\n";

  if (rss_filled > 0 && rss_engine > 0 && !filled.empty()) {
    const std::size_t per_session = (rss_filled - rss_engine) / filled.size();
    const bool budget_ok = per_session <= budget;
    ok = ok && budget_ok;
    std::cout << "memory: engine base "
              << (rss_engine - rss_before) / (1024 * 1024) << " MiB, fill +"
              << (rss_filled - rss_engine) / (1024 * 1024) << " MiB = "
              << per_session << " bytes/session (budget " << budget << ")"
              << (budget_ok ? "" : "  FAIL") << "\n";
  } else {
    std::cout << "memory: /proc/self/statm unavailable -- budget gate n/a\n";
  }

  // ---- Act 2: saturated churn vs the lock-free probe -------------------
  TimerStat& idle_timer = metrics().timer("soak.find_session_idle_ns");
  TimerStat& churn_timer = metrics().timer("soak.find_session_churn_ns");
  constexpr std::size_t kIdleProbes = 200000;
  std::size_t misdecoded = 0;
  for (std::size_t i = 0; i < kIdleProbes; ++i) {
    const SessionId id = filled[(i * 7919) % filled.size()];
    ScopedTimer timer(idle_timer);
    const auto probe = engine.find_session(id);
    if (!probe || probe->slot != ThreeStageNetwork::slot_of_id(id.connection)) {
      ++misdecoded;
    }
  }
  ok = ok && misdecoded == 0;

  const std::size_t widest = sweep.empty() ? 4 : *std::max_element(sweep.begin(), sweep.end());
  {
    churn.workers = widest;
    ChurnDriver driver(engine, churn);
    ThreadPool pool(1);  // queued mode submits from the calling thread

    obs::TelemetrySampler sampler(engine, {std::chrono::milliseconds(10), true});
    const char* telemetry_path = std::getenv("WDM_TELEMETRY");
    const bool sample = telemetry_path != nullptr && *telemetry_path != '\0';
    if (sample) sampler.start();

    std::atomic<bool> done{false};
    std::thread prober([&] {
      std::size_t at = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const SessionId id = filled[at % filled.size()];
        at += 7919;  // co-prime stride: sweep the table, not one hot line
        ScopedTimer timer(churn_timer);
        (void)engine.find_session(id);
      }
    });
    const auto start = std::chrono::steady_clock::now();
    const ChurnStats stats = driver.run(pool);
    const double wall = seconds_since(start);
    done.store(true, std::memory_order_relaxed);
    prober.join();
    if (sample) {
      sampler.stop();
      if (sampler.write_file(telemetry_path)) {
        std::cout << "wrote " << telemetry_path << " ("
                  << sampler.sample_count() << " telemetry samples)\n";
      }
    }
    ok = ok && stats.total.stale_accepted == 0;
    std::cout << "saturated churn: " << stats.total.sim.steps
              << " ops across " << config.shards << " queues in " << wall
              << " s at " << widest << " workers ("
              << stats.total.sim.admitted << " admitted, "
              << stats.total.stale_rejected << " stale rejected)\n";
  }

  if (metrics_enabled()) {
    const auto idle_p99 = static_cast<double>(idle_timer.percentile_ns(0.99));
    const auto churn_p99 = static_cast<double>(churn_timer.percentile_ns(0.99));
    const bool p99_ok = churn_p99 <= idle_p99 * 5.0 + 2000.0;
    std::cout << "find_session p99: idle " << idle_p99 << " ns, saturated "
              << churn_p99 << " ns"
              << (p99_ok                   ? ""
                  : enforce_parallel_gates ? "  FAIL"
                                           : "  (over budget; report-only)")
              << "\n";
    if (enforce_parallel_gates) ok = ok && p99_ok;
  }

  // ---- Act 3: scaling sweep, fresh half-full engine per row ------------
  // Every row starts from identical state (same fill, same seed), so the
  // ChurnStats must match row 1 bit-for-bit and the throughput column is a
  // fair scaling curve. Reusing one engine would leak each row's leftovers
  // into the next and quietly change what the later rows measure.
  std::cout << "\nscaling sweep: fresh engine per row, " << target / 2
            << " sessions pre-filled, " << churn_ops << " ops/shard.\n\n";
  Table table({"workers", "wall s", "ops/s", "speedup", "admitted",
               "stale rej", "identical"});
  double base_wall = 0.0;
  double best_speedup = 1.0;
  ChurnStats reference;
  bool first_row = true;
  for (const std::size_t workers : sweep) {
    ShardedEngine row_engine(config);
    std::vector<SessionId> row_fill;
    row_fill.reserve(target / 2);
    fill_sessions(row_engine, config.params.k, target / 2, row_fill);
    churn.workers = workers;
    ChurnDriver driver(row_engine, churn);
    ThreadPool pool(1);
    const auto start = std::chrono::steady_clock::now();
    const ChurnStats stats = driver.run(pool);
    const double wall = seconds_since(start);

    if (first_row) reference = stats;
    const bool identical = stats == reference;
    ok = ok && identical && stats.total.stale_accepted == 0;
    if (first_row) base_wall = wall;
    const double speedup = base_wall / wall;
    if (workers <= 8) best_speedup = std::max(best_speedup, speedup);
    table.add(workers, wall,
              static_cast<double>(stats.total.sim.steps) / wall,
              speedup, stats.total.sim.admitted, stats.total.stale_rejected,
              first_row ? "ref" : (identical ? "yes" : "NO"));
    first_row = false;
  }
  table.print(std::cout);
  if (sweep.size() > 1) {
    const bool scaling_ok = best_speedup >= 4.0;
    std::cout << "scaling: best speedup at <= 8 workers = " << best_speedup
              << "x"
              << (scaling_ok               ? ""
                  : enforce_parallel_gates ? "  FAIL (need >= 4x)"
                                           : "  (single-core host; report-only)")
              << "\n";
    if (enforce_parallel_gates) ok = ok && scaling_ok;
  }

  // ---- Act 4: drain ----------------------------------------------------
  const auto drain_start = std::chrono::steady_clock::now();
  std::size_t drained = 0;
  for (const SessionId id : filled) drained += engine.disconnect(id) ? 1 : 0;
  const double drain_seconds = seconds_since(drain_start);
  const bool drain_ok =
      drained == filled.size() &&
      engine.active_sessions() == engine.active_sessions_locked();
  ok = ok && drain_ok;
  engine.self_check();
  std::cout << "\ndrain: " << drained << " disconnects in " << drain_seconds
            << " s; " << engine.active_sessions()
            << " churn leftovers remain (lock-free == locked count: "
            << (drain_ok ? "yes" : "NO") << ")\n";

  std::cout << (ok ? "\nOK: soak held the budget, the determinism contract, "
                     "and the read-path latency.\n"
                   : "\nFAIL: at least one soak gate failed.\n");
  return ok ? 0 : 1;
}

// Reproduces Fig. 6: the paper's example MSDW network at N = 3, k = 2 -- an
// Nk x Nk = 6 x 6 gate matrix (36 crosspoints) with a converter ahead of
// each of the 6 input wavelengths. Audits the exact figure inventory and
// replays a multi-connection scene exercising input-side conversion.
#include <iostream>

#include "fabric/fabric_switch.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Fig. 6: MSDW crossbar example (N=3, k=2)");

  const std::size_t N = 3, k = 2;
  const CrossbarFabric fabric(N, k, MulticastModel::kMSDW);
  const CrossbarCost audit = fabric.audit();

  Table inventory({"component", "built", "paper figure"});
  inventory.add("SOA gates (crosspoints)", audit.crosspoints, "k^2 N^2 = 36");
  inventory.add("wavelength converters", audit.converters, "Nk = 6 (input side)");
  inventory.add("splitters (1 -> Nk)", audit.splitters, "Nk = 6");
  inventory.add("combiners (Nk -> 1)", audit.combiners, "Nk = 6");
  inventory.print(std::cout);
  bool ok = audit.crosspoints == 36 && audit.converters == 6 &&
            audit.splitters == 6 && audit.combiners == 6;

  // A busy MSDW scene: three connections with distinct destination lanes,
  // overlapping destination ports across lanes (the WDM multicast feature).
  FabricSwitch sw(N, k, MulticastModel::kMSDW);
  sw.connect({{0, 0}, {{0, 1}, {1, 1}}});  // λ1 source -> λ2 destinations
  sw.connect({{1, 1}, {{0, 0}, {2, 0}}});  // λ2 source -> λ1 destinations
  sw.connect({{2, 0}, {{1, 0}}});          // λ1 -> λ1 unicast (no conversion)
  const auto report = sw.verify();
  ok = ok && report.ok && sw.active_connections() == 3;
  std::cout << "\n3 concurrent MSDW connections (port 0 and port 1 each "
               "receiving two different streams on their two lanes): "
            << (report.ok ? "verified" : "FAILED") << "\n"
            << report.to_string() << "\n";

  std::cout << "\nFig. 6 " << (ok ? "REPRODUCED" : "FAILED") << ".\n";
  return ok ? 0 : 1;
}

// §3.4's converter-placement remark, quantified: the naive MSDW placement
// (one converter per output-module input, Fig. 3a applied per module) costs
// r*m*k converters; moving the converters inside the module (between gates
// and combiners) cuts that to r*n*k = kN -- exactly the MAW count, proving
// the paper's point that MSDW cannot beat MAW on converters even when
// placed optimally.
#include <iostream>

#include "multistage/nonblocking.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Ablation: MSDW converter placement in multistage networks");

  bool ok = true;
  Table table({"N", "k", "m", "MSDW naive (r*m*k)", "MSDW internal (kN)",
               "MAW (kN)", "internal == MAW"});
  for (const std::size_t root : {4u, 8u, 16u, 32u}) {
    const std::size_t N = root * root;
    for (const std::size_t k : {2u, 4u}) {
      const NonblockingBound bound = theorem1_min_m(root, root);
      const ClosParams params{root, root, bound.m, k};
      const auto naive =
          multistage_cost(params, Construction::kMswDominant,
                          MulticastModel::kMSDW, ConverterPlacement::kModuleInputs);
      const auto internal = multistage_cost(params, Construction::kMswDominant,
                                            MulticastModel::kMSDW,
                                            ConverterPlacement::kModuleInternal);
      const auto maw =
          multistage_cost(params, Construction::kMswDominant, MulticastModel::kMAW);
      const bool equal = internal.converters == maw.converters &&
                         internal.converters == k * N;
      ok = ok && equal && naive.converters > internal.converters;
      // Placement must not change the gate count.
      ok = ok && naive.crosspoints == internal.crosspoints;
      table.add(N, k, bound.m, naive.converters, internal.converters,
                maw.converters, equal);
    }
  }
  table.print(std::cout);

  std::cout << "\nConverter-placement ablation " << (ok ? "REPRODUCED" : "FAILED")
            << ": optimal MSDW placement saves a factor m/n but only ties MAW "
               "(same kN), at identical crosspoints -- MSDW remains dominated.\n";
  return ok ? 0 : 1;
}

// §3's recursive construction, quantified: crosspoints of 1/3/5/7-stage
// networks (depth ablation), where deeper recursion starts to pay, and a
// live validation that theorem-sized inner networks can really stand in for
// the middle crossbars (the recursion's soundness condition).
#include <iostream>

#include "multistage/recursive.h"
#include "sim/nested.h"
#include "sim/request.h"
#include "util/rng.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Recursive multistage construction (odd stage counts)");

  bool ok = true;
  std::cout << "\nCrosspoints by recursion depth (MSW model, k=2; '-' = middle "
               "size no longer factorizable):\n";
  Table table({"N", "1-stage (crossbar)", "3-stage", "5-stage", "7-stage",
               "best"});
  for (const std::size_t N : {64u, 256u, 1024u, 4096u, 65536u}) {
    std::vector<std::string> row{std::to_string(N)};
    for (std::size_t depth = 0; depth <= 3; ++depth) {
      if (depth > max_recursion_depth(N)) {
        row.push_back("-");
        continue;
      }
      row.push_back(std::to_string(
          recursive_design(N, 2, MulticastModel::kMSW, depth).crosspoints));
    }
    const RecursiveDesign best = best_recursive_design(N, 2, MulticastModel::kMSW);
    row.push_back(std::to_string(best.stages) + "-stage");
    table.add_row(row);
  }
  table.print(std::cout);

  // Shape: 3-stage beats crossbar from N=256; 5-stage overtakes 3-stage by
  // N=65536 (each extra level only pays once the middle is large enough to
  // amortize its own m/r overprovisioning).
  ok = ok &&
       recursive_design(256, 2, MulticastModel::kMSW, 1).crosspoints <
           recursive_design(256, 2, MulticastModel::kMSW, 0).crosspoints &&
       recursive_design(65536, 2, MulticastModel::kMSW, 2).crosspoints <
           recursive_design(65536, 2, MulticastModel::kMSW, 1).crosspoints &&
       recursive_design(256, 2, MulticastModel::kMSW, 2).crosspoints >
           recursive_design(256, 2, MulticastModel::kMSW, 1).crosspoints;

  std::cout << "\nbest design at N=65536: "
            << best_recursive_design(65536, 2, MulticastModel::kMSW).to_string()
            << "\n";

  // --- live soundness check of the recursion -------------------------------
  std::cout << "\nLive check: replace every 4x4 middle module of a 12-port "
               "network by a theorem-sized inner three-stage network and "
               "mirror 400 churn steps of traffic:\n";
  MultistageSwitch outer = MultistageSwitch::nonblocking(
      3, 4, 2, Construction::kMswDominant, MulticastModel::kMAW);
  NestedRecursionValidator validator(outer);
  Rng rng(7);
  std::vector<ConnectionId> live;
  std::size_t mirrored = 0, inner_blocks = 0;
  for (int step = 0; step < 400; ++step) {
    if (live.empty() || rng.next_bool(0.65)) {
      const auto request = random_admissible_request(rng, outer.network(), {1, 6});
      if (!request) continue;
      const auto id = outer.try_connect(*request);
      if (!id) continue;
      if (validator.on_connect(*id)) {
        ++mirrored;
        live.push_back(*id);
      } else {
        ++inner_blocks;
        outer.disconnect(*id);
      }
    } else {
      const std::size_t victim = rng.next_below(live.size());
      validator.on_disconnect(live[victim]);
      outer.disconnect(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    }
  }
  validator.self_check();
  ok = ok && inner_blocks == 0 && mirrored > 100;
  std::cout << mirrored << " connections mirrored into " << validator.inner_count()
            << " inner networks; inner blocks: " << inner_blocks
            << (inner_blocks == 0 ? " (recursion sound)" : " (RECURSION BROKEN)")
            << "\n";

  // The packaged five-stage switch: both levels genuinely routed, device
  // count equal to the depth-2 cost model.
  FiveStageSwitch five(4, 4, 2, Construction::kMswDominant, MulticastModel::kMSW);
  const auto five_id = five.try_connect({{0, 0}, {{5, 0}, {10, 0}, {15, 0}}});
  const RecursiveDesign model = recursive_design(16, 2, MulticastModel::kMSW, 2);
  ok = ok && five_id.has_value() && five.crosspoints() == model.crosspoints;
  five.self_check();
  std::cout << "\nFiveStageSwitch (N=16): multicast routed through both levels; "
            << five.crosspoints() << " crosspoints == depth-2 cost model ("
            << model.crosspoints << ")\n";

  std::cout << "\nRecursive construction " << (ok ? "REPRODUCED" : "FAILED")
            << ": each expansion applies the sqrt saving again and inner "
               "networks never block.\n";
  return ok ? 0 : 1;
}

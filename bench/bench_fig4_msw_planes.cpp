// Reproduces Fig. 4: an N x N k-wavelength MSW network is exactly k parallel
// N x N single-wavelength networks. Audits that the MSW fabric has k*N^2
// gates with no cross-lane crosspoints, and shows plane independence: a full
// permutation on every plane simultaneously, verified optically.
#include <iostream>

#include "fabric/fabric_switch.h"
#include "util/table.h"

using namespace wdm;

int main() {
  print_banner(std::cout, "Fig. 4: MSW fabric as k parallel 1-wavelength planes");

  bool ok = true;
  Table table({"N", "k", "gates", "k*N^2", "per-plane gates", "cross-lane gates"});
  for (const auto& [N, k] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 2}, {3, 2}, {4, 3}, {6, 4}}) {
    const CrossbarFabric fabric(N, k, MulticastModel::kMSW);
    const std::size_t gates = fabric.audit().crosspoints;
    // Cross-lane gate lookups must fail by construction.
    std::size_t cross_lane = 0;
    for (Wavelength a = 0; a < k; ++a) {
      for (Wavelength b = 0; b < k; ++b) {
        if (a == b) continue;
        try {
          (void)fabric.gate(0, a, 0, b);
          ++cross_lane;
        } catch (const std::invalid_argument&) {
        }
      }
    }
    table.add(N, k, gates, k * N * N, N * N, cross_lane);
    ok = ok && gates == k * N * N && cross_lane == 0;
  }
  table.print(std::cout);

  // Plane independence: route a different full permutation on each plane.
  const std::size_t N = 4, k = 3;
  FabricSwitch sw(N, k, MulticastModel::kMSW);
  for (Wavelength lane = 0; lane < k; ++lane) {
    for (std::size_t port = 0; port < N; ++port) {
      // plane `lane` carries the rotation-by-(lane+1) permutation
      sw.connect({{port, lane}, {{(port + lane + 1) % N, lane}}});
    }
  }
  const auto report = sw.verify();
  ok = ok && report.ok && sw.active_connections() == N * k;
  std::cout << "\n" << N * k << " simultaneous connections (one full permutation "
            << "per plane): " << (report.ok ? "verified" : "FAILED") << "\n";

  std::cout << "\nFig. 4 " << (ok ? "REPRODUCED" : "FAILED")
            << ": k independent space-switch planes, k*N^2 crosspoints total.\n";
  return ok ? 0 : 1;
}
